#pragma once
// Umbrella header: the whole public API of the gfi library.
//
// Fine-grained includes are preferred inside the library itself; this header
// exists for downstream users and quick experiments.

// Simulation substrate
#include "ams/bridge.hpp"
#include "ams/mixed_sim.hpp"
#include "analog/ac.hpp"
#include "analog/controlled.hpp"
#include "analog/netlist.hpp"
#include "analog/opamp.hpp"
#include "analog/passive.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"
#include "digital/arith.hpp"
#include "digital/circuit.hpp"
#include "digital/fsm.hpp"
#include "digital/gates.hpp"
#include "digital/memory.hpp"
#include "digital/sequential.hpp"

// The fault-injection flow (the paper's contribution)
#include "core/campaign.hpp"
#include "core/fault.hpp"
#include "core/faultlist.hpp"
#include "core/pulse.hpp"
#include "core/report.hpp"
#include "core/saboteur.hpp"
#include "core/stats.hpp"
#include "core/testbench.hpp"

// External design ingestion and the content-addressed golden store
#include "io/golden_store.hpp"
#include "io/ingest.hpp"
#include "io/netlist.hpp"
#include "io/sha256.hpp"

// Traces and analysis
#include "trace/compare.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

// Case studies and hardening
#include "adc/flash.hpp"
#include "adc/sar.hpp"
#include "duts/digital_dut.hpp"
#include "duts/opamp_dut.hpp"
#include "duts/protected_dut.hpp"
#include "harden/tmr.hpp"
#include "pll/pll.hpp"
