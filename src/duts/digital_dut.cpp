#include "duts/digital_dut.hpp"

#include "core/saboteur.hpp"
#include "digital/stimulus.hpp"

namespace gfi::duts {

using namespace digital;

DigitalDutTestbench::DigitalDutTestbench(DigitalDutConfig config) : config_(config)
{
    auto& dig = sim().digital();
    const SimTime period = fromSeconds(1.0 / config_.clockHz);

    auto& clk = dig.logicSignal("dut/clk", Logic::Zero);
    dig.add<ClockGen>(dig, "dut/clkgen", clk, period);

    auto& rstn = dig.logicSignal("dut/rstn", Logic::Zero);
    dig.noteExternalDriver(rstn); // released by the stimulus schedule below
    auto& stimuli = dig.add<StimulusSchedule>(dig, "dut/stimuli");
    stimuli.at(3 * period / 2, rstn, Logic::One);

    // --- stimulus: 8-bit LFSR -------------------------------------------------
    Bus lfsrQ = dig.bus("dut/lfsr_q", 8, Logic::Zero);
    dig.add<Lfsr>(dig, "dut/lfsr", clk, lfsrQ, /*taps=*/0xB8, config_.lfsrSeed, &rstn);

    // --- protocol FSM: IDLE -> ARM -> RUN -> COOL ------------------------------
    // Inputs: lfsr bit0 (req) and bit7 (abort). Output bit0: counter enable.
    Bus fsmIn{std::vector<LogicSignal*>{&lfsrQ.bit(0), &lfsrQ.bit(7)}};
    Bus fsmOut = dig.bus("dut/fsm_out", 2, Logic::Zero);
    enum { kIdle, kArm, kRun, kCool };
    fsm_ = &dig.add<TableFsm>(
        dig, "dut/fsm", clk, &rstn, fsmIn, fsmOut, 4, kIdle,
        [](int state, std::uint64_t in) {
            const bool req = (in & 1u) != 0;
            const bool abort = (in & 2u) != 0;
            switch (state) {
            case kIdle:
                return req ? kArm : kIdle;
            case kArm:
                return abort ? kIdle : kRun;
            case kRun:
                return abort ? kCool : kRun;
            case kCool:
            default:
                return kIdle;
            }
        },
        [](int state, std::uint64_t) -> std::uint64_t {
            // bit0 = counter enable (RUN), bit1 = busy (not IDLE).
            return (state == kRun ? 1u : 0u) | (state != kIdle ? 2u : 0u);
        });

    // --- saboteur on the enable interconnect ------------------------------------
    auto& enableRaw = fsmOut.bit(0);
    auto& enable = dig.logicSignal("dut/enable", Logic::Zero);
    auto& sabEnable =
        dig.add<fault::DigitalSaboteur>(dig, "sab/enable", enableRaw, enable);
    addDigitalSaboteur(sabEnable);

    // --- datapath: gated counter + adder + output register ----------------------
    Bus cntQ = dig.bus("dut/cnt_q", 8, Logic::Zero);
    dig.add<Counter>(dig, "dut/cnt", clk, cntQ, &rstn, &enable);

    // Saboteur on one adder operand line (a datapath interconnect).
    auto& sabBitOut = dig.logicSignal("dut/lfsr_b3", Logic::Zero);
    auto& sabData = dig.add<fault::DigitalSaboteur>(dig, "sab/data", lfsrQ.bit(3), sabBitOut);
    addDigitalSaboteur(sabData);
    Bus addB{std::vector<LogicSignal*>{&lfsrQ.bit(0), &lfsrQ.bit(1), &lfsrQ.bit(2),
                                       &sabBitOut, &lfsrQ.bit(4), &lfsrQ.bit(5),
                                       &lfsrQ.bit(6), &lfsrQ.bit(7)}};

    Bus sum = dig.bus("dut/sum", 8, Logic::Zero);
    dig.add<Adder>(dig, "dut/adder", cntQ, addB, sum);

    Bus outQ = dig.bus("dut/out", 8, Logic::Zero);
    dig.add<Register>(dig, "dut/out_reg", clk, sum, outQ, nullptr, &rstn);

    // --- match comparator ----------------------------------------------------------
    Bus matchConst = dig.bus("dut/match_const", 8, Logic::Zero);
    for (LogicSignal* s : matchConst.bits()) {
        dig.noteExternalDriver(*s); // constant tied off by the testbench
    }
    matchConst.forceUint(0x5A);
    auto& match = dig.logicSignal("dut/match", Logic::Zero);
    dig.add<EqComparator>(dig, "dut/cmp", outQ, matchConst, match);

    addFsm(*fsm_);

    // --- observation ------------------------------------------------------------------
    for (int b = 0; b < 8; ++b) {
        observeDigital("dut/out[" + std::to_string(b) + "]");
    }
    observeDigital("dut/match");
    observeDigital("dut/fsm_out[1]"); // busy flag
    observeAllState();
    setDuration(config_.duration);
}

} // namespace gfi::duts
