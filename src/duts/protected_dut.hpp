#pragma once
// Protection-mechanism validation DUT (the paper's motivation (2): "validate
// the efficiency of the implemented mechanisms").
//
// A free-running counter value flows through a storage element into an
// output bus every clock. Four variants of the storage element can be built:
// unprotected Register, TMR, DWC (duplication w/ comparison) and SEC-DED ECC.
// The SEU targets are the storage element's *internal* hooks (copies /
// codeword), so the same campaign measures how much of the raw upset rate
// each mechanism masks.

#include "core/testbench.hpp"
#include "digital/sequential.hpp"

namespace gfi::duts {

/// Storage-element protection style.
enum class Protection { None, Tmr, Dwc, Ecc };

/// Short name for reports.
[[nodiscard]] const char* toString(Protection p);

/// Parameters of the protected DUT.
struct ProtectedDutConfig {
    Protection protection = Protection::None;
    int width = 8;             ///< payload width
    double clockHz = 50e6;     ///< system clock
    SimTime duration = 4 * kMicrosecond;
    /// Also observe the mechanism's error flag (DWC mismatch / ECC
    /// uncorrectable) so campaigns can attribute "detected" separately from
    /// "data reached the output wrong". Off by default: observing the flag
    /// makes detected-only upsets count as divergence, which changes the
    /// Outcome distribution of existing campaigns.
    bool observeFlag = false;
};

/// The elaborated experiment: counter -> protected register -> output bus.
class ProtectedDutTestbench : public fault::Testbench {
public:
    explicit ProtectedDutTestbench(ProtectedDutConfig config = {});

    /// Configuration used.
    [[nodiscard]] const ProtectedDutConfig& config() const noexcept { return config_; }

    /// Names of the storage hooks that campaigns should target (the
    /// protection-internal state: copies or codeword).
    [[nodiscard]] const std::vector<std::string>& storageTargets() const noexcept
    {
        return storageTargets_;
    }

    /// Name of the mechanism's error-flag signal ("dut/err" for DWC,
    /// "dut/ue" for ECC), empty when the variant has none.
    [[nodiscard]] const std::string& flagSignal() const noexcept { return flagSignal_; }

private:
    ProtectedDutConfig config_;
    std::vector<std::string> storageTargets_;
    std::string flagSignal_;
};

} // namespace gfi::duts
