#include "duts/chain_dut.hpp"

#include "core/saboteur.hpp"
#include "digital/gates.hpp"
#include "digital/sequential.hpp"
#include "digital/stimulus.hpp"

namespace gfi::duts {

using namespace digital;

ChainDutTestbench::ChainDutTestbench(ChainDutConfig config) : config_(config)
{
    auto& dig = sim().digital();
    const SimTime period = fromSeconds(1.0 / config_.clockHz);

    auto& clk = dig.logicSignal("chain/clk", Logic::Zero);
    dig.add<ClockGen>(dig, "chain/clkgen", clk, period);

    auto& rstn = dig.logicSignal("chain/rstn", Logic::Zero);
    dig.noteExternalDriver(rstn);
    auto& stimuli = dig.add<StimulusSchedule>(dig, "chain/stimuli");
    stimuli.at(3 * period / 2, rstn, Logic::One);

    // --- stimulus: 8-bit LFSR, bit 0 feeds the chain, bit 1 the dead branch
    Bus lfsrQ = dig.bus("chain/lfsr_q", 8, Logic::Zero);
    dig.add<Lfsr>(dig, "chain/lfsr", clk, lfsrQ, /*taps=*/0xB8, config_.lfsrSeed, &rstn);

    // --- the chain: six zero-delay saboteurs, a buffer and an inverter ----
    // s0 -> s1 -> buf -> s2 -> inv -> s3 -> s4 -> s5 -> observed flip-flop.
    // Zero delay everywhere on the route keeps every stage waveform-
    // equivalent to the terminal, which is exactly what the collapser's
    // chain walk requires.
    std::array<LogicSignal*, 8> nets{};
    for (std::size_t i = 0; i < nets.size(); ++i) {
        nets[i] = &dig.logicSignal("chain/n" + std::to_string(i), Logic::Zero);
    }
    const auto sab = [&](const std::string& name, LogicSignal& in, LogicSignal& out) {
        addDigitalSaboteur(dig.add<fault::DigitalSaboteur>(dig, name, in, out));
    };
    sab("sab/c0", lfsrQ.bit(0), *nets[0]);
    sab("sab/c1", *nets[0], *nets[1]);
    dig.add<BufGate>(dig, "chain/buf", *nets[1], *nets[2], /*delay=*/0);
    sab("sab/c2", *nets[2], *nets[3]);
    dig.add<NotGate>(dig, "chain/inv", *nets[3], *nets[4], /*delay=*/0);
    sab("sab/c3", *nets[4], *nets[5]);
    sab("sab/c4", *nets[5], *nets[6]);
    sab("sab/c5", *nets[6], *nets[7]);

    auto& q = dig.logicSignal("chain/q", Logic::Zero);
    dig.add<DFlipFlop>(dig, "chain/ff", clk, *nets[7], q, &rstn);

    // --- dead branch: saboteur -> buffer -> unobserved flip-flop ----------
    auto& d0 = dig.logicSignal("chain/d0", Logic::Zero);
    auto& d1 = dig.logicSignal("chain/d1", Logic::Zero);
    auto& deadQ = dig.logicSignal("chain/dead_q", Logic::Zero);
    sab("sab/dead", lfsrQ.bit(1), d0);
    dig.add<BufGate>(dig, "chain/dead_buf", d0, d1, /*delay=*/0);
    dig.add<DFlipFlop>(dig, "chain/dead_ff", clk, d1, deadQ, &rstn);

    // --- observation: the chain endpoint only (dead branch stays dark) ----
    observeDigital("chain/q");
    observeState("chain/ff");
    setDuration(config_.duration);
}

} // namespace gfi::duts
