#include "duts/opamp_dut.hpp"

#include "analog/sources.hpp"
#include "core/saboteur.hpp"

namespace gfi::duts {

OpAmpDutTestbench::OpAmpDutTestbench(OpAmpDutConfig config) : config_(config)
{
    auto& ana = sim().analog();

    const analog::NodeId vin = ana.node("amp/vin");
    const analog::NodeId vinv = ana.node("amp/vinv"); // inverting input
    const analog::NodeId vout = ana.node("amp/vout");

    ana.add<analog::SineVoltage>(ana, "amp/vin_src", vin, analog::kGround, 0.0,
                                 config_.inputAmplitude, config_.inputHz);
    ana.add<analog::Resistor>(ana, "amp/r1", vin, vinv, config_.r1);
    ana.add<analog::Resistor>(ana, "amp/r2", vinv, vout, config_.r2);

    // Non-inverting input grounded; output loaded lightly.
    opamp_ = std::make_unique<analog::OpAmp>(ana, "amp/op", analog::kGround, vinv, vout,
                                             config_.opamp);
    ana.add<analog::Resistor>(ana, "amp/rload", vout, analog::kGround, 100e3);

    // --- instrumentation ----------------------------------------------------
    auto& sabPole = ana.add<fault::CurrentSaboteur>(ana, "sab/pole", opamp_->poleNode());
    auto& sabInv = ana.add<fault::CurrentSaboteur>(ana, "sab/vinv", vinv);
    auto& sabOut = ana.add<fault::CurrentSaboteur>(ana, "sab/vout", vout);
    addCurrentSaboteur(sabPole);
    addCurrentSaboteur(sabInv);
    addCurrentSaboteur(sabOut);

    // gm scales linearly with DC gain in the macro-model (gm = dcGain / Rp).
    addParameter("amp/gain", [this, nominalGm = config_.opamp.dcGain / 1e6](double factor) {
        opamp_->gmStage().setGm(nominalGm * factor);
    });

    // --- observation ---------------------------------------------------------
    observeAnalog("amp/vout");
    observeAnalog("amp/vinv");
    setDuration(config_.duration);
}

} // namespace gfi::duts
