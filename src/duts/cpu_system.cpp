#include "duts/cpu_system.hpp"

namespace gfi::duts {

using namespace digital;

const char* toString(HardeningMode m)
{
    switch (m) {
    case HardeningMode::None:
        return "none";
    case HardeningMode::Tmr:
        return "TMR";
    case HardeningMode::Dwc:
        return "DWC";
    case HardeningMode::EccScrub:
        return "ECC+scrub";
    case HardeningMode::TmrEccScrub:
        return "TMR+ECC+scrub";
    }
    return "?";
}

CpuHardening hardeningPreset(HardeningMode m)
{
    CpuHardening h;
    switch (m) {
    case HardeningMode::None:
        break;
    case HardeningMode::Tmr:
        h.outReg = Protection::Tmr;
        break;
    case HardeningMode::Dwc:
        h.outReg = Protection::Dwc;
        break;
    case HardeningMode::EccScrub:
        h.outReg = Protection::Ecc;
        h.eccRam = true;
        h.scrubPeriod = 200 * kNanosecond;
        break;
    case HardeningMode::TmrEccScrub:
        h.outReg = Protection::Tmr;
        h.eccRam = true;
        h.scrubPeriod = 200 * kNanosecond;
        break;
    }
    return h;
}

std::vector<std::uint64_t> defaultCpuProgram()
{
    return {
        asm1(Op::Ldi, 16), // 0: ACC = 16
        asm1(Op::Sta, 16), // 1: RAM[16] = 16 (the stride)
        asm1(Op::Ldi, 0),  // 2: ACC = 0
        asm1(Op::Add, 16), // 3: loop: ACC += stride
        asm1(Op::Out),     // 4: stream the partial sum
        asm1(Op::Sta, 17), // 5: spill it to RAM[17]
        asm1(Op::Jnz, 3),  // 6: until the 8-bit sum wraps to 0
        asm1(Op::Out),     // 7: final zero
        asm1(Op::Hlt),     // 8: done (~69 cycles golden)
    };
}

CpuSystemTestbench::CpuSystemTestbench(CpuSystemConfig config) : config_(std::move(config))
{
    auto& dig = sim().digital();
    const SimTime period = fromSeconds(1.0 / config_.clockHz);

    auto& clk = dig.logicSignal("sys/clk", Logic::Zero);
    // Start the clock well after elaboration so the first fetch settles.
    dig.add<ClockGen>(dig, "sys/clkgen", clk, period, 0.5, period);

    Bus romAddr = dig.bus("sys/rom_addr", 5, Logic::Zero);
    Bus instr = dig.bus("sys/instr", 8, Logic::Zero);
    dig.add<Rom>(dig, "sys/rom", romAddr, instr, config_.program);

    Bus ramAddr = dig.bus("sys/ram_addr", 5, Logic::Zero);
    Bus ramWData = dig.bus("sys/ram_wdata", 8, Logic::Zero);
    Bus ramRData = dig.bus("sys/ram_rdata", 8, Logic::U);
    auto& ramWe = dig.logicSignal("sys/ram_we", Logic::Zero);
    if (config_.hardening.eccRam) {
        auto& ramUe = dig.logicSignal("sys/ram_ue", Logic::U);
        eccRam_ = &dig.add<harden::EccRam>(dig, "sys/ram", clk, ramWe, ramAddr, ramWData,
                                           ramRData, &ramUe);
        flagSignals_.push_back("sys/ram_ue");
        if (config_.hardening.scrubPeriod > 0) {
            scrubber_ =
                &dig.add<harden::Scrubber>(dig, "sys/scrub", *eccRam_,
                                           config_.hardening.scrubPeriod);
        }
    } else {
        rawRam_ = &dig.add<Ram>(dig, "sys/ram", clk, ramWe, ramAddr, ramWData, ramRData);
    }

    Bus port = dig.bus("sys/port", 8, Logic::Zero);
    auto& halted = dig.logicSignal("sys/halted", Logic::U);
    cpu_ = &dig.add<TinyCpu>(dig, "sys/core", clk, instr, romAddr, ramAddr, ramWData,
                             ramRData, ramWe, port, halted);

    // Output-port register: the hardened element between the CPU's port bus
    // and the observed system output.
    Bus out = dig.bus("sys/out", 8, Logic::U);
    switch (config_.hardening.outReg) {
    case Protection::None:
        dig.add<Register>(dig, "sys/outreg", clk, port, out);
        break;
    case Protection::Tmr:
        dig.add<harden::TmrRegister>(dig, "sys/outreg", clk, port, out);
        break;
    case Protection::Dwc: {
        auto& err = dig.logicSignal("sys/outreg_err", Logic::U);
        dig.add<harden::DwcRegister>(dig, "sys/outreg", clk, port, out, err);
        flagSignals_.push_back("sys/outreg_err");
        break;
    }
    case Protection::Ecc: {
        auto& ue = dig.logicSignal("sys/outreg_ue", Logic::U);
        eccOutReg_ = &dig.add<harden::EccRegister>(dig, "sys/outreg", clk, port, out, &ue);
        flagSignals_.push_back("sys/outreg_ue");
        break;
    }
    }

    // Supervisor meta-hooks: derived evidence exposed as ordinary state so
    // classify() journals the architectural verdict via corruptedState.
    dig.instrumentation().add(StateHook{
        kHangHook, 1, [this] { return static_cast<std::uint64_t>(hang_ ? 1 : 0); },
        [this](std::uint64_t v) { hang_ = (v & 1) != 0; },
        [this](int) { hang_ = !hang_; }});
    dig.instrumentation().add(StateHook{
        kDetectedHook, 1,
        [this] {
            return static_cast<std::uint64_t>((detectionEvidence() != detectedFlip_) ? 1 : 0);
        },
        [this](std::uint64_t v) { detectedFlip_ = ((v & 1) != 0) != detectionEvidence(); },
        [this](int) { detectedFlip_ = !detectedFlip_; }});
    dig.instrumentation().add(StateHook{
        kCorrectedHook, 1,
        [this] {
            return static_cast<std::uint64_t>((correctionEvidence() != correctedFlip_) ? 1
                                                                                       : 0);
        },
        [this](std::uint64_t v) { correctedFlip_ = ((v & 1) != 0) != correctionEvidence(); },
        [this](int) { correctedFlip_ = !correctedFlip_; }});
    dig.instrumentation().add(StateHook{
        kMemImageHook, 64, [this] { return memoryDigest() ^ digestXor_; },
        [this](std::uint64_t v) { digestXor_ = memoryDigest() ^ v; },
        [this](int bit) { digestXor_ ^= 1ull << bit; }});

    // Compared outputs: the registered OUT-port stream and the halt line.
    for (int b = 0; b < 8; ++b) {
        observeDigital("sys/out[" + std::to_string(b) + "]");
    }
    observeDigital("sys/halted");
    // Detection flags are recorded (so a pulse leaves trace evidence for the
    // detected hook) but NOT compared — a raised flag is the mechanism doing
    // its job, not an output error.
    for (const std::string& name : flagSignals_) {
        recorder().recordDigital(name);
    }
    // Every state element — architectural registers, RAM words, hardened
    // copies/codewords and the supervisor hooks — enters the end-of-run
    // latent comparison.
    observeAllState();
    setDuration(config_.duration);
}

SimTime CpuSystemTestbench::hangDeadline() const noexcept
{
    return config_.hangDeadline > 0 ? config_.hangDeadline : duration() / 2;
}

bool CpuSystemTestbench::detectionEvidence() const
{
    for (const std::string& name : flagSignals_) {
        if (traceSawOne(name)) {
            return true;
        }
    }
    return scrubber_ != nullptr && scrubber_->uncorrectables() > 0;
}

bool CpuSystemTestbench::correctionEvidence() const
{
    return (eccRam_ != nullptr && eccRam_->correctionCount() > 0) ||
           (scrubber_ != nullptr && scrubber_->repairs() > 0) ||
           (eccOutReg_ != nullptr && eccOutReg_->correctionCount() > 0);
}

std::uint64_t CpuSystemTestbench::memoryDigest() const
{
    // FNV-1a over (address, decoded word) pairs: corruption anywhere in the
    // architectural data words changes the digest; an ECC-corrected word does
    // not (decode absorbs the flip even before a scrub rewrites it).
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    for (int a : config_.dataWords) {
        mix(static_cast<std::uint64_t>(a));
        mix(eccRam_ != nullptr ? eccRam_->word(a) : rawRam_->word(a));
    }
    return h;
}

void CpuSystemTestbench::run()
{
    const SimTime deadline = std::min(hangDeadline(), duration());
    sim().run(deadline);
    if (!cpu_->halted()) {
        hang_ = true; // no-halt detector: stop burning the watchdog budget
        return;
    }
    sim().run(duration());
}

bool CpuSystemTestbench::traceSawOne(const std::string& signal) const
{
    const trace::DigitalTrace& tr = recorder().digitalTrace(signal);
    if (toX01(tr.initial) == Logic::One) {
        return true;
    }
    for (const auto& [t, v] : tr.events) {
        if (toX01(v) == Logic::One) {
            return true;
        }
    }
    return false;
}

} // namespace gfi::duts
