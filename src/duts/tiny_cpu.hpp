#pragma once
// Processor-based design under test.
//
// Reference [2] of the paper (Cardarilli et al., IOLTW 2002) studies bit-flip
// injection in processor-based architectures. This DUT is a complete
// single-cycle 8-bit accumulator machine: program ROM, data RAM (per-word SEU
// hooks), program counter, accumulator and an output port — every
// architectural register instrumented, so campaigns can distinguish datapath
// upsets (ACC, RAM) from control-flow upsets (PC).
//
// ISA (8-bit instructions, 3-bit opcode | 5-bit operand):
//   NOP            0 --
//   LDI imm5       1 ACC = imm
//   ADD a          2 ACC += RAM[a]
//   STA a          3 RAM[a] = ACC
//   LDA a          4 ACC = RAM[a]
//   JNZ a          5 if ACC != 0: PC = a
//   OUT            6 PORT = ACC
//   HLT            7 stop

#include "core/testbench.hpp"
#include "digital/memory.hpp"
#include "digital/sequential.hpp"
#include "snapshot/snapshot.hpp"

namespace gfi::duts {

/// Instruction encoding helpers.
enum class Op : std::uint8_t { Nop = 0, Ldi, Add, Sta, Lda, Jnz, Out, Hlt };

/// Assembles one instruction word.
[[nodiscard]] constexpr std::uint64_t asm1(Op op, int operand = 0)
{
    return (static_cast<std::uint64_t>(op) << 5) | (static_cast<std::uint64_t>(operand) & 0x1F);
}

/// The single-cycle CPU core (PC + ACC + decode/execute).
class TinyCpu : public digital::Component, public snapshot::Snapshottable {
public:
    /// @param instr    instruction bus from the program ROM.
    /// @param romAddr  PC output to the ROM address bus.
    /// @param ramAddr/ramWData/ramRData/ramWe  data-memory port.
    /// @param port     output-port bus (OUT instruction).
    /// @param halted   raised by HLT.
    TinyCpu(digital::Circuit& c, std::string name, digital::LogicSignal& clk,
            const digital::Bus& instr, const digital::Bus& romAddr,
            const digital::Bus& ramAddr, const digital::Bus& ramWData,
            const digital::Bus& ramRData, digital::LogicSignal& ramWe,
            const digital::Bus& port, digital::LogicSignal& halted);

    [[nodiscard]] int pc() const noexcept { return pc_; }
    [[nodiscard]] std::uint64_t acc() const noexcept { return acc_; }
    [[nodiscard]] bool halted() const noexcept { return halted_; }

    void captureState(snapshot::Writer& w) const override
    {
        w.u64(static_cast<std::uint64_t>(pc_));
        w.u64(acc_);
        w.u64(portValue_);
        w.boolean(halted_);
    }

    void restoreState(snapshot::Reader& r) override
    {
        pc_ = static_cast<int>(r.u64());
        acc_ = r.u64();
        portValue_ = r.u64();
        halted_ = r.boolean();
    }

private:
    void driveFetch();
    void setHalted(bool h);

    int pc_ = 0;
    std::uint64_t acc_ = 0;
    std::uint64_t portValue_ = 0;
    bool halted_ = false;
    digital::Bus romAddr_;
    digital::Bus ramAddr_;
    digital::Bus ramWData_;
    digital::Bus port_;
    digital::LogicSignal* ramWe_;
    digital::LogicSignal* haltedSig_;
    SimTime delay_;
};

/// Parameters of the CPU experiment.
struct TinyCpuConfig {
    double clockHz = 50e6;
    SimTime duration = 6 * kMicrosecond; ///< ~300 instructions
    /// Program: an incrementing counter streamed to the output port.
    std::vector<std::uint64_t> program{
        asm1(Op::Ldi, 1),  // 0: ACC = 1
        asm1(Op::Sta, 16), // 1: RAM[16] = 1 (the increment)
        asm1(Op::Ldi, 0),  // 2: ACC = 0
        asm1(Op::Add, 16), // 3: ACC += RAM[16]
        asm1(Op::Out),     // 4: PORT = ACC
        asm1(Op::Jnz, 3),  // 5: loop while ACC != 0
        asm1(Op::Add, 16), // 6: (after wrap) ACC = 1 again
        asm1(Op::Jnz, 3),  // 7: continue
    };
};

/// The elaborated, instrumented processor experiment.
class TinyCpuTestbench : public fault::Testbench {
public:
    explicit TinyCpuTestbench(TinyCpuConfig config = {});

    /// Configuration used.
    [[nodiscard]] const TinyCpuConfig& config() const noexcept { return config_; }

    /// The CPU core (diagnostics).
    [[nodiscard]] TinyCpu& cpu() noexcept { return *cpu_; }

private:
    TinyCpuConfig config_;
    TinyCpu* cpu_ = nullptr;
};

} // namespace gfi::duts
