#include "duts/protected_dut.hpp"

#include "harden/tmr.hpp"

namespace gfi::duts {

using namespace digital;

const char* toString(Protection p)
{
    switch (p) {
    case Protection::None:
        return "unprotected";
    case Protection::Tmr:
        return "TMR";
    case Protection::Dwc:
        return "DWC";
    case Protection::Ecc:
        return "SEC-DED";
    }
    return "?";
}

ProtectedDutTestbench::ProtectedDutTestbench(ProtectedDutConfig config) : config_(config)
{
    auto& dig = sim().digital();
    const SimTime period = fromSeconds(1.0 / config_.clockHz);

    auto& clk = dig.logicSignal("dut/clk", Logic::Zero);
    dig.add<ClockGen>(dig, "dut/clkgen", clk, period);

    // Payload generator: a counter, so the protected value changes each cycle.
    Bus cnt = dig.bus("dut/cnt_q", config_.width, Logic::Zero);
    dig.add<Counter>(dig, "dut/cnt", clk, cnt);

    Bus q = dig.bus("dut/q", config_.width, Logic::U);

    switch (config_.protection) {
    case Protection::None:
        dig.add<Register>(dig, "dut/store", clk, cnt, q);
        storageTargets_ = {"dut/store"};
        break;
    case Protection::Tmr:
        dig.add<harden::TmrRegister>(dig, "dut/store", clk, cnt, q);
        storageTargets_ = {"dut/store/copy0", "dut/store/copy1", "dut/store/copy2"};
        break;
    case Protection::Dwc: {
        auto& err = dig.logicSignal("dut/err", Logic::U);
        dig.add<harden::DwcRegister>(dig, "dut/store", clk, cnt, q, err);
        storageTargets_ = {"dut/store/copy0", "dut/store/copy1"};
        flagSignal_ = "dut/err";
        break;
    }
    case Protection::Ecc: {
        auto& ue = dig.logicSignal("dut/ue", Logic::U);
        dig.add<harden::EccRegister>(dig, "dut/store", clk, cnt, q, &ue);
        storageTargets_ = {"dut/store/code"};
        flagSignal_ = "dut/ue";
        break;
    }
    }

    // Observe the payload DATA by default: the campaign's baseline question
    // is "did the protected value reach the output wrong?". With observeFlag
    // the error flag joins the observed set, so a report can attribute
    // detected-but-masked upsets separately from data corruption.
    for (int b = 0; b < config_.width; ++b) {
        observeDigital("dut/q[" + std::to_string(b) + "]");
    }
    if (config_.observeFlag && !flagSignal_.empty()) {
        observeDigital(flagSignal_);
    }
    setDuration(config_.duration);
}

} // namespace gfi::duts
