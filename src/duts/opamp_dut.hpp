#pragma once
// Analog op-amp design-under-test: an inverting amplifier built around the
// behavioral op-amp macro.
//
// This covers the analog-only corner of the paper's flow: SET current pulses
// on the op-amp's internal structural nodes (the saboteur approach) and
// parametric faults on its behavioral parameters (reference [10]'s approach)
// can both be injected and classified against the same golden run.

#include "analog/opamp.hpp"
#include "core/testbench.hpp"

namespace gfi::duts {

/// Inverting-amplifier parameters.
struct OpAmpDutConfig {
    double r1 = 10e3;        ///< input resistor (ohm)
    double r2 = 20e3;        ///< feedback resistor (gain = -r2/r1)
    double inputHz = 10e3;   ///< test sine frequency
    double inputAmplitude = 0.5; ///< test sine amplitude (V)
    analog::OpAmpConfig opamp{1e6, 1e5, 1e3, 100.0, 0.0, 2.5};
    SimTime duration = 300 * kMicrosecond; ///< three input periods
};

/// The elaborated, instrumented inverting-amplifier experiment.
class OpAmpDutTestbench : public fault::Testbench {
public:
    explicit OpAmpDutTestbench(OpAmpDutConfig config = {});

    /// Configuration used.
    [[nodiscard]] const OpAmpDutConfig& config() const noexcept { return config_; }

    /// The op-amp macro (pole node etc.).
    [[nodiscard]] analog::OpAmp& opAmp() noexcept { return *opamp_; }

private:
    OpAmpDutConfig config_;
    std::unique_ptr<analog::OpAmp> opamp_;
};

} // namespace gfi::duts
