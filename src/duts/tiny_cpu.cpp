#include "duts/tiny_cpu.hpp"

namespace gfi::duts {

using namespace digital;

// ---------------------------------------------------------------------------
// TinyCpu

TinyCpu::TinyCpu(Circuit& c, std::string name, LogicSignal& clk, const Bus& instr,
                 const Bus& romAddr, const Bus& ramAddr, const Bus& ramWData,
                 const Bus& ramRData, LogicSignal& ramWe, const Bus& port,
                 LogicSignal& halted)
    : Component(std::move(name)), romAddr_(romAddr), ramAddr_(ramAddr), ramWData_(ramWData),
      port_(port), ramWe_(&ramWe), haltedSig_(&halted), delay_(300 * kPicosecond)
{
    // Decode stage: combinationally drive the data-memory port from the
    // current instruction and accumulator (settles well before the next
    // clock edge at any sane clock rate).
    std::vector<SignalBase*> decodeSens(instr.bits().begin(), instr.bits().end());
    Process& decode = c.process(this->name() + "/decode",
              [this, instr] {
                  const std::uint64_t word = instr.toUint();
                  const auto op = static_cast<Op>((word >> 5) & 0x7);
                  const auto operand = word & 0x1F;
                  ramAddr_.scheduleUint(operand, delay_);
                  ramWData_.scheduleUint(acc_, delay_);
                  ramWe_->scheduleInertial(fromBool(op == Op::Sta && !halted_), delay_);
              },
              decodeSens);
    {
        std::vector<SignalBase*> outs = busSignals(ramAddr);
        const std::vector<SignalBase*> wd = busSignals(ramWData);
        outs.insert(outs.end(), wd.begin(), wd.end());
        outs.push_back(&ramWe);
        c.noteDrives(decode, outs);
    }

    // Execute stage: one instruction per rising clock edge.
    Process& exec = c.process(this->name() + "/exec",
              [this, &clk, instr, ramRData] {
                  if (!risingEdge(clk) || halted_) {
                      return;
                  }
                  const std::uint64_t word = instr.toUint();
                  const auto op = static_cast<Op>((word >> 5) & 0x7);
                  const auto operand = static_cast<int>(word & 0x1F);
                  int nextPc = (pc_ + 1) & 0x1F;
                  switch (op) {
                  case Op::Nop:
                      break;
                  case Op::Ldi:
                      acc_ = static_cast<std::uint64_t>(operand);
                      break;
                  case Op::Add:
                      acc_ = (acc_ + ramRData.toUint()) & 0xFF;
                      break;
                  case Op::Sta:
                      break; // the RAM captures on this same edge via we
                  case Op::Lda:
                      acc_ = ramRData.toUint();
                      break;
                  case Op::Jnz:
                      if (acc_ != 0) {
                          nextPc = operand;
                      }
                      break;
                  case Op::Out:
                      portValue_ = acc_;
                      port_.scheduleUint(portValue_, delay_);
                      break;
                  case Op::Hlt:
                      setHalted(true);
                      break;
                  }
                  pc_ = nextPc;
                  driveFetch();
              },
              {&clk});
    c.noteSequential(exec, &clk);
    {
        std::vector<SignalBase*> ins = busSignals(instr);
        const std::vector<SignalBase*> rd = busSignals(ramRData);
        ins.insert(ins.end(), rd.begin(), rd.end());
        c.noteReads(exec, ins);
        std::vector<SignalBase*> outs = busSignals(romAddr);
        const std::vector<SignalBase*> po = busSignals(port);
        outs.insert(outs.end(), po.begin(), po.end());
        outs.push_back(&halted);
        c.noteDrives(exec, outs);
    }

    // Architectural-register hooks: PC (control flow) and ACC (datapath).
    c.instrumentation().add(StateHook{
        this->name() + "/pc", 5, [this] { return static_cast<std::uint64_t>(pc_); },
        [this](std::uint64_t v) {
            pc_ = static_cast<int>(v & 0x1F);
            driveFetch();
        },
        [this](int bit) {
            pc_ ^= 1 << bit;
            pc_ &= 0x1F;
            driveFetch();
        }});
    c.instrumentation().add(StateHook{
        this->name() + "/acc", 8, [this] { return acc_; },
        [this](std::uint64_t v) { acc_ = v & 0xFF; },
        [this](int bit) { acc_ ^= 1ull << bit; }});
    // RUN/HALT control state: the CPU's one-bit FSM. An upset here either
    // stops a running program dead or resumes a halted one at the
    // instruction after the HLT.
    c.instrumentation().add(StateHook{
        this->name() + "/halt", 1,
        [this] { return static_cast<std::uint64_t>(halted_ ? 1 : 0); },
        [this](std::uint64_t v) { setHalted((v & 1) != 0); },
        [this](int) { setHalted(!halted_); }});

    haltedSig_->scheduleInertial(Logic::Zero, 0);
    driveFetch();
}

void TinyCpu::driveFetch()
{
    romAddr_.scheduleUint(static_cast<std::uint64_t>(pc_), delay_);
}

void TinyCpu::setHalted(bool h)
{
    if (halted_ == h) {
        return;
    }
    halted_ = h;
    haltedSig_->scheduleInertial(fromBool(h), delay_);
    if (!h) {
        // Resuming: re-issue the fetch so the decode settles for the
        // instruction PC points at (the one after the HLT).
        driveFetch();
    }
}

// ---------------------------------------------------------------------------
// TinyCpuTestbench

TinyCpuTestbench::TinyCpuTestbench(TinyCpuConfig config) : config_(config)
{
    auto& dig = sim().digital();
    const SimTime period = fromSeconds(1.0 / config_.clockHz);

    auto& clk = dig.logicSignal("cpu/clk", Logic::Zero);
    // Start the clock well after elaboration so the first fetch settles.
    dig.add<ClockGen>(dig, "cpu/clkgen", clk, period, 0.5, period);

    Bus romAddr = dig.bus("cpu/rom_addr", 5, Logic::Zero);
    Bus instr = dig.bus("cpu/instr", 8, Logic::Zero);
    dig.add<Rom>(dig, "cpu/rom", romAddr, instr, config_.program);

    Bus ramAddr = dig.bus("cpu/ram_addr", 5, Logic::Zero);
    Bus ramWData = dig.bus("cpu/ram_wdata", 8, Logic::Zero);
    Bus ramRData = dig.bus("cpu/ram_rdata", 8, Logic::U);
    auto& ramWe = dig.logicSignal("cpu/ram_we", Logic::Zero);
    dig.add<Ram>(dig, "cpu/ram", clk, ramWe, ramAddr, ramWData, ramRData);

    Bus port = dig.bus("cpu/port", 8, Logic::Zero);
    auto& halted = dig.logicSignal("cpu/halted", Logic::U);
    cpu_ = &dig.add<TinyCpu>(dig, "cpu/core", clk, instr, romAddr, ramAddr, ramWData,
                             ramRData, ramWe, port, halted);

    for (int b = 0; b < 8; ++b) {
        observeDigital("cpu/port[" + std::to_string(b) + "]");
    }
    observeDigital("cpu/halted");
    observeState("cpu/core/pc");
    observeState("cpu/core/acc");
    observeState("cpu/ram/w16");
    setDuration(config_.duration);
}

} // namespace gfi::duts
