#pragma once
// Processor system under architectural SEU campaigns.
//
// The COAST-style supervisor (src/inject) needs a CPU design whose
// software-visible effects are measurable: a TinyCpu core, a program ROM, a
// data memory (raw or SEC-DED with an optional scrubbing engine) and an
// output-port register that can be built in any of the hardened variants
// (none / TMR / DWC / SEC-DED). On top of the plain signal-level observation
// the testbench registers *supervisor hooks* — hang flag, detection evidence,
// correction evidence and a digest of the architectural memory image — as
// ordinary instrumentation state observed via observeState(). The
// architectural verdict of a run is therefore fully determined by the
// journaled RunResult (erredSignals + corruptedState), which is what lets the
// supervisor ride the campaign engine's journal resume, parallel ordered
// commits and fork-from-golden paths unchanged.

#include "core/testbench.hpp"
#include "duts/protected_dut.hpp" // Protection
#include "duts/tiny_cpu.hpp"
#include "harden/ecc_ram.hpp"
#include "harden/scrubber.hpp"
#include "harden/tmr.hpp"

namespace gfi::duts {

/// Preset hardening configurations for sweep reports.
enum class HardeningMode {
    None,       ///< raw RAM, plain output register
    Tmr,        ///< TMR output register
    Dwc,        ///< DWC output register (detection only)
    EccScrub,   ///< SEC-DED RAM + scrubber, ECC output register
    TmrEccScrub ///< TMR output register + SEC-DED RAM + scrubber
};

/// Short name for reports.
[[nodiscard]] const char* toString(HardeningMode m);

/// Hardening configuration of the CPU system.
struct CpuHardening {
    Protection outReg = Protection::None; ///< output-port register variant
    bool eccRam = false;                  ///< SEC-DED data RAM instead of raw
    SimTime scrubPeriod = 0;              ///< 0 = no scrubber (needs eccRam)
};

/// The preset hardening for a sweep mode.
[[nodiscard]] CpuHardening hardeningPreset(HardeningMode m);

/// The default supervisor workload: seeds RAM[16] with a stride, then sums it
/// into the accumulator in a backward JNZ loop, streaming each partial sum to
/// the output port and spilling it to RAM[17], until the 8-bit sum wraps to
/// zero and the program halts. Exercises every target class (PC, ACC, halt
/// state, RAM data, output register) and reacts to a corrupted stride with
/// the full taxonomy: an odd stride multiplies the iteration count (hang), a
/// changed even stride alters the streamed values (SDC).
[[nodiscard]] std::vector<std::uint64_t> defaultCpuProgram();

/// Parameters of the CPU system experiment.
struct CpuSystemConfig {
    double clockHz = 50e6;
    SimTime duration = 6 * kMicrosecond;
    /// No-halt detector deadline: a run whose CPU has not halted by this time
    /// is declared a Hang and stops simulating. 0 = duration / 2. The golden
    /// program must halt before the deadline (the supervisor enforces this).
    SimTime hangDeadline = 0;
    std::vector<std::uint64_t> program = defaultCpuProgram();
    /// Data-RAM words whose *decoded* end-of-run contents define the
    /// architectural memory image (the SDC criterion alongside the OUT port).
    std::vector<int> dataWords{16, 17};
    CpuHardening hardening;
};

// Supervisor-hook names (observed via observeState; the supervisor keys its
// taxonomy off their presence in RunResult.corruptedState).
inline constexpr const char* kHangHook = "sys/sup/hang";
inline constexpr const char* kDetectedHook = "sys/sup/detected";
inline constexpr const char* kCorrectedHook = "sys/sup/corrected";
inline constexpr const char* kMemImageHook = "sys/sup/memimage";

/// The elaborated CPU system: core + ROM + (ECC) RAM + hardened out-register.
class CpuSystemTestbench : public fault::Testbench {
public:
    explicit CpuSystemTestbench(CpuSystemConfig config = {});

    /// Configuration used.
    [[nodiscard]] const CpuSystemConfig& config() const noexcept { return config_; }

    /// The CPU core (diagnostics).
    [[nodiscard]] TinyCpu& cpu() noexcept { return *cpu_; }

    /// The resolved no-halt deadline.
    [[nodiscard]] SimTime hangDeadline() const noexcept;

    /// True once the no-halt detector tripped (the run stopped early).
    [[nodiscard]] bool hangDetected() const noexcept { return hang_; }

    /// True when any protection mechanism reported an error it could not
    /// transparently absorb: a DWC mismatch pulse, an ECC uncorrectable flag
    /// (register or RAM read path), or an uncorrectable word met by the
    /// scrubber.
    [[nodiscard]] bool detectionEvidence() const;

    /// True when any protection mechanism transparently repaired an upset
    /// (ECC read/scrub corrections). TMR leaves no counter behind, so TMR
    /// masking reports as Masked, not Corrected.
    [[nodiscard]] bool correctionEvidence() const;

    /// FNV-1a digest of the decoded contents of config().dataWords — the
    /// architectural memory image at the time of the call.
    [[nodiscard]] std::uint64_t memoryDigest() const;

    /// Staged execution with the no-halt detector: run to the hang deadline;
    /// if the CPU has not halted, declare a Hang and stop (well under any
    /// sane wall-clock watchdog budget), else run out the full duration. For
    /// a golden program that halts before the deadline this is equivalent to
    /// the default run(), which keeps fork-from-golden checkpoints valid.
    void run() override;

private:
    [[nodiscard]] bool traceSawOne(const std::string& signal) const;

    CpuSystemConfig config_;
    TinyCpu* cpu_ = nullptr;
    digital::Ram* rawRam_ = nullptr;
    harden::EccRam* eccRam_ = nullptr;
    harden::Scrubber* scrubber_ = nullptr;
    harden::EccRegister* eccOutReg_ = nullptr;
    std::vector<std::string> flagSignals_; ///< recorded detection flags
    bool hang_ = false;
    // Injection overlays for the supervisor meta-hooks: the hooks must be
    // writable like any other state element (preflight targets them, tests
    // perturb them), but their natural value is derived, so writes land in an
    // overlay instead.
    bool detectedFlip_ = false;
    bool correctedFlip_ = false;
    std::uint64_t digestXor_ = 0;
};

} // namespace gfi::duts
