#pragma once
// Purely digital design-under-test for the paper's Section 3 flow
// (Figure 2): a small controller + datapath block, fully instrumented with
// mutant hooks (every sequential element) and saboteurs on two internal
// interconnections, so bit-flip / SET / stuck-at / FSM-transition campaigns
// can be run and classified exactly as the digital-only flow prescribes.
//
// Structure: an LFSR stimulus generator feeds a 4-state protocol FSM whose
// enable output gates an 8-bit counter; an adder combines counter and LFSR
// into a registered output; a comparator raises a flag on a match value.

#include "core/testbench.hpp"
#include "digital/arith.hpp"
#include "digital/fsm.hpp"
#include "digital/gates.hpp"
#include "digital/sequential.hpp"

namespace gfi::duts {

/// Parameters of the digital DUT.
struct DigitalDutConfig {
    double clockHz = 50e6;            ///< system clock
    SimTime duration = 4 * kMicrosecond; ///< observation window (~200 cycles)
    std::uint64_t lfsrSeed = 0xB5;    ///< stimulus seed
};

/// The elaborated, instrumented digital experiment.
class DigitalDutTestbench : public fault::Testbench {
public:
    explicit DigitalDutTestbench(DigitalDutConfig config = {});

    /// Configuration used.
    [[nodiscard]] const DigitalDutConfig& config() const noexcept { return config_; }

    /// The protocol FSM (for transition-fault campaigns).
    [[nodiscard]] digital::TableFsm& fsm() noexcept { return *fsm_; }

private:
    DigitalDutConfig config_;
    digital::TableFsm* fsm_ = nullptr;
};

} // namespace gfi::duts
