#pragma once
// Interconnect-chain design-under-test: the reference workload of the static
// fault-space analyzer and the fault-collapsing campaign mode.
//
// Structure: an LFSR stimulus bit runs through six directly-chained
// zero-delay digital saboteurs with one zero-delay buffer and one zero-delay
// inverter between them, ending in an observed flip-flop — every SET/stuck-at
// on the chain is provably equivalent to the same fault at the chain's last
// saboteur, so the collapser shrinks a Figure-8-style sweep over all six
// saboteurs to one representative per (time, width/value) point. A second
// LFSR bit feeds a dead branch (saboteur -> buffer -> unobserved flip-flop)
// whose faults have no structural path to anything observed: the statically
// masked population.
//
// Observation is deliberately selective (the chain flip-flop's output and
// state hook only, no observeAllState) — the analyzer needs genuinely
// unobservable cones to prove anything interesting.

#include "core/testbench.hpp"

#include <array>
#include <string>

namespace gfi::duts {

/// Parameters of the chain DUT.
struct ChainDutConfig {
    double clockHz = 50e6;               ///< system clock
    SimTime duration = 2 * kMicrosecond; ///< observation window (~100 cycles)
    std::uint64_t lfsrSeed = 0xA7;       ///< stimulus seed
};

/// The elaborated, instrumented chain experiment.
class ChainDutTestbench : public fault::Testbench {
public:
    explicit ChainDutTestbench(ChainDutConfig config = {});

    /// Configuration used.
    [[nodiscard]] const ChainDutConfig& config() const noexcept { return config_; }

    /// The six chain saboteurs, upstream first ("sab/c0".."sab/c5");
    /// "sab/c5" is every chain fault's collapse terminal.
    [[nodiscard]] static std::array<std::string, 6> chainSaboteurs()
    {
        return {"sab/c0", "sab/c1", "sab/c2", "sab/c3", "sab/c4", "sab/c5"};
    }

    /// The dead-branch saboteur ("sab/dead"): statically unobservable.
    [[nodiscard]] static std::string deadSaboteur() { return "sab/dead"; }

private:
    ChainDutConfig config_;
};

} // namespace gfi::duts
