#pragma once
// Table-driven finite state machine with high-level fault hooks.
//
// Reference [11] of the paper (Leveugle & Hadjiat, JETTA 2003) models SEU
// effects at a level above bit-flips: *erroneous transitions* in a finite
// state machine. TableFsm supports both models: its state register has a
// bit-flip hook like any sequential element, and corruptNextTransition()
// forces an arbitrary (possibly unreachable) next state at the next active
// clock edge.

#include "digital/circuit.hpp"
#include "snapshot/snapshot.hpp"

#include <functional>

namespace gfi::digital {

/// Synchronous Moore/Mealy FSM described by callable next-state and output
/// functions (a transition table is the usual special case).
class TableFsm : public Component, public snapshot::Snapshottable {
public:
    /// Computes the next state from (currentState, inputValue).
    using TransitionFn = std::function<int(int, std::uint64_t)>;
    /// Computes the output value from (currentState, inputValue).
    using OutputFn = std::function<std::uint64_t(int, std::uint64_t)>;

    /// @param in          input bus sampled at each rising clock edge.
    /// @param out         output bus driven after each state update.
    /// @param numStates   number of valid states (states are 0..numStates-1).
    /// @param resetState  state entered on asynchronous reset.
    TableFsm(Circuit& c, std::string name, LogicSignal& clk, LogicSignal* rstn, const Bus& in,
             const Bus& out, int numStates, int resetState, TransitionFn nextState,
             OutputFn output, SimTime clkToQ = 200 * kPicosecond);

    /// Current state.
    [[nodiscard]] int state() const noexcept { return state_; }

    /// Overwrites the state immediately and re-drives outputs (SEU on the
    /// state register).
    void forceState(int s);

    /// Arms an erroneous-transition fault: at the next rising clock edge the
    /// FSM goes to @p s regardless of the transition function (reference [11]
    /// style high-level fault).
    void corruptNextTransition(int s)
    {
        forcedNext_ = s;
        hasForcedNext_ = true;
    }

    /// Number of state bits (hook width).
    [[nodiscard]] int stateBits() const noexcept { return stateBits_; }

    /// Structural ports and tables (word-level netlist compilation).
    [[nodiscard]] const LogicSignal* clk() const noexcept { return clk_; }
    [[nodiscard]] const LogicSignal* rstn() const noexcept { return rstn_; }
    [[nodiscard]] const Bus& inBus() const noexcept { return in_; }
    [[nodiscard]] const Bus& outBus() const noexcept { return out_; }
    [[nodiscard]] int numStates() const noexcept { return numStates_; }
    [[nodiscard]] int resetState() const noexcept { return resetState_; }
    [[nodiscard]] const TransitionFn& transitionFn() const noexcept { return nextState_; }
    [[nodiscard]] const OutputFn& outputFn() const noexcept { return output_; }
    [[nodiscard]] SimTime clkToQ() const noexcept { return clkToQ_; }

    void captureState(snapshot::Writer& w) const override
    {
        w.u64(static_cast<std::uint64_t>(state_));
        w.u64(static_cast<std::uint64_t>(forcedNext_));
        w.boolean(hasForcedNext_);
    }

    void restoreState(snapshot::Reader& r) override
    {
        state_ = static_cast<int>(r.u64());
        forcedNext_ = static_cast<int>(r.u64());
        hasForcedNext_ = r.boolean();
    }

private:
    void drive();

    int state_;
    int numStates_;
    int resetState_;
    int stateBits_;
    int forcedNext_ = 0;
    bool hasForcedNext_ = false;
    LogicSignal* clk_ = nullptr;
    LogicSignal* rstn_ = nullptr;
    TransitionFn nextState_;
    OutputFn output_;
    Bus in_;
    Bus out_;
    SimTime clkToQ_;
};

} // namespace gfi::digital
