#include "digital/memory.hpp"

#include <stdexcept>

namespace gfi::digital {

namespace {

std::uint64_t widthMask(int width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

} // namespace

// ---------------------------------------------------------------------------
// Ram

Ram::Ram(Circuit& c, std::string name, LogicSignal& clk, LogicSignal& we, const Bus& addr,
         const Bus& wdata, const Bus& rdata, SimTime readDelay)
    : Component(std::move(name)), depth_(1 << addr.width()), width_(wdata.width()),
      mask_(widthMask(wdata.width())), addr_(addr), rdata_(rdata), readDelay_(readDelay)
{
    if (wdata.width() != rdata.width()) {
        throw std::invalid_argument("Ram '" + this->name() + "': wdata/rdata width mismatch");
    }
    if (addr.width() > 16) {
        throw std::invalid_argument("Ram '" + this->name() + "': address bus too wide");
    }
    storage_.assign(static_cast<std::size_t>(depth_), 0);

    // Write port.
    Process& wp = c.process(this->name() + "/write",
                            [this, &clk, &we, wdata] {
                                if (risingEdge(clk) && toX01(we.value()) == Logic::One) {
                                    bool known = true;
                                    const auto a = static_cast<int>(addr_.toUint(&known));
                                    if (known) {
                                        storage_[static_cast<std::size_t>(a)] =
                                            wdata.toUint() & mask_;
                                        refreshRead();
                                    }
                                }
                            },
                            {&clk});
    c.noteSequential(wp, &clk);
    std::vector<SignalBase*> wreads{&we};
    wreads.insert(wreads.end(), addr.bits().begin(), addr.bits().end());
    wreads.insert(wreads.end(), wdata.bits().begin(), wdata.bits().end());
    c.noteReads(wp, wreads);
    // Architecturally the write port drives the memory array, not rdata; the
    // read-port refresh it triggers is an intra-component update, so rdata's
    // sole declared driver is the read process.

    // Asynchronous read port.
    std::vector<SignalBase*> sens(addr_.bits().begin(), addr_.bits().end());
    Process& rp = c.process(this->name() + "/read", [this] { refreshRead(); }, sens);
    c.noteDrives(rp, busSignals(rdata));

    // One SEU hook per word.
    for (int w = 0; w < depth_; ++w) {
        c.instrumentation().add(StateHook{
            this->name() + "/w" + std::to_string(w), width_,
            [this, w] { return storage_[static_cast<std::size_t>(w)]; },
            [this, w](std::uint64_t v) { setWord(w, v); },
            [this, w](int bit) { setWord(w, storage_[static_cast<std::size_t>(w)] ^ (1ull << bit)); }});
    }
}

void Ram::setWord(int address, std::uint64_t value)
{
    storage_.at(static_cast<std::size_t>(address)) = value & mask_;
    refreshRead();
}

void Ram::refreshRead()
{
    bool known = true;
    const auto a = static_cast<int>(addr_.toUint(&known));
    if (!known) {
        for (LogicSignal* s : rdata_.bits()) {
            s->scheduleInertial(Logic::X, readDelay_);
        }
        return;
    }
    rdata_.scheduleUint(storage_[static_cast<std::size_t>(a)], readDelay_);
}

// ---------------------------------------------------------------------------
// Rom

Rom::Rom(Circuit& c, std::string name, const Bus& addr, const Bus& rdata,
         std::vector<std::uint64_t> contents, SimTime readDelay)
    : Component(std::move(name)), contents_(std::move(contents))
{
    contents_.resize(1ull << addr.width(), 0);
    std::vector<SignalBase*> sens(addr.bits().begin(), addr.bits().end());
    Process& p = c.process(this->name() + "/read",
              [this, addr, rdata, readDelay] {
                  bool known = true;
                  const auto a = addr.toUint(&known);
                  if (!known) {
                      for (LogicSignal* s : rdata.bits()) {
                          s->scheduleInertial(Logic::X, readDelay);
                      }
                      return;
                  }
                  rdata.scheduleUint(contents_[a], readDelay);
              },
              sens);
    c.noteDrives(p, busSignals(rdata));
}

} // namespace gfi::digital
