#include "digital/fsm.hpp"

#include <stdexcept>

namespace gfi::digital {

TableFsm::TableFsm(Circuit& c, std::string name, LogicSignal& clk, LogicSignal* rstn,
                   const Bus& in, const Bus& out, int numStates, int resetState,
                   TransitionFn nextState, OutputFn output, SimTime clkToQ)
    : Component(std::move(name)), state_(resetState), numStates_(numStates),
      resetState_(resetState), clk_(&clk), rstn_(rstn), nextState_(std::move(nextState)),
      output_(std::move(output)), in_(in), out_(out), clkToQ_(clkToQ)
{
    if (numStates < 2 || resetState < 0 || resetState >= numStates) {
        throw std::invalid_argument("TableFsm '" + this->name() + "': bad state config");
    }
    stateBits_ = 1;
    while ((1 << stateBits_) < numStates_) {
        ++stateBits_;
    }

    std::vector<SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    Process& p = c.process(this->name() + "/seq",
              [this, &clk, rstn, resetState] {
                  if (rstn != nullptr && toX01(rstn->value()) == Logic::Zero) {
                      state_ = resetState;
                      hasForcedNext_ = false;
                      drive();
                  } else if (risingEdge(clk)) {
                      if (hasForcedNext_) {
                          state_ = forcedNext_;
                          hasForcedNext_ = false;
                      } else {
                          state_ = nextState_(state_, in_.toUint());
                      }
                      drive();
                  }
              },
              sens);
    c.noteSequential(p, &clk);
    c.noteReads(p, busSignals(in));
    c.noteDrives(p, busSignals(out));

    c.instrumentation().add(StateHook{
        this->name(), stateBits_,
        [this] { return static_cast<std::uint64_t>(state_); },
        [this](std::uint64_t v) { forceState(static_cast<int>(v)); },
        [this](int bit) { forceState(state_ ^ (1 << bit)); }});
}

void TableFsm::forceState(int s)
{
    // A bit-flip can land outside the valid state set; keep the raw value so
    // the campaign can observe how the (possibly undefined) machine recovers,
    // but clamp to the representable range.
    state_ = s & ((1 << stateBits_) - 1);
    drive();
}

void TableFsm::drive()
{
    out_.scheduleUint(output_(state_, in_.toUint()), clkToQ_);
}

} // namespace gfi::digital
