#pragma once
// Circuit: the elaborated digital design — owns the scheduler, all signals,
// all processes and all component instances, and exposes name-based lookup
// plus the instrumentation registry used for fault injection.

#include "digital/instrument.hpp"
#include "digital/signal.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace gfi::digital {

/// Base class for structural component instances. Components register their
/// processes and instrumentation hooks in the owning Circuit at construction.
class Component {
public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;
    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /// Hierarchical instance name.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
};

/// A group of single-bit signals addressed as one vector value (LSB first).
class Bus {
public:
    Bus() = default;
    explicit Bus(std::vector<LogicSignal*> bits) : bits_(std::move(bits)) {}

    /// Number of bits.
    [[nodiscard]] int width() const noexcept { return static_cast<int>(bits_.size()); }

    /// Bit i (LSB = 0).
    [[nodiscard]] LogicSignal& bit(int i) const { return *bits_.at(static_cast<std::size_t>(i)); }

    /// Reads the bus as an unsigned integer; unknown bits read as 0 and set
    /// the optional @p allKnown flag to false.
    [[nodiscard]] std::uint64_t toUint(bool* allKnown = nullptr) const;

    /// Schedules every bit (inertial) so the bus carries @p value after @p delay.
    void scheduleUint(std::uint64_t value, SimTime delay = 0) const;

    /// Forces every bit immediately (testbench/injector use).
    void forceUint(std::uint64_t value) const;

    /// Renders as a bit string, MSB first (e.g. "0101").
    [[nodiscard]] std::string str() const;

    /// Underlying signals, LSB first.
    [[nodiscard]] const std::vector<LogicSignal*>& bits() const noexcept { return bits_; }

private:
    std::vector<LogicSignal*> bits_;
};

/// The elaborated design root.
class Circuit {
public:
    Circuit() = default;

    /// The event kernel driving this circuit.
    [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }
    [[nodiscard]] const Scheduler& scheduler() const noexcept { return sched_; }

    /// Creates (and owns) a typed signal. Names must be unique.
    template <typename T>
    Signal<T>& signal(const std::string& name, T initial)
    {
        auto sig = std::make_unique<Signal<T>>(sched_, name, initial);
        Signal<T>& ref = *sig;
        registerSignal(name, std::move(sig));
        return ref;
    }

    /// Creates a single-bit logic signal (default initial value 'U').
    LogicSignal& logicSignal(const std::string& name, Logic initial = Logic::U)
    {
        return signal<Logic>(name, initial);
    }

    /// Creates @p width logic signals "<name>[i]" and returns them as a Bus.
    Bus bus(const std::string& name, int width, Logic initial = Logic::U);

    /// Looks up a previously created logic signal; throws std::out_of_range.
    [[nodiscard]] LogicSignal& findLogic(const std::string& name) const;

    /// True if a signal with this exact name exists.
    [[nodiscard]] bool hasSignal(const std::string& name) const
    {
        return signals_.count(name) != 0;
    }

    /// Names of all signals, in creation order.
    [[nodiscard]] const std::vector<std::string>& signalNames() const noexcept
    {
        return signalOrder_;
    }

    /// Creates (and owns) a process sensitive to @p sensitivity.
    Process& process(const std::string& name, std::function<void()> fn,
                     std::initializer_list<SignalBase*> sensitivity = {});

    /// Creates (and owns) a process with a vector sensitivity list.
    Process& process(const std::string& name, std::function<void()> fn,
                     const std::vector<SignalBase*>& sensitivity);

    /// Constructs a component in place; the circuit owns it.
    template <typename C, typename... Args>
    C& add(Args&&... args)
    {
        auto comp = std::make_unique<C>(std::forward<Args>(args)...);
        C& ref = *comp;
        components_.push_back(std::move(comp));
        return ref;
    }

    /// The mutant/injection hook registry.
    [[nodiscard]] InstrumentationRegistry& instrumentation() noexcept { return registry_; }
    [[nodiscard]] const InstrumentationRegistry& instrumentation() const noexcept
    {
        return registry_;
    }

    /// Convenience: run the kernel until @p t.
    void runUntil(SimTime t) { sched_.runUntil(t); }

private:
    void registerSignal(const std::string& name, std::unique_ptr<SignalBase> sig);

    Scheduler sched_;
    std::unordered_map<std::string, std::unique_ptr<SignalBase>> signals_;
    std::vector<std::string> signalOrder_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<std::unique_ptr<Component>> components_;
    InstrumentationRegistry registry_;
};

} // namespace gfi::digital
