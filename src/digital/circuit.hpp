#pragma once
// Circuit: the elaborated digital design — owns the scheduler, all signals,
// all processes and all component instances, and exposes name-based lookup
// plus the instrumentation registry used for fault injection.

#include "digital/instrument.hpp"
#include "digital/signal.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gfi::digital {

/// Declared combinational shape of a process, for static fault collapsing.
/// Buffer/Inverter name single-input processes whose output is exactly the
/// (possibly inverted) input — the chains classic fault collapsing folds.
enum class CombKind {
    Opaque,   ///< arbitrary logic (default)
    Buffer,   ///< out follows the single input
    Inverter, ///< out is the complement of the single input
};

/// Declared static connectivity of one process. The sensitivity list is
/// recorded automatically at process creation; components declare the rest
/// (driven signals, non-triggering reads, sequential/clock role) so the lint
/// subsystem can reason about the netlist without executing any callback.
struct ProcessConnectivity {
    Process* process = nullptr;
    std::vector<SignalBase*> triggers; ///< sensitivity list (wakes the process)
    std::vector<SignalBase*> reads;    ///< sampled without triggering (DFF data)
    std::vector<SignalBase*> drives;   ///< signals the process schedules/forces
    bool sequential = false;           ///< clock-edge triggered: breaks
                                       ///< combinational cycles
    SignalBase* clock = nullptr;       ///< the clock, when sequential
    CombKind combKind = CombKind::Opaque; ///< declared via noteCombKind()
    SimTime combDelay = -1;            ///< propagation delay when declared
                                       ///< (-1 = unknown/undeclared)
};

/// Base class for structural component instances. Components register their
/// processes and instrumentation hooks in the owning Circuit at construction.
class Component {
public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;
    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /// Hierarchical instance name.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// True for components with no mutable simulation state (pure
    /// combinational logic, ROMs, structural shells): they are skipped by
    /// snapshot capture and exempt from preflight rule PRE006, which rejects
    /// fork-from-golden campaigns over stateful non-Snapshottable components.
    [[nodiscard]] virtual bool snapshotExempt() const noexcept { return false; }

private:
    std::string name_;
};

/// A group of single-bit signals addressed as one vector value (LSB first).
class Bus {
public:
    Bus() = default;
    explicit Bus(std::vector<LogicSignal*> bits) : bits_(std::move(bits)) {}

    /// Number of bits.
    [[nodiscard]] int width() const noexcept { return static_cast<int>(bits_.size()); }

    /// Bit i (LSB = 0).
    [[nodiscard]] LogicSignal& bit(int i) const { return *bits_.at(static_cast<std::size_t>(i)); }

    /// Reads the bus as an unsigned integer; unknown bits read as 0 and set
    /// the optional @p allKnown flag to false.
    [[nodiscard]] std::uint64_t toUint(bool* allKnown = nullptr) const;

    /// Schedules every bit (inertial) so the bus carries @p value after @p delay.
    void scheduleUint(std::uint64_t value, SimTime delay = 0) const;

    /// Forces every bit immediately (testbench/injector use).
    void forceUint(std::uint64_t value) const;

    /// Renders as a bit string, MSB first (e.g. "0101").
    [[nodiscard]] std::string str() const;

    /// Underlying signals, LSB first.
    [[nodiscard]] const std::vector<LogicSignal*>& bits() const noexcept { return bits_; }

private:
    std::vector<LogicSignal*> bits_;
};

/// The elaborated design root.
class Circuit {
public:
    Circuit() = default;

    /// The event kernel driving this circuit.
    [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }
    [[nodiscard]] const Scheduler& scheduler() const noexcept { return sched_; }

    /// Creates (and owns) a typed signal. Names must be unique.
    template <typename T>
    Signal<T>& signal(const std::string& name, T initial)
    {
        auto sig = std::make_unique<Signal<T>>(sched_, name, initial);
        Signal<T>& ref = *sig;
        registerSignal(name, std::move(sig));
        return ref;
    }

    /// Creates a single-bit logic signal (default initial value 'U').
    LogicSignal& logicSignal(const std::string& name, Logic initial = Logic::U)
    {
        return signal<Logic>(name, initial);
    }

    /// Creates @p width logic signals "<name>[i]" and returns them as a Bus.
    Bus bus(const std::string& name, int width, Logic initial = Logic::U);

    /// Looks up a previously created logic signal; throws std::out_of_range.
    [[nodiscard]] LogicSignal& findLogic(const std::string& name) const;

    /// Looks up any signal by name (snapshot restore); throws std::out_of_range.
    [[nodiscard]] SignalBase& findSignal(const std::string& name) const;

    /// True if a signal with this exact name exists.
    [[nodiscard]] bool hasSignal(const std::string& name) const
    {
        return signals_.count(name) != 0;
    }

    /// Names of all signals, in creation order.
    [[nodiscard]] const std::vector<std::string>& signalNames() const noexcept
    {
        return signalOrder_;
    }

    /// Creates (and owns) a process sensitive to @p sensitivity.
    Process& process(const std::string& name, std::function<void()> fn,
                     std::initializer_list<SignalBase*> sensitivity = {});

    /// Creates (and owns) a process with a vector sensitivity list.
    Process& process(const std::string& name, std::function<void()> fn,
                     const std::vector<SignalBase*>& sensitivity);

    // --- declared connectivity (static-analysis metadata) -------------------

    /// Declares that @p p schedules or forces the given signals.
    void noteDrives(Process& p, const std::vector<SignalBase*>& signals);

    /// Declares that @p p samples the given signals without being sensitive
    /// to them (register data inputs, FSM inputs, memory address buses).
    void noteReads(Process& p, const std::vector<SignalBase*>& signals);

    /// Declares that @p p is clock-edge triggered (a register): it does not
    /// participate in combinational cycles. @p clock may be null for
    /// processes without a single clock (multi-edge detectors).
    void noteSequential(Process& p, SignalBase* clock);

    /// Declares that @p p is a pure buffer/inverter with propagation delay
    /// @p delay — metadata the static fault-space analyzer uses to collapse
    /// equivalent faults through interconnect chains.
    void noteCombKind(Process& p, CombKind kind, SimTime delay);

    /// Declares that @p s is driven from outside the process network: clock
    /// generators, analog-to-digital bridges and testbench stimuli that force
    /// values through scheduleAction()/forceValue().
    void noteExternalDriver(SignalBase& s) { externallyDriven_.insert(&s); }

    /// True when @p s was declared externally driven.
    [[nodiscard]] bool isExternallyDriven(const SignalBase& s) const
    {
        return externallyDriven_.count(const_cast<SignalBase*>(&s)) != 0;
    }

    /// Connectivity records, one per created process, in creation order.
    [[nodiscard]] const std::vector<ProcessConnectivity>& connectivity() const noexcept
    {
        return connectivity_;
    }

    /// All declared external drivers (lint iteration).
    [[nodiscard]] const std::unordered_set<SignalBase*>& externalDrivers() const noexcept
    {
        return externallyDriven_;
    }

    /// Constructs a component in place; the circuit owns it.
    template <typename C, typename... Args>
    C& add(Args&&... args)
    {
        auto comp = std::make_unique<C>(std::forward<Args>(args)...);
        C& ref = *comp;
        components_.push_back(std::move(comp));
        return ref;
    }

    /// Owned component instances, in registration order (the deterministic
    /// iteration order snapshot capture and preflight PRE006 rely on).
    [[nodiscard]] const std::vector<std::unique_ptr<Component>>& components() const noexcept
    {
        return components_;
    }

    /// The mutant/injection hook registry.
    [[nodiscard]] InstrumentationRegistry& instrumentation() noexcept { return registry_; }
    [[nodiscard]] const InstrumentationRegistry& instrumentation() const noexcept
    {
        return registry_;
    }

    /// Convenience: run the kernel until @p t.
    void runUntil(SimTime t) { sched_.runUntil(t); }

private:
    void registerSignal(const std::string& name, std::unique_ptr<SignalBase> sig);

    /// Connectivity record of @p p; throws std::logic_error for a foreign one.
    ProcessConnectivity& connOf(Process& p);

    Scheduler sched_;
    std::unordered_map<std::string, std::unique_ptr<SignalBase>> signals_;
    std::vector<std::string> signalOrder_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<std::unique_ptr<Component>> components_;
    std::vector<ProcessConnectivity> connectivity_;
    std::unordered_map<const Process*, std::size_t> connIndex_;
    std::unordered_set<SignalBase*> externallyDriven_;
    InstrumentationRegistry registry_;
};

/// Convenience: a Bus as the signal list the connectivity declarations take.
[[nodiscard]] std::vector<SignalBase*> busSignals(const Bus& bus);

} // namespace gfi::digital
