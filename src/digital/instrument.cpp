#include "digital/instrument.hpp"

#include <stdexcept>

namespace gfi::digital {

void InstrumentationRegistry::add(StateHook hook)
{
    if (hooks_.count(hook.name) != 0) {
        throw std::invalid_argument("InstrumentationRegistry: duplicate hook '" + hook.name + "'");
    }
    hooks_.emplace(hook.name, std::move(hook));
}

const StateHook& InstrumentationRegistry::hook(const std::string& name) const
{
    const auto it = hooks_.find(name);
    if (it == hooks_.end()) {
        throw std::out_of_range("InstrumentationRegistry: unknown hook '" + name + "'");
    }
    return it->second;
}

std::vector<std::string> InstrumentationRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(hooks_.size());
    for (const auto& [name, hook] : hooks_) {
        out.push_back(name);
    }
    return out;
}

int InstrumentationRegistry::totalBits() const
{
    int bits = 0;
    for (const auto& [name, hook] : hooks_) {
        bits += hook.width;
    }
    return bits;
}

} // namespace gfi::digital
