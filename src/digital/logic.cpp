#include "digital/logic.hpp"

namespace gfi::digital {

namespace {

constexpr char kChars[kLogicCount + 1] = "UX01ZWLH-";

// IEEE 1164 resolution table (std_logic_1164 body).
constexpr Logic U = Logic::U;
constexpr Logic X = Logic::X;
constexpr Logic O = Logic::Zero;
constexpr Logic I = Logic::One;
constexpr Logic Z = Logic::Z;
constexpr Logic W = Logic::W;
constexpr Logic L = Logic::L;
constexpr Logic H = Logic::H;
constexpr Logic D = Logic::DC;

constexpr Logic kResolve[kLogicCount][kLogicCount] = {
    //         U  X  0  1  Z  W  L  H  -
    /* U */ {U, U, U, U, U, U, U, U, U},
    /* X */ {U, X, X, X, X, X, X, X, X},
    /* 0 */ {U, X, O, X, O, O, O, O, X},
    /* 1 */ {U, X, X, I, I, I, I, I, X},
    /* Z */ {U, X, O, I, Z, W, L, H, X},
    /* W */ {U, X, O, I, W, W, W, W, X},
    /* L */ {U, X, O, I, L, W, L, W, X},
    /* H */ {U, X, O, I, H, W, W, H, X},
    /* - */ {U, X, X, X, X, X, X, X, X},
};

// IEEE 1164 and/or/xor tables operate on to_x01-normalized values.
constexpr Logic kAnd[4][4] = {
    //        U  X  0  1
    /* U */ {U, U, O, U},
    /* X */ {U, X, O, X},
    /* 0 */ {O, O, O, O},
    /* 1 */ {U, X, O, I},
};

constexpr Logic kOr[4][4] = {
    //        U  X  0  1
    /* U */ {U, U, U, I},
    /* X */ {U, X, X, I},
    /* 0 */ {U, X, O, I},
    /* 1 */ {I, I, I, I},
};

constexpr Logic kXor[4][4] = {
    //        U  X  0  1
    /* U */ {U, U, U, U},
    /* X */ {U, X, X, X},
    /* 0 */ {U, X, O, I},
    /* 1 */ {U, X, I, O},
};

// Index of the to_x01/U-normalized value in {U, X, 0, 1}.
constexpr int ux01Index(Logic v) noexcept
{
    switch (v) {
    case Logic::U:
        return 0;
    case Logic::Zero:
    case Logic::L:
        return 2;
    case Logic::One:
    case Logic::H:
        return 3;
    default:
        return 1;
    }
}

} // namespace

char toChar(Logic v) noexcept
{
    return kChars[static_cast<int>(v)];
}

Logic logicFromChar(char c) noexcept
{
    for (int i = 0; i < kLogicCount; ++i) {
        if (kChars[i] == c) {
            return static_cast<Logic>(i);
        }
    }
    // Accept lowercase as a convenience.
    if (c >= 'a' && c <= 'z') {
        return logicFromChar(static_cast<char>(c - 'a' + 'A'));
    }
    return Logic::X;
}

Logic resolve(Logic a, Logic b) noexcept
{
    return kResolve[static_cast<int>(a)][static_cast<int>(b)];
}

Logic logicAnd(Logic a, Logic b) noexcept
{
    return kAnd[ux01Index(a)][ux01Index(b)];
}

Logic logicOr(Logic a, Logic b) noexcept
{
    return kOr[ux01Index(a)][ux01Index(b)];
}

Logic logicXor(Logic a, Logic b) noexcept
{
    return kXor[ux01Index(a)][ux01Index(b)];
}

Logic logicNot(Logic a) noexcept
{
    switch (ux01Index(a)) {
    case 2:
        return Logic::One;
    case 3:
        return Logic::Zero;
    case 0:
        return Logic::U;
    default:
        return Logic::X;
    }
}

Logic toX01(Logic a) noexcept
{
    switch (ux01Index(a)) {
    case 2:
        return Logic::Zero;
    case 3:
        return Logic::One;
    case 0:
        return Logic::U;
    default:
        return Logic::X;
    }
}

} // namespace gfi::digital
