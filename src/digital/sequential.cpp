#include "digital/sequential.hpp"

#include <stdexcept>

namespace gfi::digital {

namespace {

std::uint64_t widthMask(int width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

bool resetActive(const LogicSignal* rstn)
{
    return rstn != nullptr && toX01(rstn->value()) == Logic::Zero;
}

} // namespace

// ---------------------------------------------------------------------------
// DFlipFlop

DFlipFlop::DFlipFlop(Circuit& c, std::string name, LogicSignal& clk, LogicSignal& d,
                     LogicSignal& q, LogicSignal* rstn, LogicSignal* qn, SimTime clkToQ)
    : Component(std::move(name)), clk_(&clk), d_(&d), rstn_(rstn), q_(&q), qn_(qn),
      clkToQ_(clkToQ)
{
    std::vector<SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    Process& p = c.process(this->name() + "/seq",
                           [this, &clk, &d, rstn] {
                               if (resetActive(rstn)) {
                                   state_ = Logic::Zero;
                                   propagate();
                               } else if (risingEdge(clk)) {
                                   state_ = toX01(d.value());
                                   propagate();
                               }
                           },
                           sens);
    c.noteSequential(p, &clk);
    c.noteReads(p, {&d});
    std::vector<SignalBase*> outs{&q};
    if (qn != nullptr) {
        outs.push_back(qn);
    }
    c.noteDrives(p, outs);

    c.instrumentation().add(StateHook{
        this->name(), 1,
        [this] { return static_cast<std::uint64_t>(state_ == Logic::One ? 1 : 0); },
        [this](std::uint64_t v) { setState(fromBool((v & 1u) != 0)); },
        [this](int) { setState(flipped(state_)); }});
}

void DFlipFlop::setState(Logic v)
{
    state_ = v;
    propagate();
}

void DFlipFlop::propagate()
{
    q_->scheduleInertial(state_, clkToQ_);
    if (qn_ != nullptr) {
        qn_->scheduleInertial(logicNot(state_), clkToQ_);
    }
}

void DFlipFlop::captureState(snapshot::Writer& w) const
{
    w.u64(static_cast<std::uint64_t>(state_));
}

void DFlipFlop::restoreState(snapshot::Reader& r)
{
    state_ = static_cast<Logic>(r.u64()); // direct write: restore must not propagate
}

// ---------------------------------------------------------------------------
// Register

Register::Register(Circuit& c, std::string name, LogicSignal& clk, const Bus& d, const Bus& q,
                   LogicSignal* en, LogicSignal* rstn, std::uint64_t resetValue, SimTime clkToQ)
    : Component(std::move(name)), mask_(widthMask(q.width())), clk_(&clk), en_(en),
      rstn_(rstn), resetValue_(resetValue), d_(d), q_(q), clkToQ_(clkToQ)
{
    if (d.width() != q.width()) {
        throw std::invalid_argument("Register '" + this->name() + "': d/q width mismatch");
    }
    std::vector<SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    Process& p = c.process(this->name() + "/seq",
                           [this, &clk, d, en, rstn, resetValue] {
                               if (resetActive(rstn)) {
                                   state_ = resetValue & mask_;
                                   propagate();
                               } else if (risingEdge(clk)) {
                                   if (en == nullptr || toX01(en->value()) == Logic::One) {
                                       state_ = d.toUint() & mask_;
                                       propagate();
                                   }
                               }
                           },
                           sens);
    c.noteSequential(p, &clk);
    std::vector<SignalBase*> ins = busSignals(d);
    if (en != nullptr) {
        ins.push_back(en);
    }
    c.noteReads(p, ins);
    c.noteDrives(p, busSignals(q));

    c.instrumentation().add(StateHook{
        this->name(), q.width(), [this] { return state_; },
        [this](std::uint64_t v) { setState(v); },
        [this](int bit) { setState(state_ ^ (1ull << bit)); }});
}

void Register::setState(std::uint64_t v)
{
    state_ = v & mask_;
    propagate();
}

void Register::propagate()
{
    q_.scheduleUint(state_, clkToQ_);
}

void Register::captureState(snapshot::Writer& w) const
{
    w.u64(state_);
}

void Register::restoreState(snapshot::Reader& r)
{
    state_ = r.u64();
}

// ---------------------------------------------------------------------------
// Counter

Counter::Counter(Circuit& c, std::string name, LogicSignal& clk, const Bus& q,
                 LogicSignal* rstn, LogicSignal* en, std::uint64_t modulo, LogicSignal* tc,
                 SimTime clkToQ)
    : Component(std::move(name)), modulo_(modulo == 0 ? (widthMask(q.width()) + 1) : modulo),
      mask_(widthMask(q.width())), clk_(&clk), rstn_(rstn), en_(en), q_(q), tc_(tc),
      clkToQ_(clkToQ)
{
    if (q.width() >= 64 && modulo == 0) {
        throw std::invalid_argument("Counter '" + this->name() + "': width must be < 64");
    }
    std::vector<SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    Process& p = c.process(this->name() + "/seq",
                           [this, &clk, rstn, en] {
                               if (resetActive(rstn)) {
                                   count_ = 0;
                                   propagate();
                               } else if (risingEdge(clk)) {
                                   if (en == nullptr || toX01(en->value()) == Logic::One) {
                                       count_ = (count_ + 1) % modulo_;
                                       propagate();
                                   }
                               }
                           },
                           sens);
    c.noteSequential(p, &clk);
    if (en != nullptr) {
        c.noteReads(p, {en});
    }
    std::vector<SignalBase*> outs = busSignals(q);
    if (tc != nullptr) {
        outs.push_back(tc);
    }
    c.noteDrives(p, outs);

    c.instrumentation().add(StateHook{
        this->name(), q.width(), [this] { return count_; },
        [this](std::uint64_t v) { setCount(v); },
        [this](int bit) { setCount(count_ ^ (1ull << bit)); }});
}

void Counter::setCount(std::uint64_t v)
{
    count_ = (v & mask_) % modulo_;
    propagate();
}

void Counter::propagate()
{
    q_.scheduleUint(count_, clkToQ_);
    if (tc_ != nullptr) {
        tc_->scheduleInertial(fromBool(count_ == modulo_ - 1), clkToQ_);
    }
}

void Counter::captureState(snapshot::Writer& w) const
{
    w.u64(count_);
}

void Counter::restoreState(snapshot::Reader& r)
{
    count_ = r.u64();
}

// ---------------------------------------------------------------------------
// ClockDivider

ClockDivider::ClockDivider(Circuit& c, std::string name, LogicSignal& clkIn, LogicSignal& clkOut,
                           int divideBy, LogicSignal* rstn, SimTime delay)
    : Component(std::move(name)), half_(divideBy / 2), clkOut_(&clkOut), delay_(delay)
{
    if (divideBy < 2 || divideBy % 2 != 0) {
        throw std::invalid_argument("ClockDivider '" + this->name() +
                                    "': divideBy must be even and >= 2");
    }
    std::vector<SignalBase*> sens{&clkIn};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    Process& p = c.process(this->name() + "/seq",
                           [this, &clkIn, rstn] {
                               if (resetActive(rstn)) {
                                   count_ = 0;
                                   out_ = Logic::Zero;
                                   clkOut_->scheduleInertial(out_, delay_);
                               } else if (risingEdge(clkIn)) {
                                   if (++count_ >= half_) {
                                       count_ = 0;
                                       out_ = logicNot(out_);
                                       clkOut_->scheduleInertial(out_, delay_);
                                   }
                               }
                           },
                           sens);
    c.noteSequential(p, &clkIn);
    c.noteDrives(p, {&clkOut});

    // State = edge counter plus the output phase bit packed on top.
    const int counterBits = [n = half_]() mutable {
        int bits = 1;
        while ((1 << bits) < n) {
            ++bits;
        }
        return bits;
    }();
    c.instrumentation().add(StateHook{
        this->name(), counterBits + 1,
        [this] {
            return static_cast<std::uint64_t>(count_) |
                   (static_cast<std::uint64_t>(out_ == Logic::One ? 1 : 0) << 62);
        },
        [this](std::uint64_t v) {
            out_ = fromBool(((v >> 62) & 1u) != 0);
            setPhase(static_cast<int>(v & 0x3FFFFFFFull));
        },
        [this, counterBits](int bit) {
            if (bit >= counterBits) {
                out_ = logicNot(out_);
                clkOut_->scheduleInertial(out_, delay_);
            } else {
                setPhase(count_ ^ (1 << bit));
            }
        }});
}

void ClockDivider::setPhase(int v)
{
    count_ = v % half_;
}

void ClockDivider::captureState(snapshot::Writer& w) const
{
    w.u64(static_cast<std::uint64_t>(count_));
    w.u64(static_cast<std::uint64_t>(out_));
}

void ClockDivider::restoreState(snapshot::Reader& r)
{
    count_ = static_cast<int>(r.u64());
    out_ = static_cast<Logic>(r.u64());
}

// ---------------------------------------------------------------------------
// ShiftRegister

ShiftRegister::ShiftRegister(Circuit& c, std::string name, LogicSignal& clk,
                             LogicSignal& serialIn, const Bus& taps, LogicSignal* rstn,
                             SimTime clkToQ)
    : Component(std::move(name)), width_(taps.width()), clk_(&clk), serialIn_(&serialIn),
      rstn_(rstn), taps_(taps), clkToQ_(clkToQ)
{
    std::vector<SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    Process& p = c.process(this->name() + "/seq",
                           [this, &clk, &serialIn, rstn] {
                               if (resetActive(rstn)) {
                                   state_ = 0;
                                   propagate();
                               } else if (risingEdge(clk)) {
                                   const std::uint64_t in =
                                       toX01(serialIn.value()) == Logic::One ? 1u : 0u;
                                   state_ = ((state_ >> 1) | (in << (width_ - 1))) &
                                            widthMask(width_);
                                   propagate();
                               }
                           },
                           sens);
    c.noteSequential(p, &clk);
    c.noteReads(p, {&serialIn});
    c.noteDrives(p, busSignals(taps));

    c.instrumentation().add(StateHook{
        this->name(), width_, [this] { return state_; },
        [this](std::uint64_t v) { setState(v); },
        [this](int bit) { setState(state_ ^ (1ull << bit)); }});
}

void ShiftRegister::setState(std::uint64_t v)
{
    state_ = v & widthMask(width_);
    propagate();
}

void ShiftRegister::propagate()
{
    taps_.scheduleUint(state_, clkToQ_);
}

void ShiftRegister::captureState(snapshot::Writer& w) const
{
    w.u64(state_);
}

void ShiftRegister::restoreState(snapshot::Reader& r)
{
    state_ = r.u64();
}

// ---------------------------------------------------------------------------
// Lfsr

Lfsr::Lfsr(Circuit& c, std::string name, LogicSignal& clk, const Bus& q, std::uint64_t taps,
           std::uint64_t seed, LogicSignal* rstn, SimTime clkToQ)
    : Component(std::move(name)), state_(seed), taps_(taps), seed_(seed),
      mask_(widthMask(q.width())), width_(q.width()), clk_(&clk), rstn_(rstn), q_(q),
      clkToQ_(clkToQ)
{
    state_ &= mask_;
    std::vector<SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    Process& p = c.process(this->name() + "/seq",
                           [this, &clk, rstn] {
                               if (resetActive(rstn)) {
                                   state_ = seed_ & mask_;
                                   propagate();
                               } else if (risingEdge(clk)) {
                                   const std::uint64_t fb = static_cast<std::uint64_t>(
                                       __builtin_parityll(state_ & taps_));
                                   state_ = ((state_ << 1) | fb) & mask_;
                                   propagate();
                               }
                           },
                           sens);
    c.noteSequential(p, &clk);
    c.noteDrives(p, busSignals(q));

    c.instrumentation().add(StateHook{
        this->name(), width_, [this] { return state_; },
        [this](std::uint64_t v) { setState(v); },
        [this](int bit) { setState(state_ ^ (1ull << bit)); }});
}

void Lfsr::setState(std::uint64_t v)
{
    state_ = v & mask_;
    propagate();
}

void Lfsr::propagate()
{
    q_.scheduleUint(state_, clkToQ_);
}

void Lfsr::captureState(snapshot::Writer& w) const
{
    w.u64(state_);
}

void Lfsr::restoreState(snapshot::Reader& r)
{
    state_ = r.u64();
}

// ---------------------------------------------------------------------------
// ClockGen

ClockGen::ClockGen(Circuit& c, std::string name, LogicSignal& clk, SimTime period,
                   double dutyHigh, SimTime start)
    : Component(std::move(name)), sched_(&c.scheduler()), clk_(&clk), period_(period),
      highTime_(static_cast<SimTime>(static_cast<double>(period) * dutyHigh))
{
    if (period <= 0 || highTime_ <= 0 || highTime_ >= period) {
        throw std::invalid_argument("ClockGen '" + this->name() + "': bad period/duty");
    }
    c.noteExternalDriver(clk);
    clk_->scheduleInertial(Logic::Zero, 0);
    riseAt(start);
}

void ClockGen::riseAt(SimTime t)
{
    nextRise_ = t;
    sched_->scheduleAction(t, [this, t] {
        clk_->forceValue(Logic::One);
        fallAt(t + highTime_);
        riseAt(t + period_);
    });
}

void ClockGen::fallAt(SimTime t)
{
    fallAt_ = t;
    sched_->scheduleAction(t, [this] {
        clk_->forceValue(Logic::Zero);
        fallAt_ = -1;
    });
}

void ClockGen::captureState(snapshot::Writer& w) const
{
    w.i64(nextRise_);
    w.i64(fallAt_);
}

void ClockGen::restoreState(snapshot::Reader& r)
{
    const SimTime rise = r.i64();
    const SimTime fall = r.i64();
    // Re-arm from the recorded fire times: the restored queue has no actions.
    if (fall >= 0) {
        fallAt(fall);
    } else {
        fallAt_ = -1;
    }
    riseAt(rise);
}

} // namespace gfi::digital
