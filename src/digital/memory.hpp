#pragma once
// Memory components: synchronous RAM (per-word SEU hooks) and combinational
// ROM. Memories are the canonical SEU target — every stored word registers
// its own instrumentation hook so campaigns can flip any bit of any word.

#include "digital/circuit.hpp"
#include "snapshot/snapshot.hpp"

namespace gfi::digital {

/// Synchronous-write RAM with asynchronous (combinational) read.
class Ram : public Component, public snapshot::Snapshottable {
public:
    /// @param clk    write clock (positive edge).
    /// @param we     write enable (active high).
    /// @param addr   address bus (depth = 2^addr.width()).
    /// @param wdata  write-data bus.
    /// @param rdata  read-data bus (follows addr combinationally).
    Ram(Circuit& c, std::string name, LogicSignal& clk, LogicSignal& we, const Bus& addr,
        const Bus& wdata, const Bus& rdata, SimTime readDelay = 500 * kPicosecond);

    /// Word count.
    [[nodiscard]] int depth() const noexcept { return depth_; }

    /// Data width in bits.
    [[nodiscard]] int width() const noexcept { return width_; }

    /// Direct word access (testbench preload / inspection).
    [[nodiscard]] std::uint64_t word(int address) const
    {
        return storage_.at(static_cast<std::size_t>(address));
    }

    /// Overwrites a word and refreshes the read port (SEU injection uses the
    /// per-word hooks registered as "<name>/w<addr>").
    void setWord(int address, std::uint64_t value);

    void captureState(snapshot::Writer& w) const override
    {
        w.u64(storage_.size());
        for (std::uint64_t word : storage_) {
            w.u64(word);
        }
    }

    void restoreState(snapshot::Reader& r) override
    {
        const std::uint64_t n = r.u64();
        storage_.assign(n, 0);
        for (std::uint64_t i = 0; i < n; ++i) {
            storage_[i] = r.u64();
        }
    }

private:
    void refreshRead();

    std::vector<std::uint64_t> storage_;
    int depth_;
    int width_;
    std::uint64_t mask_;
    Bus addr_;
    Bus rdata_;
    SimTime readDelay_;
};

/// Combinational ROM: rdata = contents[addr].
class Rom : public Component {
public:
    Rom(Circuit& c, std::string name, const Bus& addr, const Bus& rdata,
        std::vector<std::uint64_t> contents, SimTime readDelay = 500 * kPicosecond);

    /// Contents are immutable after construction: nothing to snapshot.
    [[nodiscard]] bool snapshotExempt() const noexcept override { return true; }

private:
    std::vector<std::uint64_t> contents_;
};

} // namespace gfi::digital
