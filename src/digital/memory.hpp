#pragma once
// Memory components: synchronous RAM (per-word SEU hooks) and combinational
// ROM. Memories are the canonical SEU target — every stored word registers
// its own instrumentation hook so campaigns can flip any bit of any word.

#include "digital/circuit.hpp"

namespace gfi::digital {

/// Synchronous-write RAM with asynchronous (combinational) read.
class Ram : public Component {
public:
    /// @param clk    write clock (positive edge).
    /// @param we     write enable (active high).
    /// @param addr   address bus (depth = 2^addr.width()).
    /// @param wdata  write-data bus.
    /// @param rdata  read-data bus (follows addr combinationally).
    Ram(Circuit& c, std::string name, LogicSignal& clk, LogicSignal& we, const Bus& addr,
        const Bus& wdata, const Bus& rdata, SimTime readDelay = 500 * kPicosecond);

    /// Word count.
    [[nodiscard]] int depth() const noexcept { return depth_; }

    /// Data width in bits.
    [[nodiscard]] int width() const noexcept { return width_; }

    /// Direct word access (testbench preload / inspection).
    [[nodiscard]] std::uint64_t word(int address) const
    {
        return storage_.at(static_cast<std::size_t>(address));
    }

    /// Overwrites a word and refreshes the read port (SEU injection uses the
    /// per-word hooks registered as "<name>/w<addr>").
    void setWord(int address, std::uint64_t value);

private:
    void refreshRead();

    std::vector<std::uint64_t> storage_;
    int depth_;
    int width_;
    std::uint64_t mask_;
    Bus addr_;
    Bus rdata_;
    SimTime readDelay_;
};

/// Combinational ROM: rdata = contents[addr].
class Rom : public Component {
public:
    Rom(Circuit& c, std::string name, const Bus& addr, const Bus& rdata,
        std::vector<std::uint64_t> contents, SimTime readDelay = 500 * kPicosecond);

private:
    std::vector<std::uint64_t> contents_;
};

} // namespace gfi::digital
