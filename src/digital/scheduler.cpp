#include "digital/scheduler.hpp"

#include "digital/signal.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/errors.hpp"

namespace gfi::digital {

void Scheduler::scheduleTransaction(SimTime t, SignalBase& sig, std::uint64_t txnId)
{
    if (t < now_) {
        t = now_; // defensive: never schedule in the past
    }
    queue_.push(Entry{t, seq_++, true, {}, &sig, txnId});
    if (queue_.size() > queueHighWater_) {
        queueHighWater_ = queue_.size();
    }
}

void Scheduler::scheduleAction(SimTime t, std::function<void()> action)
{
    if (t < now_) {
        t = now_;
    }
    queue_.push(Entry{t, seq_++, false, std::move(action), nullptr, 0});
    if (queue_.size() > queueHighWater_) {
        queueHighWater_ = queue_.size();
    }
}

void Scheduler::wake(Process* p)
{
    if (p->queued_) {
        return;
    }
    p->queued_ = true;
    runnable_.push_back(p);
}

SimTime Scheduler::nextEventTime() const noexcept
{
    return queue_.empty() ? kTimeMax : queue_.top().time;
}

void Scheduler::start()
{
    if (started_) {
        return;
    }
    started_ = true;
    // VHDL elaboration: every process runs once at time zero.
    for (Process* p : processes_) {
        p->run();
    }
    runDeltasNow();
}

void Scheduler::throwDeltaLimit() const
{
    std::string msg = "Scheduler: delta-cycle limit (" + std::to_string(deltaLimit_) +
                      ") exceeded at t=" + formatTime(now_) +
                      " (combinational loop or zero-delay oscillation";
    if (lastEventSignal_ != nullptr) {
        msg += "; last signal event: '" + *lastEventSignal_ + "'";
    }
    if (lastProcessRun_ != nullptr) {
        msg += "; last process: '" + *lastProcessRun_ + "'";
    }
    msg += "); hint: run lint — rule DIG001 reports combinational loops statically, "
           "before any simulation";
    throw SchedulerLimitError(msg);
}

void Scheduler::runWave()
{
    // Phase 1: apply signal transactions due now; phase 2: actions; phase 3:
    // woken processes. The wave id advances only after the processes ran, so
    // events stamped in phases 1-2 are visible to them.
    std::vector<Entry> transactions;
    std::vector<std::function<void()>> actions;
    while (!queue_.empty() && queue_.top().time <= now_) {
        Entry e = queue_.top();
        queue_.pop();
        if (e.isTransaction) {
            transactions.push_back(e);
        } else {
            actions.push_back(std::move(e.fn));
        }
    }
    dispatched_ += transactions.size() + actions.size();
    for (const Entry& e : transactions) {
        e.signal->applyTxn(e.txnId);
    }
    for (auto& fn : actions) {
        fn();
    }
    std::vector<Process*> toRun;
    toRun.swap(runnable_);
    for (Process* p : toRun) {
        p->queued_ = false;
        lastProcessRun_ = &p->name();
        p->run();
    }
    ++waveId_;
    ++deltasRun_;
    if (recorder_ != nullptr) {
        recorder_->record(obs::FlightRecorder::Kind::Wave, now_, 0.0, deltasRun_,
                          queue_.size(), 0.0);
    }
    if (watchdog_ != nullptr) {
        watchdog_->chargeDigitalWave();
    }
}

void Scheduler::runUntil(SimTime tEnd)
{
    start();
    // Values forced from outside the kernel (testbenches, bridges) may have
    // woken processes without queuing any entry; drain them before advancing.
    runDeltasNow();
    while (!queue_.empty() && queue_.top().time <= tEnd) {
        const SimTime t = queue_.top().time;
        now_ = t < now_ ? now_ : t;
        std::uint64_t deltasHere = 0;
        while (workPendingNow()) {
            if (++deltasHere > deltaLimit_) {
                throwDeltaLimit();
            }
            runWave();
        }
    }
    if (tEnd > now_) {
        now_ = tEnd;
    }
}

void Scheduler::runDeltasNow()
{
    started_ = true;
    std::uint64_t deltasHere = 0;
    while (workPendingNow()) {
        if (++deltasHere > deltaLimit_) {
            throwDeltaLimit();
        }
        runWave();
    }
}

void Scheduler::captureState(snapshot::Writer& w) const
{
    w.i64(now_);
    w.u64(seq_);
    w.u64(waveId_);
    w.u64(deltasRun_);
    // Drain a copy of the queue so pending transactions serialize in exact
    // (time, seq) pop order — the order they would apply in.
    auto copy = queue_;
    std::vector<Entry> pending;
    while (!copy.empty()) {
        if (copy.top().isTransaction) {
            pending.push_back(copy.top());
        }
        copy.pop();
    }
    w.u64(pending.size());
    for (const Entry& e : pending) {
        w.i64(e.time);
        w.u64(e.seq);
        w.str(e.signal->name());
        w.u64(e.txnId);
    }
}

void Scheduler::restoreState(snapshot::Reader& r,
                             const std::function<SignalBase&(const std::string&)>& resolve)
{
    now_ = r.i64();
    seq_ = r.u64();
    waveId_ = r.u64();
    deltasRun_ = r.u64();
    started_ = true; // the captured kernel had completed its startup pass
    queue_ = {};
    for (Process* p : runnable_) {
        p->queued_ = false;
    }
    runnable_.clear();
    lastEventSignal_ = nullptr;
    lastProcessRun_ = nullptr;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const SimTime t = r.i64();
        const std::uint64_t seq = r.u64();
        SignalBase& sig = resolve(r.str());
        const std::uint64_t txnId = r.u64();
        // Original sequence numbers are kept so same-wave transactions apply
        // in the captured order; fresh entries (re-armed actions, new faults)
        // draw from the restored seq_ counter and sort after these.
        queue_.push(Entry{t, seq, true, {}, &sig, txnId});
    }
    // Probe counters are not part of the snapshot format: the campaign layer
    // samples a post-restore baseline and bills runs by delta, so they only
    // need to keep counting monotonically from here.
    if (queue_.size() > queueHighWater_) {
        queueHighWater_ = queue_.size();
    }
}

} // namespace gfi::digital
