#include "digital/scheduler.hpp"

#include "sim/errors.hpp"

namespace gfi::digital {

void Scheduler::scheduleTransaction(SimTime t, std::function<void()> apply)
{
    if (t < now_) {
        t = now_; // defensive: never schedule in the past
    }
    queue_.push(Entry{t, seq_++, true, std::move(apply)});
}

void Scheduler::scheduleAction(SimTime t, std::function<void()> action)
{
    if (t < now_) {
        t = now_;
    }
    queue_.push(Entry{t, seq_++, false, std::move(action)});
}

void Scheduler::wake(Process* p)
{
    if (p->queued_) {
        return;
    }
    p->queued_ = true;
    runnable_.push_back(p);
}

SimTime Scheduler::nextEventTime() const noexcept
{
    return queue_.empty() ? kTimeMax : queue_.top().time;
}

void Scheduler::start()
{
    if (started_) {
        return;
    }
    started_ = true;
    // VHDL elaboration: every process runs once at time zero.
    for (Process* p : processes_) {
        p->run();
    }
    runDeltasNow();
}

void Scheduler::throwDeltaLimit() const
{
    std::string msg = "Scheduler: delta-cycle limit (" + std::to_string(deltaLimit_) +
                      ") exceeded at t=" + formatTime(now_) +
                      " (combinational loop or zero-delay oscillation";
    if (lastEventSignal_ != nullptr) {
        msg += "; last signal event: '" + *lastEventSignal_ + "'";
    }
    if (lastProcessRun_ != nullptr) {
        msg += "; last process: '" + *lastProcessRun_ + "'";
    }
    msg += "); hint: run lint — rule DIG001 reports combinational loops statically, "
           "before any simulation";
    throw SchedulerLimitError(msg);
}

void Scheduler::runWave()
{
    // Phase 1: apply signal transactions due now; phase 2: actions; phase 3:
    // woken processes. The wave id advances only after the processes ran, so
    // events stamped in phases 1-2 are visible to them.
    std::vector<std::function<void()>> transactions;
    std::vector<std::function<void()>> actions;
    while (!queue_.empty() && queue_.top().time <= now_) {
        Entry e = queue_.top();
        queue_.pop();
        (e.isTransaction ? transactions : actions).push_back(std::move(e.fn));
    }
    for (auto& fn : transactions) {
        fn();
    }
    for (auto& fn : actions) {
        fn();
    }
    std::vector<Process*> toRun;
    toRun.swap(runnable_);
    for (Process* p : toRun) {
        p->queued_ = false;
        lastProcessRun_ = &p->name();
        p->run();
    }
    ++waveId_;
    ++deltasRun_;
    if (watchdog_ != nullptr) {
        watchdog_->chargeDigitalWave();
    }
}

void Scheduler::runUntil(SimTime tEnd)
{
    start();
    // Values forced from outside the kernel (testbenches, bridges) may have
    // woken processes without queuing any entry; drain them before advancing.
    runDeltasNow();
    while (!queue_.empty() && queue_.top().time <= tEnd) {
        const SimTime t = queue_.top().time;
        now_ = t < now_ ? now_ : t;
        std::uint64_t deltasHere = 0;
        while (workPendingNow()) {
            if (++deltasHere > deltaLimit_) {
                throwDeltaLimit();
            }
            runWave();
        }
    }
    if (tEnd > now_) {
        now_ = tEnd;
    }
}

void Scheduler::runDeltasNow()
{
    started_ = true;
    std::uint64_t deltasHere = 0;
    while (workPendingNow()) {
        if (++deltasHere > deltaLimit_) {
            throwDeltaLimit();
        }
        runWave();
    }
}

} // namespace gfi::digital
