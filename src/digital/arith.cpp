#include "digital/arith.hpp"

#include <stdexcept>

namespace gfi::digital {

namespace {

std::vector<SignalBase*> busSensitivity(std::initializer_list<const Bus*> buses,
                                        std::initializer_list<LogicSignal*> extra = {})
{
    std::vector<SignalBase*> sens;
    for (const Bus* b : buses) {
        for (LogicSignal* s : b->bits()) {
            sens.push_back(s);
        }
    }
    for (LogicSignal* s : extra) {
        if (s != nullptr) {
            sens.push_back(s);
        }
    }
    return sens;
}

} // namespace

Adder::Adder(Circuit& c, std::string name, const Bus& a, const Bus& b, const Bus& sum,
             LogicSignal* cin, LogicSignal* cout, SimTime delay)
    : Component(std::move(name)), a_(a), b_(b), sum_(sum), cin_(cin), cout_(cout),
      delay_(delay)
{
    if (a.width() != b.width() || a.width() != sum.width()) {
        throw std::invalid_argument("Adder '" + this->name() + "': width mismatch");
    }
    const int width = a.width();
    Process& p = c.process(this->name() + "/eval",
              [a, b, sum, cin, cout, width, delay] {
                  bool knownA = true;
                  bool knownB = true;
                  const std::uint64_t va = a.toUint(&knownA);
                  const std::uint64_t vb = b.toUint(&knownB);
                  bool knownC = true;
                  std::uint64_t vc = 0;
                  if (cin != nullptr) {
                      const Logic l = toX01(cin->value());
                      knownC = l == Logic::Zero || l == Logic::One;
                      vc = l == Logic::One ? 1 : 0;
                  }
                  if (!knownA || !knownB || !knownC) {
                      for (LogicSignal* s : sum.bits()) {
                          s->scheduleInertial(Logic::X, delay);
                      }
                      if (cout != nullptr) {
                          cout->scheduleInertial(Logic::X, delay);
                      }
                      return;
                  }
                  const std::uint64_t full = va + vb + vc;
                  sum.scheduleUint(full, delay);
                  if (cout != nullptr) {
                      const bool carry = width < 64 && (full >> width) != 0;
                      cout->scheduleInertial(fromBool(carry), delay);
                  }
              },
              busSensitivity({&a, &b}, {cin}));
    c.noteDrives(p, busSensitivity({&sum}, {cout}));
}

EqComparator::EqComparator(Circuit& c, std::string name, const Bus& a, const Bus& b,
                           LogicSignal& eq, SimTime delay)
    : Component(std::move(name)), a_(a), b_(b), eq_(&eq), delay_(delay)
{
    if (a.width() != b.width()) {
        throw std::invalid_argument("EqComparator '" + this->name() + "': width mismatch");
    }
    Process& p = c.process(this->name() + "/eval",
              [a, b, &eq, delay] {
                  bool knownA = true;
                  bool knownB = true;
                  const std::uint64_t va = a.toUint(&knownA);
                  const std::uint64_t vb = b.toUint(&knownB);
                  if (!knownA || !knownB) {
                      eq.scheduleInertial(Logic::X, delay);
                  } else {
                      eq.scheduleInertial(fromBool(va == vb), delay);
                  }
              },
              busSensitivity({&a, &b}));
    c.noteDrives(p, {&eq});
}

BusMux2::BusMux2(Circuit& c, std::string name, const Bus& a, const Bus& b, LogicSignal& sel,
                 const Bus& y, SimTime delay)
    : Component(std::move(name))
{
    if (a.width() != b.width() || a.width() != y.width()) {
        throw std::invalid_argument("BusMux2 '" + this->name() + "': width mismatch");
    }
    Process& p = c.process(this->name() + "/eval",
              [a, b, &sel, y, delay] {
                  const Logic s = toX01(sel.value());
                  for (int i = 0; i < y.width(); ++i) {
                      Logic out = Logic::X;
                      if (s == Logic::Zero) {
                          out = toX01(a.bit(i).value());
                      } else if (s == Logic::One) {
                          out = toX01(b.bit(i).value());
                      }
                      y.bit(i).scheduleInertial(out, delay);
                  }
              },
              busSensitivity({&a, &b}, {&sel}));
    c.noteDrives(p, busSensitivity({&y}));
}

} // namespace gfi::digital
