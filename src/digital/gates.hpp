#pragma once
// Combinational component library: gates, buffers and multiplexers.
//
// Every gate is a Component that instantiates one process sensitive to its
// inputs and drives its output with inertial delay — the standard behavioral
// idiom the paper's digital flow instruments.

#include "digital/circuit.hpp"

#include <vector>

namespace gfi::digital {

/// Default combinational propagation delay.
inline constexpr SimTime kDefaultGateDelay = 100 * kPicosecond;

/// N-input gate kinds sharing one implementation.
enum class GateKind { And, Or, Nand, Nor, Xor, Xnor, Buf, Not };

/// Generic N-input logic gate (Buf/Not take exactly one input).
class Gate : public Component {
public:
    /// Builds the gate and registers its evaluation process in @p c.
    Gate(Circuit& c, std::string name, GateKind kind, std::vector<LogicSignal*> inputs,
         LogicSignal& output, SimTime delay = kDefaultGateDelay);

    /// Combinational function of this gate applied to explicit values.
    [[nodiscard]] static Logic evaluate(GateKind kind, const std::vector<Logic>& values);

    /// Pure combinational: outputs re-derive from restored inputs.
    [[nodiscard]] bool snapshotExempt() const noexcept override { return true; }

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] GateKind kind() const noexcept { return kind_; }
    [[nodiscard]] const std::vector<LogicSignal*>& inputs() const noexcept { return inputs_; }
    [[nodiscard]] const LogicSignal* output() const noexcept { return output_; }
    [[nodiscard]] SimTime delay() const noexcept { return delay_; }

private:
    GateKind kind_;
    std::vector<LogicSignal*> inputs_;
    LogicSignal* output_;
    SimTime delay_;
};

/// Two-input AND convenience wrapper.
class AndGate : public Gate {
public:
    AndGate(Circuit& c, std::string name, LogicSignal& a, LogicSignal& b, LogicSignal& y,
            SimTime delay = kDefaultGateDelay)
        : Gate(c, std::move(name), GateKind::And, {&a, &b}, y, delay)
    {
    }
};

/// Two-input OR convenience wrapper.
class OrGate : public Gate {
public:
    OrGate(Circuit& c, std::string name, LogicSignal& a, LogicSignal& b, LogicSignal& y,
           SimTime delay = kDefaultGateDelay)
        : Gate(c, std::move(name), GateKind::Or, {&a, &b}, y, delay)
    {
    }
};

/// Two-input XOR convenience wrapper.
class XorGate : public Gate {
public:
    XorGate(Circuit& c, std::string name, LogicSignal& a, LogicSignal& b, LogicSignal& y,
            SimTime delay = kDefaultGateDelay)
        : Gate(c, std::move(name), GateKind::Xor, {&a, &b}, y, delay)
    {
    }
};

/// Inverter convenience wrapper.
class NotGate : public Gate {
public:
    NotGate(Circuit& c, std::string name, LogicSignal& a, LogicSignal& y,
            SimTime delay = kDefaultGateDelay)
        : Gate(c, std::move(name), GateKind::Not, {&a}, y, delay)
    {
    }
};

/// Buffer convenience wrapper.
class BufGate : public Gate {
public:
    BufGate(Circuit& c, std::string name, LogicSignal& a, LogicSignal& y,
            SimTime delay = kDefaultGateDelay)
        : Gate(c, std::move(name), GateKind::Buf, {&a}, y, delay)
    {
    }
};

/// Two-to-one single-bit multiplexer: y = sel ? b : a.
class Mux2 : public Component {
public:
    Mux2(Circuit& c, std::string name, LogicSignal& a, LogicSignal& b, LogicSignal& sel,
         LogicSignal& y, SimTime delay = kDefaultGateDelay);

    [[nodiscard]] bool snapshotExempt() const noexcept override { return true; }
};

} // namespace gfi::digital
