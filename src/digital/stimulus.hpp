#pragma once
// One-shot testbench stimulus schedule.
//
// Testbenches used to force reset releases and start strobes through raw
// scheduler actions — closures the snapshot subsystem cannot serialize.
// StimulusSchedule owns those one-shot forceValue events as data: each item
// records (time, signal, value, fired), so a snapshot captures exactly which
// stimuli have been delivered and restore re-arms the remaining ones.

#include "digital/circuit.hpp"
#include "snapshot/snapshot.hpp"

namespace gfi::digital {

/// A list of one-shot forceValue events with snapshot support.
class StimulusSchedule : public Component, public snapshot::Snapshottable {
public:
    StimulusSchedule(Circuit& c, std::string name)
        : Component(std::move(name)), sched_(&c.scheduler())
    {
    }

    /// Schedules forcing @p s to @p v at absolute time @p t. The caller keeps
    /// responsibility for declaring @p s externally driven.
    void at(SimTime t, LogicSignal& s, Logic v)
    {
        const std::size_t i = items_.size();
        items_.push_back(Item{t, &s, v, false});
        arm(i);
    }

    /// One scheduled one-shot stimulus event.
    struct Item {
        SimTime time;
        LogicSignal* signal;
        Logic value;
        bool fired;
    };

    /// Registered stimuli in registration order (word-level netlist compilation).
    [[nodiscard]] const std::vector<Item>& items() const noexcept { return items_; }

    void captureState(snapshot::Writer& w) const override
    {
        w.u64(items_.size());
        for (const Item& it : items_) {
            w.boolean(it.fired);
        }
    }

    void restoreState(snapshot::Reader& r) override
    {
        const std::uint64_t n = r.u64();
        if (n != items_.size()) {
            throw snapshot::SnapshotFormatError(
                "StimulusSchedule '" + name() + "': stream has " + std::to_string(n) +
                " items, testbench registered " + std::to_string(items_.size()));
        }
        for (std::size_t i = 0; i < items_.size(); ++i) {
            items_[i].fired = r.boolean();
            if (!items_[i].fired) {
                arm(i); // re-arm: the restored queue carries no actions
            }
        }
    }

private:
    void arm(std::size_t i)
    {
        sched_->scheduleAction(items_[i].time, [this, i] {
            Item& it = items_[i];
            it.fired = true;
            it.signal->forceValue(it.value);
        });
    }

    Scheduler* sched_;
    std::vector<Item> items_;
};

} // namespace gfi::digital
