#pragma once
// Event-driven digital simulation kernel with VHDL-style delta cycles.
//
// Execution model — one *wave* is:
//   1. apply all signal transactions due at the current time (value updates;
//      a changed value marks an event and wakes sensitive processes);
//   2. run all scheduled actions (clock generators, fault injectors, ...);
//   3. run every woken process.
// Waves repeat at the same simulation time until no zero-delay work remains
// (delta cycles), then time advances to the next pending entry.
//
// Event visibility: a signal event is visible (signal.event() == true) to the
// processes that run in the same wave in which the value changed. This also
// holds for values forced from outside the kernel (mixed-mode bridges, fault
// injectors): the forcing call stamps the current wave, and the next wave run
// by runDeltasNow() executes the woken processes before the wave id advances.

#include "sim/time.hpp"
#include "sim/watchdog.hpp"
#include "snapshot/serialize.hpp"

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace gfi::obs {
class FlightRecorder;
}

namespace gfi::digital {

class Scheduler;
class SignalBase;

/// A concurrent process: a callback executed whenever one of the signals it is
/// sensitive to has an event (VHDL process with a sensitivity list).
class Process {
public:
    /// @param name  diagnostic name (hierarchical by convention, e.g. "pfd/ff1").
    /// @param fn    body executed on wake-up.
    Process(std::string name, std::function<void()> fn)
        : name_(std::move(name)), fn_(std::move(fn))
    {
    }

    /// Diagnostic name.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Executes the process body once.
    void run() { fn_(); }

private:
    friend class Scheduler;
    std::string name_;
    std::function<void()> fn_;
    bool queued_ = false; // already in the runnable set
};

/// The digital event queue / delta-cycle engine.
class Scheduler {
public:
    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Current simulation time.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Identifier of the execution wave currently running (or about to run).
    /// Signal events stamped with this id are "fresh" for edge detection.
    [[nodiscard]] std::uint64_t waveId() const noexcept { return waveId_; }

    /// Total number of waves (delta cycles) executed — diagnostic metric.
    [[nodiscard]] std::uint64_t deltaCycles() const noexcept { return deltasRun_; }

    // --- kernel probes (always-on counters; cost: one increment each) -------

    /// Queue entries executed so far (transactions applied + actions run).
    [[nodiscard]] std::uint64_t eventsDispatched() const noexcept { return dispatched_; }

    /// Largest pending-queue depth ever observed (a growing high-water mark
    /// is the signature of a run that schedules faster than it retires —
    /// the usual cause of a wall-clock watchdog timeout).
    [[nodiscard]] std::uint64_t queueHighWater() const noexcept { return queueHighWater_; }

    /// Pending-queue depth right now.
    [[nodiscard]] std::uint64_t pendingEvents() const noexcept { return queue_.size(); }

    /// Caps the number of delta cycles at one simulation time before the
    /// kernel declares a combinational loop (SchedulerLimitError).
    void setDeltaLimit(std::uint64_t limit) noexcept
    {
        deltaLimit_ = limit == 0 ? kDefaultDeltaLimit : limit;
    }
    [[nodiscard]] std::uint64_t deltaLimit() const noexcept { return deltaLimit_; }

    /// Attaches a per-run watchdog (not owned; nullptr detaches). Every wave
    /// charges one digital-wave unit; budget exhaustion unwinds the kernel
    /// with WatchdogTimeout.
    void setWatchdog(Watchdog* wd) noexcept { watchdog_ = wd; }

    /// Attaches a flight recorder (not owned; nullptr detaches). Every
    /// retired wave records one event — a branch and a ring write, so the
    /// recorder can stay armed for entire campaigns.
    void setFlightRecorder(obs::FlightRecorder* fr) noexcept { recorder_ = fr; }

    /// Records the signal whose event was stamped most recently — the prime
    /// suspect when the delta-cycle limit trips (called by SignalBase).
    void noteSignalEvent(const std::string& name) noexcept { lastEventSignal_ = &name; }

    /// Registers a process so the kernel can run it once at startup
    /// (VHDL elaboration semantics). Called by Circuit.
    void registerProcess(Process* p) { processes_.push_back(p); }

    /// Queues a signal-value update at absolute time @p t (phase 1 of a wave):
    /// when due, the kernel calls @p sig->applyTxn(txnId). Transactions are
    /// pure data (no closure) so a pending queue can be snapshotted.
    void scheduleTransaction(SimTime t, SignalBase& sig, std::uint64_t txnId);

    /// Queues a callback at absolute time @p t (phase 2 of a wave). Used for
    /// clock generators, testbench stimuli and fault-injection triggers.
    void scheduleAction(SimTime t, std::function<void()> action);

    /// Marks @p p runnable in the current wave (called on signal events).
    void wake(Process* p);

    /// Earliest pending entry time, or kTimeMax if the queue is empty.
    [[nodiscard]] SimTime nextEventTime() const noexcept;

    /// Processes every entry with time <= @p tEnd, then sets now() = tEnd.
    /// Runs all registered processes once first if the kernel has not started.
    void runUntil(SimTime tEnd);

    /// Runs pending work at the current time only (all deltas), without
    /// advancing time. Used by the mixed-mode synchronizer after an analog
    /// threshold crossing forces a digital signal.
    void runDeltasNow();

    /// True once the initial process execution pass has happened.
    [[nodiscard]] bool started() const noexcept { return started_; }

    /// Forces the startup pass (normally triggered lazily by runUntil).
    void start();

    // --- snapshot support ---------------------------------------------------

    /// Serializes the kernel counters plus every pending *transaction*
    /// (time, seq, signal name, txn id). Pending *actions* are closures and
    /// are not captured: their owners (clock generators, stimulus schedules,
    /// PFD resets, scrubbers) record their fire times and re-arm on restore.
    /// Must be called at a quiescent point (no wave in flight).
    void captureState(snapshot::Writer& w) const;

    /// Restores the counters, clears the queue and re-inserts the captured
    /// transactions with their original sequence numbers (so same-wave apply
    /// order is preserved exactly). @p resolve maps a signal name back to the
    /// freshly built circuit's signal object.
    void restoreState(snapshot::Reader& r,
                      const std::function<SignalBase&(const std::string&)>& resolve);

private:
    struct Entry {
        SimTime time;
        std::uint64_t seq;
        bool isTransaction;
        std::function<void()> fn;          // action payload (empty for transactions)
        SignalBase* signal = nullptr;      // transaction target
        std::uint64_t txnId = 0;           // transaction id within the signal
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept
        {
            if (a.time != b.time) {
                return a.time > b.time;
            }
            return a.seq > b.seq;
        }
    };

    /// True while zero-delay work remains at the current time.
    [[nodiscard]] bool workPendingNow() const noexcept
    {
        return !runnable_.empty() || (!queue_.empty() && queue_.top().time <= now_);
    }

    void runWave(); // one wave at the current time

    /// Throws SchedulerLimitError naming the time, the last signal event and
    /// the last process run (the usual combinational-loop participants).
    [[noreturn]] void throwDeltaLimit() const;

    static constexpr std::uint64_t kDefaultDeltaLimit = 1'000'000;

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    std::vector<Process*> processes_;
    std::vector<Process*> runnable_;
    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t deltasRun_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t queueHighWater_ = 0;
    std::uint64_t waveId_ = 0;
    std::uint64_t deltaLimit_ = kDefaultDeltaLimit;
    Watchdog* watchdog_ = nullptr;
    obs::FlightRecorder* recorder_ = nullptr;
    const std::string* lastEventSignal_ = nullptr;
    const std::string* lastProcessRun_ = nullptr;
    bool started_ = false;
};

} // namespace gfi::digital
