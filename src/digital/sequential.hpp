#pragma once
// Sequential component library: flip-flops, registers, counters, dividers,
// shift registers and LFSRs. Every component registers an instrumentation
// hook so SEU bit-flips can be injected into its stored state by name — this
// is the "mutant" instrumentation of the paper's digital flow.

#include "digital/circuit.hpp"
#include "snapshot/snapshot.hpp"

#include <optional>

namespace gfi::digital {

/// Default clock-to-output delay for sequential elements.
inline constexpr SimTime kDefaultClkToQ = 200 * kPicosecond;

/// Positive-edge D flip-flop with optional asynchronous active-low reset and
/// optional inverted output.
class DFlipFlop : public Component, public snapshot::Snapshottable {
public:
    /// @param rstn  optional asynchronous active-low reset (clears to 0).
    /// @param qn    optional inverted output.
    DFlipFlop(Circuit& c, std::string name, LogicSignal& clk, LogicSignal& d, LogicSignal& q,
              LogicSignal* rstn = nullptr, LogicSignal* qn = nullptr,
              SimTime clkToQ = kDefaultClkToQ);

    /// Currently stored bit.
    [[nodiscard]] Logic state() const noexcept { return state_; }

    /// Overwrites the stored bit and propagates to the outputs (SEU injection).
    void setState(Logic v);

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const LogicSignal* clk() const noexcept { return clk_; }
    [[nodiscard]] const LogicSignal* d() const noexcept { return d_; }
    [[nodiscard]] const LogicSignal* q() const noexcept { return q_; }
    [[nodiscard]] const LogicSignal* qn() const noexcept { return qn_; }
    [[nodiscard]] const LogicSignal* rstn() const noexcept { return rstn_; }
    [[nodiscard]] SimTime clkToQ() const noexcept { return clkToQ_; }

    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    void propagate();

    Logic state_ = Logic::U;
    LogicSignal* clk_ = nullptr;
    LogicSignal* d_ = nullptr;
    LogicSignal* rstn_ = nullptr;
    LogicSignal* q_;
    LogicSignal* qn_;
    SimTime clkToQ_;
};

/// Multi-bit positive-edge register with optional enable and async reset.
class Register : public Component, public snapshot::Snapshottable {
public:
    /// @param en    optional active-high load enable (loads every edge if null).
    /// @param rstn  optional asynchronous active-low reset (clears to resetValue).
    Register(Circuit& c, std::string name, LogicSignal& clk, const Bus& d, const Bus& q,
             LogicSignal* en = nullptr, LogicSignal* rstn = nullptr,
             std::uint64_t resetValue = 0, SimTime clkToQ = kDefaultClkToQ);

    /// Currently stored value.
    [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

    /// Overwrites the stored value and propagates (SEU injection).
    void setState(std::uint64_t v);

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const LogicSignal* clk() const noexcept { return clk_; }
    [[nodiscard]] const Bus& d() const noexcept { return d_; }
    [[nodiscard]] const Bus& q() const noexcept { return q_; }
    [[nodiscard]] const LogicSignal* en() const noexcept { return en_; }
    [[nodiscard]] const LogicSignal* rstn() const noexcept { return rstn_; }
    [[nodiscard]] std::uint64_t resetValue() const noexcept { return resetValue_; }
    [[nodiscard]] SimTime clkToQ() const noexcept { return clkToQ_; }

    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    void propagate();

    std::uint64_t state_ = 0;
    std::uint64_t mask_;
    LogicSignal* clk_ = nullptr;
    LogicSignal* en_ = nullptr;
    LogicSignal* rstn_ = nullptr;
    std::uint64_t resetValue_ = 0;
    Bus d_;
    Bus q_;
    SimTime clkToQ_;
};

/// Up counter with synchronous enable, asynchronous reset, modulo wrap and a
/// terminal-count output.
class Counter : public Component, public snapshot::Snapshottable {
public:
    /// @param modulo  wrap value (counts 0..modulo-1); 0 means natural 2^width wrap.
    /// @param tc      optional terminal-count output, high while count == modulo-1.
    Counter(Circuit& c, std::string name, LogicSignal& clk, const Bus& q,
            LogicSignal* rstn = nullptr, LogicSignal* en = nullptr, std::uint64_t modulo = 0,
            LogicSignal* tc = nullptr, SimTime clkToQ = kDefaultClkToQ);

    /// Current count.
    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

    /// Overwrites the count and propagates (SEU injection).
    void setCount(std::uint64_t v);

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const LogicSignal* clk() const noexcept { return clk_; }
    [[nodiscard]] const Bus& q() const noexcept { return q_; }
    [[nodiscard]] const LogicSignal* rstn() const noexcept { return rstn_; }
    [[nodiscard]] const LogicSignal* en() const noexcept { return en_; }
    [[nodiscard]] const LogicSignal* tc() const noexcept { return tc_; }
    [[nodiscard]] std::uint64_t modulo() const noexcept { return modulo_; }
    [[nodiscard]] SimTime clkToQ() const noexcept { return clkToQ_; }

    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    void propagate();

    std::uint64_t count_ = 0;
    std::uint64_t modulo_;
    std::uint64_t mask_;
    LogicSignal* clk_ = nullptr;
    LogicSignal* rstn_ = nullptr;
    LogicSignal* en_ = nullptr;
    Bus q_;
    LogicSignal* tc_;
    SimTime clkToQ_;
};

/// Divide-by-N clock divider: output toggles every N/2 rising input edges,
/// so the output period equals N input periods. N must be even and >= 2.
/// This is the PLL feedback divider of the paper's case study (N = 100).
class ClockDivider : public Component, public snapshot::Snapshottable {
public:
    ClockDivider(Circuit& c, std::string name, LogicSignal& clkIn, LogicSignal& clkOut,
                 int divideBy, LogicSignal* rstn = nullptr, SimTime delay = kDefaultClkToQ);

    /// Current edge count within the half period.
    [[nodiscard]] int phase() const noexcept { return count_; }

    /// Injects into the divider state: corrupts the edge counter (SEU).
    void setPhase(int v);

    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    int count_ = 0;
    int half_;
    Logic out_ = Logic::Zero;
    LogicSignal* clkOut_;
    SimTime delay_;
};

/// Serial-in serial-out shift register (also exposes parallel taps).
class ShiftRegister : public Component, public snapshot::Snapshottable {
public:
    ShiftRegister(Circuit& c, std::string name, LogicSignal& clk, LogicSignal& serialIn,
                  const Bus& taps, LogicSignal* rstn = nullptr,
                  SimTime clkToQ = kDefaultClkToQ);

    /// Current contents (bit 0 = oldest / output end).
    [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

    /// Overwrites the contents and propagates (SEU injection).
    void setState(std::uint64_t v);

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const LogicSignal* clk() const noexcept { return clk_; }
    [[nodiscard]] const LogicSignal* serialIn() const noexcept { return serialIn_; }
    [[nodiscard]] const Bus& taps() const noexcept { return taps_; }
    [[nodiscard]] const LogicSignal* rstn() const noexcept { return rstn_; }
    [[nodiscard]] SimTime clkToQ() const noexcept { return clkToQ_; }

    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    void propagate();

    std::uint64_t state_ = 0;
    int width_;
    LogicSignal* clk_ = nullptr;
    LogicSignal* serialIn_ = nullptr;
    LogicSignal* rstn_ = nullptr;
    Bus taps_;
    SimTime clkToQ_;
};

/// Fibonacci LFSR with a caller-supplied tap mask; a classic campaign target
/// because one bit-flip changes the whole future sequence.
class Lfsr : public Component, public snapshot::Snapshottable {
public:
    /// @param taps  XOR feedback tap mask (bit i set = stage i feeds back).
    Lfsr(Circuit& c, std::string name, LogicSignal& clk, const Bus& q, std::uint64_t taps,
         std::uint64_t seed = 1, LogicSignal* rstn = nullptr, SimTime clkToQ = kDefaultClkToQ);

    /// Current LFSR state.
    [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

    /// Overwrites the state and propagates (SEU injection).
    void setState(std::uint64_t v);

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const LogicSignal* clk() const noexcept { return clk_; }
    [[nodiscard]] const Bus& q() const noexcept { return q_; }
    [[nodiscard]] const LogicSignal* rstn() const noexcept { return rstn_; }
    [[nodiscard]] std::uint64_t taps() const noexcept { return taps_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
    [[nodiscard]] SimTime clkToQ() const noexcept { return clkToQ_; }

    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    void propagate();

    std::uint64_t state_;
    std::uint64_t taps_;
    std::uint64_t seed_;
    std::uint64_t mask_;
    int width_;
    LogicSignal* clk_ = nullptr;
    LogicSignal* rstn_ = nullptr;
    Bus q_;
    SimTime clkToQ_;
};

/// Free-running clock generator (testbench stimulus, and the PLL reference).
class ClockGen : public Component, public snapshot::Snapshottable {
public:
    /// @param period    full clock period.
    /// @param dutyHigh  fraction of the period spent high, default 50 %.
    /// @param start     time of the first rising edge.
    ClockGen(Circuit& c, std::string name, LogicSignal& clk, SimTime period,
             double dutyHigh = 0.5, SimTime start = 0);

    /// The configured period.
    [[nodiscard]] SimTime period() const noexcept { return period_; }

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const LogicSignal* clk() const noexcept { return clk_; }
    [[nodiscard]] SimTime highTime() const noexcept { return highTime_; }
    [[nodiscard]] SimTime nextRise() const noexcept { return nextRise_; }

    /// Captures the pending edge times (next rise, pending fall); restore
    /// re-arms the scheduled actions from them, since scheduler snapshots
    /// carry only data transactions, not action closures.
    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    void riseAt(SimTime t);
    void fallAt(SimTime t);

    Scheduler* sched_;
    LogicSignal* clk_;
    SimTime period_;
    SimTime highTime_;
    SimTime nextRise_ = 0; ///< time of the armed rising-edge action
    SimTime fallAt_ = -1;  ///< time of the armed falling-edge action, -1 if none
};

} // namespace gfi::digital
