#include "digital/circuit.hpp"

namespace gfi::digital {

std::uint64_t Bus::toUint(bool* allKnown) const
{
    std::uint64_t value = 0;
    bool known = true;
    for (std::size_t i = 0; i < bits_.size(); ++i) {
        const Logic v = bits_[i]->value();
        if (isKnown01(v)) {
            value |= static_cast<std::uint64_t>(toBool(v)) << i;
        } else {
            known = false;
        }
    }
    if (allKnown != nullptr) {
        *allKnown = known;
    }
    return value;
}

void Bus::scheduleUint(std::uint64_t value, SimTime delay) const
{
    for (std::size_t i = 0; i < bits_.size(); ++i) {
        bits_[i]->scheduleInertial(fromBool(((value >> i) & 1u) != 0), delay);
    }
}

void Bus::forceUint(std::uint64_t value) const
{
    for (std::size_t i = 0; i < bits_.size(); ++i) {
        bits_[i]->forceValue(fromBool(((value >> i) & 1u) != 0));
    }
}

std::string Bus::str() const
{
    std::string s;
    s.reserve(bits_.size());
    for (auto it = bits_.rbegin(); it != bits_.rend(); ++it) {
        s += toChar((*it)->value());
    }
    return s;
}

Bus Circuit::bus(const std::string& name, int width, Logic initial)
{
    std::vector<LogicSignal*> bits;
    bits.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
        bits.push_back(&logicSignal(name + "[" + std::to_string(i) + "]", initial));
    }
    return Bus{std::move(bits)};
}

LogicSignal& Circuit::findLogic(const std::string& name) const
{
    const auto it = signals_.find(name);
    if (it == signals_.end()) {
        throw std::out_of_range("Circuit: unknown signal '" + name + "'");
    }
    auto* sig = dynamic_cast<LogicSignal*>(it->second.get());
    if (sig == nullptr) {
        throw std::out_of_range("Circuit: signal '" + name + "' is not a logic signal");
    }
    return *sig;
}

SignalBase& Circuit::findSignal(const std::string& name) const
{
    const auto it = signals_.find(name);
    if (it == signals_.end()) {
        throw std::out_of_range("Circuit: unknown signal '" + name + "'");
    }
    return *it->second;
}

Process& Circuit::process(const std::string& name, std::function<void()> fn,
                          std::initializer_list<SignalBase*> sensitivity)
{
    return process(name, std::move(fn), std::vector<SignalBase*>(sensitivity));
}

Process& Circuit::process(const std::string& name, std::function<void()> fn,
                          const std::vector<SignalBase*>& sensitivity)
{
    auto proc = std::make_unique<Process>(name, std::move(fn));
    Process& ref = *proc;
    processes_.push_back(std::move(proc));
    for (SignalBase* s : sensitivity) {
        s->addListener(&ref);
    }
    sched_.registerProcess(&ref);

    ProcessConnectivity conn;
    conn.process = &ref;
    conn.triggers = sensitivity;
    connIndex_[&ref] = connectivity_.size();
    connectivity_.push_back(std::move(conn));
    return ref;
}

ProcessConnectivity& Circuit::connOf(Process& p)
{
    const auto it = connIndex_.find(&p);
    if (it == connIndex_.end()) {
        throw std::logic_error("Circuit: process '" + p.name() +
                               "' was not created by this circuit");
    }
    return connectivity_[it->second];
}

void Circuit::noteDrives(Process& p, const std::vector<SignalBase*>& signals)
{
    auto& drives = connOf(p).drives;
    drives.insert(drives.end(), signals.begin(), signals.end());
}

void Circuit::noteReads(Process& p, const std::vector<SignalBase*>& signals)
{
    auto& reads = connOf(p).reads;
    reads.insert(reads.end(), signals.begin(), signals.end());
}

void Circuit::noteSequential(Process& p, SignalBase* clock)
{
    ProcessConnectivity& conn = connOf(p);
    conn.sequential = true;
    conn.clock = clock;
}

void Circuit::noteCombKind(Process& p, CombKind kind, SimTime delay)
{
    ProcessConnectivity& conn = connOf(p);
    conn.combKind = kind;
    conn.combDelay = delay;
}

std::vector<SignalBase*> busSignals(const Bus& bus)
{
    return {bus.bits().begin(), bus.bits().end()};
}

void Circuit::registerSignal(const std::string& name, std::unique_ptr<SignalBase> sig)
{
    if (signals_.count(name) != 0) {
        throw std::invalid_argument("Circuit: duplicate signal '" + name + "'");
    }
    signals_.emplace(name, std::move(sig));
    signalOrder_.push_back(name);
}

} // namespace gfi::digital
