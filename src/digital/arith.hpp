#pragma once
// Combinational bus-level datapath components: adder, comparator, bus mux.

#include "digital/circuit.hpp"

namespace gfi::digital {

/// Combinational unsigned adder: sum = a + b (+ cin), with optional carry out.
class Adder : public Component {
public:
    Adder(Circuit& c, std::string name, const Bus& a, const Bus& b, const Bus& sum,
          LogicSignal* cin = nullptr, LogicSignal* cout = nullptr,
          SimTime delay = 300 * kPicosecond);

    [[nodiscard]] bool snapshotExempt() const noexcept override { return true; }

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const Bus& a() const noexcept { return a_; }
    [[nodiscard]] const Bus& b() const noexcept { return b_; }
    [[nodiscard]] const Bus& sum() const noexcept { return sum_; }
    [[nodiscard]] const LogicSignal* cin() const noexcept { return cin_; }
    [[nodiscard]] const LogicSignal* cout() const noexcept { return cout_; }
    [[nodiscard]] SimTime delay() const noexcept { return delay_; }

private:
    Bus a_;
    Bus b_;
    Bus sum_;
    LogicSignal* cin_;
    LogicSignal* cout_;
    SimTime delay_;
};

/// Combinational equality comparator: eq = (a == b), X if any input unknown.
class EqComparator : public Component {
public:
    EqComparator(Circuit& c, std::string name, const Bus& a, const Bus& b, LogicSignal& eq,
                 SimTime delay = 200 * kPicosecond);

    [[nodiscard]] bool snapshotExempt() const noexcept override { return true; }

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const Bus& a() const noexcept { return a_; }
    [[nodiscard]] const Bus& b() const noexcept { return b_; }
    [[nodiscard]] const LogicSignal* eq() const noexcept { return eq_; }
    [[nodiscard]] SimTime delay() const noexcept { return delay_; }

private:
    Bus a_;
    Bus b_;
    LogicSignal* eq_;
    SimTime delay_;
};

/// Two-to-one bus multiplexer: y = sel ? b : a.
class BusMux2 : public Component {
public:
    BusMux2(Circuit& c, std::string name, const Bus& a, const Bus& b, LogicSignal& sel,
            const Bus& y, SimTime delay = 150 * kPicosecond);

    [[nodiscard]] bool snapshotExempt() const noexcept override { return true; }
};

} // namespace gfi::digital
