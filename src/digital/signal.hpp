#pragma once
// Digital signals with VHDL-style projected waveforms.
//
// A Signal<T> carries a current value plus a list of pending transactions.
// Scheduling uses either inertial semantics (a new write cancels every pending
// transaction — the behaviour of a simple gate output) or transport semantics
// (pending transactions earlier than the new one are preserved — the behaviour
// of a pure delay line). Value changes mark an *event* and wake every process
// on the signal's sensitivity list.

#include "digital/logic.hpp"
#include "digital/scheduler.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace gfi::digital {

/// Non-template base so traces and saboteurs can handle signals generically.
class SignalBase {
public:
    SignalBase(Scheduler& sched, std::string name)
        : sched_(&sched), name_(std::move(name))
    {
    }
    virtual ~SignalBase() = default;
    SignalBase(const SignalBase&) = delete;
    SignalBase& operator=(const SignalBase&) = delete;

    /// Hierarchical signal name, e.g. "pll/pfd/up".
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Adds @p p to the sensitivity list: it wakes on every event of this signal.
    void addListener(Process* p) { listeners_.push_back(p); }

    /// Number of sensitive processes (lint: a signal nobody listens to,
    /// watches or reads is dead).
    [[nodiscard]] std::size_t listenerCount() const noexcept { return listeners_.size(); }

    /// Number of raw event watchers (trace recorders, D->A bridges).
    [[nodiscard]] std::size_t watcherCount() const noexcept { return watchers_.size(); }

    /// Time of the most recent event, or -1 before the first one.
    [[nodiscard]] SimTime lastEventTime() const noexcept { return lastEventTime_; }

    /// True if this signal changed value in the current execution wave
    /// (VHDL 'event): fresh enough that edge-triggered processes woken by the
    /// change still see it as an edge.
    [[nodiscard]] bool event() const noexcept
    {
        return lastEventTime_ == sched_->now() && lastEventStamp_ == sched_->waveId();
    }

    /// The scheduler this signal lives in.
    [[nodiscard]] Scheduler& scheduler() const noexcept { return *sched_; }

    /// Applies the pending transaction @p id (phase 1 of a wave). Called by
    /// the scheduler, which stores transactions as (signal, id) data so the
    /// pending queue can be snapshotted.
    virtual void applyTxn(std::uint64_t id) = 0;

    /// Serializes the full signal state: value, last value, event bookkeeping
    /// and the pending-transaction list (fixed field order, see Snapshottable).
    virtual void captureState(snapshot::Writer& w) const = 0;

    /// Restores the members written by captureState() directly — no events
    /// are raised and nothing is scheduled (the scheduler re-inserts pending
    /// queue entries itself, preserving their original sequence numbers).
    virtual void restoreState(snapshot::Reader& r) = 0;

protected:
    void noteEvent()
    {
        lastEventTime_ = sched_->now();
        lastEventStamp_ = sched_->waveId();
        sched_->noteSignalEvent(name_);
        for (Process* p : listeners_) {
            sched_->wake(p);
        }
        for (auto& cb : watchers_) {
            cb();
        }
    }

    /// Registers a raw callback run on every event (used by trace recorders).
    friend class SignalWatch;

    Scheduler* sched_;
    std::string name_;
    std::vector<Process*> listeners_;
    std::vector<std::function<void()>> watchers_;
    SimTime lastEventTime_ = -1;
    std::uint64_t lastEventStamp_ = 0;
};

/// Helper granting trace recorders access to the event callback list.
class SignalWatch {
public:
    /// Invokes @p cb on every event of @p s (after the value update).
    static void onEvent(SignalBase& s, std::function<void()> cb)
    {
        s.watchers_.push_back(std::move(cb));
    }
};

/// A typed digital signal.
template <typename T>
class Signal : public SignalBase {
public:
    Signal(Scheduler& sched, std::string name, T initial)
        : SignalBase(sched, std::move(name)), value_(initial), previous_(initial)
    {
    }

    /// Current value.
    [[nodiscard]] const T& value() const noexcept { return value_; }

    /// Value before the most recent event (VHDL 'last_value).
    [[nodiscard]] const T& lastValue() const noexcept { return previous_; }

    /// Schedules @p v after @p delay with inertial semantics: every pending
    /// transaction is cancelled first (last write wins).
    void scheduleInertial(T v, SimTime delay = 0)
    {
        for (Txn& t : pending_) {
            t.canceled = true;
        }
        push(v, delay);
    }

    /// Schedules @p v after @p delay with transport semantics: pending
    /// transactions due earlier are preserved, later ones are cancelled.
    void scheduleTransport(T v, SimTime delay = 0)
    {
        const SimTime due = sched_->now() + delay;
        for (Txn& t : pending_) {
            if (t.due >= due) {
                t.canceled = true;
            }
        }
        push(v, delay);
    }

    /// Immediately overwrites the value outside the normal two-phase update.
    /// Only fault injectors and testbench setup should use this; it still
    /// marks an event so downstream processes re-evaluate.
    void forceValue(T v)
    {
        if (v == value_) {
            return;
        }
        previous_ = value_;
        value_ = v;
        noteEvent();
    }

    /// Number of not-yet-applied transactions (diagnostic).
    [[nodiscard]] std::size_t pendingCount() const noexcept
    {
        std::size_t n = 0;
        for (const Txn& t : pending_) {
            n += t.canceled ? 0 : 1;
        }
        return n;
    }

    void applyTxn(std::uint64_t id) override { apply(id); }

    void captureState(snapshot::Writer& w) const override
    {
        w.u64(static_cast<std::uint64_t>(value_));
        w.u64(static_cast<std::uint64_t>(previous_));
        w.i64(lastEventTime_);
        w.u64(lastEventStamp_);
        w.u64(nextTxnId_);
        w.u64(pending_.size());
        for (const Txn& t : pending_) {
            w.i64(t.due);
            w.u64(t.id);
            w.u64(static_cast<std::uint64_t>(t.value));
            w.boolean(t.canceled);
        }
    }

    void restoreState(snapshot::Reader& r) override
    {
        value_ = static_cast<T>(r.u64());
        previous_ = static_cast<T>(r.u64());
        lastEventTime_ = r.i64();
        lastEventStamp_ = r.u64();
        nextTxnId_ = r.u64();
        pending_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            Txn t{};
            t.due = r.i64();
            t.id = r.u64();
            t.value = static_cast<T>(r.u64());
            t.canceled = r.boolean();
            pending_.push_back(t);
        }
    }

private:
    struct Txn {
        SimTime due;
        std::uint64_t id;
        T value;
        bool canceled;
    };

    void push(T v, SimTime delay)
    {
        const std::uint64_t id = nextTxnId_++;
        pending_.push_back(Txn{sched_->now() + delay, id, v, false});
        sched_->scheduleTransaction(sched_->now() + delay, *this, id);
    }

    void apply(std::uint64_t id)
    {
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            if (pending_[i].id != id) {
                continue;
            }
            const Txn txn = pending_[i];
            pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
            if (!txn.canceled && !(txn.value == value_)) {
                previous_ = value_;
                value_ = txn.value;
                noteEvent();
            }
            return;
        }
    }

    T value_;
    T previous_;
    std::vector<Txn> pending_;
    std::uint64_t nextTxnId_ = 0;
};

/// Convenience alias: the workhorse single-bit signal type.
using LogicSignal = Signal<Logic>;

/// True when @p s had an event this delta and now carries a rising edge (0->1).
inline bool risingEdge(const LogicSignal& s) noexcept
{
    return s.event() && toX01(s.value()) == Logic::One && toX01(s.lastValue()) == Logic::Zero;
}

/// True when @p s had an event this delta and now carries a falling edge (1->0).
inline bool fallingEdge(const LogicSignal& s) noexcept
{
    return s.event() && toX01(s.value()) == Logic::Zero && toX01(s.lastValue()) == Logic::One;
}

} // namespace gfi::digital
