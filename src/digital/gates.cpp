#include "digital/gates.hpp"

#include <stdexcept>

namespace gfi::digital {

Gate::Gate(Circuit& c, std::string name, GateKind kind, std::vector<LogicSignal*> inputs,
           LogicSignal& output, SimTime delay)
    : Component(std::move(name)), kind_(kind), inputs_(std::move(inputs)), output_(&output),
      delay_(delay)
{
    if (inputs_.empty()) {
        throw std::invalid_argument("Gate '" + this->name() + "': needs at least one input");
    }
    if ((kind_ == GateKind::Buf || kind_ == GateKind::Not) && inputs_.size() != 1) {
        throw std::invalid_argument("Gate '" + this->name() + "': Buf/Not take one input");
    }
    std::vector<SignalBase*> sens(inputs_.begin(), inputs_.end());
    Process& p = c.process(this->name() + "/eval",
                           [this] {
                               std::vector<Logic> values;
                               values.reserve(inputs_.size());
                               for (const LogicSignal* in : inputs_) {
                                   values.push_back(in->value());
                               }
                               output_->scheduleInertial(evaluate(kind_, values), delay_);
                           },
                           sens);
    c.noteDrives(p, {output_});
    if (kind_ == GateKind::Buf) {
        c.noteCombKind(p, CombKind::Buffer, delay_);
    } else if (kind_ == GateKind::Not) {
        c.noteCombKind(p, CombKind::Inverter, delay_);
    }
}

Logic Gate::evaluate(GateKind kind, const std::vector<Logic>& values)
{
    switch (kind) {
    case GateKind::Buf:
        return toX01(values.front());
    case GateKind::Not:
        return logicNot(values.front());
    default:
        break;
    }
    Logic acc = values.front();
    for (std::size_t i = 1; i < values.size(); ++i) {
        switch (kind) {
        case GateKind::And:
        case GateKind::Nand:
            acc = logicAnd(acc, values[i]);
            break;
        case GateKind::Or:
        case GateKind::Nor:
            acc = logicOr(acc, values[i]);
            break;
        case GateKind::Xor:
        case GateKind::Xnor:
            acc = logicXor(acc, values[i]);
            break;
        default:
            break;
        }
    }
    switch (kind) {
    case GateKind::Nand:
    case GateKind::Nor:
    case GateKind::Xnor:
        return logicNot(acc);
    default:
        return toX01(acc);
    }
}

Mux2::Mux2(Circuit& c, std::string name, LogicSignal& a, LogicSignal& b, LogicSignal& sel,
           LogicSignal& y, SimTime delay)
    : Component(std::move(name))
{
    Process& p = c.process(this->name() + "/eval",
                           [&a, &b, &sel, &y, delay] {
                               const Logic s = toX01(sel.value());
                               Logic out = Logic::X;
                               if (s == Logic::Zero) {
                                   out = toX01(a.value());
                               } else if (s == Logic::One) {
                                   out = toX01(b.value());
                               } else if (toX01(a.value()) == toX01(b.value())) {
                                   out = toX01(a.value()); // both branches agree: sel unknown is harmless
                               }
                               y.scheduleInertial(out, delay);
                           },
                           {&a, &b, &sel});
    c.noteDrives(p, {&y});
}

} // namespace gfi::digital
