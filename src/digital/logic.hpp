#pragma once
// Nine-valued logic system modeled on IEEE 1164 (std_logic).
//
// The digital kernel uses the full nine-valued algebra so that behavioral
// models can express uninitialized state ('U'), unknowns propagated by fault
// injection ('X'), high impedance ('Z') and weak drives ('W'/'L'/'H') exactly
// as a VHDL description would — the paper's digital flow instruments VHDL
// models, and faithful value semantics keep fault-effect propagation honest.

#include <cstdint>

namespace gfi::digital {

/// One std_logic value.
enum class Logic : std::uint8_t {
    U,    ///< uninitialized
    X,    ///< forcing unknown
    Zero, ///< forcing 0
    One,  ///< forcing 1
    Z,    ///< high impedance
    W,    ///< weak unknown
    L,    ///< weak 0
    H,    ///< weak 1
    DC,   ///< don't care ('-')
};

inline constexpr int kLogicCount = 9;

/// Character representation matching std_logic ('U','X','0','1','Z','W','L','H','-').
char toChar(Logic v) noexcept;

/// Parses a std_logic character; unknown characters map to Logic::X.
Logic logicFromChar(char c) noexcept;

/// IEEE 1164 resolution function for two drivers of the same net.
Logic resolve(Logic a, Logic b) noexcept;

/// True if the value is a forcing or weak 0/1 (i.e. convertible to bool).
constexpr bool isKnown01(Logic v) noexcept
{
    return v == Logic::Zero || v == Logic::One || v == Logic::L || v == Logic::H;
}

/// Converts to bool; 'L' counts as false, 'H' as true. Precondition: isKnown01(v).
constexpr bool toBool(Logic v) noexcept
{
    return v == Logic::One || v == Logic::H;
}

/// Converts a bool to a forcing logic level.
constexpr Logic fromBool(bool b) noexcept
{
    return b ? Logic::One : Logic::Zero;
}

/// IEEE 1164 'and'. Unknown inputs yield X unless dominated by a 0.
Logic logicAnd(Logic a, Logic b) noexcept;

/// IEEE 1164 'or'. Unknown inputs yield X unless dominated by a 1.
Logic logicOr(Logic a, Logic b) noexcept;

/// IEEE 1164 'xor'. Any unknown input yields X.
Logic logicXor(Logic a, Logic b) noexcept;

/// IEEE 1164 'not'. Unknowns stay X; weak levels are normalized.
Logic logicNot(Logic a) noexcept;

/// Normalizes weak levels to forcing levels ('L'->'0', 'H'->'1'), everything
/// non-01 to X. This is VHDL's to_x01.
Logic toX01(Logic a) noexcept;

/// Flips a known 0/1 value; unknowns become X. Used by SEU bit-flip injection.
constexpr Logic flipped(Logic v) noexcept
{
    if (v == Logic::Zero || v == Logic::L) {
        return Logic::One;
    }
    if (v == Logic::One || v == Logic::H) {
        return Logic::Zero;
    }
    return Logic::X;
}

} // namespace gfi::digital
