#pragma once
// Instrumentation registry: the "mutant" side of the paper's flow.
//
// In the paper, digital blocks are turned into *mutants* — modified
// descriptions whose memorized values can be corrupted during simulation
// (bit-flips modelling SEUs, erroneous FSM transitions, ...). Here every
// sequential component self-registers a StateHook under its hierarchical
// name; a fault injector addresses the hook by name to read, set or flip the
// stored bits. This reproduces the separation the paper keeps between the
// instrumented description and the campaign definition.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace gfi::digital {

/// Access hooks into one sequential element's stored state.
struct StateHook {
    std::string name;                       ///< hierarchical instance name
    int width = 1;                          ///< number of state bits
    std::function<std::uint64_t()> get;     ///< reads the stored bits
    std::function<void(std::uint64_t)> set; ///< overwrites the stored bits and propagates
    std::function<void(int)> flipBit;       ///< flips bit i (SEU) and propagates
};

/// Name-indexed collection of every injectable state element in a circuit.
class InstrumentationRegistry {
public:
    /// Registers a hook; throws std::invalid_argument on duplicate names.
    void add(StateHook hook);

    /// Looks up a hook; throws std::out_of_range when @p name is unknown.
    [[nodiscard]] const StateHook& hook(const std::string& name) const;

    /// True if a hook with this name exists.
    [[nodiscard]] bool contains(const std::string& name) const
    {
        return hooks_.count(name) != 0;
    }

    /// All registered hook names, sorted (map order): this is the fault-target
    /// list a campaign enumerates.
    [[nodiscard]] std::vector<std::string> names() const;

    /// Total number of injectable state bits across all hooks.
    [[nodiscard]] int totalBits() const;

    /// Iteration support.
    [[nodiscard]] const std::map<std::string, StateHook>& all() const noexcept
    {
        return hooks_;
    }

private:
    std::map<std::string, StateHook> hooks_;
};

} // namespace gfi::digital
