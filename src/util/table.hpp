#pragma once
// Minimal fixed-width text-table printer used by the benchmark harnesses to
// print paper-style result tables.

#include <string>
#include <vector>

namespace gfi {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
public:
    /// Sets the header row (also defines the column count).
    void setHeader(std::vector<std::string> header);

    /// Appends a data row; short rows are padded with empty cells.
    void addRow(std::vector<std::string> row);

    /// Inserts a horizontal separator line before the next row.
    void addSeparator();

    /// Renders the table to a string (trailing newline included).
    [[nodiscard]] std::string str() const;

    /// Renders the table directly to stdout.
    void print() const;

private:
    std::vector<std::string> header_;
    // Each row is either a list of cells or the sentinel "separator" flag.
    struct Row {
        std::vector<std::string> cells;
        bool separator = false;
    };
    std::vector<Row> rows_;
};

/// Writes rows as CSV (no quoting beyond doubling embedded quotes).
class CsvWriter {
public:
    /// Opens @p path for writing; throws std::runtime_error on failure.
    explicit CsvWriter(const std::string& path);
    ~CsvWriter();

    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

    /// Writes one CSV row.
    void writeRow(const std::vector<std::string>& cells);

private:
    void* file_;
};

} // namespace gfi
