#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace gfi {

void TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back({std::move(row), false});
}

void TextTable::addSeparator()
{
    rows_.push_back({{}, true});
}

std::string TextTable::str() const
{
    std::size_t columns = header_.size();
    for (const Row& r : rows_) {
        columns = std::max(columns, r.cells.size());
    }
    std::vector<std::size_t> width(columns, 0);
    auto measure = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            width[i] = std::max(width[i], cells[i].size());
        }
    };
    measure(header_);
    for (const Row& r : rows_) {
        measure(r.cells);
    }

    auto renderLine = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (std::size_t i = 0; i < columns; ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : std::string{};
            line += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
        }
        return line + "\n";
    };
    auto renderSep = [&] {
        std::string line = "+";
        for (std::size_t i = 0; i < columns; ++i) {
            line += std::string(width[i] + 2, '-') + "+";
        }
        return line + "\n";
    };

    std::string out;
    out += renderSep();
    if (!header_.empty()) {
        out += renderLine(header_);
        out += renderSep();
    }
    for (const Row& r : rows_) {
        out += r.separator ? renderSep() : renderLine(r.cells);
    }
    out += renderSep();
    return out;
}

void TextTable::print() const
{
    const std::string s = str();
    std::fwrite(s.data(), 1, s.size(), stdout);
}

CsvWriter::CsvWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w"))
{
    if (file_ == nullptr) {
        throw std::runtime_error("CsvWriter: cannot open " + path);
    }
}

CsvWriter::~CsvWriter()
{
    if (file_ != nullptr) {
        std::fclose(static_cast<std::FILE*>(file_));
    }
}

void CsvWriter::writeRow(const std::vector<std::string>& cells)
{
    auto* f = static_cast<std::FILE*>(file_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::string cell = cells[i];
        const bool needsQuote = cell.find_first_of(",\"\n") != std::string::npos;
        if (needsQuote) {
            std::string quoted = "\"";
            for (char c : cell) {
                if (c == '"') {
                    quoted += '"';
                }
                quoted += c;
            }
            quoted += '"';
            cell = std::move(quoted);
        }
        std::fputs(cell.c_str(), f);
        if (i + 1 < cells.size()) {
            std::fputc(',', f);
        }
    }
    std::fputc('\n', f);
}

} // namespace gfi
