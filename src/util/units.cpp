#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace gfi {

namespace {

struct Prefix {
    double scale;
    const char* symbol;
};

constexpr std::array<Prefix, 17> kPrefixes{{
    {1e24, "Y"}, {1e21, "Z"}, {1e18, "E"}, {1e15, "P"}, {1e12, "T"},
    {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""}, {1e-3, "m"},
    {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
    {1e-21, "z"}, {1e-24, "y"},
}};

} // namespace

std::string formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    return buf;
}

std::string formatSi(double value, const std::string& unit, int precision)
{
    if (value == 0.0 || !std::isfinite(value)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%g %s", value, unit.c_str());
        return buf;
    }
    const double mag = std::fabs(value);
    const Prefix* chosen = &kPrefixes.back();
    for (const Prefix& p : kPrefixes) {
        if (mag >= p.scale) {
            chosen = &p;
            break;
        }
    }
    return formatDouble(value / chosen->scale, precision) + " " + chosen->symbol + unit;
}

} // namespace gfi
