#pragma once
// Minimal JSON value model + recursive-descent parser.
//
// The repo emits plenty of JSON (reports, journals, traces, benchmarks) but
// until benchdiff nothing needed to READ arbitrary JSON back. This is the
// smallest standard-compliant reader that covers that: all JSON types,
// standard escapes including \uXXXX (encoded as UTF-8), nesting-depth bound,
// order-preserving objects (so round-tripped key order is inspectable).
// Throws std::runtime_error with a byte offset on malformed input.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gfi::util {

class JsonValue;

/// Object member list, document order. Duplicate keys are kept (lookup
/// returns the first), matching how lenient parsers treat them.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

/// One parsed JSON value.
class JsonValue {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;
    explicit JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
    explicit JsonValue(double d) : type_(Type::Number), num_(d) {}
    explicit JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}
    explicit JsonValue(JsonArray a)
        : type_(Type::Array), arr_(std::make_shared<JsonArray>(std::move(a)))
    {
    }
    explicit JsonValue(JsonObject o)
        : type_(Type::Object), obj_(std::make_shared<JsonObject>(std::move(o)))
    {
    }

    [[nodiscard]] Type type() const noexcept { return type_; }
    [[nodiscard]] bool isNull() const noexcept { return type_ == Type::Null; }
    [[nodiscard]] bool isBool() const noexcept { return type_ == Type::Bool; }
    [[nodiscard]] bool isNumber() const noexcept { return type_ == Type::Number; }
    [[nodiscard]] bool isString() const noexcept { return type_ == Type::String; }
    [[nodiscard]] bool isArray() const noexcept { return type_ == Type::Array; }
    [[nodiscard]] bool isObject() const noexcept { return type_ == Type::Object; }

    [[nodiscard]] bool asBool() const { return require(Type::Bool), bool_; }
    [[nodiscard]] double asNumber() const { return require(Type::Number), num_; }
    [[nodiscard]] const std::string& asString() const
    {
        return require(Type::String), str_;
    }
    [[nodiscard]] const JsonArray& asArray() const { return require(Type::Array), *arr_; }
    [[nodiscard]] const JsonObject& asObject() const
    {
        return require(Type::Object), *obj_;
    }

    /// First member named @p key, or nullptr (also nullptr on non-objects).
    [[nodiscard]] const JsonValue* find(const std::string& key) const
    {
        if (type_ != Type::Object) {
            return nullptr;
        }
        for (const auto& [k, v] : *obj_) {
            if (k == key) {
                return &v;
            }
        }
        return nullptr;
    }

private:
    void require(Type t) const
    {
        if (type_ != t) {
            throw std::runtime_error("JsonValue: wrong type access");
        }
    }

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::shared_ptr<JsonArray> arr_;  ///< shared: JsonValue stays copyable
    std::shared_ptr<JsonObject> obj_;
};

/// Parses one JSON document (leading/trailing whitespace allowed, nothing
/// else after the value). Throws std::runtime_error on malformed input.
[[nodiscard]] JsonValue parseJson(const std::string& text);

} // namespace gfi::util
