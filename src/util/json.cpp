#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace gfi::util {

namespace {

constexpr int kMaxDepth = 64; // bounds recursion on hostile input

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parseDocument()
    {
        skipWs();
        JsonValue v = parseValue(0);
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after the JSON value");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const
    {
        throw std::runtime_error("json: " + what + " at byte " + std::to_string(pos_));
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consumeLiteral(const char* lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0') {
            ++n;
        }
        if (text_.compare(pos_, n, lit) != 0) {
            return false;
        }
        pos_ += n;
        return true;
    }

    /// Appends @p cp as UTF-8.
    static void appendUtf8(std::string& out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    unsigned parseHex4()
    {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            cp <<= 4;
            if (c >= '0' && c <= '9') {
                cp |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                cp |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                cp |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                fail("bad \\u escape");
            }
            ++pos_;
        }
        return cp;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the low half.
                    if (peek() == '\\' && pos_ + 1 < text_.size() &&
                        text_[pos_ + 1] == 'u') {
                        pos_ += 2;
                        const unsigned lo = parseHex4();
                        if (lo < 0xDC00 || lo > 0xDFFF) {
                            fail("bad surrogate pair");
                        }
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                    } else {
                        fail("lone high surrogate");
                    }
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
                ++pos_;
            }
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') {
                ++pos_;
            }
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
                ++pos_;
            }
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
            fail("bad number");
        }
        return JsonValue(std::strtod(text_.c_str() + start, nullptr));
    }

    JsonValue parseValue(int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
        }
        skipWs();
        switch (peek()) {
        case '{': {
            ++pos_;
            JsonObject obj;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return JsonValue(std::move(obj));
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                obj.emplace_back(std::move(key), parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return JsonValue(std::move(obj));
            }
        }
        case '[': {
            ++pos_;
            JsonArray arr;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return JsonValue(std::move(arr));
            }
            while (true) {
                arr.push_back(parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return JsonValue(std::move(arr));
            }
        }
        case '"':
            return JsonValue(parseString());
        case 't':
            if (consumeLiteral("true")) {
                return JsonValue(true);
            }
            fail("bad literal");
        case 'f':
            if (consumeLiteral("false")) {
                return JsonValue(false);
            }
            fail("bad literal");
        case 'n':
            if (consumeLiteral("null")) {
                return JsonValue();
            }
            fail("bad literal");
        default:
            return parseNumber();
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue parseJson(const std::string& text)
{
    return Parser(text).parseDocument();
}

} // namespace gfi::util
