#pragma once
// Deterministic pseudo-random number generation for repeatable campaigns.
//
// Fault-injection campaigns must be exactly reproducible: a campaign seeded
// with the same value must generate the same fault list and therefore the same
// classification, independent of platform or standard-library implementation.
// std::mt19937_64 distributions are not portable across implementations, so we
// carry our own xoshiro256** generator and our own uniform mappings.

#include "snapshot/serialize.hpp"

#include <cstdint>

namespace gfi {

/// xoshiro256** 1.0 by Blackman & Vigna — small, fast, high-quality, and fully
/// deterministic across platforms.
class Rng {
public:
    /// Seeds the generator; any 64-bit value (including 0) is acceptable.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept { reseed(seed); }

    /// Re-seeds the generator via splitmix64 expansion of @p seed.
    void reseed(std::uint64_t seed) noexcept
    {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            // splitmix64 step — guarantees a well-mixed non-zero state.
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /// Next raw 64-bit value.
    std::uint64_t next() noexcept
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n) using Lemire's unbiased method.
    std::uint64_t below(std::uint64_t n) noexcept
    {
        if (n == 0) {
            return 0;
        }
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = (0 - n) % n;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept
    {
        if (hi <= lo) {
            return lo;
        }
        return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// True with probability @p p.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Serializes the stream position so a snapshot resumes the exact same
    /// pseudo-random sequence.
    void captureState(snapshot::Writer& w) const
    {
        for (std::uint64_t word : state_) {
            w.u64(word);
        }
    }

    void restoreState(snapshot::Reader& r)
    {
        for (std::uint64_t& word : state_) {
            word = r.u64();
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

} // namespace gfi
