#pragma once
// SI-unit formatting helpers used by reports and benches.

#include <string>

namespace gfi {

/// Formats @p value with an auto-selected SI prefix and @p unit suffix,
/// e.g. formatSi(1.0e-3, "A") -> "1 mA", formatSi(5.0e7, "Hz") -> "50 MHz".
std::string formatSi(double value, const std::string& unit, int precision = 3);

/// Formats a double with fixed precision, trimming trailing zeros.
std::string formatDouble(double value, int precision = 6);

} // namespace gfi
