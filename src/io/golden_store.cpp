#include "io/golden_store.hpp"

#include "core/report.hpp"
#include "io/sha256.hpp"
#include "lint/preflight.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gfi::io {

namespace fs = std::filesystem;

namespace {

// --- tiny flat-JSON field scanners (same approach as the journal reader:
// the writer below is the only producer, so only its exact shape matters) ---

bool getJsonString(const std::string& doc, const std::string& key, std::string& out)
{
    const std::string needle = "\"" + key + "\": \"";
    const std::size_t at = doc.find(needle);
    if (at == std::string::npos) {
        return false;
    }
    out.clear();
    for (std::size_t i = at + needle.size(); i < doc.size(); ++i) {
        const char c = doc[i];
        if (c == '\\' && i + 1 < doc.size()) {
            const char next = doc[++i];
            out += next == 'n' ? '\n' : next;
        } else if (c == '"') {
            return true;
        } else {
            out += c;
        }
    }
    return false; // unterminated
}

bool getJsonInt(const std::string& doc, const std::string& key, long long& out)
{
    const std::string needle = "\"" + key + "\": ";
    const std::size_t at = doc.find(needle);
    if (at == std::string::npos) {
        return false;
    }
    out = std::strtoll(doc.c_str() + at + needle.size(), nullptr, 10);
    return true;
}

std::string quoted(const std::string& s)
{
    return "\"" + campaign::jsonEscape(s) + "\"";
}

std::string readFileOrThrow(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw GoldenStoreError("golden store: cannot read " + path.string());
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void writeFileOrThrow(const fs::path& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << content) || !out.flush()) {
        throw GoldenStoreError("golden store: cannot write " + path.string());
    }
}

/// File-system-safe rendering of a circuit name (names/<circuit>.json).
std::string sanitizeName(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("_") : out;
}

} // namespace

std::string CacheKey::combined() const
{
    Sha256 hash;
    hash.update("key v1\n");
    hash.update("netlist " + netlistDigest + "\n");
    hash.update("stimulus " + stimulusDigest + "\n");
    hash.update("faults " + faultDigest + "\n");
    return hash.finishHex();
}

CacheKey CacheKey::of(const IngestWorkload& workload)
{
    return CacheKey{workload.netlistDigest, workload.stimulusDigest, workload.faultDigest};
}

GoldenStore::GoldenStore(std::string root) : root_(std::move(root))
{
    std::error_code ec;
    fs::create_directories(fs::path(root_) / "objects", ec);
    fs::create_directories(fs::path(root_) / "names", ec);
    fs::create_directories(fs::path(root_) / "tmp", ec);
    if (ec) {
        throw GoldenStoreError("golden store: cannot create store root " + root_);
    }
}

std::string GoldenStore::entryDir(const std::string& combinedKey) const
{
    if (!looksLikeSha256(combinedKey)) {
        throw GoldenStoreError("golden store: malformed entry key '" + combinedKey + "'");
    }
    return (fs::path(root_) / "objects" / combinedKey.substr(0, 2) / combinedKey).string();
}

std::string GoldenStore::namePath(const std::string& circuitName) const
{
    return (fs::path(root_) / "names" / (sanitizeName(circuitName) + ".json")).string();
}

bool GoldenStore::contains(const CacheKey& key) const
{
    return fs::exists(fs::path(entryDir(key.combined())) / "meta.json");
}

std::optional<StoreEntry> GoldenStore::lookup(const CacheKey& key) const
{
    const std::string combined = key.combined();
    const fs::path dir = entryDir(combined);
    if (!fs::exists(dir / "meta.json")) {
        return std::nullopt;
    }
    const std::string meta = readFileOrThrow(dir / "meta.json");

    StoreEntry entry;
    std::string verdictsSha;
    std::string reportSha;
    long long runs = -1;
    if (!getJsonString(meta, "netlist", entry.key.netlistDigest) ||
        !getJsonString(meta, "stimulus", entry.key.stimulusDigest) ||
        !getJsonString(meta, "faults", entry.key.faultDigest) ||
        !getJsonString(meta, "circuit", entry.circuitName) ||
        !getJsonString(meta, "verdicts_sha256", verdictsSha) ||
        !getJsonString(meta, "report_sha256", reportSha) ||
        !getJsonInt(meta, "runs", runs) || runs < 0) {
        throw GoldenStoreError("golden store: malformed meta.json in entry " + combined);
    }
    // The entry must be the one this key addresses — a moved/tampered object
    // directory is corruption, not a miss.
    if (entry.key.netlistDigest != key.netlistDigest ||
        entry.key.stimulusDigest != key.stimulusDigest ||
        entry.key.faultDigest != key.faultDigest) {
        throw GoldenStoreError("golden store: entry " + combined +
                               " records a different digest triple than its address");
    }

    const std::string verdictsText = readFileOrThrow(dir / "verdicts.jsonl");
    if (sha256Hex(verdictsText) != verdictsSha) {
        throw GoldenStoreError("golden store: verdicts.jsonl of entry " + combined +
                               " fails its recorded SHA-256 — refusing to replay "
                               "corrupt verdicts");
    }
    entry.reportJson = readFileOrThrow(dir / "report.json");
    if (sha256Hex(entry.reportJson) != reportSha) {
        throw GoldenStoreError("golden store: report.json of entry " + combined +
                               " fails its recorded SHA-256");
    }

    std::istringstream lines(verdictsText);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) {
            continue;
        }
        auto parsed = campaign::CampaignJournal::parseLine(line);
        if (!parsed) {
            // The digest matched, so this is a writer bug, not bit rot — but
            // it is still not replayable.
            throw GoldenStoreError("golden store: unparseable verdict line in entry " +
                                   combined);
        }
        entry.verdicts.push_back(std::move(*parsed));
    }
    if (entry.verdicts.size() != static_cast<std::size_t>(runs)) {
        throw GoldenStoreError("golden store: entry " + combined + " records " +
                               std::to_string(runs) + " runs but holds " +
                               std::to_string(entry.verdicts.size()) + " verdicts");
    }
    return entry;
}

void GoldenStore::put(const CacheKey& key, const std::string& circuitName,
                      const campaign::CampaignReport& report)
{
    const std::string combined = key.combined();

    std::string verdictsText;
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        verdictsText += campaign::CampaignJournal::entryToJson(i, report.runs[i]) + "\n";
    }
    const std::string reportJson = campaign::reportToJson(report);

    std::string meta = "{\n";
    meta += "  \"version\": 1,\n";
    meta += "  \"circuit\": " + quoted(circuitName) + ",\n";
    meta += "  \"netlist\": " + quoted(key.netlistDigest) + ",\n";
    meta += "  \"stimulus\": " + quoted(key.stimulusDigest) + ",\n";
    meta += "  \"faults\": " + quoted(key.faultDigest) + ",\n";
    meta += "  \"runs\": " + std::to_string(report.runs.size()) + ",\n";
    meta += "  \"verdicts_sha256\": " + quoted(sha256Hex(verdictsText)) + ",\n";
    meta += "  \"report_sha256\": " + quoted(sha256Hex(reportJson)) + "\n";
    meta += "}\n";

    // Stage the whole entry in tmp/, then swap it in with a rename — a killed
    // process never leaves a half-written entry addressable.
    const fs::path staged = fs::path(root_) / "tmp" / combined;
    std::error_code ec;
    fs::remove_all(staged, ec);
    fs::create_directories(staged, ec);
    if (ec) {
        throw GoldenStoreError("golden store: cannot stage entry " + combined);
    }
    writeFileOrThrow(staged / "meta.json", meta);
    writeFileOrThrow(staged / "verdicts.jsonl", verdictsText);
    writeFileOrThrow(staged / "report.json", reportJson);

    const fs::path dir = entryDir(combined);
    fs::create_directories(dir.parent_path(), ec);
    fs::remove_all(dir, ec);
    fs::rename(staged, dir, ec);
    if (ec) {
        throw GoldenStoreError("golden store: cannot commit entry " + combined + ": " +
                               ec.message());
    }

    // Repoint the circuit's name at the new entry (atomic file swap).
    std::string pointer = "{\n";
    pointer += "  \"circuit\": " + quoted(circuitName) + ",\n";
    pointer += "  \"netlist\": " + quoted(key.netlistDigest) + ",\n";
    pointer += "  \"key\": " + quoted(combined) + "\n";
    pointer += "}\n";
    const fs::path pointerPath = namePath(circuitName);
    const fs::path pointerStaged = fs::path(root_) / "tmp" / (sanitizeName(circuitName) +
                                                              ".name.json");
    writeFileOrThrow(pointerStaged, pointer);
    fs::rename(pointerStaged, pointerPath, ec);
    if (ec) {
        throw GoldenStoreError("golden store: cannot update name pointer for '" +
                               circuitName + "': " + ec.message());
    }
}

std::optional<NamePointer> GoldenStore::namePointer(const std::string& circuitName) const
{
    const fs::path path = namePath(circuitName);
    if (!fs::exists(path)) {
        return std::nullopt;
    }
    const std::string doc = readFileOrThrow(path);
    NamePointer p;
    if (!getJsonString(doc, "circuit", p.circuitName) ||
        !getJsonString(doc, "netlist", p.netlistDigest) ||
        !getJsonString(doc, "key", p.key)) {
        throw GoldenStoreError("golden store: malformed name pointer " + path.string());
    }
    return p;
}

std::optional<StoreEntry> GoldenStore::lookupByName(
    const std::string& circuitName, const std::string& currentNetlistDigest) const
{
    const auto pointer = namePointer(circuitName);
    if (!pointer) {
        return std::nullopt;
    }
    // PRE009: the stored entry was recorded for a different revision of this
    // circuit — replaying it would attribute another design's verdicts here.
    const lint::Report stale = lint::preflightStoredDigest(
        "store:" + circuitName, pointer->netlistDigest, currentNetlistDigest);
    if (stale.count(lint::Severity::Error) > 0) {
        throw lint::PreflightError(stale);
    }

    const fs::path dir = entryDir(pointer->key);
    if (!fs::exists(dir / "meta.json")) {
        throw GoldenStoreError("golden store: name pointer for '" + circuitName +
                               "' references missing entry " + pointer->key);
    }
    const std::string meta = readFileOrThrow(dir / "meta.json");
    CacheKey key;
    if (!getJsonString(meta, "netlist", key.netlistDigest) ||
        !getJsonString(meta, "stimulus", key.stimulusDigest) ||
        !getJsonString(meta, "faults", key.faultDigest)) {
        throw GoldenStoreError("golden store: malformed meta.json in entry " +
                               pointer->key);
    }
    return lookup(key);
}

CachedCampaign runCampaignCached(
    campaign::CampaignRunner& runner, const IngestWorkload& workload, GoldenStore& store,
    const std::function<void(std::size_t, const campaign::RunResult&)>& progress)
{
    const CacheKey key = CacheKey::of(workload);
    CachedCampaign out;
    out.key = key.combined();
    if (auto entry = store.lookup(key)) {
        // Digest-verified hit: rebuild the report from the stored verdicts
        // without simulating anything. reportFromEntries() cross-checks every
        // fault description, so the replay can never silently drift off the
        // fault list that keyed the entry.
        out.report = campaign::reportFromEntries(workload.faults, entry->verdicts);
        out.hit = true;
        return out;
    }
    out.report = runner.run(workload.faults, progress);
    store.put(key, workload.netlist->name, out.report);
    return out;
}

} // namespace gfi::io
