#pragma once
// Elaboration of a parsed netlist into an instrumented digital::Circuit —
// the bridge that turns an external ISCAS-85/Verilog file into a first-class
// campaign workload.
//
// Every net of the parsed design gets a saboteur-instrumented pair of
// signals: the driver (primary-input stimulus or gate process) drives
// "<prefix>/<net>", a zero-delay DigitalSaboteur "sab/<net>" repeats it onto
// "<prefix>/<net>~f", and every reader (gate input, primary-output
// observation) reads the faulty side — so a stuck-at or SET on ANY net of
// the design is injectable by name, exactly like the hand-written DUTs. The
// elaborated testbench declares full connectivity (noteDrives/noteReads/
// noteCombKind via the component library), so ingested designs flow through
// lint, the fault-space analyzer, the bit-parallel batch backend and the
// parallel/journal/fork campaign engine with zero special-casing.
//
// Stimulus is a deterministic seeded pattern schedule: pattern k forces the
// primary inputs at time k*period through a StimulusSchedule (only bits that
// change are scheduled, so both the event-driven and the word kernel see
// identical force events). The (netlist, stimulus, fault-list) triple is
// digest-identified for the golden store.

#include "core/campaign.hpp"
#include "core/testbench.hpp"
#include "io/netlist.hpp"

#include <memory>

namespace gfi::io {

/// Elaboration parameters. All of them are folded into the stimulus digest
/// (they change the simulated schedule, hence the answers).
struct IngestConfig {
    std::string prefix;          ///< signal-name prefix; empty = netlist name
    int patternCount = 64;       ///< stimulus patterns applied back to back
    std::uint64_t patternSeed = 42; ///< xoshiro256** seed for pattern bits
    SimTime patternPeriod = 10 * kNanosecond; ///< settle window per pattern
    SimTime gateDelay = digital::kDefaultGateDelay; ///< per-gate inertial delay
};

/// The deterministic stimulus schedule of one ingest campaign.
struct PatternSet {
    std::vector<std::string> inputs;     ///< primary inputs, bit order
    std::vector<std::vector<bool>> rows; ///< rows[k][i]: input i in pattern k
    SimTime period = 0;                  ///< pattern spacing
    std::uint64_t seed = 0;              ///< generator seed (provenance)

    /// Normalized rendering whose SHA-256 is the stimulus digest.
    [[nodiscard]] std::string canonicalText() const;

    /// SHA-256 hex digest of canonicalText().
    [[nodiscard]] std::string digest() const;
};

/// Generates @p count patterns over the primary inputs of @p desc, seeded and
/// platform-independent (util/rng xoshiro256**).
[[nodiscard]] PatternSet generatePatterns(const NetlistDesc& desc, int count,
                                          std::uint64_t seed, SimTime period);

/// Which faults buildFaultList() enumerates over the parsed nets.
struct FaultListOptions {
    bool stuckAt = true;    ///< permanent stuck-at-0/1 per net (from t=0)
    bool setPulses = false; ///< one SET pulse per net at mid-campaign
    SimTime pulseWidth = kNanosecond;
};

/// Exhaustive fault list over the design's nets, in canonical net order:
/// stuck-at-0 then stuck-at-1 per net, then (optionally) one SET pulse per
/// net. Stuck-ats are batch-eligible; SET pulses exercise the event-driven
/// fallback.
[[nodiscard]] std::vector<fault::FaultSpec> buildFaultList(const NetlistDesc& desc,
                                                           const IngestConfig& config,
                                                           const FaultListOptions& options = {});

/// The saboteur name instrumenting @p net ("sab/<net>").
[[nodiscard]] std::string netSaboteurName(const std::string& net);

/// The elaborated, instrumented external design.
class IngestTestbench : public fault::Testbench {
public:
    /// Builds the circuit; @p desc and @p patterns are shared read-only so a
    /// campaign factory can stamp out testbenches concurrently.
    IngestTestbench(std::shared_ptr<const NetlistDesc> desc,
                    std::shared_ptr<const PatternSet> patterns, IngestConfig config);

    [[nodiscard]] const NetlistDesc& netlist() const noexcept { return *desc_; }
    [[nodiscard]] const IngestConfig& config() const noexcept { return config_; }

    /// The observed signal name of primary output @p net.
    [[nodiscard]] std::string outputSignalName(const std::string& net) const;

private:
    std::shared_ptr<const NetlistDesc> desc_;
    std::shared_ptr<const PatternSet> patterns_;
    IngestConfig config_;
};

/// A fully prepared ingest campaign: parsed design, stimulus, fault list and
/// the content digests that key the golden store.
struct IngestWorkload {
    std::shared_ptr<const NetlistDesc> netlist;
    std::shared_ptr<const PatternSet> patterns;
    IngestConfig config;
    std::vector<fault::FaultSpec> faults;

    std::string netlistDigest;  ///< sha256 of netlist->canonicalText()
    std::string stimulusDigest; ///< sha256 of patterns->canonicalText()
    std::string faultDigest;    ///< sha256 of the fault descriptions

    /// Campaign factory stamping out fresh instrumented testbenches.
    [[nodiscard]] fault::TestbenchFactory factory() const;
};

/// Parses nothing — assembles a workload from an already parsed @p desc:
/// resolves the config prefix, generates patterns, builds the fault list and
/// computes all three digests.
[[nodiscard]] IngestWorkload makeWorkload(NetlistDesc desc, IngestConfig config = {},
                                          const FaultListOptions& options = {});

/// SHA-256 hex digest of a fault list (its fault::describe lines).
[[nodiscard]] std::string faultListDigest(const std::vector<fault::FaultSpec>& faults);

/// Renders the campaign verdicts as the deterministic ".ans" text the judge
/// flow digests: a provenance header (circuit + the three digests) and one
/// "<index>\t<fault>\t<outcome>\t<detected>" line per run.
[[nodiscard]] std::string renderAnsText(const IngestWorkload& workload,
                                        const campaign::CampaignReport& report);

} // namespace gfi::io
