#pragma once
// External netlist ingestion: the parser front-end of the bring-your-own-
// circuit flow. Two grammars produce the same neutral NetlistDesc:
//
//  * ISCAS-85 ".bench" netlists:
//        # comment
//        INPUT(G1)
//        OUTPUT(G22)
//        G10 = NAND(G1, G3)
//        G22 = NOT(G10)
//    Gate keywords: AND OR NAND NOR XOR XNOR NOT BUF/BUFF (case-insensitive).
//
//  * A small structural-Verilog subset:
//        module c17 (N1, N2, ..., N22);
//          input N1, N2;        // multi-name declaration lists
//          output N22;
//          wire N10;
//          nand g1 (N10, N1, N3);   // output first, then inputs
//        endmodule
//    Primitives: and, nand, or, nor, xor, xnor, not, buf. Instance names are
//    optional (anonymous instantiations get the output net's name). Exactly
//    one module per file; no vectors, parameters, assigns or hierarchy.
//
// The parsed description is purely structural data — elaboration into an
// instrumented digital::Circuit happens in io/ingest. canonicalText() renders
// a normalized form (fixed ordering, whitespace and case) whose SHA-256 is
// the design's identity in the golden store: two files that elaborate the
// same circuit hash identically regardless of formatting, comments or the
// grammar they were written in.

#include "digital/gates.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace gfi::io {

/// One gate instantiation of the parsed design.
struct NetlistGate {
    std::string name;              ///< instance name (synthesized when absent)
    digital::GateKind kind = digital::GateKind::Buf;
    std::string output;            ///< driven net
    std::vector<std::string> inputs;
};

/// A parsed, validated structural netlist.
struct NetlistDesc {
    std::string name;                     ///< module/circuit name
    std::vector<std::string> inputs;      ///< primary inputs, declaration order
    std::vector<std::string> outputs;     ///< primary outputs, declaration order
    std::vector<NetlistGate> gates;       ///< gate instantiations, file order

    /// Every net of the design (primary inputs first, then gate outputs), in
    /// declaration order — the canonical net enumeration the ingest builder,
    /// the fault-list builder and the digest all share.
    [[nodiscard]] std::vector<std::string> nets() const;

    /// Normalized rendering (sorted where order is semantically free, fixed
    /// case and whitespace); sha256Hex() of this string is the netlist digest.
    [[nodiscard]] std::string canonicalText() const;

    /// SHA-256 hex digest of canonicalText().
    [[nodiscard]] std::string digest() const;
};

/// Parse failure: grammar errors, undriven/multiply-driven nets, unknown
/// gate keywords. what() carries "<source>:<line>: <reason>".
class NetlistParseError : public std::runtime_error {
public:
    NetlistParseError(const std::string& source, int line, const std::string& reason);

    [[nodiscard]] int line() const noexcept { return line_; }

private:
    int line_ = 0;
};

/// Netlist grammars parseNetlist() understands.
enum class NetlistFormat {
    Auto,    ///< detect: "module" keyword => Verilog, else ISCAS-85 bench
    Bench,   ///< ISCAS-85 ".bench"
    Verilog, ///< structural-Verilog subset
};

/// Parses @p text. @p sourceName is used in error messages and as the
/// circuit name fallback for bench files (stem of the file name).
[[nodiscard]] NetlistDesc parseNetlist(const std::string& text,
                                       const std::string& sourceName = "<string>",
                                       NetlistFormat format = NetlistFormat::Auto);

/// Reads and parses @p path (format from the extension: .v/.sv => Verilog,
/// else auto). Throws std::runtime_error when the file cannot be read.
[[nodiscard]] NetlistDesc parseNetlistFile(const std::string& path);

/// The gate keyword of @p kind in canonical (upper-case bench) spelling.
[[nodiscard]] const char* gateKeyword(digital::GateKind kind) noexcept;

} // namespace gfi::io
