#include "io/ingest.hpp"

#include "core/saboteur.hpp"
#include "digital/gates.hpp"
#include "digital/stimulus.hpp"
#include "io/sha256.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace gfi::io {

namespace {

using digital::Logic;

/// Longest gate-to-gate path of @p desc (1 per gate traversed); the settle
/// budget one pattern needs is depth * gateDelay plus the zero-delay
/// saboteur deltas.
int combinationalDepth(const NetlistDesc& desc)
{
    std::map<std::string, const NetlistGate*> driverOf;
    for (const NetlistGate& g : desc.gates) {
        driverOf[g.output] = &g;
    }
    std::map<std::string, int> depth; // net -> gates on the longest path to it
    for (const std::string& in : desc.inputs) {
        depth[in] = 0;
    }
    // The gate list is not necessarily topological; iterate to a fixed point
    // (validate() rejected self-loops; a malformed multi-gate cycle would be
    // caught by lint DIG001 at elaboration, so cap the sweeps defensively).
    const std::size_t cap = desc.gates.size() + 1;
    bool changed = true;
    for (std::size_t sweep = 0; changed && sweep < cap; ++sweep) {
        changed = false;
        for (const NetlistGate& g : desc.gates) {
            int worst = -1;
            for (const std::string& in : g.inputs) {
                const auto it = depth.find(in);
                if (it == depth.end()) {
                    worst = -1;
                    break;
                }
                worst = std::max(worst, it->second);
            }
            if (worst < 0) {
                continue;
            }
            const int d = worst + 1;
            auto [it, inserted] = depth.emplace(g.output, d);
            if (!inserted && it->second >= d) {
                continue;
            }
            it->second = d;
            changed = true;
        }
    }
    int maxDepth = 0;
    for (const auto& [net, d] : depth) {
        maxDepth = std::max(maxDepth, d);
    }
    return maxDepth;
}

} // namespace

std::string PatternSet::canonicalText() const
{
    std::ostringstream out;
    out << "patterns v1\nseed " << seed << "\nperiod " << period << "\ninputs";
    for (const std::string& in : inputs) {
        out << ' ' << in;
    }
    out << "\n";
    for (const std::vector<bool>& row : rows) {
        for (const bool bit : row) {
            out << (bit ? '1' : '0');
        }
        out << "\n";
    }
    return out.str();
}

std::string PatternSet::digest() const
{
    return sha256Hex(canonicalText());
}

PatternSet generatePatterns(const NetlistDesc& desc, int count, std::uint64_t seed,
                            SimTime period)
{
    if (count < 1) {
        throw std::invalid_argument("generatePatterns: pattern count must be >= 1");
    }
    PatternSet set;
    set.inputs = desc.inputs;
    set.period = period;
    set.seed = seed;
    Rng rng(seed);
    set.rows.reserve(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
        std::vector<bool> row;
        row.reserve(desc.inputs.size());
        for (std::size_t i = 0; i < desc.inputs.size(); ++i) {
            row.push_back((rng.next() & 1u) != 0);
        }
        set.rows.push_back(std::move(row));
    }
    return set;
}

std::string netSaboteurName(const std::string& net)
{
    return "sab/" + net;
}

IngestTestbench::IngestTestbench(std::shared_ptr<const NetlistDesc> desc,
                                 std::shared_ptr<const PatternSet> patterns,
                                 IngestConfig config)
    : desc_(std::move(desc)), patterns_(std::move(patterns)), config_(std::move(config))
{
    const NetlistDesc& d = *desc_;
    const PatternSet& pat = *patterns_;
    if (config_.prefix.empty()) {
        config_.prefix = d.name;
    }
    const std::string& prefix = config_.prefix;
    if (pat.inputs != d.inputs) {
        throw std::invalid_argument("IngestTestbench: pattern set was generated for a "
                                    "different input list");
    }
    const int depth = combinationalDepth(d);
    if ((static_cast<SimTime>(depth) + 2) * config_.gateDelay >= config_.patternPeriod) {
        throw std::invalid_argument(
            "IngestTestbench: pattern period " + formatTime(config_.patternPeriod) +
            " is too short for combinational depth " + std::to_string(depth) +
            " at gate delay " + formatTime(config_.gateDelay));
    }

    auto& dig = sim().digital();

    // Signals first: for every net the driven side "<prefix>/<net>" and the
    // instrumented faulty side "<prefix>/<net>~f", in canonical net order so
    // signal creation (and with it process wake order and batch lane
    // compilation) depends only on the netlist digest.
    std::map<std::string, digital::LogicSignal*> driven;
    std::map<std::string, digital::LogicSignal*> faulty;
    for (const std::string& net : d.nets()) {
        driven[net] = &dig.logicSignal(prefix + "/" + net, Logic::Zero);
        faulty[net] = &dig.logicSignal(prefix + "/" + net + "~f", Logic::Zero);
    }

    // One zero-delay saboteur per net: every net of the external design is an
    // injectable interconnect, exactly like the hand-written DUTs.
    for (const std::string& net : d.nets()) {
        addDigitalSaboteur(
            dig.add<fault::DigitalSaboteur>(dig, netSaboteurName(net), *driven[net],
                                            *faulty[net]));
    }

    // Gates read the faulty sides and drive the driven sides (canonical
    // order, matching nets()).
    std::vector<const NetlistGate*> ordered;
    ordered.reserve(d.gates.size());
    for (const NetlistGate& g : d.gates) {
        ordered.push_back(&g);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const NetlistGate* a, const NetlistGate* b) { return a->output < b->output; });
    for (const NetlistGate* g : ordered) {
        std::vector<std::string> ins = g->inputs;
        std::sort(ins.begin(), ins.end());
        std::vector<digital::LogicSignal*> inputs;
        inputs.reserve(ins.size());
        for (const std::string& in : ins) {
            inputs.push_back(faulty.at(in));
        }
        dig.add<digital::Gate>(dig, prefix + "/" + g->name, g->kind, std::move(inputs),
                               *driven.at(g->output), config_.gateDelay);
    }

    // Stimulus: pattern k forces the primary inputs at k*period; only bits
    // that change are scheduled, so every force is a real event in both the
    // event-driven and the word kernel.
    auto& stimuli = dig.add<digital::StimulusSchedule>(dig, prefix + "/stimuli");
    std::vector<bool> previous(d.inputs.size(), false); // signals initialize to 0
    for (std::size_t k = 0; k < pat.rows.size(); ++k) {
        const std::vector<bool>& row = pat.rows[k];
        for (std::size_t i = 0; i < d.inputs.size(); ++i) {
            if (row[i] == previous[i]) {
                continue;
            }
            stimuli.at(static_cast<SimTime>(k) * pat.period, *driven.at(d.inputs[i]),
                       row[i] ? Logic::One : Logic::Zero);
            previous[i] = row[i];
        }
    }
    for (const std::string& in : d.inputs) {
        dig.noteExternalDriver(*driven.at(in));
    }

    // Observation: the faulty side of every primary output, so a stuck-at on
    // the output net itself is observable.
    for (const std::string& out : d.outputs) {
        observeDigital(prefix + "/" + out + "~f");
    }
    setDuration(static_cast<SimTime>(pat.rows.size()) * pat.period);
}

std::string IngestTestbench::outputSignalName(const std::string& net) const
{
    return config_.prefix + "/" + net + "~f";
}

std::vector<fault::FaultSpec> buildFaultList(const NetlistDesc& desc,
                                             const IngestConfig& config,
                                             const FaultListOptions& options)
{
    std::vector<fault::FaultSpec> faults;
    const std::vector<std::string> nets = desc.nets();
    if (options.stuckAt) {
        for (const std::string& net : nets) {
            faults.emplace_back(
                fault::StuckAtFault{netSaboteurName(net), Logic::Zero, 0, 0});
            faults.emplace_back(
                fault::StuckAtFault{netSaboteurName(net), Logic::One, 0, 0});
        }
    }
    if (options.setPulses) {
        // Mid-campaign, a quarter period into a pattern: inputs are stable,
        // so the pulse exercises pure combinational propagation.
        const SimTime count = config.patternCount;
        const SimTime t = (count / 2) * config.patternPeriod + config.patternPeriod / 4;
        for (const std::string& net : nets) {
            faults.emplace_back(
                fault::DigitalPulseFault{netSaboteurName(net), t, options.pulseWidth});
        }
    }
    return faults;
}

std::string faultListDigest(const std::vector<fault::FaultSpec>& faults)
{
    Sha256 hash;
    hash.update("faults v1\n");
    for (const fault::FaultSpec& f : faults) {
        hash.update(fault::describe(f));
        hash.update("\n");
    }
    return hash.finishHex();
}

fault::TestbenchFactory IngestWorkload::factory() const
{
    // The shared descriptions are read-only; each call elaborates a fresh
    // circuit, so the factory is safe to invoke from campaign workers.
    return [netlist = netlist, patterns = patterns, config = config] {
        return std::make_unique<IngestTestbench>(netlist, patterns, config);
    };
}

IngestWorkload makeWorkload(NetlistDesc desc, IngestConfig config,
                            const FaultListOptions& options)
{
    if (config.prefix.empty()) {
        config.prefix = desc.name;
    }
    IngestWorkload w;
    w.netlist = std::make_shared<const NetlistDesc>(std::move(desc));
    w.patterns = std::make_shared<const PatternSet>(generatePatterns(
        *w.netlist, config.patternCount, config.patternSeed, config.patternPeriod));
    w.config = std::move(config);
    w.faults = buildFaultList(*w.netlist, w.config, options);
    w.netlistDigest = w.netlist->digest();
    w.stimulusDigest = w.patterns->digest();
    w.faultDigest = faultListDigest(w.faults);
    return w;
}

std::string renderAnsText(const IngestWorkload& workload,
                          const campaign::CampaignReport& report)
{
    std::ostringstream out;
    out << "# gfi ingest verdicts v1\n";
    out << "# circuit " << workload.netlist->name << "\n";
    out << "# netlist " << workload.netlistDigest << "\n";
    out << "# stimulus " << workload.stimulusDigest << "\n";
    out << "# faults " << workload.faultDigest << "\n";
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        const campaign::RunResult& r = report.runs[i];
        const bool detected = r.outcome != campaign::Outcome::Silent;
        out << i << '\t' << fault::describe(r.fault) << '\t' << campaign::toString(r.outcome)
            << '\t' << (detected ? 1 : 0) << "\n";
    }
    return out.str();
}

} // namespace gfi::io
