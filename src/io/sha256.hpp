#pragma once
// Self-contained SHA-256 (FIPS 180-4) for the content-addressed golden
// store: netlists, stimulus schedules, fault lists and campaign verdicts are
// all identified by their digest, and replayed results are verified against
// the stored digest before anyone trusts them (the judge contract). No
// external crypto dependency — campaigns must hash identically on every
// platform the simulator builds on.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace gfi::io {

/// Incremental SHA-256 hasher.
class Sha256 {
public:
    Sha256() noexcept { reset(); }

    /// Restarts the hash from the initial state.
    void reset() noexcept;

    /// Absorbs @p data.
    void update(const void* data, std::size_t len) noexcept;
    void update(std::string_view s) noexcept { update(s.data(), s.size()); }

    /// Finalizes and returns the 32-byte digest. The hasher must be reset()
    /// before further use.
    [[nodiscard]] std::array<std::uint8_t, 32> finish() noexcept;

    /// Finalizes and returns the digest as 64 lowercase hex characters.
    [[nodiscard]] std::string finishHex();

private:
    void compress(const std::uint8_t block[64]) noexcept;

    std::array<std::uint32_t, 8> state_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::uint64_t totalBytes_ = 0;
    std::size_t buffered_ = 0;
};

/// One-shot digest of @p s as 64 lowercase hex characters.
[[nodiscard]] std::string sha256Hex(std::string_view s);

/// True when @p s looks like a SHA-256 hex digest (64 hex characters).
[[nodiscard]] bool looksLikeSha256(std::string_view s) noexcept;

} // namespace gfi::io
