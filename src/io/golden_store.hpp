#pragma once
// Content-addressed golden store: memoizes campaign verdicts on disk, keyed
// by the (netlist, stimulus, fault-list) digest triple. Identical inputs hash
// to the identical key, and the engine's ordered-commit determinism makes the
// stored verdicts valid for every worker width and backend — so a cache hit
// replays a campaign byte-identically without simulating anything.
//
// Layout under the store root:
//
//   objects/<k[0..1]>/<k>/meta.json      entry provenance: the three input
//                                        digests plus the SHA-256 of the two
//                                        payload files below
//   objects/<k[0..1]>/<k>/verdicts.jsonl one CampaignJournal line per run
//   objects/<k[0..1]>/<k>/report.json    the rendered campaign report
//   names/<circuit>.json                 latest entry recorded for a circuit
//                                        name: {netlist digest, key}
//
// where <k> = CacheKey::combined(), the SHA-256 over the three input digests.
// Writes go through a temp directory + rename, so a killed process never
// leaves a half-written entry addressable.
//
// Trust model: lookup() recomputes the payload digests and compares them to
// meta.json — any mismatch is a GoldenStoreError (hard error, the judge
// contract: a corrupt answer file must never silently verify). Resolving an
// entry *by circuit name* additionally compares the stored netlist digest to
// the loaded circuit's; a mismatch is the PRE009 stale-cache error.

#include "core/journal.hpp"
#include "io/ingest.hpp"

#include <optional>

namespace gfi::io {

/// The digest triple addressing one campaign result.
struct CacheKey {
    std::string netlistDigest;
    std::string stimulusDigest;
    std::string faultDigest;

    /// SHA-256 over the canonical key text — the store address.
    [[nodiscard]] std::string combined() const;

    /// The key of a prepared workload.
    [[nodiscard]] static CacheKey of(const IngestWorkload& workload);
};

/// Store corruption or contract violation: a payload whose recomputed digest
/// does not match meta.json, an unreadable/malformed entry, a failed write.
class GoldenStoreError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One verified store entry, ready to rebuild a CampaignReport.
struct StoreEntry {
    CacheKey key;
    std::string circuitName;                       ///< name at record time
    std::vector<campaign::JournalEntry> verdicts;  ///< parsed journal lines
    std::string reportJson;                        ///< rendered report document
};

/// The names/<circuit>.json pointer: which entry a circuit name last wrote.
struct NamePointer {
    std::string circuitName;
    std::string netlistDigest; ///< digest of the design that produced the entry
    std::string key;           ///< CacheKey::combined() of that entry
};

/// On-disk content-addressed store. Const methods only read; put() is the
/// single writer. Not internally locked: concurrent put() of the *same* key
/// is benign (last rename wins with identical content), concurrent put() of
/// different keys never collides.
class GoldenStore {
public:
    /// Opens (and lazily creates) the store rooted at @p root.
    explicit GoldenStore(std::string root);

    [[nodiscard]] const std::string& root() const noexcept { return root_; }

    /// True when an entry for @p key exists (no integrity check).
    [[nodiscard]] bool contains(const CacheKey& key) const;

    /// Loads and verifies the entry for @p key. std::nullopt when absent;
    /// GoldenStoreError when present but corrupt (digest mismatch, malformed
    /// meta, unparseable verdict line).
    [[nodiscard]] std::optional<StoreEntry> lookup(const CacheKey& key) const;

    /// Records @p report under @p key (idempotent; an existing entry is
    /// replaced atomically) and repoints names/<circuitName>.json at it.
    void put(const CacheKey& key, const std::string& circuitName,
             const campaign::CampaignReport& report);

    /// The name pointer of @p circuitName, if one was ever recorded.
    [[nodiscard]] std::optional<NamePointer> namePointer(const std::string& circuitName) const;

    /// Resolves @p circuitName's pointer and verifies the entry was recorded
    /// for the design now loaded: a stored netlist digest different from
    /// @p currentNetlistDigest throws lint::PreflightError carrying PRE009
    /// (with both digests in the diagnostic). std::nullopt when the name was
    /// never recorded.
    [[nodiscard]] std::optional<StoreEntry> lookupByName(
        const std::string& circuitName, const std::string& currentNetlistDigest) const;

    /// The directory of @p combinedKey ("objects/<k[0..1]>/<k>").
    [[nodiscard]] std::string entryDir(const std::string& combinedKey) const;

private:
    [[nodiscard]] std::string namePath(const std::string& circuitName) const;

    std::string root_;
};

/// runCampaignCached() outcome: the (possibly replayed) report plus cache
/// provenance.
struct CachedCampaign {
    campaign::CampaignReport report;
    bool hit = false;  ///< true: replayed from the store, nothing simulated
    std::string key;   ///< CacheKey::combined() of the entry consulted/written
};

/// Memoized campaign execution: on a store hit the report is rebuilt from the
/// verified entry (byte-identical to the run that recorded it — runner not
/// invoked); on a miss @p runner executes the workload's fault list and the
/// result is recorded before returning. The runner must already hold the
/// workload's factory (makeTestbench).
[[nodiscard]] CachedCampaign runCampaignCached(
    campaign::CampaignRunner& runner, const IngestWorkload& workload, GoldenStore& store,
    const std::function<void(std::size_t, const campaign::RunResult&)>& progress = {});

} // namespace gfi::io
