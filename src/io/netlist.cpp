#include "io/netlist.hpp"

#include "io/sha256.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace gfi::io {

namespace {

using digital::GateKind;

std::string toUpper(std::string s)
{
    for (char& c : s) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return s;
}

/// Gate keyword lookup shared by both grammars (bench spellings, upper-case).
bool gateKindFromKeyword(const std::string& upper, GateKind& out)
{
    static const std::map<std::string, GateKind> kinds{
        {"AND", GateKind::And},   {"OR", GateKind::Or},     {"NAND", GateKind::Nand},
        {"NOR", GateKind::Nor},   {"XOR", GateKind::Xor},   {"XNOR", GateKind::Xnor},
        {"NOT", GateKind::Not},   {"INV", GateKind::Not},   {"BUF", GateKind::Buf},
        {"BUFF", GateKind::Buf},
    };
    const auto it = kinds.find(upper);
    if (it == kinds.end()) {
        return false;
    }
    out = it->second;
    return true;
}

bool validNetChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.' ||
           c == '$' || c == '[' || c == ']' || c == '-';
}

bool validNetName(const std::string& s)
{
    return !s.empty() && std::all_of(s.begin(), s.end(), validNetChar);
}

/// Arity contract per gate kind: Buf/Not take exactly one input, the
/// multi-input kinds at least two.
void checkArity(const std::string& source, int line, GateKind kind, std::size_t n)
{
    const bool unary = kind == GateKind::Buf || kind == GateKind::Not;
    if (unary && n != 1) {
        throw NetlistParseError(source, line,
                                std::string(gateKeyword(kind)) + " takes exactly one input, got " +
                                    std::to_string(n));
    }
    if (!unary && n < 2) {
        throw NetlistParseError(source, line,
                                std::string(gateKeyword(kind)) + " needs at least two inputs, got " +
                                    std::to_string(n));
    }
}

/// Shared post-parse validation: every net driven exactly once, every
/// referenced net known, every declared output driven.
void validate(const std::string& source, NetlistDesc& desc)
{
    if (desc.inputs.empty()) {
        throw NetlistParseError(source, 0, "netlist declares no primary inputs");
    }
    if (desc.outputs.empty()) {
        throw NetlistParseError(source, 0, "netlist declares no primary outputs");
    }
    std::set<std::string> driven;
    for (const std::string& in : desc.inputs) {
        if (!driven.insert(in).second) {
            throw NetlistParseError(source, 0, "input '" + in + "' declared twice");
        }
    }
    for (const NetlistGate& g : desc.gates) {
        if (!driven.insert(g.output).second) {
            throw NetlistParseError(source, 0,
                                    "net '" + g.output +
                                        "' is driven twice (gate output collides with an "
                                        "earlier driver)");
        }
    }
    for (const NetlistGate& g : desc.gates) {
        for (const std::string& in : g.inputs) {
            if (driven.count(in) == 0) {
                throw NetlistParseError(source, 0,
                                        "gate '" + g.name + "' reads undriven net '" + in + "'");
            }
            if (in == g.output) {
                throw NetlistParseError(source, 0,
                                        "gate '" + g.name + "' feeds its own output net '" +
                                            in + "'");
            }
        }
    }
    std::set<std::string> seenOutputs;
    for (const std::string& out : desc.outputs) {
        if (driven.count(out) == 0) {
            throw NetlistParseError(source, 0, "primary output '" + out + "' is never driven");
        }
        if (!seenOutputs.insert(out).second) {
            throw NetlistParseError(source, 0, "output '" + out + "' declared twice");
        }
    }
}

// --- ISCAS-85 bench grammar -------------------------------------------------

/// Circuit-name form of a source name: directory and extension stripped, so
/// parseNetlist(text, "designs/c17.bench") and the same text parsed from a
/// plain "c17" agree on the name (and hence the digest).
std::string stemOf(const std::string& source)
{
    std::string stem = source;
    if (const auto slash = stem.find_last_of("/\\"); slash != std::string::npos) {
        stem.erase(0, slash + 1);
    }
    if (const auto dot = stem.find_last_of('.'); dot != std::string::npos && dot > 0) {
        stem.erase(dot);
    }
    return stem.empty() ? source : stem;
}

NetlistDesc parseBench(const std::string& text, const std::string& source)
{
    NetlistDesc desc;
    desc.name = stemOf(source);
    std::istringstream stream(text);
    std::string rawLine;
    int lineNo = 0;
    while (std::getline(stream, rawLine)) {
        ++lineNo;
        std::string line = rawLine;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        // Trim.
        const auto notSpace = [](unsigned char c) { return std::isspace(c) == 0; };
        line.erase(line.begin(), std::find_if(line.begin(), line.end(), notSpace));
        line.erase(std::find_if(line.rbegin(), line.rend(), notSpace).base(), line.end());
        if (line.empty()) {
            continue;
        }

        // INPUT(x) / OUTPUT(x)
        const auto paren = line.find('(');
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            if (paren == std::string::npos || line.back() != ')') {
                throw NetlistParseError(source, lineNo, "expected INPUT(...), OUTPUT(...) or "
                                                        "'net = GATE(...)'");
            }
            const std::string keyword = toUpper(line.substr(0, paren));
            std::string net = line.substr(paren + 1, line.size() - paren - 2);
            net.erase(std::remove_if(net.begin(), net.end(),
                                     [](unsigned char c) { return std::isspace(c) != 0; }),
                      net.end());
            if (!validNetName(net)) {
                throw NetlistParseError(source, lineNo, "bad net name '" + net + "'");
            }
            if (keyword == "INPUT") {
                desc.inputs.push_back(net);
            } else if (keyword == "OUTPUT") {
                desc.outputs.push_back(net);
            } else {
                throw NetlistParseError(source, lineNo, "unknown keyword '" + keyword + "'");
            }
            continue;
        }

        // net = GATE(in, ...)
        std::string out = line.substr(0, eq);
        out.erase(std::remove_if(out.begin(), out.end(),
                                 [](unsigned char c) { return std::isspace(c) != 0; }),
                  out.end());
        if (!validNetName(out)) {
            throw NetlistParseError(source, lineNo, "bad net name '" + out + "'");
        }
        const auto open = line.find('(', eq);
        if (open == std::string::npos || line.back() != ')') {
            throw NetlistParseError(source, lineNo, "expected 'net = GATE(in, ...)'");
        }
        std::string keyword = line.substr(eq + 1, open - eq - 1);
        keyword.erase(std::remove_if(keyword.begin(), keyword.end(),
                                     [](unsigned char c) { return std::isspace(c) != 0; }),
                      keyword.end());
        GateKind kind{};
        if (!gateKindFromKeyword(toUpper(keyword), kind)) {
            throw NetlistParseError(source, lineNo, "unknown gate '" + keyword + "'");
        }
        NetlistGate gate;
        gate.kind = kind;
        gate.output = out;
        gate.name = "g_" + out;
        std::string args = line.substr(open + 1, line.size() - open - 2);
        std::istringstream argStream(args);
        std::string arg;
        while (std::getline(argStream, arg, ',')) {
            arg.erase(std::remove_if(arg.begin(), arg.end(),
                                     [](unsigned char c) { return std::isspace(c) != 0; }),
                      arg.end());
            if (!validNetName(arg)) {
                throw NetlistParseError(source, lineNo, "bad input net '" + arg + "'");
            }
            gate.inputs.push_back(arg);
        }
        checkArity(source, lineNo, kind, gate.inputs.size());
        desc.gates.push_back(std::move(gate));
    }
    validate(source, desc);
    return desc;
}

// --- structural-Verilog subset ----------------------------------------------

/// A token with its source line (for error messages).
struct Token {
    std::string text;
    int line = 0;
};

std::vector<Token> tokenizeVerilog(const std::string& text, const std::string& source)
{
    std::vector<Token> tokens;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();
    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            while (i < n && text[i] != '\n') {
                ++i;
            }
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n') {
                    ++line;
                }
                ++i;
            }
            if (i + 1 >= n) {
                throw NetlistParseError(source, line, "unterminated block comment");
            }
            i += 2;
            continue;
        }
        if (c == '(' || c == ')' || c == ',' || c == ';') {
            tokens.push_back(Token{std::string(1, c), line});
            ++i;
            continue;
        }
        if (validNetChar(c)) {
            std::size_t j = i;
            while (j < n && validNetChar(text[j])) {
                ++j;
            }
            tokens.push_back(Token{text.substr(i, j - i), line});
            i = j;
            continue;
        }
        throw NetlistParseError(source, line, std::string("unexpected character '") + c + "'");
    }
    return tokens;
}

class VerilogParser {
public:
    VerilogParser(std::vector<Token> tokens, std::string source)
        : tokens_(std::move(tokens)), source_(std::move(source))
    {
    }

    NetlistDesc parse()
    {
        expectKeyword("module");
        desc_.name = expectName("module name");
        if (peekIs("(")) {
            take();
            while (!peekIs(")")) {
                expectName("port name");
                if (peekIs(",")) {
                    take();
                }
            }
            take(); // ')'
        }
        expect(";");

        while (!peekIs("endmodule")) {
            const Token& t = peek();
            if (t.text == "input") {
                take();
                declList(desc_.inputs);
            } else if (t.text == "output") {
                take();
                declList(desc_.outputs);
            } else if (t.text == "wire") {
                take();
                std::vector<std::string> wires;
                declList(wires); // declaration only; driven-ness is validated later
            } else {
                gateInstance();
            }
        }
        take(); // 'endmodule'
        if (pos_ != tokens_.size()) {
            throw NetlistParseError(source_, peek().line,
                                    "unexpected '" + peek().text + "' after endmodule "
                                    "(one module per file)");
        }
        validate(source_, desc_);
        return std::move(desc_);
    }

private:
    [[nodiscard]] const Token& peek() const
    {
        if (pos_ >= tokens_.size()) {
            throw NetlistParseError(source_, lastLine_, "unexpected end of file");
        }
        return tokens_[pos_];
    }

    [[nodiscard]] bool peekIs(const std::string& text) const
    {
        return pos_ < tokens_.size() && tokens_[pos_].text == text;
    }

    const Token& take()
    {
        const Token& t = peek();
        lastLine_ = t.line;
        ++pos_;
        return t;
    }

    void expect(const std::string& text)
    {
        const Token& t = take();
        if (t.text != text) {
            throw NetlistParseError(source_, t.line,
                                    "expected '" + text + "', got '" + t.text + "'");
        }
    }

    void expectKeyword(const std::string& keyword)
    {
        const Token& t = take();
        if (t.text != keyword) {
            throw NetlistParseError(source_, t.line,
                                    "expected '" + keyword + "', got '" + t.text + "'");
        }
    }

    std::string expectName(const char* what)
    {
        const Token& t = take();
        if (!validNetName(t.text)) {
            throw NetlistParseError(source_, t.line,
                                    std::string("expected ") + what + ", got '" + t.text + "'");
        }
        return t.text;
    }

    /// "a, b, c ;" — appends each declared name to @p into.
    void declList(std::vector<std::string>& into)
    {
        while (true) {
            into.push_back(expectName("net name"));
            if (peekIs(",")) {
                take();
                continue;
            }
            expect(";");
            return;
        }
    }

    /// "kind [name] ( out , in... ) ;"
    void gateInstance()
    {
        const Token& kindTok = take();
        GateKind kind{};
        if (!gateKindFromKeyword(toUpper(kindTok.text), kind)) {
            throw NetlistParseError(source_, kindTok.line,
                                    "unknown statement or gate primitive '" + kindTok.text +
                                        "' (supported: and nand or nor xor xnor not buf, "
                                        "input/output/wire declarations)");
        }
        NetlistGate gate;
        gate.kind = kind;
        if (!peekIs("(")) {
            gate.name = expectName("instance name");
        }
        const int line = peek().line;
        expect("(");
        std::vector<std::string> ports;
        while (true) {
            ports.push_back(expectName("port net"));
            if (peekIs(",")) {
                take();
                continue;
            }
            expect(")");
            break;
        }
        expect(";");
        if (ports.size() < 2) {
            throw NetlistParseError(source_, line, "gate instance needs an output and at "
                                                   "least one input");
        }
        gate.output = ports.front();
        gate.inputs.assign(ports.begin() + 1, ports.end());
        if (gate.name.empty()) {
            gate.name = "g_" + gate.output;
        }
        checkArity(source_, line, kind, gate.inputs.size());
        desc_.gates.push_back(std::move(gate));
    }

    std::vector<Token> tokens_;
    std::string source_;
    NetlistDesc desc_;
    std::size_t pos_ = 0;
    int lastLine_ = 0;
};

} // namespace

const char* gateKeyword(GateKind kind) noexcept
{
    switch (kind) {
    case GateKind::And:
        return "AND";
    case GateKind::Or:
        return "OR";
    case GateKind::Nand:
        return "NAND";
    case GateKind::Nor:
        return "NOR";
    case GateKind::Xor:
        return "XOR";
    case GateKind::Xnor:
        return "XNOR";
    case GateKind::Not:
        return "NOT";
    case GateKind::Buf:
        return "BUF";
    }
    return "?";
}

NetlistParseError::NetlistParseError(const std::string& source, int line,
                                     const std::string& reason)
    : std::runtime_error(source + (line > 0 ? ":" + std::to_string(line) : "") + ": " + reason),
      line_(line)
{
}

std::vector<std::string> NetlistDesc::nets() const
{
    // Inputs keep declaration order (it assigns pattern bits); gate outputs
    // are enumerated in canonical (sorted) order so that two netlists with
    // the same digest elaborate — and campaign — identically regardless of
    // the order their files list the gates in.
    std::vector<std::string> all = inputs;
    std::vector<std::string> outs;
    outs.reserve(gates.size());
    for (const NetlistGate& g : gates) {
        outs.push_back(g.output);
    }
    std::sort(outs.begin(), outs.end());
    all.insert(all.end(), outs.begin(), outs.end());
    return all;
}

std::string NetlistDesc::canonicalText() const
{
    // Input/output declaration order is semantic (pattern-bit and report
    // assignment) and preserved; gate order and commutative gate-input order
    // are free and therefore sorted. Instance names are excluded: they name
    // the same circuit.
    std::ostringstream out;
    out << "circuit " << name << "\n";
    out << "inputs";
    for (const std::string& in : inputs) {
        out << ' ' << in;
    }
    out << "\noutputs";
    for (const std::string& o : outputs) {
        out << ' ' << o;
    }
    out << "\n";
    std::vector<const NetlistGate*> sorted;
    sorted.reserve(gates.size());
    for (const NetlistGate& g : gates) {
        sorted.push_back(&g);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const NetlistGate* a, const NetlistGate* b) { return a->output < b->output; });
    for (const NetlistGate* g : sorted) {
        std::vector<std::string> ins = g->inputs;
        std::sort(ins.begin(), ins.end());
        out << "gate " << gateKeyword(g->kind) << ' ' << g->output;
        for (const std::string& in : ins) {
            out << ' ' << in;
        }
        out << "\n";
    }
    return out.str();
}

std::string NetlistDesc::digest() const
{
    return sha256Hex(canonicalText());
}

NetlistDesc parseNetlist(const std::string& text, const std::string& sourceName,
                         NetlistFormat format)
{
    if (format == NetlistFormat::Auto) {
        // A bench file has no 'module' statement; detect on the first token.
        std::istringstream probe(text);
        std::string word;
        format = NetlistFormat::Bench;
        while (probe >> word) {
            if (word[0] == '#') {
                probe.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
                continue;
            }
            if (word.rfind("//", 0) == 0) {
                probe.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
                continue;
            }
            if (word == "module") {
                format = NetlistFormat::Verilog;
            }
            break;
        }
    }
    if (format == NetlistFormat::Verilog) {
        return VerilogParser(tokenizeVerilog(text, sourceName), sourceName).parse();
    }
    return parseBench(text, sourceName);
}

NetlistDesc parseNetlistFile(const std::string& path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        throw std::runtime_error("cannot read netlist file '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();

    // Stem of the path: circuit-name fallback and error-message source.
    std::string stem = path;
    if (const auto slash = stem.find_last_of("/\\"); slash != std::string::npos) {
        stem.erase(0, slash + 1);
    }
    NetlistFormat format = NetlistFormat::Auto;
    if (const auto dot = stem.find_last_of('.'); dot != std::string::npos) {
        const std::string ext = stem.substr(dot + 1);
        if (ext == "v" || ext == "sv") {
            format = NetlistFormat::Verilog;
        } else if (ext == "bench") {
            format = NetlistFormat::Bench;
        }
        stem.erase(dot);
    }
    return parseNetlist(buffer.str(), stem, format);
}

} // namespace gfi::io
