#include "sim/time.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace gfi {

std::string formatTime(SimTime t)
{
    struct Unit {
        SimTime scale;
        const char* suffix;
    };
    static constexpr std::array<Unit, 6> units{{
        {kSecond, "s"},
        {kMillisecond, "ms"},
        {kMicrosecond, "us"},
        {kNanosecond, "ns"},
        {kPicosecond, "ps"},
        {kFemtosecond, "fs"},
    }};

    if (t == 0) {
        return "0 s";
    }
    const SimTime mag = t < 0 ? -t : t;
    for (const Unit& u : units) {
        if (mag >= u.scale) {
            const double value = static_cast<double>(t) / static_cast<double>(u.scale);
            char buf[48];
            if (std::fabs(value - std::round(value)) < 1e-9) {
                std::snprintf(buf, sizeof buf, "%.0f %s", value, u.suffix);
            } else {
                std::snprintf(buf, sizeof buf, "%.3f %s", value, u.suffix);
            }
            return buf;
        }
    }
    return "0 s";
}

} // namespace gfi
