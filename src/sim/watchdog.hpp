#pragma once
// Run watchdog: wall-clock deadline plus digital-wave and analog-step budgets
// for one simulation run. The campaign engine arms one watchdog per injection
// run and threads it through ams::MixedSimulator into both kernels; when a
// budget is exhausted the kernels unwind with WatchdogTimeout, which the
// campaign layer classifies as Outcome::Timeout instead of hanging forever on
// a pathological fault.
//
// Cost model: the counters are bumped from the kernels' inner loops, so
// charging is a branch + increment; the wall clock is only sampled every
// kWallCheckInterval charges (steady_clock reads are ~20 ns — cheap, but not
// free at millions of waves per run).

#include "sim/errors.hpp"

#include <chrono>
#include <cstdint>
#include <thread>

namespace gfi {

/// Per-run resource budgets. Zero means "unlimited" for each field.
struct WatchdogConfig {
    double wallClockSeconds = 0.0;    ///< real-time deadline for one run
    std::uint64_t digitalWaves = 0;   ///< total delta-cycle (wave) budget
    std::uint64_t analogSteps = 0;    ///< total analog step attempts budget

    /// Budgets for one of @p workers concurrent runs. The wave and step
    /// budgets count simulated work — deterministic, so they stay exact.
    /// The wall-clock deadline measures real time, which stretches when
    /// workers oversubscribe the cores: scale it by the oversubscription
    /// factor so a run that fits its budget alone does not flip to Timeout
    /// merely because the campaign went parallel.
    [[nodiscard]] WatchdogConfig scaledFor(unsigned workers) const
    {
        WatchdogConfig scaled = *this;
        if (workers > 1 && wallClockSeconds > 0.0) {
            const unsigned hc = std::thread::hardware_concurrency();
            const unsigned cores = hc != 0 ? hc : 1;
            if (workers > cores) {
                scaled.wallClockSeconds =
                    wallClockSeconds * static_cast<double>(workers) / cores;
            }
        }
        return scaled;
    }
};

/// Counts a run's resource use and throws WatchdogTimeout past any budget.
class Watchdog {
public:
    explicit Watchdog(WatchdogConfig config = {}) : config_(config) { arm(); }

    /// (Re)starts the wall clock and zeroes the counters.
    void arm()
    {
        start_ = std::chrono::steady_clock::now();
        waves_ = 0;
        steps_ = 0;
        sinceWallCheck_ = 0;
    }

    /// Charges one digital wave (delta cycle).
    void chargeDigitalWave()
    {
        ++waves_;
        if (config_.digitalWaves != 0 && waves_ > config_.digitalWaves) {
            throw WatchdogTimeout("watchdog: digital wave budget exhausted (" +
                                  std::to_string(config_.digitalWaves) + " waves)");
        }
        pollWallClock();
    }

    /// Charges one analog step attempt (accepted or rejected).
    void chargeAnalogStep()
    {
        ++steps_;
        if (config_.analogSteps != 0 && steps_ > config_.analogSteps) {
            throw WatchdogTimeout("watchdog: analog step budget exhausted (" +
                                  std::to_string(config_.analogSteps) + " steps)");
        }
        pollWallClock();
    }

    /// Immediate wall-clock check (call from coarse loop boundaries).
    void checkWallClock() const
    {
        if (config_.wallClockSeconds <= 0.0) {
            return;
        }
        const double elapsed = elapsedSeconds();
        if (elapsed > config_.wallClockSeconds) {
            throw WatchdogTimeout("watchdog: wall-clock deadline exceeded (" +
                                  std::to_string(elapsed) + " s > " +
                                  std::to_string(config_.wallClockSeconds) + " s)");
        }
    }

    /// Seconds of real time since arm().
    [[nodiscard]] double elapsedSeconds() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

    [[nodiscard]] std::uint64_t digitalWaves() const noexcept { return waves_; }
    [[nodiscard]] std::uint64_t analogSteps() const noexcept { return steps_; }
    [[nodiscard]] const WatchdogConfig& config() const noexcept { return config_; }

private:
    static constexpr std::uint32_t kWallCheckInterval = 256;

    void pollWallClock()
    {
        if (++sinceWallCheck_ >= kWallCheckInterval) {
            sinceWallCheck_ = 0;
            checkWallClock();
        }
    }

    WatchdogConfig config_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t waves_ = 0;
    std::uint64_t steps_ = 0;
    std::uint32_t sinceWallCheck_ = 0;
};

} // namespace gfi
