#pragma once
// Simulation time model shared by the digital and analog kernels.
//
// The digital kernel counts integer femtoseconds so that event ordering is
// exact and repeatable (no floating-point drift over long runs).  The analog
// solver works in double-precision seconds internally and synchronizes with
// the digital kernel on event boundaries; the conversion helpers below are the
// single place where the two representations meet.

#include <cstdint>
#include <string>

namespace gfi {

/// Simulation time in integer femtoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kFemtosecond = 1;
inline constexpr SimTime kPicosecond = 1'000;
inline constexpr SimTime kNanosecond = 1'000'000;
inline constexpr SimTime kMicrosecond = 1'000'000'000;
inline constexpr SimTime kMillisecond = 1'000'000'000'000;
inline constexpr SimTime kSecond = 1'000'000'000'000'000;

/// Sentinel for "no event pending" / "end of time".
inline constexpr SimTime kTimeMax = INT64_MAX;

/// Converts an integer-femtosecond time to double-precision seconds.
constexpr double toSeconds(SimTime t) noexcept
{
    return static_cast<double>(t) * 1e-15;
}

/// Converts double-precision seconds to integer femtoseconds (round to nearest).
constexpr SimTime fromSeconds(double seconds) noexcept
{
    const double fs = seconds * 1e15;
    return static_cast<SimTime>(fs + (fs >= 0 ? 0.5 : -0.5));
}

/// Formats a time with an auto-selected SI prefix, e.g. "1.5 ns" or "170 us".
std::string formatTime(SimTime t);

} // namespace gfi
