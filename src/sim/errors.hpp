#pragma once
// Simulation-error taxonomy shared by the digital kernel, the analog solver
// and the campaign engine. Faulty runs are *expected* to misbehave — an
// injected pulse can make the analog solver diverge, a mutated FSM can push
// the delta-cycle engine into oscillation — so the kernels throw typed
// errors the campaign layer can contain and classify instead of crashing on.
//
// All types derive from std::runtime_error, so pre-existing catch sites keep
// working; the campaign engine distinguishes them to map runs onto the
// Timeout / Diverged / SimError outcome categories.

#include <stdexcept>
#include <string>

namespace gfi {

/// Base class for every typed simulation failure.
class SimulationError : public std::runtime_error {
public:
    explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

/// The analog solve path lost the solution: non-finite values appeared, or
/// Newton / the step controller failed even at the minimum step.
class DivergenceError : public SimulationError {
public:
    explicit DivergenceError(const std::string& what) : SimulationError(what) {}
};

/// A watchdog budget was exhausted: wall-clock deadline, digital wave budget
/// or analog step budget (the run was making "progress" but would never end).
class WatchdogTimeout : public SimulationError {
public:
    explicit WatchdogTimeout(const std::string& what) : SimulationError(what) {}
};

/// The digital kernel hit its delta-cycle limit at one simulation time
/// (combinational loop or zero-delay oscillation, e.g. from a saboteur).
class SchedulerLimitError : public SimulationError {
public:
    explicit SchedulerLimitError(const std::string& what) : SimulationError(what) {}
};

} // namespace gfi
