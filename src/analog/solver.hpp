#pragma once
// Adaptive transient solver over the MNA system, with threshold-crossing
// monitors for mixed-signal synchronization.
//
// Integration: companion-model trapezoidal with backward-Euler restarts at
// discontinuities. Step control: predictor-corrector LTE estimate (linear
// extrapolation of the last two accepted solutions vs. the new solution).
// Monitors: after each candidate step, node voltages are checked against
// registered thresholds; on a crossing the step is bisected (by re-solving
// from the step start with shrinking dt, which is exact, not interpolated)
// until the crossing time is located within options.crossingTol, then the
// step is cut there and the monitor callback fires. This gives the digitizer
// edge times femtosecond-level accuracy, which bounds the accuracy of every
// clock-period measurement in the PLL experiments.

#include "analog/linear.hpp"
#include "analog/system.hpp"
#include "sim/watchdog.hpp"
#include "snapshot/serialize.hpp"

#include <functional>
#include <memory>
#include <set>

namespace gfi::obs {
class FlightRecorder;
}

namespace gfi::analog {

/// Tuning knobs for the transient solver.
struct SolverOptions {
    double dtMin = 1e-16;       ///< smallest step before giving up (s)
    double dtMax = 1e-6;        ///< largest step (s)
    double dtInitial = 1e-12;   ///< first step / restart step after discontinuities (s)
    double newtonTol = 1e-7;    ///< Newton convergence: max |dx| (V or A)
    int maxNewtonIter = 200;    ///< Newton iteration cap per solve
    double lteRelTol = 2e-3;    ///< relative local-error target
    double lteAbsTol = 1e-5;    ///< absolute local-error floor (V or A)
    double gmin = 1e-12;        ///< conductance from every node to ground
    double crossingTol = 1e-15; ///< crossing localization resolution (s)
    double growthLimit = 2.0;   ///< max step growth factor per accepted step
};

/// Watches one node voltage for threshold crossings.
class CrossingMonitor {
public:
    enum class Edge { Rising, Falling, Both };

    /// @param cb  invoked as cb(tCross, risingDirection) once the solver has
    ///            cut a step exactly at the crossing.
    CrossingMonitor(NodeId node, double threshold, Edge edge,
                    std::function<void(double, bool)> cb)
        : node_(node), threshold_(threshold), edge_(edge), cb_(std::move(cb))
    {
    }

    [[nodiscard]] NodeId node() const noexcept { return node_; }
    [[nodiscard]] double threshold() const noexcept { return threshold_; }
    [[nodiscard]] Edge edge() const noexcept { return edge_; }

    /// Adjusts the threshold (campaign sweeps use this).
    void setThreshold(double v) { threshold_ = v; }

private:
    friend class TransientSolver;

    /// Crossing predicate for values at step start/end.
    [[nodiscard]] bool crossed(double v0, double v1) const noexcept
    {
        const bool rising = v0 < threshold_ && v1 >= threshold_;
        const bool falling = v0 > threshold_ && v1 <= threshold_;
        switch (edge_) {
        case Edge::Rising:
            return rising;
        case Edge::Falling:
            return falling;
        case Edge::Both:
            return rising || falling;
        }
        return false;
    }

    NodeId node_;
    double threshold_;
    Edge edge_;
    std::function<void(double, bool)> cb_;
};

/// Cumulative solver statistics (performance benches report these).
/// The first five fields are snapshot-captured; the probe fields below them
/// are telemetry-only (billed per run by baseline delta, never serialized).
struct SolverStats {
    std::uint64_t acceptedSteps = 0;
    std::uint64_t rejectedSteps = 0;
    std::uint64_t newtonIterations = 0;
    std::uint64_t linearSolves = 0;
    std::uint64_t crossingsLocated = 0;

    // Kernel probes.
    std::uint64_t companionRebuilds = 0; ///< discontinuity restarts
    double minAcceptedDt = 0.0;          ///< smallest accepted step (s); 0 = none yet
    double lastAcceptedDt = 0.0;         ///< most recent accepted step (s)
};

/// The transient engine.
class TransientSolver {
public:
    explicit TransientSolver(AnalogSystem& sys, SolverOptions options = {});

    /// Computes the DC operating point (capacitors open, inductors short)
    /// and primes the dynamic components. Must run before advanceTo.
    void solveDc();

    /// Advances the analog time towards @p tStop. Returns the time actually
    /// reached: tStop, or earlier if a monitor crossing fired (its callback
    /// has already run when this returns).
    double advanceTo(double tStop);

    /// Registers a crossing monitor (owned by the solver).
    CrossingMonitor& addMonitor(NodeId node, double threshold, CrossingMonitor::Edge edge,
                                std::function<void(double, bool)> cb);

    /// Registers a callback invoked after every accepted step (trace probes).
    void onAccept(std::function<void(double)> cb) { probes_.push_back(std::move(cb)); }

    /// Declares a discontinuity at the current time: companion histories are
    /// dropped and the next step restarts small. The mixed-signal bridges
    /// call this whenever a digital event changes an analog drive level.
    void markDiscontinuity();

    /// Adds an explicit time the integrator must land on.
    void addBreakpoint(double t) { breakpoints_.insert(t); }

    /// Current analog time (seconds).
    [[nodiscard]] double time() const noexcept { return time_; }

    /// Cumulative statistics.
    [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

    /// Solver options (read-only).
    [[nodiscard]] const SolverOptions& options() const noexcept { return options_; }

    /// Serializes the integrator state: analog time, adaptive-step control,
    /// committed MNA solution, predictor history, cumulative statistics and
    /// external breakpoints. Monitors and probes are structural (rebuilt by
    /// elaboration) and are not captured. Per-component companion history is
    /// captured separately through AnalogComponent::captureState.
    void captureState(snapshot::Writer& w) const;

    /// Restores state written by captureState; the system must have the same
    /// unknown count as at capture time.
    void restoreState(snapshot::Reader& r);

    /// Attaches a per-run watchdog (not owned; nullptr detaches). Every step
    /// attempt charges one analog-step unit; budget exhaustion unwinds with
    /// WatchdogTimeout. Divergent solves (non-finite solution, step failure
    /// at the minimum step) unwind with DivergenceError.
    void setWatchdog(Watchdog* wd) noexcept { watchdog_ = wd; }

    /// Attaches a flight recorder (not owned; nullptr detaches). Every step
    /// accept/reject records one event — a branch and a ring write.
    void setFlightRecorder(obs::FlightRecorder* fr) noexcept { recorder_ = fr; }

private:
    /// One Newton solve of the step [time_, time_ + dt] from the committed
    /// state; returns false if Newton failed to converge or the matrix was
    /// singular. On success @p xOut holds the candidate end-of-step solution.
    /// @p tEvalOverride >= 0 replaces the source-evaluation time (used to
    /// evaluate a breakpoint-landing step at the left limit of the corner).
    bool trySolveStep(double dt, std::vector<double>& xOut, bool dcMode,
                      double tEvalOverride = -1.0);

    /// Earliest component/external breakpoint in (time_, tMax], or tMax.
    double nextBreakpoint(double tMax);

    /// Largest step hint from components.
    double maxStepHint() const;

    /// Commits an accepted step and runs probes.
    void acceptStep(const std::vector<double>& x, double dt);

    AnalogSystem* sys_;
    SolverOptions options_;
    DenseMatrix A_;
    std::vector<double> rhs_;
    std::vector<std::unique_ptr<CrossingMonitor>> monitors_;
    std::vector<std::function<void(double)>> probes_;
    std::set<double> breakpoints_;

    double time_ = 0.0;
    double dtNext_;
    bool dcDone_ = false;
    Watchdog* watchdog_ = nullptr;
    obs::FlightRecorder* recorder_ = nullptr;
    bool sawNonFinite_ = false; // last trySolveStep failure was non-finite

    // Predictor history for LTE estimation.
    std::vector<double> xPrev_;
    double dtPrev_ = 0.0;
    bool havePrev_ = false;

    SolverStats stats_;
};

} // namespace gfi::analog
