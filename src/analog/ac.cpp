#include "analog/ac.hpp"

#include <cmath>
#include <stdexcept>

namespace gfi::analog {

namespace {

using Complex = std::complex<double>;

/// Dense complex LU with partial pivoting (in place).
bool complexLuSolve(std::vector<Complex>& A, std::vector<Complex>& b, int n)
{
    auto at = [&](int r, int c) -> Complex& {
        return A[static_cast<std::size_t>(r) * n + static_cast<std::size_t>(c)];
    };
    for (int k = 0; k < n; ++k) {
        int pivot = k;
        double best = std::abs(at(k, k));
        for (int r = k + 1; r < n; ++r) {
            const double mag = std::abs(at(r, k));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best < 1e-300) {
            return false;
        }
        if (pivot != k) {
            for (int c = 0; c < n; ++c) {
                std::swap(at(k, c), at(pivot, c));
            }
            std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(pivot)]);
        }
        const Complex inv = 1.0 / at(k, k);
        for (int r = k + 1; r < n; ++r) {
            const Complex factor = at(r, k) * inv;
            if (factor == Complex{}) {
                continue;
            }
            at(r, k) = {};
            for (int c = k + 1; c < n; ++c) {
                at(r, c) -= factor * at(k, c);
            }
            b[static_cast<std::size_t>(r)] -= factor * b[static_cast<std::size_t>(k)];
        }
    }
    for (int r = n - 1; r >= 0; --r) {
        Complex acc = b[static_cast<std::size_t>(r)];
        for (int c = r + 1; c < n; ++c) {
            acc -= at(r, c) * b[static_cast<std::size_t>(c)];
        }
        b[static_cast<std::size_t>(r)] = acc / at(r, r);
    }
    return true;
}

} // namespace

double AcSweep::magnitudeDb(std::size_t i, NodeId node) const
{
    const auto v = points_.at(i).voltage(node, nodeCount_);
    return 20.0 * std::log10(std::max(std::abs(v), 1e-300));
}

double AcSweep::phaseDeg(std::size_t i, NodeId node) const
{
    const auto v = points_.at(i).voltage(node, nodeCount_);
    return std::arg(v) * 180.0 / M_PI;
}

double AcSweep::crossingFrequency(NodeId node, double db) const
{
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const double prev = magnitudeDb(i - 1, node);
        const double now = magnitudeDb(i, node);
        if (prev >= db && now < db) {
            // Interpolate in log-frequency.
            const double f0 = std::log10(points_[i - 1].hz);
            const double f1 = std::log10(points_[i].hz);
            const double frac = (prev - db) / (prev - now);
            return std::pow(10.0, f0 + frac * (f1 - f0));
        }
    }
    return -1.0;
}

AcSweep acSweep(const AnalogSystem& sys, const std::string& inputSource, double fStart,
                double fStop, int pointsPerDecade)
{
    if (fStart <= 0.0 || fStop <= fStart) {
        throw std::invalid_argument("acSweep: need 0 < fStart < fStop");
    }
    bool inputFound = false;
    for (const auto& comp : sys.components()) {
        if (comp->name() == inputSource) {
            inputFound = true;
        }
    }
    if (!inputFound) {
        throw std::invalid_argument("acSweep: unknown input source '" + inputSource + "'");
    }

    const int n = sys.unknownCount();
    const double decades = std::log10(fStop / fStart);
    const int steps = std::max(1, static_cast<int>(std::ceil(decades * pointsPerDecade)));

    std::vector<AcPoint> points;
    points.reserve(static_cast<std::size_t>(steps) + 1);
    for (int i = 0; i <= steps; ++i) {
        const double hz = fStart * std::pow(10.0, decades * i / steps);
        const double omega = 2.0 * M_PI * hz;

        std::vector<Complex> A(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
        std::vector<Complex> b(static_cast<std::size_t>(n));
        ComplexStamper stamper(A, b, sys.nodeCount(), inputSource);
        for (const auto& comp : sys.components()) {
            if (!comp->stampAc(stamper, omega)) {
                throw std::invalid_argument("acSweep: component '" + comp->name() +
                                            "' has no small-signal model");
            }
        }
        // gmin keeps floating nodes solvable, as in the transient path.
        for (int node = 1; node < sys.nodeCount(); ++node) {
            stamper.admittance(node, kGround, {1e-12, 0.0});
        }
        if (!complexLuSolve(A, b, n)) {
            throw std::runtime_error("acSweep: singular system at f=" + std::to_string(hz));
        }
        points.push_back(AcPoint{hz, std::move(b)});
    }
    return AcSweep{std::move(points), sys.nodeCount()};
}

} // namespace gfi::analog
