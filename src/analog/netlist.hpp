#pragma once
// SPICE-like netlist front-end for the analog system.
//
// The paper's flow assumes the analog blocks arrive as structural netlists of
// behavioral primitives. This parser accepts a familiar SPICE-flavoured deck
// so existing small decks can be dropped into the fault-injection flow, and
// so saboteur insertion points ("X" cards) can be declared in the netlist
// itself:
//
//   * comment
//   R1   in  out 1k        ; resistor
//   C1   out 0   100p      ; capacitor
//   L1   a   b   10u       ; inductor
//   V1   in  0   5         ; DC voltage source
//   V2   in  0   SIN(2.5 2.5 1meg)          ; offset amplitude freq [delay]
//   V3   in  0   PULSE(0 5 1u 1n 10n 1n)    ; v0 v1 delay rise width fall [period]
//   I1   0   n   2m        ; DC current source (SPICE: delivered into n-)
//   G1   0 out  in 0  1m   ; VCCS: gm * (V(ctrl+) - V(ctrl-)) into out+/out-
//   E1   out 0  in 0  10   ; VCVS
//   F1   0 out  V1 2       ; CCCS: 2 * I(V1) (V1 must be declared earlier)
//   H1   out 0  V1 50      ; CCVS: 50 * I(V1)
//   D1   a   0             ; diode (default parameters)
//   XSAB node               ; current saboteur attached to `node`
//   .end
//
// Numbers accept SPICE suffixes: f p n u m k meg g t (case-insensitive).

#include "analog/system.hpp"
#include "core/saboteur.hpp"

#include <map>
#include <string>

namespace gfi::analog {

/// Result of parsing a deck into an AnalogSystem.
struct NetlistResult {
    int componentCount = 0;
    /// Saboteurs declared with X cards, by card name (e.g. "XSAB").
    std::map<std::string, fault::CurrentSaboteur*> saboteurs;
};

/// Parses @p deck into @p sys; throws std::runtime_error with a line-numbered
/// message on syntax errors.
NetlistResult parseNetlist(const std::string& deck, AnalogSystem& sys);

/// Parses one SPICE-style number ("4.7k", "100p", "2meg"); throws
/// std::runtime_error if the token is not a number.
[[nodiscard]] double parseSpiceNumber(const std::string& token);

} // namespace gfi::analog
