#include "analog/passive.hpp"

#include <stdexcept>

namespace gfi::analog {

// ---------------------------------------------------------------------------
// Resistor

Resistor::Resistor(AnalogSystem& sys, std::string name, NodeId a, NodeId b, double ohms)
    : AnalogComponent(std::move(name)), a_(a), b_(b), ohms_(ohms)
{
    (void)sys;
    if (ohms <= 0.0) {
        throw std::invalid_argument("Resistor '" + this->name() + "': non-positive resistance");
    }
}

void Resistor::stamp(Stamper& s, const Solution&, double, double, bool)
{
    s.conductance(a_, b_, 1.0 / ohms_);
}

// ---------------------------------------------------------------------------
// Capacitor

Capacitor::Capacitor(AnalogSystem& sys, std::string name, NodeId a, NodeId b, double farads)
    : AnalogComponent(std::move(name)), a_(a), b_(b), farads_(farads)
{
    (void)sys;
    if (farads <= 0.0) {
        throw std::invalid_argument("Capacitor '" + this->name() + "': non-positive capacitance");
    }
}

void Capacitor::stamp(Stamper& s, const Solution& x, double, double dt, bool dcMode)
{
    if (dcMode) {
        // Open circuit at DC; remember the operating-point voltage so the
        // first transient step starts from it.
        v0_ = x.voltage(a_) - x.voltage(b_);
        primed_ = true;
        return;
    }
    if (!primed_) {
        v0_ = x.voltage(a_) - x.voltage(b_); // cold start without a DC pass
        primed_ = true;
    }
    if (hasHistory_) {
        // Trapezoidal companion: i1 = (2C/dt)(v1 - v0) - i0.
        geq_ = 2.0 * farads_ / dt;
        irhs_ = -geq_ * v0_ - i0_;
    } else {
        // Backward Euler for the first step (or after a discontinuity).
        geq_ = farads_ / dt;
        irhs_ = -geq_ * v0_;
    }
    s.conductance(a_, b_, geq_);
    // The constant part irhs_ is a current leaving node a.
    s.currentInto(a_, -irhs_);
    s.currentInto(b_, irhs_);
}

void Capacitor::acceptStep(const Solution& x, double, double)
{
    const double v1 = x.voltage(a_) - x.voltage(b_);
    i0_ = geq_ * v1 + irhs_;
    v0_ = v1;
    hasHistory_ = true;
}

// ---------------------------------------------------------------------------
// Inductor

Inductor::Inductor(AnalogSystem& sys, std::string name, NodeId a, NodeId b, double henries)
    : AnalogComponent(std::move(name)), a_(a), b_(b), henries_(henries)
{
    (void)sys;
    if (henries <= 0.0) {
        throw std::invalid_argument("Inductor '" + this->name() + "': non-positive inductance");
    }
}

void Inductor::stamp(Stamper& s, const Solution&, double, double dt, bool dcMode)
{
    if (dcMode) {
        // Near-short at DC.
        s.conductance(a_, b_, 1e9);
        return;
    }
    if (hasHistory_) {
        // Trapezoidal companion: i1 = i0 + dt/(2L) * (v0 + v1).
        geq_ = dt / (2.0 * henries_);
        irhs_ = i0_ + geq_ * v0_;
    } else {
        // Backward Euler: i1 = i0 + (dt/L) v1.
        geq_ = dt / henries_;
        irhs_ = i0_;
    }
    s.conductance(a_, b_, geq_);
    // irhs_ is a constant current flowing a -> b.
    s.currentInto(a_, -irhs_);
    s.currentInto(b_, irhs_);
}

void Inductor::acceptStep(const Solution& x, double, double)
{
    const double v1 = x.voltage(a_) - x.voltage(b_);
    i0_ = geq_ * v1 + irhs_;
    v0_ = v1;
    hasHistory_ = true;
}

} // namespace gfi::analog

// ---------------------------------------------------------------------------
// Small-signal (AC) stamps

namespace gfi::analog {

bool Resistor::stampAc(ComplexStamper& s, double) const
{
    s.admittance(a_, b_, {1.0 / ohms_, 0.0});
    return true;
}

bool Capacitor::stampAc(ComplexStamper& s, double omega) const
{
    s.admittance(a_, b_, {0.0, omega * farads_});
    return true;
}

bool Inductor::stampAc(ComplexStamper& s, double omega) const
{
    if (omega <= 0.0) {
        return true; // DC: handled by the transient/DC path, skip
    }
    s.admittance(a_, b_, std::complex<double>{0.0, -1.0 / (omega * henries_)});
    return true;
}

} // namespace gfi::analog
