#pragma once
// Passive linear components: resistor, capacitor, inductor.
//
// Dynamic elements use companion models: trapezoidal integration by default
// (switchable to backward Euler for the first step after a discontinuity,
// which damps the trapezoidal method's characteristic ringing on steps).

#include "analog/system.hpp"

namespace gfi::analog {

/// Linear resistor between two nodes.
class Resistor : public AnalogComponent {
public:
    Resistor(AnalogSystem& sys, std::string name, NodeId a, NodeId b, double ohms);

    /// Resistance accessor/mutator (mutation models a parametric fault).
    [[nodiscard]] double resistance() const noexcept { return ohms_; }
    void setResistance(double ohms) { ohms_ = ohms; }

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    bool stampAc(ComplexStamper& s, double omega) const override;

private:
    NodeId a_;
    NodeId b_;
    double ohms_;
};

/// Linear capacitor between two nodes.
class Capacitor : public AnalogComponent {
public:
    Capacitor(AnalogSystem& sys, std::string name, NodeId a, NodeId b, double farads);

    /// Capacitance accessor/mutator (mutation models a parametric fault).
    [[nodiscard]] double capacitance() const noexcept { return farads_; }
    void setCapacitance(double farads) { farads_ = farads; }

    /// Drops companion history so the next step integrates with backward
    /// Euler — called by the solver after discontinuities.
    void resetHistory() { hasHistory_ = false; }

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    void acceptStep(const Solution& x, double t, double dt) override;
    void notifyDiscontinuity() override { resetHistory(); }
    bool stampAc(ComplexStamper& s, double omega) const override;

    void captureState(snapshot::Writer& w) const override
    {
        w.f64(v0_);
        w.f64(i0_);
        w.f64(geq_);
        w.f64(irhs_);
        w.boolean(hasHistory_);
        w.boolean(primed_);
    }

    void restoreState(snapshot::Reader& r) override
    {
        v0_ = r.f64();
        i0_ = r.f64();
        geq_ = r.f64();
        irhs_ = r.f64();
        hasHistory_ = r.boolean();
        primed_ = r.boolean();
    }

private:
    NodeId a_;
    NodeId b_;
    double farads_;
    double v0_ = 0.0;   // voltage across at start of step
    double i0_ = 0.0;   // current through at start of step
    double geq_ = 0.0;  // companion conductance used in the last stamp
    double irhs_ = 0.0; // companion source used in the last stamp
    bool hasHistory_ = false;
    bool primed_ = false; // v0_ initialized from the DC solution
};

/// Linear inductor between two nodes (Norton companion form).
class Inductor : public AnalogComponent {
public:
    Inductor(AnalogSystem& sys, std::string name, NodeId a, NodeId b, double henries);

    /// Inductance accessor/mutator (mutation models a parametric fault).
    [[nodiscard]] double inductance() const noexcept { return henries_; }
    void setInductance(double henries) { henries_ = henries; }

    /// Drops companion history (backward Euler restart after discontinuity).
    void resetHistory() { hasHistory_ = false; }

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    void acceptStep(const Solution& x, double t, double dt) override;
    void notifyDiscontinuity() override { resetHistory(); }
    bool stampAc(ComplexStamper& s, double omega) const override;

    void captureState(snapshot::Writer& w) const override
    {
        w.f64(v0_);
        w.f64(i0_);
        w.f64(geq_);
        w.f64(irhs_);
        w.boolean(hasHistory_);
    }

    void restoreState(snapshot::Reader& r) override
    {
        v0_ = r.f64();
        i0_ = r.f64();
        geq_ = r.f64();
        irhs_ = r.f64();
        hasHistory_ = r.boolean();
    }

private:
    NodeId a_;
    NodeId b_;
    double henries_;
    double v0_ = 0.0;
    double i0_ = 0.0;
    double geq_ = 0.0;
    double irhs_ = 0.0;
    bool hasHistory_ = false;
};

} // namespace gfi::analog
