#include "analog/netlist.hpp"

#include "analog/controlled.hpp"
#include "analog/passive.hpp"
#include "analog/sources.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace gfi::analog {

namespace {

std::string lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

[[noreturn]] void fail(int line, const std::string& message)
{
    throw std::runtime_error("netlist line " + std::to_string(line) + ": " + message);
}

/// Splits "SIN(2.5 2.5 1meg)" style argument lists.
std::vector<double> parseArgs(const std::string& token, int line)
{
    const auto open = token.find('(');
    const auto close = token.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
        fail(line, "malformed function call '" + token + "'");
    }
    std::vector<double> args;
    std::istringstream in(token.substr(open + 1, close - open - 1));
    std::string word;
    while (in >> word) {
        args.push_back(parseSpiceNumber(word));
    }
    return args;
}

} // namespace

double parseSpiceNumber(const std::string& token)
{
    if (token.empty()) {
        throw std::runtime_error("empty number");
    }
    std::size_t idx = 0;
    double value = 0.0;
    try {
        value = std::stod(token, &idx);
    } catch (const std::exception&) {
        throw std::runtime_error("not a number: '" + token + "'");
    }
    const std::string suffix = lower(token.substr(idx));
    if (suffix.empty()) {
        return value;
    }
    if (suffix.rfind("meg", 0) == 0) {
        return value * 1e6;
    }
    switch (suffix[0]) {
    case 'f':
        return value * 1e-15;
    case 'p':
        return value * 1e-12;
    case 'n':
        return value * 1e-9;
    case 'u':
        return value * 1e-6;
    case 'm':
        return value * 1e-3;
    case 'k':
        return value * 1e3;
    case 'g':
        return value * 1e9;
    case 't':
        return value * 1e12;
    default:
        throw std::runtime_error("unknown suffix on '" + token + "'");
    }
}

NetlistResult parseNetlist(const std::string& deck, AnalogSystem& sys)
{
    NetlistResult result;
    std::istringstream lines(deck);
    std::string rawLine;
    int lineNo = 0;

    while (std::getline(lines, rawLine)) {
        ++lineNo;
        // Strip ';' comments.
        const auto semi = rawLine.find(';');
        std::string text = semi == std::string::npos ? rawLine : rawLine.substr(0, semi);
        std::istringstream in(text);
        std::vector<std::string> tokens;
        std::string tok;
        while (in >> tok) {
            tokens.push_back(tok);
        }
        if (tokens.empty() || tokens[0][0] == '*') {
            continue;
        }
        const std::string card = tokens[0];
        const std::string kind = lower(card.substr(0, 1));
        if (kind == ".") {
            if (lower(card) == ".end") {
                break;
            }
            continue; // other dot-cards ignored
        }

        auto node = [&](std::size_t i) -> NodeId {
            if (i >= tokens.size()) {
                fail(lineNo, "missing node on '" + card + "'");
            }
            return sys.node(tokens[i]);
        };
        auto number = [&](std::size_t i) -> double {
            if (i >= tokens.size()) {
                fail(lineNo, "missing value on '" + card + "'");
            }
            try {
                return parseSpiceNumber(tokens[i]);
            } catch (const std::exception& e) {
                fail(lineNo, e.what());
            }
        };

        if (kind == "r") {
            sys.add<Resistor>(sys, card, node(1), node(2), number(3));
        } else if (kind == "c") {
            sys.add<Capacitor>(sys, card, node(1), node(2), number(3));
        } else if (kind == "l") {
            sys.add<Inductor>(sys, card, node(1), node(2), number(3));
        } else if (kind == "v") {
            if (tokens.size() < 4) {
                fail(lineNo, "voltage source needs a value");
            }
            const std::string spec = lower(tokens[3]);
            if (spec.rfind("sin", 0) == 0) {
                // Re-join the remaining tokens so "SIN(1 2 3)" split by
                // whitespace still parses.
                std::string joined;
                for (std::size_t i = 3; i < tokens.size(); ++i) {
                    joined += tokens[i] + " ";
                }
                const auto args = parseArgs(joined, lineNo);
                if (args.size() < 3) {
                    fail(lineNo, "SIN needs (offset amplitude freq [delay])");
                }
                sys.add<SineVoltage>(sys, card, node(1), node(2), args[0], args[1], args[2],
                                     args.size() > 3 ? args[3] : 0.0);
            } else if (spec.rfind("pulse", 0) == 0) {
                std::string joined;
                for (std::size_t i = 3; i < tokens.size(); ++i) {
                    joined += tokens[i] + " ";
                }
                const auto args = parseArgs(joined, lineNo);
                if (args.size() < 6) {
                    fail(lineNo, "PULSE needs (v0 v1 delay rise width fall [period])");
                }
                sys.add<PulseVoltage>(sys, card, node(1), node(2), args[0], args[1], args[2],
                                      args[3], args[4], args[5],
                                      args.size() > 6 ? args[6] : 0.0);
            } else {
                std::size_t valueIdx = 3;
                if (spec == "dc") {
                    valueIdx = 4;
                }
                sys.add<VoltageSource>(sys, card, node(1), node(2), number(valueIdx));
            }
        } else if (kind == "i") {
            std::size_t valueIdx = 3;
            if (tokens.size() > 3 && lower(tokens[3]) == "dc") {
                valueIdx = 4;
            }
            // SPICE convention: positive current flows from n+ through the
            // source into n-, i.e. it is delivered INTO node n-. Our
            // CurrentSource pushes into its first node, so swap.
            sys.add<CurrentSource>(sys, card, node(2), node(1), number(valueIdx));
        } else if (kind == "g") {
            sys.add<Vccs>(sys, card, node(1), node(2), node(3), node(4), number(5));
        } else if (kind == "e") {
            sys.add<Vcvs>(sys, card, node(1), node(2), node(3), node(4), number(5));
        } else if (kind == "f" || kind == "h") {
            // F/H: current-controlled sources sensing a previously-declared
            // voltage source's branch current.
            if (tokens.size() < 5) {
                fail(lineNo, "current-controlled source needs out+ out- Vsense gain");
            }
            auto* sense = dynamic_cast<VoltageSource*>(sys.findComponent(tokens[3]));
            if (sense == nullptr) {
                fail(lineNo, "sense source '" + tokens[3] + "' not declared (yet)");
            }
            if (kind == "f") {
                sys.add<Cccs>(sys, card, node(1), node(2), sense->branchIndex(), number(4));
            } else {
                sys.add<Ccvs>(sys, card, node(1), node(2), sense->branchIndex(), number(4));
            }
        } else if (kind == "d") {
            sys.add<Diode>(sys, card, node(1), node(2));
        } else if (kind == "x") {
            auto& sab = sys.add<fault::CurrentSaboteur>(sys, card, node(1));
            result.saboteurs[card] = &sab;
        } else {
            fail(lineNo, "unknown card '" + card + "'");
        }
        ++result.componentCount;
    }
    return result;
}

} // namespace gfi::analog
