#pragma once
// AnalogSystem: the analog half of the mixed-signal circuit.
//
// Modified nodal analysis (MNA): unknowns are the node voltages (ground
// excluded) plus one branch current per voltage-defined element. Components
// contribute to the system matrix and right-hand side through a Stamper each
// Newton iteration; dynamic elements keep their own companion-model history.
//
// This is the C++ equivalent of the VHDL-AMS "electrical" discipline the
// paper instruments: a node is a KCL equation, and injecting a fault is
// adding a current contribution to that equation — exactly the saboteur
// semantics of the paper's Figure 4.

#include "snapshot/snapshot.hpp"

#include <complex>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace gfi::analog {

/// Node handle; 0 is ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

class AnalogSystem;

/// View of the current candidate solution during stamping.
class Solution {
public:
    Solution(const std::vector<double>& x, int nodeCount) : x_(&x), nodeCount_(nodeCount) {}

    /// Voltage of @p n (0 for ground).
    [[nodiscard]] double voltage(NodeId n) const
    {
        return n == kGround ? 0.0 : (*x_)[static_cast<std::size_t>(n - 1)];
    }

    /// Current of MNA branch @p b.
    [[nodiscard]] double branchCurrent(int b) const
    {
        return (*x_)[static_cast<std::size_t>(nodeCount_ - 1 + b)];
    }

private:
    const std::vector<double>* x_;
    int nodeCount_;
};

/// Observes the structure of MNA stamps as components emit them. The lint
/// subsystem attaches one to a Stamper to reconstruct circuit topology
/// (conductance graph, branch incidence, current injections) without adding
/// any bookkeeping to the components themselves.
class StampObserver {
public:
    virtual ~StampObserver() = default;
    virtual void onConductance(NodeId a, NodeId b, double g) = 0;
    virtual void onCurrentInto(NodeId n, double i) = 0;
    virtual void onVccs(NodeId outP, NodeId outM, NodeId ctrlP, NodeId ctrlM, double g) = 0;
    virtual void onAddA(int row, int col, double v) = 0;
    virtual void onAddB(int row, double v) = 0;
};

/// Assembles component contributions into the MNA matrix and RHS.
class Stamper {
public:
    Stamper(class DenseMatrix& A, std::vector<double>& b, int nodeCount);

    /// Attaches a structure observer (not owned; nullptr detaches). Every
    /// subsequent stamp call is mirrored to it.
    void setObserver(StampObserver* obs) noexcept { observer_ = obs; }

    /// Conductance @p g between nodes @p a and @p b (the classic 4-entry stamp).
    void conductance(NodeId a, NodeId b, double g);

    /// Independent/Norton current @p i flowing INTO node @p n.
    void currentInto(NodeId n, double i);

    /// VCCS: current g*(Vc+ - Vc-) flows from @p out_p to @p out_m.
    void vccs(NodeId outP, NodeId outM, NodeId ctrlP, NodeId ctrlM, double g);

    /// Row/column index of a node variable, or -1 for ground.
    [[nodiscard]] int varOfNode(NodeId n) const noexcept { return n == kGround ? -1 : n - 1; }

    /// Row/column index of branch variable @p b.
    [[nodiscard]] int varOfBranch(int b) const noexcept { return nodeCount_ - 1 + b; }

    /// Raw matrix element add (for voltage-defined branch stamps).
    void addA(int row, int col, double v);

    /// Raw RHS element add.
    void addB(int row, double v);

private:
    class DenseMatrix* A_;
    std::vector<double>* b_;
    int nodeCount_;
    StampObserver* observer_ = nullptr;
};

/// Assembles small-signal (AC) contributions into a complex MNA system.
class ComplexStamper {
public:
    using Complex = std::complex<double>;

    ComplexStamper(std::vector<Complex>& A, std::vector<Complex>& b, int nodeCount,
                   const std::string& acInput)
        : A_(&A), b_(&b), n_(static_cast<int>(b.size())), nodeCount_(nodeCount),
          acInput_(&acInput)
    {
    }

    /// Name of the voltage source selected as the 1 V AC input.
    [[nodiscard]] const std::string& acInput() const noexcept { return *acInput_; }

    /// Complex admittance @p y between nodes @p a and @p b.
    void admittance(NodeId a, NodeId b, Complex y);

    /// VCCS with real gain @p g (current from out+ to out-).
    void vccs(NodeId outP, NodeId outM, NodeId ctrlP, NodeId ctrlM, double g);

    /// Row/column of a node variable (-1 for ground) / branch variable.
    [[nodiscard]] int varOfNode(NodeId n) const noexcept { return n == kGround ? -1 : n - 1; }
    [[nodiscard]] int varOfBranch(int b) const noexcept { return nodeCount_ - 1 + b; }

    /// Raw element adds.
    void addA(int row, int col, Complex v);
    void addB(int row, Complex v);

private:
    std::vector<Complex>* A_; // row-major n x n
    std::vector<Complex>* b_;
    int n_;
    int nodeCount_;
    const std::string* acInput_;
};

/// Base class for analog components (the behavioral sub-blocks of the paper's
/// mixed structural/behavioral descriptions).
class AnalogComponent : public snapshot::Snapshottable {
public:
    explicit AnalogComponent(std::string name) : name_(std::move(name)) {}
    ~AnalogComponent() override = default;
    AnalogComponent(const AnalogComponent&) = delete;
    AnalogComponent& operator=(const AnalogComponent&) = delete;

    /// Hierarchical instance name.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Adds this component's contribution for a step ending at time @p t with
    /// step size @p dt (seconds), given the current Newton candidate @p x.
    /// With @p dcMode true the solver is computing the operating point:
    /// capacitors stamp as open circuits, inductors as shorts.
    virtual void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) = 0;

    /// Notification that the step ending at @p t was accepted with solution
    /// @p x; dynamic components commit their companion-model history here.
    virtual void acceptStep(const Solution& x, double t, double dt)
    {
        (void)x;
        (void)t;
        (void)dt;
    }

    /// Appends discontinuity times in (tNow, tMax] that the integrator must
    /// land on exactly (source corners, pulse edges, ...).
    virtual void collectBreakpoints(double tNow, double tMax, std::vector<double>& out)
    {
        (void)tNow;
        (void)tMax;
        (void)out;
    }

    /// True when the component's stamp depends on the candidate solution —
    /// forces Newton iteration to convergence.
    [[nodiscard]] virtual bool isNonlinear() const { return false; }

    /// Called when the circuit experiences a discontinuity (source level
    /// switched, fault pulse corner): dynamic components drop companion
    /// history so the next step restarts with backward Euler.
    virtual void notifyDiscontinuity() {}

    /// Largest step the component tolerates around time @p t (behavioral
    /// oscillators bound the phase advance per step). Default: unlimited.
    [[nodiscard]] virtual double maxStep(double t) const
    {
        (void)t;
        return 1e30;
    }

    /// Serializes integration history / behavioral state for a simulation
    /// snapshot. Stateless components (the default) write nothing; stateful
    /// ones (capacitors, inductors, behavioral oscillators, externally
    /// driven sources) override both hooks symmetrically.
    void captureState(snapshot::Writer& w) const override { (void)w; }

    /// Restores state written by captureState. Must consume exactly the
    /// bytes the capture wrote.
    void restoreState(snapshot::Reader& r) override { (void)r; }

    /// Adds this component's small-signal contribution at angular frequency
    /// @p omega. Returns false when the component has no linear small-signal
    /// model (the AC sweep then rejects the circuit). Components that are
    /// simply absent at AC (e.g. a disarmed saboteur) stamp nothing and
    /// return true.
    virtual bool stampAc(ComplexStamper& s, double omega) const
    {
        (void)s;
        (void)omega;
        return false;
    }

private:
    std::string name_;
};

/// The analog circuit: nodes + components + last accepted solution.
class AnalogSystem {
public:
    AnalogSystem() = default;
    AnalogSystem(const AnalogSystem&) = delete;
    AnalogSystem& operator=(const AnalogSystem&) = delete;

    /// Gets or creates the node named @p name ("0" and "gnd" are ground).
    NodeId node(const std::string& name);

    /// Number of nodes including ground.
    [[nodiscard]] int nodeCount() const noexcept { return static_cast<int>(nodeNames_.size()); }

    /// Name of node @p n.
    [[nodiscard]] const std::string& nodeName(NodeId n) const
    {
        return nodeNames_.at(static_cast<std::size_t>(n));
    }

    /// Allocates an MNA branch-current variable (voltage sources, inductors
    /// in branch form). Returns the branch index.
    int allocateBranch() { return branchCount_++; }

    /// Number of allocated branch variables.
    [[nodiscard]] int branchCount() const noexcept { return branchCount_; }

    /// Total unknown count: (nodes - ground) + branches.
    [[nodiscard]] int unknownCount() const noexcept { return nodeCount() - 1 + branchCount_; }

    /// Constructs a component in place; the system owns it.
    template <typename C, typename... Args>
    C& add(Args&&... args)
    {
        auto comp = std::make_unique<C>(std::forward<Args>(args)...);
        C& ref = *comp;
        components_.push_back(std::move(comp));
        return ref;
    }

    /// All components (solver iteration).
    [[nodiscard]] const std::vector<std::unique_ptr<AnalogComponent>>& components() const noexcept
    {
        return components_;
    }

    /// Finds a component by name, or nullptr.
    [[nodiscard]] AnalogComponent* findComponent(const std::string& name) const
    {
        for (const auto& comp : components_) {
            if (comp->name() == name) {
                return comp.get();
            }
        }
        return nullptr;
    }

    /// Voltage of @p n in the last accepted solution.
    [[nodiscard]] double voltage(NodeId n) const
    {
        return n == kGround ? 0.0 : state_[static_cast<std::size_t>(n - 1)];
    }

    /// The last accepted solution vector (solver use).
    [[nodiscard]] std::vector<double>& state() noexcept { return state_; }
    [[nodiscard]] const std::vector<double>& state() const noexcept { return state_; }

private:
    std::unordered_map<std::string, NodeId> nodeIndex_;
    std::vector<std::string> nodeNames_{"0"};
    std::vector<std::unique_ptr<AnalogComponent>> components_;
    std::vector<double> state_;
    int branchCount_ = 0;
};

} // namespace gfi::analog
