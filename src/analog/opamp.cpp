#include "analog/opamp.hpp"

#include <cmath>

namespace gfi::analog {

OpAmp::OpAmp(AnalogSystem& sys, const std::string& name, NodeId inP, NodeId inM, NodeId out,
             OpAmpConfig config)
    : config_(config)
{
    pole_ = sys.node(name + "/pole");
    const NodeId outInt = sys.node(name + "/out_int");

    // Differential input resistance.
    sys.add<Resistor>(sys, name + "/rin", inP, inM, config.rin);

    // Transconductance stage into the dominant pole: choose Rp = 1 MOhm and
    // gm = dcGain / Rp so the pole-node DC gain equals dcGain; Cp places the
    // pole at poleHz.
    const double rp = 1e6;
    const double gmVal = config.dcGain / rp;
    const double cp = 1.0 / (2.0 * M_PI * config.poleHz * rp);
    gm_ = &sys.add<Vccs>(sys, name + "/gm", kGround, pole_, inP, inM, gmVal);
    sys.add<Resistor>(sys, name + "/rp", pole_, kGround, rp);
    sys.add<Capacitor>(sys, name + "/cp", pole_, kGround, cp);

    // Saturating unity buffer plus output resistance.
    sys.add<SaturatingVcvs>(sys, name + "/buf", outInt, kGround, pole_, kGround, 1.0,
                            config.outMid, config.outSwing);
    sys.add<Resistor>(sys, name + "/rout", outInt, out, config.rout);
}

} // namespace gfi::analog
