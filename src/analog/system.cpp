#include "analog/system.hpp"

#include "analog/linear.hpp"

namespace gfi::analog {

Stamper::Stamper(DenseMatrix& A, std::vector<double>& b, int nodeCount)
    : A_(&A), b_(&b), nodeCount_(nodeCount)
{
}

void Stamper::conductance(NodeId a, NodeId b, double g)
{
    if (observer_ != nullptr) {
        observer_->onConductance(a, b, g);
    }
    const int va = varOfNode(a);
    const int vb = varOfNode(b);
    if (va >= 0) {
        A_->at(va, va) += g;
    }
    if (vb >= 0) {
        A_->at(vb, vb) += g;
    }
    if (va >= 0 && vb >= 0) {
        A_->at(va, vb) -= g;
        A_->at(vb, va) -= g;
    }
}

void Stamper::currentInto(NodeId n, double i)
{
    if (observer_ != nullptr) {
        observer_->onCurrentInto(n, i);
    }
    const int v = varOfNode(n);
    if (v >= 0) {
        (*b_)[static_cast<std::size_t>(v)] += i;
    }
}

void Stamper::vccs(NodeId outP, NodeId outM, NodeId ctrlP, NodeId ctrlM, double g)
{
    if (observer_ != nullptr) {
        observer_->onVccs(outP, outM, ctrlP, ctrlM, g);
    }
    const int p = varOfNode(outP);
    const int m = varOfNode(outM);
    const int cp = varOfNode(ctrlP);
    const int cm = varOfNode(ctrlM);
    // Current g*(VcP - VcM) leaves outP and enters outM.
    if (p >= 0 && cp >= 0) {
        A_->at(p, cp) += g;
    }
    if (p >= 0 && cm >= 0) {
        A_->at(p, cm) -= g;
    }
    if (m >= 0 && cp >= 0) {
        A_->at(m, cp) -= g;
    }
    if (m >= 0 && cm >= 0) {
        A_->at(m, cm) += g;
    }
}

void Stamper::addA(int row, int col, double v)
{
    if (observer_ != nullptr) {
        observer_->onAddA(row, col, v);
    }
    if (row >= 0 && col >= 0) {
        A_->at(row, col) += v;
    }
}

void Stamper::addB(int row, double v)
{
    if (observer_ != nullptr) {
        observer_->onAddB(row, v);
    }
    if (row >= 0) {
        (*b_)[static_cast<std::size_t>(row)] += v;
    }
}

void ComplexStamper::admittance(NodeId a, NodeId b, Complex y)
{
    const int va = varOfNode(a);
    const int vb = varOfNode(b);
    if (va >= 0) {
        addA(va, va, y);
    }
    if (vb >= 0) {
        addA(vb, vb, y);
    }
    if (va >= 0 && vb >= 0) {
        addA(va, vb, -y);
        addA(vb, va, -y);
    }
}

void ComplexStamper::vccs(NodeId outP, NodeId outM, NodeId ctrlP, NodeId ctrlM, double g)
{
    const int p = varOfNode(outP);
    const int m = varOfNode(outM);
    const int cp = varOfNode(ctrlP);
    const int cm = varOfNode(ctrlM);
    if (p >= 0 && cp >= 0) {
        addA(p, cp, g);
    }
    if (p >= 0 && cm >= 0) {
        addA(p, cm, -g);
    }
    if (m >= 0 && cp >= 0) {
        addA(m, cp, -g);
    }
    if (m >= 0 && cm >= 0) {
        addA(m, cm, g);
    }
}

void ComplexStamper::addA(int row, int col, Complex v)
{
    if (row >= 0 && col >= 0) {
        (*A_)[static_cast<std::size_t>(row) * n_ + static_cast<std::size_t>(col)] += v;
    }
}

void ComplexStamper::addB(int row, Complex v)
{
    if (row >= 0) {
        (*b_)[static_cast<std::size_t>(row)] += v;
    }
}

NodeId AnalogSystem::node(const std::string& name)
{
    if (name == "0" || name == "gnd" || name == "GND") {
        return kGround;
    }
    const auto it = nodeIndex_.find(name);
    if (it != nodeIndex_.end()) {
        return it->second;
    }
    const NodeId id = static_cast<NodeId>(nodeNames_.size());
    nodeNames_.push_back(name);
    nodeIndex_.emplace(name, id);
    return id;
}

} // namespace gfi::analog
