#pragma once
// Controlled sources and the diode: the building blocks for behavioral analog
// macro-models (op-amps, comparators, buffer stages).

#include "analog/system.hpp"

namespace gfi::analog {

/// Linear voltage-controlled current source:
/// current gm * (Vc+ - Vc-) flows from out+ to out-.
class Vccs : public AnalogComponent {
public:
    Vccs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, NodeId ctrlP,
         NodeId ctrlM, double gm);

    /// Transconductance accessor/mutator (parametric fault target).
    [[nodiscard]] double gm() const noexcept { return gm_; }
    void setGm(double gm) { gm_ = gm; }

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    bool stampAc(ComplexStamper& s, double omega) const override;

private:
    NodeId outP_;
    NodeId outM_;
    NodeId ctrlP_;
    NodeId ctrlM_;
    double gm_;
};

/// Linear voltage-controlled voltage source (adds one MNA branch):
/// V(out+) - V(out-) = gain * (Vc+ - Vc-).
class Vcvs : public AnalogComponent {
public:
    Vcvs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, NodeId ctrlP,
         NodeId ctrlM, double gain);

    /// Gain accessor/mutator (parametric fault target).
    [[nodiscard]] double gain() const noexcept { return gain_; }
    void setGain(double gain) { gain_ = gain; }

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    bool stampAc(ComplexStamper& s, double omega) const override;

private:
    NodeId outP_;
    NodeId outM_;
    NodeId ctrlP_;
    NodeId ctrlM_;
    int branch_;
    double gain_;
};

/// Saturating VCVS: V(out) = mid + swing * tanh(gain * (Vc+ - Vc-) / swing).
/// The smooth tanh clamp models rail saturation of behavioral op-amp and
/// comparator output stages while staying Newton-friendly.
class SaturatingVcvs : public AnalogComponent {
public:
    /// @param mid    output value at zero differential input.
    /// @param swing  maximum excursion from @p mid (output spans mid +/- swing).
    SaturatingVcvs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, NodeId ctrlP,
                   NodeId ctrlM, double gain, double mid, double swing);

    /// Gain accessor/mutator (parametric fault target).
    [[nodiscard]] double gain() const noexcept { return gain_; }
    void setGain(double gain) { gain_ = gain; }

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    [[nodiscard]] bool isNonlinear() const override { return true; }

private:
    NodeId outP_;
    NodeId outM_;
    NodeId ctrlP_;
    NodeId ctrlM_;
    int branch_;
    double gain_;
    double mid_;
    double swing_;
};

/// Current-controlled current source (SPICE F card):
/// current gain * I(sense) flows from out+ to out-, where I(sense) is the
/// branch current of a voltage source (SPICE current-sensing convention).
class Cccs : public AnalogComponent {
public:
    Cccs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, int senseBranch,
         double gain);

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    bool stampAc(ComplexStamper& s, double omega) const override;

private:
    NodeId outP_;
    NodeId outM_;
    int senseBranch_;
    double gain_;
};

/// Current-controlled voltage source (SPICE H card):
/// V(out+) - V(out-) = gain * I(sense). Adds one MNA branch.
class Ccvs : public AnalogComponent {
public:
    Ccvs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, int senseBranch,
         double gain);

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    bool stampAc(ComplexStamper& s, double omega) const override;

private:
    NodeId outP_;
    NodeId outM_;
    int senseBranch_;
    int branch_;
    double gain_;
};

/// Shockley diode with series conductance limiting (Newton-stamped).
class Diode : public AnalogComponent {
public:
    /// @param isat  saturation current, @param vt thermal voltage (nVt really).
    Diode(AnalogSystem& sys, std::string name, NodeId anode, NodeId cathode,
          double isat = 1e-14, double vt = 0.02585);

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    [[nodiscard]] bool isNonlinear() const override { return true; }

private:
    NodeId a_;
    NodeId k_;
    double isat_;
    double vt_;
};

} // namespace gfi::analog
