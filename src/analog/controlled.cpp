#include "analog/controlled.hpp"

#include <algorithm>
#include <cmath>

namespace gfi::analog {

// ---------------------------------------------------------------------------
// Vccs

Vccs::Vccs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, NodeId ctrlP,
           NodeId ctrlM, double gm)
    : AnalogComponent(std::move(name)), outP_(outP), outM_(outM), ctrlP_(ctrlP), ctrlM_(ctrlM),
      gm_(gm)
{
    (void)sys;
}

void Vccs::stamp(Stamper& s, const Solution&, double, double, bool)
{
    s.vccs(outP_, outM_, ctrlP_, ctrlM_, gm_);
}

// ---------------------------------------------------------------------------
// Vcvs

Vcvs::Vcvs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, NodeId ctrlP,
           NodeId ctrlM, double gain)
    : AnalogComponent(std::move(name)), outP_(outP), outM_(outM), ctrlP_(ctrlP), ctrlM_(ctrlM),
      branch_(sys.allocateBranch()), gain_(gain)
{
}

void Vcvs::stamp(Stamper& s, const Solution&, double, double, bool)
{
    const int br = s.varOfBranch(branch_);
    const int vp = s.varOfNode(outP_);
    const int vm = s.varOfNode(outM_);
    const int cp = s.varOfNode(ctrlP_);
    const int cm = s.varOfNode(ctrlM_);
    s.addA(vp, br, 1.0);
    s.addA(vm, br, -1.0);
    // Branch row: V(outP) - V(outM) - gain * (VcP - VcM) = 0.
    s.addA(br, vp, 1.0);
    s.addA(br, vm, -1.0);
    s.addA(br, cp, -gain_);
    s.addA(br, cm, gain_);
}

// ---------------------------------------------------------------------------
// SaturatingVcvs

SaturatingVcvs::SaturatingVcvs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM,
                               NodeId ctrlP, NodeId ctrlM, double gain, double mid, double swing)
    : AnalogComponent(std::move(name)), outP_(outP), outM_(outM), ctrlP_(ctrlP), ctrlM_(ctrlM),
      branch_(sys.allocateBranch()), gain_(gain), mid_(mid), swing_(swing)
{
}

void SaturatingVcvs::stamp(Stamper& s, const Solution& x, double, double, bool)
{
    const int br = s.varOfBranch(branch_);
    const int vp = s.varOfNode(outP_);
    const int vm = s.varOfNode(outM_);
    const int cp = s.varOfNode(ctrlP_);
    const int cm = s.varOfNode(ctrlM_);

    const double vc = x.voltage(ctrlP_) - x.voltage(ctrlM_);
    const double u = gain_ * vc / swing_;
    // Clamp the tanh argument to keep the derivative finite but nonzero.
    const double uc = std::clamp(u, -40.0, 40.0);
    const double g = mid_ + swing_ * std::tanh(uc);
    const double sech2 = 1.0 - std::tanh(uc) * std::tanh(uc);
    const double dgdvc = std::max(gain_ * sech2, gain_ * 1e-12);

    s.addA(vp, br, 1.0);
    s.addA(vm, br, -1.0);
    // Linearized branch row: V(out) - dg/dvc * vc = g(vc*) - dg/dvc * vc*.
    s.addA(br, vp, 1.0);
    s.addA(br, vm, -1.0);
    s.addA(br, cp, -dgdvc);
    s.addA(br, cm, dgdvc);
    s.addB(br, g - dgdvc * vc);
}

// ---------------------------------------------------------------------------
// Cccs

Cccs::Cccs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, int senseBranch,
           double gain)
    : AnalogComponent(std::move(name)), outP_(outP), outM_(outM), senseBranch_(senseBranch),
      gain_(gain)
{
    (void)sys;
}

void Cccs::stamp(Stamper& s, const Solution&, double, double, bool)
{
    const int br = s.varOfBranch(senseBranch_);
    // Current gain * i(sense) leaves outP and enters outM.
    s.addA(s.varOfNode(outP_), br, gain_);
    s.addA(s.varOfNode(outM_), br, -gain_);
}

// ---------------------------------------------------------------------------
// Ccvs

Ccvs::Ccvs(AnalogSystem& sys, std::string name, NodeId outP, NodeId outM, int senseBranch,
           double gain)
    : AnalogComponent(std::move(name)), outP_(outP), outM_(outM), senseBranch_(senseBranch),
      branch_(sys.allocateBranch()), gain_(gain)
{
}

void Ccvs::stamp(Stamper& s, const Solution&, double, double, bool)
{
    const int br = s.varOfBranch(branch_);
    const int sense = s.varOfBranch(senseBranch_);
    const int vp = s.varOfNode(outP_);
    const int vm = s.varOfNode(outM_);
    s.addA(vp, br, 1.0);
    s.addA(vm, br, -1.0);
    // Branch row: V(outP) - V(outM) - gain * i(sense) = 0.
    s.addA(br, vp, 1.0);
    s.addA(br, vm, -1.0);
    s.addA(br, sense, -gain_);
}

// ---------------------------------------------------------------------------
// Diode

Diode::Diode(AnalogSystem& sys, std::string name, NodeId anode, NodeId cathode, double isat,
             double vt)
    : AnalogComponent(std::move(name)), a_(anode), k_(cathode), isat_(isat), vt_(vt)
{
    (void)sys;
}

void Diode::stamp(Stamper& s, const Solution& x, double, double, bool)
{
    // Newton companion: i = Is(exp(v/vt) - 1) linearized at the candidate v,
    // with the exponent clamped for robustness far from convergence.
    const double v = x.voltage(a_) - x.voltage(k_);
    const double vcrit = 40.0 * vt_;
    const double ve = std::min(v, vcrit);
    const double ex = std::exp(ve / vt_);
    double g = isat_ * ex / vt_;
    double i = isat_ * (ex - 1.0);
    if (v > vcrit) {
        // Linear extension beyond the clamp keeps Newton stable.
        i += g * (v - vcrit);
    }
    g = std::max(g, 1e-12);
    s.conductance(a_, k_, g);
    const double irhs = i - g * v; // residual current source a -> k
    s.currentInto(a_, -irhs);
    s.currentInto(k_, irhs);
}

} // namespace gfi::analog

// ---------------------------------------------------------------------------
// Small-signal (AC) stamps

namespace gfi::analog {

bool Vccs::stampAc(ComplexStamper& s, double) const
{
    s.vccs(outP_, outM_, ctrlP_, ctrlM_, gm_);
    return true;
}

bool Cccs::stampAc(ComplexStamper& s, double) const
{
    const int br = s.varOfBranch(senseBranch_);
    s.addA(s.varOfNode(outP_), br, {gain_, 0.0});
    s.addA(s.varOfNode(outM_), br, {-gain_, 0.0});
    return true;
}

bool Ccvs::stampAc(ComplexStamper& s, double) const
{
    const int br = s.varOfBranch(branch_);
    const int sense = s.varOfBranch(senseBranch_);
    const int vp = s.varOfNode(outP_);
    const int vm = s.varOfNode(outM_);
    s.addA(vp, br, {1.0, 0.0});
    s.addA(vm, br, {-1.0, 0.0});
    s.addA(br, vp, {1.0, 0.0});
    s.addA(br, vm, {-1.0, 0.0});
    s.addA(br, sense, {-gain_, 0.0});
    return true;
}

bool Vcvs::stampAc(ComplexStamper& s, double) const
{
    const int br = s.varOfBranch(branch_);
    const int vp = s.varOfNode(outP_);
    const int vm = s.varOfNode(outM_);
    const int cp = s.varOfNode(ctrlP_);
    const int cm = s.varOfNode(ctrlM_);
    s.addA(vp, br, {1.0, 0.0});
    s.addA(vm, br, {-1.0, 0.0});
    s.addA(br, vp, {1.0, 0.0});
    s.addA(br, vm, {-1.0, 0.0});
    s.addA(br, cp, {-gain_, 0.0});
    s.addA(br, cm, {gain_, 0.0});
    return true;
}

} // namespace gfi::analog
