#include "analog/sources.hpp"

#include <cmath>

namespace gfi::analog {

namespace {

void appendBreakpoints(const TimeFunction& fn, double tNow, double tMax,
                       std::vector<double>& out)
{
    for (double bp : fn.breakpoints) {
        if (bp > tNow && bp <= tMax) {
            out.push_back(bp);
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// VoltageSource

VoltageSource::VoltageSource(AnalogSystem& sys, std::string name, NodeId p, NodeId m,
                             double dcVolts)
    : AnalogComponent(std::move(name)), p_(p), m_(m), branch_(sys.allocateBranch()),
      dc_(dcVolts)
{
}

void VoltageSource::stamp(Stamper& s, const Solution&, double t, double, bool)
{
    const int br = s.varOfBranch(branch_);
    const int vp = s.varOfNode(p_);
    const int vm = s.varOfNode(m_);
    // KCL rows: branch current leaves p, enters m.
    s.addA(vp, br, 1.0);
    s.addA(vm, br, -1.0);
    // Branch row: V(p) - V(m) = value(t).
    s.addA(br, vp, 1.0);
    s.addA(br, vm, -1.0);
    s.addB(br, valueAt(t));
}

void VoltageSource::collectBreakpoints(double tNow, double tMax, std::vector<double>& out)
{
    appendBreakpoints(fn_, tNow, tMax, out);
}

// ---------------------------------------------------------------------------
// PulseVoltage

PulseVoltage::PulseVoltage(AnalogSystem& sys, std::string name, NodeId p, NodeId m, double v0,
                           double v1, double delay, double rise, double width, double fall,
                           double period)
    : VoltageSource(sys, std::move(name), p, m, v0)
{
    TimeFunction fn;
    fn.value = [=](double t) {
        if (t < delay) {
            return v0;
        }
        double local = t - delay;
        if (period > 0.0) {
            local = std::fmod(local, period);
        }
        if (local < rise) {
            return rise <= 0.0 ? v1 : v0 + (v1 - v0) * (local / rise);
        }
        local -= rise;
        if (local < width) {
            return v1;
        }
        local -= width;
        if (local < fall) {
            return fall <= 0.0 ? v0 : v1 + (v0 - v1) * (local / fall);
        }
        return v0;
    };
    // Corner times of the first few pulses; repeated pulses add corners per
    // period up to a sane horizon the solver trims anyway.
    const int repeats = period > 0.0 ? 64 : 1;
    for (int k = 0; k < repeats; ++k) {
        const double base = delay + (period > 0.0 ? k * period : 0.0);
        fn.breakpoints.push_back(base);
        fn.breakpoints.push_back(base + rise);
        fn.breakpoints.push_back(base + rise + width);
        fn.breakpoints.push_back(base + rise + width + fall);
    }
    setFunction(std::move(fn));
}

// ---------------------------------------------------------------------------
// SineVoltage

SineVoltage::SineVoltage(AnalogSystem& sys, std::string name, NodeId p, NodeId m, double offset,
                         double amplitude, double hz, double delay, double phaseRad)
    : VoltageSource(sys, std::move(name), p, m, offset)
{
    TimeFunction fn;
    fn.value = [=](double t) {
        if (t < delay) {
            return offset;
        }
        return offset + amplitude * std::sin(2.0 * M_PI * hz * (t - delay) + phaseRad);
    };
    if (delay > 0.0) {
        fn.breakpoints.push_back(delay);
    }
    setFunction(std::move(fn));
}

// ---------------------------------------------------------------------------
// CurrentSource

CurrentSource::CurrentSource(AnalogSystem& sys, std::string name, NodeId p, NodeId m,
                             double dcAmps)
    : AnalogComponent(std::move(name)), p_(p), m_(m), dc_(dcAmps)
{
    (void)sys;
}

void CurrentSource::stamp(Stamper& s, const Solution&, double t, double, bool)
{
    const double i = valueAt(t);
    s.currentInto(p_, i);
    s.currentInto(m_, -i);
}

void CurrentSource::collectBreakpoints(double tNow, double tMax, std::vector<double>& out)
{
    appendBreakpoints(fn_, tNow, tMax, out);
}

// ---------------------------------------------------------------------------
// Switch

Switch::Switch(AnalogSystem& sys, std::string name, NodeId a, NodeId b, NodeId ctrlP,
               NodeId ctrlM, double threshold, double ron, double roff)
    : AnalogComponent(std::move(name)), a_(a), b_(b), ctrlP_(ctrlP), ctrlM_(ctrlM),
      threshold_(threshold), gon_(1.0 / ron), goff_(1.0 / roff)
{
    (void)sys;
}

void Switch::stamp(Stamper& s, const Solution& x, double, double, bool)
{
    const double vc = x.voltage(ctrlP_) - x.voltage(ctrlM_);
    s.conductance(a_, b_, vc > threshold_ ? gon_ : goff_);
}

} // namespace gfi::analog

// ---------------------------------------------------------------------------
// Small-signal (AC) stamps

namespace gfi::analog {

bool VoltageSource::stampAc(ComplexStamper& s, double) const
{
    const int br = s.varOfBranch(branch_);
    const int vp = s.varOfNode(p_);
    const int vm = s.varOfNode(m_);
    s.addA(vp, br, {1.0, 0.0});
    s.addA(vm, br, {-1.0, 0.0});
    s.addA(br, vp, {1.0, 0.0});
    s.addA(br, vm, {-1.0, 0.0});
    // The selected AC input drives 1 V; every other voltage source is an
    // AC short (0 V).
    s.addB(br, {name() == s.acInput() ? 1.0 : 0.0, 0.0});
    return true;
}

bool CurrentSource::stampAc(ComplexStamper&, double) const
{
    // Independent current sources are AC opens (zero small-signal drive).
    return true;
}

} // namespace gfi::analog
