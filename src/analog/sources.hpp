#pragma once
// Independent sources: voltage (branch-based MNA) and current, each drivable
// by a DC level, an arbitrary time function with breakpoints, or a piecewise-
// constant level set from outside (the D->A bridge and the charge pump use
// the latter). The time-function current source is also the foundation of the
// paper's analog saboteur: a current waveform superposed on a node.

#include "analog/system.hpp"

#include <functional>

namespace gfi::analog {

/// A scalar function of time plus the discontinuity times the integrator must
/// not step across.
struct TimeFunction {
    std::function<double(double)> value;
    std::vector<double> breakpoints;
};

/// Independent voltage source (adds one MNA branch).
/// Branch current follows the SPICE passive-sign convention: positive current
/// flows INTO the + terminal (so a source delivering power reads negative).
class VoltageSource : public AnalogComponent {
public:
    VoltageSource(AnalogSystem& sys, std::string name, NodeId p, NodeId m, double dcVolts);

    /// Drives the source from an arbitrary time function.
    void setFunction(TimeFunction fn) { fn_ = std::move(fn); }

    /// Sets a constant level (piecewise-constant drive; clears any function).
    void setLevel(double volts)
    {
        fn_ = {};
        dc_ = volts;
    }

    /// Present drive value at time @p t.
    [[nodiscard]] double valueAt(double t) const { return fn_.value ? fn_.value(t) : dc_; }

    /// Branch current in @p x (positive: + -> - through the source).
    [[nodiscard]] double current(const Solution& x) const { return x.branchCurrent(branch_); }

    /// MNA branch index (current-controlled sources sense this branch).
    [[nodiscard]] int branchIndex() const noexcept { return branch_; }

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    void collectBreakpoints(double tNow, double tMax, std::vector<double>& out) override;
    bool stampAc(ComplexStamper& s, double omega) const override;

    /// Snapshot: the DC level plus whether a time function was active. The
    /// function itself is code, not data — a restore keeps the (identical)
    /// constructor-installed function, or clears it if the golden run had
    /// switched the source to piecewise-constant drive by capture time.
    void captureState(snapshot::Writer& w) const override
    {
        w.f64(dc_);
        w.boolean(static_cast<bool>(fn_.value));
    }

    void restoreState(snapshot::Reader& r) override
    {
        dc_ = r.f64();
        if (!r.boolean()) {
            fn_ = {};
        }
    }

private:
    NodeId p_;
    NodeId m_;
    int branch_;
    double dc_;
    TimeFunction fn_;
};

/// SPICE-style pulse voltage source (v0 -> v1 pulses with linear edges).
class PulseVoltage : public VoltageSource {
public:
    /// @param period  0 disables repetition (single pulse).
    PulseVoltage(AnalogSystem& sys, std::string name, NodeId p, NodeId m, double v0, double v1,
                 double delay, double rise, double width, double fall, double period = 0.0);
};

/// Sinusoidal voltage source: offset + amplitude * sin(2*pi*f*(t-delay) + phase).
class SineVoltage : public VoltageSource {
public:
    SineVoltage(AnalogSystem& sys, std::string name, NodeId p, NodeId m, double offset,
                double amplitude, double hz, double delay = 0.0, double phaseRad = 0.0);
};

/// Independent current source. Positive value pushes current INTO node p
/// (out of node m), matching the "current summation on the node" semantics
/// the paper's saboteur relies on.
class CurrentSource : public AnalogComponent {
public:
    CurrentSource(AnalogSystem& sys, std::string name, NodeId p, NodeId m, double dcAmps);

    /// Drives the source from an arbitrary time function.
    void setFunction(TimeFunction fn) { fn_ = std::move(fn); }

    /// Sets a constant level (piecewise-constant drive; clears any function).
    void setLevel(double amps)
    {
        fn_ = {};
        dc_ = amps;
    }

    /// Present drive value at time @p t.
    [[nodiscard]] double valueAt(double t) const { return fn_.value ? fn_.value(t) : dc_; }

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    void collectBreakpoints(double tNow, double tMax, std::vector<double>& out) override;
    bool stampAc(ComplexStamper& s, double omega) const override;

    /// Snapshot semantics mirror VoltageSource::captureState.
    void captureState(snapshot::Writer& w) const override
    {
        w.f64(dc_);
        w.boolean(static_cast<bool>(fn_.value));
    }

    void restoreState(snapshot::Reader& r) override
    {
        dc_ = r.f64();
        if (!r.boolean()) {
            fn_ = {};
        }
    }

private:
    NodeId p_;
    NodeId m_;
    double dc_;
    TimeFunction fn_;
};

/// Ideal voltage-controlled switch: Ron when (Vc+ - Vc-) > threshold, else Roff.
class Switch : public AnalogComponent {
public:
    Switch(AnalogSystem& sys, std::string name, NodeId a, NodeId b, NodeId ctrlP, NodeId ctrlM,
           double threshold = 0.5, double ron = 1.0, double roff = 1e9);

    void stamp(Stamper& s, const Solution& x, double t, double dt, bool dcMode) override;
    [[nodiscard]] bool isNonlinear() const override { return true; }

private:
    NodeId a_;
    NodeId b_;
    NodeId ctrlP_;
    NodeId ctrlM_;
    double threshold_;
    double gon_;
    double goff_;
};

} // namespace gfi::analog
