#include "analog/solver.hpp"

#include "obs/flight_recorder.hpp"
#include "sim/errors.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gfi::analog {

namespace {

// Runtime <-> static cross-reference: the lint pass diagnoses the usual
// divergence topologies (floating nodes, V-source loops, current cutsets)
// before any solve, so every DivergenceError points the user at it.
const char* kLintHint = "; hint: run lint — rules ANA001-ANA005 report floating "
                        "nodes, source loops and singular topologies statically";

bool allFinite(const std::vector<double>& x) noexcept
{
    for (double v : x) {
        if (!std::isfinite(v)) {
            return false;
        }
    }
    return true;
}

} // namespace

TransientSolver::TransientSolver(AnalogSystem& sys, SolverOptions options)
    : sys_(&sys), options_(options), dtNext_(options.dtInitial)
{
    const int n = sys.unknownCount();
    A_.resize(n);
    rhs_.assign(static_cast<std::size_t>(n), 0.0);
    if (sys.state().size() != static_cast<std::size_t>(n)) {
        sys.state().assign(static_cast<std::size_t>(n), 0.0);
    }
}

bool TransientSolver::trySolveStep(double dt, std::vector<double>& xOut, bool dcMode,
                                   double tEvalOverride)
{
    const int n = sys_->unknownCount();
    const double t1 = tEvalOverride >= 0.0 ? tEvalOverride : time_ + dt;
    sawNonFinite_ = false;

    bool anyNonlinear = false;
    for (const auto& comp : sys_->components()) {
        anyNonlinear = anyNonlinear || comp->isNonlinear();
    }

    xOut = sys_->state();
    const int iterCap = anyNonlinear ? options_.maxNewtonIter : 1;
    for (int iter = 0; iter < iterCap; ++iter) {
        ++stats_.newtonIterations;
        A_.clear();
        std::fill(rhs_.begin(), rhs_.end(), 0.0);
        Stamper stamper(A_, rhs_, sys_->nodeCount());
        const Solution candidate(xOut, sys_->nodeCount());
        for (const auto& comp : sys_->components()) {
            comp->stamp(stamper, candidate, t1, dt, dcMode);
        }
        // gmin from every node to ground keeps floating nodes solvable.
        for (int node = 1; node < sys_->nodeCount(); ++node) {
            stamper.conductance(node, kGround, options_.gmin);
        }

        std::vector<double> x = rhs_;
        ++stats_.linearSolves;
        if (!luSolveInPlace(A_, x)) {
            return false; // singular matrix
        }
        if (!allFinite(x)) {
            sawNonFinite_ = true; // NaN/Inf source or overflowed companion model
            return false;
        }

        double maxDelta = 0.0;
        for (int i = 0; i < n; ++i) {
            maxDelta = std::max(maxDelta,
                                std::fabs(x[static_cast<std::size_t>(i)] -
                                          xOut[static_cast<std::size_t>(i)]));
        }
        xOut = std::move(x);
        if (!anyNonlinear || maxDelta < options_.newtonTol) {
            return true;
        }
    }
    return false; // Newton did not converge
}

void TransientSolver::solveDc()
{
    std::vector<double> x;
    if (!trySolveStep(0.0, x, /*dcMode=*/true)) {
        throw DivergenceError(
            (sawNonFinite_ ? "TransientSolver: non-finite DC operating point"
                           : "TransientSolver: DC operating point did not converge") +
            std::string(kLintHint));
    }
    // A second pass lets dynamic components observe the converged operating
    // point in their dcMode stamp (capacitors prime their initial voltage).
    sys_->state() = x;
    if (!trySolveStep(0.0, x, /*dcMode=*/true)) {
        throw DivergenceError(
            (sawNonFinite_ ? "TransientSolver: non-finite DC operating point"
                           : "TransientSolver: DC operating point did not converge") +
            std::string(kLintHint));
    }
    sys_->state() = x;
    dcDone_ = true;
    havePrev_ = false;
    dtNext_ = options_.dtInitial;
}

double TransientSolver::nextBreakpoint(double tMax)
{
    // Slight epsilon so a breakpoint we just landed on is not re-proposed.
    const double eps = std::max(1e-18, std::fabs(time_) * 1e-15);
    double best = tMax;

    std::vector<double> scratch;
    for (const auto& comp : sys_->components()) {
        scratch.clear();
        comp->collectBreakpoints(time_ + eps, tMax, scratch);
        for (double bp : scratch) {
            if (bp > time_ + eps && bp < best) {
                best = bp;
            }
        }
    }
    // External breakpoints: drop stale ones as we pass them.
    while (!breakpoints_.empty() && *breakpoints_.begin() <= time_ + eps) {
        breakpoints_.erase(breakpoints_.begin());
    }
    if (!breakpoints_.empty()) {
        best = std::min(best, *breakpoints_.begin());
    }
    return best;
}

double TransientSolver::maxStepHint() const
{
    double hint = 1e30;
    for (const auto& comp : sys_->components()) {
        hint = std::min(hint, comp->maxStep(time_));
    }
    return hint;
}

void TransientSolver::acceptStep(const std::vector<double>& x, double dt)
{
    const Solution sol(x, sys_->nodeCount());
    for (const auto& comp : sys_->components()) {
        comp->acceptStep(sol, time_ + dt, dt);
    }
    xPrev_ = sys_->state();
    dtPrev_ = dt;
    havePrev_ = true;
    sys_->state() = x;
    time_ += dt;
    ++stats_.acceptedSteps;
    stats_.lastAcceptedDt = dt;
    if (stats_.minAcceptedDt == 0.0 || dt < stats_.minAcceptedDt) {
        stats_.minAcceptedDt = dt;
    }
    if (recorder_ != nullptr) {
        recorder_->record(obs::FlightRecorder::Kind::SolverAccept, fromSeconds(time_),
                          time_, stats_.acceptedSteps, 0, dt);
    }
    for (const auto& probe : probes_) {
        probe(time_);
    }
}

void TransientSolver::markDiscontinuity()
{
    ++stats_.companionRebuilds;
    for (const auto& comp : sys_->components()) {
        comp->notifyDiscontinuity();
    }
    havePrev_ = false;
    dtNext_ = options_.dtInitial;
}

CrossingMonitor& TransientSolver::addMonitor(NodeId node, double threshold,
                                             CrossingMonitor::Edge edge,
                                             std::function<void(double, bool)> cb)
{
    monitors_.push_back(
        std::make_unique<CrossingMonitor>(node, threshold, edge, std::move(cb)));
    return *monitors_.back();
}

void TransientSolver::captureState(snapshot::Writer& w) const
{
    w.boolean(dcDone_);
    w.f64(time_);
    w.f64(dtNext_);
    w.f64(dtPrev_);
    w.boolean(havePrev_);
    w.boolean(sawNonFinite_);

    const std::vector<double>& x = sys_->state();
    w.u64(x.size());
    for (double v : x) {
        w.f64(v);
    }
    w.u64(xPrev_.size());
    for (double v : xPrev_) {
        w.f64(v);
    }

    w.u64(stats_.acceptedSteps);
    w.u64(stats_.rejectedSteps);
    w.u64(stats_.newtonIterations);
    w.u64(stats_.linearSolves);
    w.u64(stats_.crossingsLocated);

    w.u64(breakpoints_.size());
    for (double bp : breakpoints_) {
        w.f64(bp);
    }
}

void TransientSolver::restoreState(snapshot::Reader& r)
{
    dcDone_ = r.boolean();
    time_ = r.f64();
    dtNext_ = r.f64();
    dtPrev_ = r.f64();
    havePrev_ = r.boolean();
    sawNonFinite_ = r.boolean();

    const std::uint64_t n = r.u64();
    if (n != static_cast<std::uint64_t>(sys_->unknownCount())) {
        throw snapshot::SnapshotFormatError(
            "TransientSolver: snapshot has " + std::to_string(n) + " unknowns, system has " +
            std::to_string(sys_->unknownCount()));
    }
    std::vector<double>& x = sys_->state();
    x.assign(static_cast<std::size_t>(n), 0.0);
    for (double& v : x) {
        v = r.f64();
    }
    const std::uint64_t np = r.u64();
    xPrev_.assign(static_cast<std::size_t>(np), 0.0);
    for (double& v : xPrev_) {
        v = r.f64();
    }

    stats_.acceptedSteps = r.u64();
    stats_.rejectedSteps = r.u64();
    stats_.newtonIterations = r.u64();
    stats_.linearSolves = r.u64();
    stats_.crossingsLocated = r.u64();

    breakpoints_.clear();
    const std::uint64_t nb = r.u64();
    for (std::uint64_t i = 0; i < nb; ++i) {
        breakpoints_.insert(r.f64());
    }
}

double TransientSolver::advanceTo(double tStop)
{
    if (!dcDone_) {
        solveDc();
    }
    std::vector<double> xCand;

    while (time_ < tStop) {
        if (watchdog_ != nullptr) {
            watchdog_->chargeAnalogStep();
        }
        const double bp = nextBreakpoint(tStop);
        const double hardLimit = std::min(bp, tStop);

        double dt = std::min({dtNext_, options_.dtMax, maxStepHint(), hardLimit - time_});
        dt = std::max(dt, options_.dtMin);
        bool landsOnBreakpoint = time_ + dt >= bp - 1e-18 && bp < tStop;
        if (landsOnBreakpoint) {
            dt = bp - time_;
        }

        // --- solve, shrinking on Newton failure -------------------------
        // A step landing exactly on a breakpoint is evaluated just left of
        // it: jump discontinuities take effect only after the corner, so the
        // landing step integrates with the pre-jump source values.
        const double leftOfBp =
            landsOnBreakpoint ? bp - std::max(1e-20, bp * 1e-13) : -1.0;
        bool solved = trySolveStep(dt, xCand, false, leftOfBp);
        while (!solved && dt > options_.dtMin * 2.0) {
            ++stats_.rejectedSteps;
            if (recorder_ != nullptr) {
                recorder_->record(obs::FlightRecorder::Kind::SolverReject,
                                  fromSeconds(time_), time_, stats_.rejectedSteps, 0, dt);
            }
            dt *= 0.25;
            landsOnBreakpoint = false;
            solved = trySolveStep(dt, xCand, false);
        }
        if (!solved) {
            throw DivergenceError(
                "TransientSolver: step failed at t=" + std::to_string(time_) + " s, dt=" +
                std::to_string(dt) + " s (" +
                (sawNonFinite_ ? "non-finite solution"
                               : "Newton non-convergence or singular matrix") +
                " at the minimum step)" + kLintHint);
        }

        // --- local truncation error control ------------------------------
        if (havePrev_ && !landsOnBreakpoint) {
            const std::vector<double>& x0 = sys_->state();
            const double ratio = dtPrev_ > 0.0 ? dt / dtPrev_ : 0.0;
            double err = 0.0;
            for (std::size_t i = 0; i < xCand.size(); ++i) {
                const double pred = x0[i] + (x0[i] - xPrev_[i]) * ratio;
                const double scale =
                    options_.lteAbsTol +
                    options_.lteRelTol * std::max(std::fabs(xCand[i]), std::fabs(x0[i]));
                err = std::max(err, std::fabs(xCand[i] - pred) / scale);
            }
            if (err > 4.0 && dt > options_.dtMin * 2.0) {
                ++stats_.rejectedSteps;
                if (recorder_ != nullptr) {
                    recorder_->record(obs::FlightRecorder::Kind::SolverReject,
                                      fromSeconds(time_), time_, stats_.rejectedSteps, 0,
                                      dt);
                }
                dtNext_ = std::max(dt * std::max(0.9 / std::sqrt(err), 0.1),
                                   options_.dtMin);
                continue; // reject and retry smaller
            }
            const double grow =
                std::clamp(err > 1e-12 ? 0.9 / std::sqrt(err) : options_.growthLimit, 0.3,
                           options_.growthLimit);
            dtNext_ = std::clamp(dt * grow, options_.dtMin, options_.dtMax);
        } else {
            dtNext_ = std::clamp(dt * options_.growthLimit, options_.dtMin, options_.dtMax);
        }

        // --- crossing monitors -------------------------------------------
        {
            const Solution before(sys_->state(), sys_->nodeCount());
            Solution after(xCand, sys_->nodeCount());
            bool anyCrossed = false;
            for (const auto& mon : monitors_) {
                anyCrossed = anyCrossed ||
                             mon->crossed(before.voltage(mon->node()), after.voltage(mon->node()));
            }
            if (anyCrossed && dt > options_.crossingTol) {
                // Bisect on "earliest crossing inside [0, mid]" by re-solving
                // the step from the committed state with shrinking dt.
                double lo = 0.0;
                double hi = dt;
                std::vector<double> xHi = xCand;
                while (hi - lo > options_.crossingTol) {
                    const double mid = 0.5 * (lo + hi);
                    std::vector<double> xMid;
                    if (!trySolveStep(mid, xMid, false)) {
                        break; // give up refining; use hi
                    }
                    const Solution solMid(xMid, sys_->nodeCount());
                    bool crossedByMid = false;
                    for (const auto& mon : monitors_) {
                        crossedByMid =
                            crossedByMid || mon->crossed(before.voltage(mon->node()),
                                                         solMid.voltage(mon->node()));
                    }
                    if (crossedByMid) {
                        hi = mid;
                        xHi = std::move(xMid);
                    } else {
                        lo = mid;
                    }
                }
                dt = hi;
                xCand = std::move(xHi);
                ++stats_.crossingsLocated;

                // Determine which monitors fire at this cut.
                Solution cut(xCand, sys_->nodeCount());
                std::vector<std::pair<CrossingMonitor*, bool>> fired;
                for (const auto& mon : monitors_) {
                    const double v0 = before.voltage(mon->node());
                    const double v1 = cut.voltage(mon->node());
                    if (mon->crossed(v0, v1)) {
                        fired.emplace_back(mon.get(), v1 >= v0);
                    }
                }
                acceptStep(xCand, dt);
                for (auto& [mon, rising] : fired) {
                    if (mon->cb_) {
                        mon->cb_(time_, rising);
                    }
                }
                return time_; // yield to the mixed-mode synchronizer
            }
        }

        acceptStep(xCand, dt);
        if (landsOnBreakpoint) {
            // Source corner: restart conservatively on the far side.
            markDiscontinuity();
        }
    }
    return time_;
}

} // namespace gfi::analog
