#pragma once
// Small-signal AC analysis over the linear subset of the MNA system.
//
// Complements the transient engine: frequency responses of the loop filter,
// op-amp macro poles and ADC settling networks can be verified directly
// instead of being inferred from step responses. Components stamp their
// small-signal model into a complex MNA matrix at each frequency:
//   * Resistor            G
//   * Capacitor           j*w*C
//   * Inductor            1 / (j*w*L)
//   * VoltageSource       AC magnitude (the source selected as input gets 1 V)
//   * CurrentSource       AC magnitude
//   * Vccs / Vcvs         their linear gains
// Nonlinear components are not supported and cause an error (linearize by
// hand or measure transiently).

#include "analog/system.hpp"

#include <complex>
#include <vector>

namespace gfi::analog {

/// One AC solution point.
struct AcPoint {
    double hz = 0.0;
    std::vector<std::complex<double>> solution; ///< node voltages then branches

    /// Complex node voltage (0 for ground).
    [[nodiscard]] std::complex<double> voltage(NodeId n, int nodeCount) const
    {
        (void)nodeCount; // node voltages precede branch currents in `solution`
        return n == kGround ? std::complex<double>{0.0, 0.0}
                            : solution[static_cast<std::size_t>(n - 1)];
    }
};

/// Frequency-sweep result with dB/phase helpers.
class AcSweep {
public:
    AcSweep(std::vector<AcPoint> points, int nodeCount)
        : points_(std::move(points)), nodeCount_(nodeCount)
    {
    }

    [[nodiscard]] const std::vector<AcPoint>& points() const noexcept { return points_; }

    /// |V(node)| in dB at sweep index @p i.
    [[nodiscard]] double magnitudeDb(std::size_t i, NodeId node) const;

    /// Phase of V(node) in degrees at sweep index @p i.
    [[nodiscard]] double phaseDeg(std::size_t i, NodeId node) const;

    /// First frequency where |V(node)| falls below @p db (linear
    /// interpolation in log-frequency), or -1 if it never does.
    [[nodiscard]] double crossingFrequency(NodeId node, double db) const;

private:
    std::vector<AcPoint> points_;
    int nodeCount_;
};

/// Runs an AC sweep: @p pointsPerDecade log-spaced points in [fStart, fStop].
/// The named voltage source (by component name) is driven with 1 V AC and
/// every other independent source is zeroed (shorted / opened respectively).
/// Throws std::invalid_argument if the system contains nonlinear components
/// or the named source does not exist.
[[nodiscard]] AcSweep acSweep(const AnalogSystem& sys, const std::string& inputSource,
                              double fStart, double fStop, int pointsPerDecade = 20);

} // namespace gfi::analog
