#include "analog/linear.hpp"

#include <cmath>

namespace gfi::analog {

bool luSolveInPlace(DenseMatrix& A, std::vector<double>& b)
{
    const int n = A.size();
    if (n == 0) {
        return true;
    }

    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        perm[static_cast<std::size_t>(i)] = i;
    }

    for (int k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude in column k.
        int pivot = k;
        double best = std::fabs(A.at(k, k));
        for (int r = k + 1; r < n; ++r) {
            const double mag = std::fabs(A.at(r, k));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best < 1e-300) {
            return false; // singular
        }
        if (pivot != k) {
            for (int c = 0; c < n; ++c) {
                std::swap(A.at(k, c), A.at(pivot, c));
            }
            std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(pivot)]);
        }
        // Eliminate below the pivot.
        const double inv = 1.0 / A.at(k, k);
        for (int r = k + 1; r < n; ++r) {
            const double factor = A.at(r, k) * inv;
            if (factor == 0.0) {
                continue;
            }
            A.at(r, k) = 0.0;
            for (int c = k + 1; c < n; ++c) {
                A.at(r, c) -= factor * A.at(k, c);
            }
            b[static_cast<std::size_t>(r)] -= factor * b[static_cast<std::size_t>(k)];
        }
    }

    // Back substitution.
    for (int r = n - 1; r >= 0; --r) {
        double acc = b[static_cast<std::size_t>(r)];
        for (int c = r + 1; c < n; ++c) {
            acc -= A.at(r, c) * b[static_cast<std::size_t>(c)];
        }
        b[static_cast<std::size_t>(r)] = acc / A.at(r, r);
    }
    return true;
}

} // namespace gfi::analog
