#pragma once
// Dense linear algebra for the MNA solver.
//
// AMS behavioral circuits are tens of unknowns; a dense LU with partial
// pivoting beats any sparse machinery at this size and is trivially robust.

#include <vector>

namespace gfi::analog {

/// Row-major dense square matrix.
class DenseMatrix {
public:
    DenseMatrix() = default;
    explicit DenseMatrix(int n) { resize(n); }

    /// Resizes to n x n and zero-fills.
    void resize(int n)
    {
        n_ = n;
        data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
    }

    /// Zero-fills, keeping the dimension.
    void clear() { data_.assign(data_.size(), 0.0); }

    /// Dimension.
    [[nodiscard]] int size() const noexcept { return n_; }

    /// Element access.
    [[nodiscard]] double& at(int r, int c)
    {
        return data_[static_cast<std::size_t>(r) * n_ + static_cast<std::size_t>(c)];
    }
    [[nodiscard]] double at(int r, int c) const
    {
        return data_[static_cast<std::size_t>(r) * n_ + static_cast<std::size_t>(c)];
    }

private:
    int n_ = 0;
    std::vector<double> data_;
};

/// Solves A x = b in place (A is destroyed, b receives x) by LU decomposition
/// with partial pivoting. Returns false if A is numerically singular.
bool luSolveInPlace(DenseMatrix& A, std::vector<double>& b);

} // namespace gfi::analog
