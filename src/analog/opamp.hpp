#pragma once
// Behavioral operational amplifier macro-model.
//
// Reference [10] of the paper (Wilson et al., DATE 2002) models op-amp faults
// on VHDL-AMS behavioral descriptions. This macro is the standard two-stage
// behavioral structure those descriptions encode: a differential input
// resistance, a transconductance stage driving a single dominant pole
// (Rp || Cp), and a saturating unity buffer to the output rail range.
// The internal pole node is a high-impedance structural node — precisely the
// kind of node the paper's analog saboteur targets.

#include "analog/controlled.hpp"
#include "analog/passive.hpp"

namespace gfi::analog {

/// Behavioral op-amp parameters.
struct OpAmpConfig {
    double rin = 1e6;       ///< differential input resistance (ohm)
    double dcGain = 1e5;    ///< open-loop DC gain (V/V)
    double poleHz = 100.0;  ///< dominant pole frequency (Hz)
    double rout = 100.0;    ///< output resistance (ohm)
    double outMid = 0.0;    ///< output midpoint (V)
    double outSwing = 2.5;  ///< output excursion from midpoint (V)
};

/// Instantiates the macro-model components into an AnalogSystem.
class OpAmp {
public:
    /// Builds the op-amp between @p inP / @p inM and @p out.
    OpAmp(AnalogSystem& sys, const std::string& name, NodeId inP, NodeId inM, NodeId out,
          OpAmpConfig config = {});

    /// The internal dominant-pole node (the natural SET injection target).
    [[nodiscard]] NodeId poleNode() const noexcept { return pole_; }

    /// Gain-stage transconductance element (parametric fault target).
    [[nodiscard]] Vccs& gmStage() noexcept { return *gm_; }

    /// Configuration used.
    [[nodiscard]] const OpAmpConfig& config() const noexcept { return config_; }

private:
    OpAmpConfig config_;
    NodeId pole_;
    Vccs* gm_ = nullptr;
};

} // namespace gfi::analog
