#include "core/journal.hpp"

#include "core/report.hpp"
#include "util/units.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gfi::campaign {

namespace {

// --- tiny parsers for the journal's own line format ------------------------
// The writer below is the only producer, so these only need to handle the
// exact shape entryToJson emits (plus escaped strings).

bool findKey(const std::string& line, const std::string& key, std::size_t& pos)
{
    const std::string needle = "\"" + key + "\": ";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) {
        return false;
    }
    pos = at + needle.size();
    return true;
}

/// Parses a quoted string starting at line[pos] == '"'; on success @p pos is
/// advanced past the closing quote.
bool parseString(const std::string& line, std::size_t& pos, std::string& out)
{
    if (pos >= line.size() || line[pos] != '"') {
        return false;
    }
    out.clear();
    for (std::size_t i = pos + 1; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '\\' && i + 1 < line.size()) {
            const char next = line[++i];
            out += next == 'n' ? '\n' : next;
        } else if (c == '"') {
            pos = i + 1;
            return true;
        } else {
            out += c;
        }
    }
    return false; // unterminated
}

bool getString(const std::string& line, const std::string& key, std::string& out)
{
    std::size_t pos = 0;
    if (!findKey(line, key, pos)) {
        return false;
    }
    return parseString(line, pos, out);
}

bool getDouble(const std::string& line, const std::string& key, double& out)
{
    std::size_t pos = 0;
    if (!findKey(line, key, pos)) {
        return false;
    }
    out = std::strtod(line.c_str() + pos, nullptr);
    return true;
}

bool getInt(const std::string& line, const std::string& key, long long& out)
{
    std::size_t pos = 0;
    if (!findKey(line, key, pos)) {
        return false;
    }
    out = std::strtoll(line.c_str() + pos, nullptr, 10);
    return true;
}

bool getStringArray(const std::string& line, const std::string& key,
                    std::vector<std::string>& out)
{
    std::size_t pos = 0;
    if (!findKey(line, key, pos) || pos >= line.size() || line[pos] != '[') {
        return false;
    }
    out.clear();
    ++pos;
    while (pos < line.size() && line[pos] != ']') {
        if (line[pos] == '"') {
            std::string item;
            if (!parseString(line, pos, item)) {
                return false;
            }
            out.push_back(std::move(item));
        } else {
            ++pos;
        }
    }
    return pos < line.size();
}

std::string quoted(const std::string& s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string stringArray(const std::vector<std::string>& items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        out += (i > 0 ? ", " : "") + quoted(items[i]);
    }
    return out + "]";
}

} // namespace

CampaignJournal::CampaignJournal(std::string path) : path_(std::move(path))
{
    // A journal left by a killed campaign can end mid-line; terminate it
    // before appending so the first new record is not glued onto the torn one.
    bool needsNewline = false;
    if (std::FILE* probe = std::fopen(path_.c_str(), "rb")) {
        if (std::fseek(probe, -1, SEEK_END) == 0) {
            needsNewline = std::fgetc(probe) != '\n';
        }
        std::fclose(probe);
    }
    file_ = std::fopen(path_.c_str(), "a");
    if (file_ == nullptr) {
        throw std::runtime_error("CampaignJournal: cannot open " + path_);
    }
    if (needsNewline) {
        std::fputc('\n', file_);
    }
}

CampaignJournal::~CampaignJournal()
{
    if (file_ != nullptr) {
        std::fclose(file_);
    }
}

std::string CampaignJournal::entryToJson(std::size_t index, const RunResult& r,
                                         bool embedProbes)
{
    std::string json = "{";
    json += "\"index\": " + std::to_string(index) + ", ";
    json += "\"fault\": " + quoted(fault::describe(r.fault)) + ", ";
    json += "\"outcome\": " + quoted(toString(r.outcome)) + ", ";
    json += "\"attempts\": " + std::to_string(r.diagnostics.attempts) + ", ";
    json += "\"error\": " + quoted(r.diagnostics.error) + ", ";
    json += "\"wall_s\": " + formatDouble(r.diagnostics.wallSeconds, 6) + ", ";
    json += "\"digital_waves\": " + std::to_string(r.diagnostics.digitalWaves) + ", ";
    json += "\"analog_steps\": " + std::to_string(r.diagnostics.analogSteps) + ", ";
    json += "\"checkpoint_fs\": " + std::to_string(r.diagnostics.checkpointTime) + ", ";
    json += "\"resim_fs\": " + std::to_string(r.diagnostics.resimulatedTime) + ", ";
    json += "\"first_output_error_fs\": " + std::to_string(r.firstOutputError) + ", ";
    json += "\"last_output_error_end_fs\": " + std::to_string(r.lastOutputErrorEnd) + ", ";
    json += "\"total_output_error_fs\": " + std::to_string(r.totalOutputErrorTime) + ", ";
    json += "\"max_analog_deviation_v\": " + formatDouble(r.maxAnalogDeviation, 9) + ", ";
    json += "\"analog_time_outside_tol_s\": " + formatDouble(r.analogTimeOutsideTol, 9) + ", ";
    json += "\"erred_signals\": " + stringArray(r.erredSignals) + ", ";
    json += "\"corrupted_state\": " + stringArray(r.corruptedState);
    // Collapse provenance — only when set, so lines of non-collapsed runs
    // remain byte-identical to pre-collapse journals.
    if (!r.diagnostics.collapsedFrom.empty()) {
        json += ", \"collapsed_from\": " + quoted(r.diagnostics.collapsedFrom);
    }
    // Batch provenance — only on word-simulated runs, so event-driven lines
    // remain byte-identical to pre-batch journals.
    if (r.diagnostics.batchLane > 0) {
        json += ", \"batch_lane\": " + std::to_string(r.diagnostics.batchLane);
    }
    // Forensic provenance — only on abnormal runs that dumped a flight-
    // recorder window, so ordinary lines remain byte-identical.
    if (!r.diagnostics.forensic.empty()) {
        json += ", \"forensic\": " + quoted(r.diagnostics.forensic);
    }
    // Appended after every historical key so lines without probes remain
    // byte-identical to pre-observability journals.
    if (embedProbes && r.diagnostics.probes.valid) {
        const obs::ProbeSnapshot& p = r.diagnostics.probes;
        json += ", \"probes\": {";
        json += "\"digital_events\": " + std::to_string(p.digitalEvents) + ", ";
        json += "\"delta_cycles\": " + std::to_string(p.deltaCycles) + ", ";
        json += "\"queue_high_water\": " + std::to_string(p.queueHighWater) + ", ";
        json += "\"pending_events\": " + std::to_string(p.pendingEvents) + ", ";
        json += "\"analog_accepted\": " + std::to_string(p.analogAcceptedSteps) + ", ";
        json += "\"analog_rejected\": " + std::to_string(p.analogRejectedSteps) + ", ";
        json += "\"newton_iterations\": " + std::to_string(p.newtonIterations) + ", ";
        json += "\"companion_rebuilds\": " + std::to_string(p.companionRebuilds) + ", ";
        json += "\"min_dt_s\": " + formatDouble(p.minAcceptedDt, 12) + ", ";
        json += "\"last_dt_s\": " + formatDouble(p.lastAcceptedDt, 12) + ", ";
        json += "\"atod_crossings\": " + std::to_string(p.atodCrossings) + ", ";
        json += "\"dtoa_events\": " + std::to_string(p.dtoaEvents);
        json += "}";
    }
    json += "}";
    return json;
}

void CampaignJournal::append(std::size_t index, const RunResult& result)
{
    const std::string line = entryToJson(index, result, embedProbes_) + "\n";
    const std::lock_guard<std::mutex> lock(mutex_);
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0) {
        throw std::runtime_error("CampaignJournal: write failed on " + path_);
    }
}

std::optional<JournalEntry> CampaignJournal::parseLine(const std::string& line)
{
    JournalEntry e;
    long long index = -1;
    std::string outcomeName;
    // A record is only trusted when complete: a torn line (killed campaign)
    // may still contain index/fault/outcome but miss the metrics, and must
    // be re-simulated rather than restored with defaulted fields.
    if (line.empty() || line.back() != '}') {
        return std::nullopt;
    }
    if (!getInt(line, "index", index) || index < 0 ||
        !getString(line, "fault", e.faultDescription) ||
        !getString(line, "outcome", outcomeName) ||
        !outcomeFromString(outcomeName, e.result.outcome)) {
        return std::nullopt;
    }
    e.index = static_cast<std::size_t>(index);

    long long ll = 0;
    double d = 0.0;
    if (getInt(line, "attempts", ll)) {
        e.result.diagnostics.attempts = static_cast<int>(ll);
    }
    (void)getString(line, "error", e.result.diagnostics.error);
    if (getDouble(line, "wall_s", d)) {
        e.result.diagnostics.wallSeconds = d;
    }
    if (getInt(line, "digital_waves", ll)) {
        e.result.diagnostics.digitalWaves = static_cast<std::uint64_t>(ll);
    }
    if (getInt(line, "analog_steps", ll)) {
        e.result.diagnostics.analogSteps = static_cast<std::uint64_t>(ll);
    }
    if (getInt(line, "checkpoint_fs", ll)) {
        e.result.diagnostics.checkpointTime = ll;
    }
    if (getInt(line, "resim_fs", ll)) {
        e.result.diagnostics.resimulatedTime = ll;
    }
    if (getInt(line, "first_output_error_fs", ll)) {
        e.result.firstOutputError = ll;
    }
    if (getInt(line, "last_output_error_end_fs", ll)) {
        e.result.lastOutputErrorEnd = ll;
    }
    if (getInt(line, "total_output_error_fs", ll)) {
        e.result.totalOutputErrorTime = ll;
    }
    if (getDouble(line, "max_analog_deviation_v", d)) {
        e.result.maxAnalogDeviation = d;
    }
    if (getDouble(line, "analog_time_outside_tol_s", d)) {
        e.result.analogTimeOutsideTol = d;
    }
    (void)getStringArray(line, "erred_signals", e.result.erredSignals);
    (void)getStringArray(line, "corrupted_state", e.result.corruptedState);
    (void)getString(line, "collapsed_from", e.result.diagnostics.collapsedFrom);
    if (getInt(line, "batch_lane", ll)) {
        e.result.diagnostics.batchLane = static_cast<int>(ll);
    }
    (void)getString(line, "forensic", e.result.diagnostics.forensic);

    // Optional probes object (lines written with a telemetry sink attached).
    // Keys are globally unique within a line, so the flat key scan works on
    // the nested object too.
    std::size_t probesAt = 0;
    if (findKey(line, "probes", probesAt)) {
        obs::ProbeSnapshot& p = e.result.diagnostics.probes;
        p.valid = true;
        auto u64 = [&](const char* key, std::uint64_t& out) {
            long long v = 0;
            if (getInt(line, key, v) && v >= 0) {
                out = static_cast<std::uint64_t>(v);
            }
        };
        u64("digital_events", p.digitalEvents);
        u64("delta_cycles", p.deltaCycles);
        u64("queue_high_water", p.queueHighWater);
        u64("pending_events", p.pendingEvents);
        u64("analog_accepted", p.analogAcceptedSteps);
        u64("analog_rejected", p.analogRejectedSteps);
        u64("newton_iterations", p.newtonIterations);
        u64("companion_rebuilds", p.companionRebuilds);
        u64("atod_crossings", p.atodCrossings);
        u64("dtoa_events", p.dtoaEvents);
        if (getDouble(line, "min_dt_s", d)) {
            p.minAcceptedDt = d;
        }
        if (getDouble(line, "last_dt_s", d)) {
            p.lastAcceptedDt = d;
        }
    }
    e.result.diagnostics.fromJournal = true;
    return e;
}

CampaignJournal::LoadResult CampaignJournal::loadWithStats(const std::string& path)
{
    LoadResult result;
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        return result; // no journal yet: fresh campaign
    }
    const auto consume = [&result](const std::string& line) {
        if (line.empty()) {
            return; // blank lines are separators, not lost data
        }
        if (auto e = parseLine(line)) {
            result.entries.push_back(std::move(*e));
        } else {
            ++result.skippedLines;
        }
    };
    std::string line;
    int c = 0;
    while ((c = std::fgetc(f)) != EOF) {
        if (c == '\n') {
            consume(line);
            line.clear();
        } else {
            line += static_cast<char>(c);
        }
    }
    // Final line without a newline: complete if the flush made it out before
    // the kill, torn otherwise — parseLine tells them apart.
    consume(line);
    std::fclose(f);
    return result;
}

std::vector<JournalEntry> CampaignJournal::load(const std::string& path)
{
    return loadWithStats(path).entries;
}

CampaignReport reportFromEntries(const std::vector<fault::FaultSpec>& faults,
                                 const std::vector<JournalEntry>& entries)
{
    std::vector<const JournalEntry*> byIndex(faults.size(), nullptr);
    for (const JournalEntry& e : entries) {
        if (e.index < byIndex.size()) {
            byIndex[e.index] = &e; // later duplicates win, like journal resume
        }
    }
    CampaignReport report;
    report.runs.reserve(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const JournalEntry* e = byIndex[i];
        if (e == nullptr) {
            throw std::runtime_error("reportFromEntries: no entry for fault " +
                                     std::to_string(i) + " (" + fault::describe(faults[i]) +
                                     ")");
        }
        const std::string expected = fault::describe(faults[i]);
        if (e->faultDescription != expected) {
            throw std::runtime_error("reportFromEntries: entry " + std::to_string(i) +
                                     " records '" + e->faultDescription +
                                     "' but the fault list has '" + expected + "'");
        }
        RunResult r = e->result;
        r.fault = faults[i];
        r.diagnostics.fromJournal = false;
        report.runs.push_back(std::move(r));
    }
    return report;
}

} // namespace gfi::campaign
