#include "core/stats.hpp"

#include "util/table.hpp"
#include "util/units.hpp"

#include <cmath>

namespace gfi::campaign {

void OutcomeTally::add(Outcome o)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[o];
    ++total_;
}

void OutcomeTally::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counts_.clear();
    total_ = 0;
}

std::map<Outcome, int> OutcomeTally::snapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
}

int OutcomeTally::total() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

Proportion wilsonInterval(int successes, int trials, double z)
{
    Proportion p;
    p.successes = successes;
    p.trials = trials;
    if (trials <= 0) {
        return p;
    }
    const double n = trials;
    const double phat = successes / n;
    p.estimate = phat;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (phat + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
    p.low = std::max(0.0, center - half);
    p.high = std::min(1.0, center + half);
    return p;
}

int requiredSamples(double halfWidth, double z)
{
    // n = z^2 * p(1-p) / h^2 with worst case p = 0.5.
    return static_cast<int>(std::ceil(z * z * 0.25 / (halfWidth * halfWidth)));
}

OutcomeRates outcomeRates(const CampaignReport& report, double z)
{
    const int n = static_cast<int>(report.runs.size());
    int silent = 0;
    int latent = 0;
    int transient = 0;
    int failure = 0;
    for (const RunResult& r : report.runs) {
        switch (r.outcome) {
        case Outcome::Silent:
            ++silent;
            break;
        case Outcome::Latent:
            ++latent;
            break;
        case Outcome::TransientError:
            ++transient;
            break;
        case Outcome::Failure:
            ++failure;
            break;
        }
    }
    OutcomeRates rates;
    rates.silent = wilsonInterval(silent, n, z);
    rates.latent = wilsonInterval(latent, n, z);
    rates.transient = wilsonInterval(transient, n, z);
    rates.failure = wilsonInterval(failure, n, z);
    rates.effective = wilsonInterval(n - silent, n, z);
    return rates;
}

std::string ratesTable(const OutcomeRates& rates)
{
    TextTable t;
    t.setHeader({"outcome", "count", "rate", "95 % interval"});
    auto row = [&](const char* name, const Proportion& p) {
        t.addRow({name, std::to_string(p.successes) + "/" + std::to_string(p.trials),
                  formatDouble(100.0 * p.estimate, 4) + " %",
                  "[" + formatDouble(100.0 * p.low, 4) + " %, " +
                      formatDouble(100.0 * p.high, 4) + " %]"});
    };
    row("silent", rates.silent);
    row("latent", rates.latent);
    row("transient", rates.transient);
    row("failure", rates.failure);
    t.addSeparator();
    row("any effect", rates.effective);
    return t.str();
}

} // namespace gfi::campaign
