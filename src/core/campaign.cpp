#include "core/campaign.hpp"

#include "analyze/collapse.hpp"
#include "batch/backend.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "lint/lint.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "sim/errors.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gfi::campaign {

namespace {

/// CheckpointStore key of the (single) golden testbench.
constexpr const char* kGoldenCheckpoints = "golden";

/// The result of an expanded (not simulated) member of a collapse class:
/// the representative's classification verbatim, zero resource consumption,
/// provenance in diagnostics.collapsedFrom.
RunResult expandCollapsed(const RunResult& rep, const fault::FaultSpec& member)
{
    RunResult r;
    r.fault = member;
    r.outcome = rep.outcome;
    r.firstOutputError = rep.firstOutputError;
    r.lastOutputErrorEnd = rep.lastOutputErrorEnd;
    r.totalOutputErrorTime = rep.totalOutputErrorTime;
    r.maxAnalogDeviation = rep.maxAnalogDeviation;
    r.analogTimeOutsideTol = rep.analogTimeOutsideTol;
    r.erredSignals = rep.erredSignals;
    r.corruptedState = rep.corruptedState;
    r.diagnostics.error = rep.diagnostics.error;
    r.diagnostics.collapsedFrom = fault::describe(rep.fault);
    return r;
}

/// FNV-1a 64-bit of a fault description, as 16 hex digits — the stable,
/// filesystem-safe run identity forensic artifacts are named by (fault
/// descriptions contain '/', spaces and '@').
std::string fnv1aHex(const std::string& s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

const char* toString(Outcome o)
{
    switch (o) {
    case Outcome::Silent:
        return "silent";
    case Outcome::Latent:
        return "latent";
    case Outcome::TransientError:
        return "transient";
    case Outcome::Failure:
        return "failure";
    case Outcome::SimError:
        return "sim-error";
    case Outcome::Timeout:
        return "timeout";
    case Outcome::Diverged:
        return "diverged";
    }
    return "?";
}

bool outcomeFromString(const std::string& name, Outcome& out)
{
    for (Outcome o : kAllOutcomes) {
        if (name == toString(o)) {
            out = o;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// CampaignReport

std::map<Outcome, int> CampaignReport::histogram() const
{
    std::map<Outcome, int> h;
    for (const RunResult& r : runs) {
        ++h[r.outcome];
    }
    return h;
}

std::string CampaignReport::summaryTable() const
{
    const auto h = histogram();
    TextTable t;
    t.setHeader({"outcome", "count", "fraction"});
    const int total = static_cast<int>(runs.size());
    for (Outcome o : kAllOutcomes) {
        const int n = h.count(o) != 0 ? h.at(o) : 0;
        t.addRow({toString(o), std::to_string(n),
                  total > 0 ? formatDouble(100.0 * n / total, 4) + " %" : "-"});
    }
    t.addSeparator();
    t.addRow({"total", std::to_string(total), "100 %"});

    // Fork-from-golden savings footer — only when at least one run actually
    // forked, so non-forking campaigns keep the exact historical table.
    int forked = 0;
    SimTime skipped = 0;
    for (const RunResult& r : runs) {
        if (r.diagnostics.checkpointTime > 0) {
            ++forked;
            skipped += r.diagnostics.checkpointTime;
        }
    }
    if (forked > 0) {
        t.addSeparator();
        t.addRow({"forked runs", std::to_string(forked), formatTime(skipped) + " skipped"});
    }
    // Collapse footer — only when at least one verdict was statically
    // expanded, so non-collapsed campaigns keep the exact historical table.
    int collapsed = 0;
    for (const RunResult& r : runs) {
        if (!r.diagnostics.collapsedFrom.empty()) {
            ++collapsed;
        }
    }
    if (collapsed > 0) {
        t.addSeparator();
        t.addRow({"collapsed runs", std::to_string(collapsed), "statically expanded"});
    }
    // Lossy-resume footer — only when the journal actually lost lines, so
    // clean campaigns keep the exact historical table.
    if (journalSkippedLines > 0) {
        t.addSeparator();
        t.addRow({"journal lines skipped", std::to_string(journalSkippedLines),
                  "torn/corrupt"});
    }
    return t.str();
}

std::string CampaignReport::detailTable() const
{
    TextTable t;
    t.setHeader({"fault", "outcome", "first err", "err time", "max analog dev", "error"});
    for (const RunResult& r : runs) {
        // Abnormal runs carry the contained failure instead of metrics.
        std::string note = r.diagnostics.error;
        if (note.size() > 60) {
            note = note.substr(0, 57) + "...";
        }
        t.addRow({fault::describe(r.fault), toString(r.outcome),
                  r.firstOutputError >= 0 ? formatTime(r.firstOutputError) : "-",
                  r.totalOutputErrorTime > 0 ? formatTime(r.totalOutputErrorTime) : "-",
                  r.maxAnalogDeviation > 0 ? formatSi(r.maxAnalogDeviation, "V") : "-",
                  note.empty() ? "-" : note});
    }
    return t.str();
}

// ---------------------------------------------------------------------------
// PropagationModel

void PropagationModel::record(const std::string& target,
                              const std::vector<std::string>& erredSignals)
{
    ++totals_[target];
    for (const std::string& sig : erredSignals) {
        ++counts_[target][sig];
    }
}

int PropagationModel::runsFor(const std::string& target) const
{
    const auto it = totals_.find(target);
    return it == totals_.end() ? 0 : it->second;
}

int PropagationModel::reaches(const std::string& target, const std::string& signal) const
{
    const auto it = counts_.find(target);
    if (it == counts_.end()) {
        return 0;
    }
    const auto jt = it->second.find(signal);
    return jt == it->second.end() ? 0 : jt->second;
}

std::string PropagationModel::table() const
{
    // Collect the union of affected signals for the column set.
    std::vector<std::string> signals;
    for (const auto& [target, row] : counts_) {
        for (const auto& [sig, n] : row) {
            if (std::find(signals.begin(), signals.end(), sig) == signals.end()) {
                signals.push_back(sig);
            }
        }
    }
    TextTable t;
    std::vector<std::string> header{"target \\ reaches", "runs"};
    header.insert(header.end(), signals.begin(), signals.end());
    t.setHeader(header);
    for (const auto& [target, total] : totals_) {
        std::vector<std::string> row{target, std::to_string(total)};
        for (const std::string& sig : signals) {
            row.push_back(std::to_string(reaches(target, sig)));
        }
        t.addRow(row);
    }
    return t.str();
}

std::string targetOf(const fault::FaultSpec& fault)
{
    return std::visit(
        [](const auto& f) -> std::string {
            using T = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<T, std::monostate>) {
                return "golden";
            } else if constexpr (std::is_same_v<T, fault::BitFlipFault> ||
                                 std::is_same_v<T, fault::DoubleBitFlipFault> ||
                                 std::is_same_v<T, fault::StateWriteFault> ||
                                 std::is_same_v<T, fault::FsmTransitionFault>) {
                return f.target;
            } else if constexpr (std::is_same_v<T, fault::DigitalPulseFault> ||
                                 std::is_same_v<T, fault::StuckAtFault> ||
                                 std::is_same_v<T, fault::CurrentPulseFault>) {
                return f.saboteur;
            } else {
                return f.parameter;
            }
        },
        fault);
}

// ---------------------------------------------------------------------------
// CampaignRunner

CampaignRunner::CampaignRunner(fault::TestbenchFactory factory, Tolerance tolerance)
    : factory_(std::move(factory)), tolerance_(tolerance)
{
}

CampaignRunner::~CampaignRunner() = default;

SimTime CampaignRunner::effectiveCheckpointCadence() const
{
    if (checkpointCadence_ > 0) {
        return checkpointCadence_;
    }
    if (checkpointCadence_ < 0) {
        return 0; // explicit opt-out beats the environment
    }
    const char* env = std::getenv("GFI_CHECKPOINT");
    if (env != nullptr && *env != '\0') {
        const double seconds = std::strtod(env, nullptr);
        if (seconds > 0.0 && seconds < 1e30) {
            return fromSeconds(seconds);
        }
    }
    return 0;
}

std::size_t CampaignRunner::checkpointCount() const
{
    return checkpoints_.count(kGoldenCheckpoints);
}

bool CampaignRunner::faultCollapsingEnabled() const
{
    if (collapseMode_ != 0) {
        return collapseMode_ > 0;
    }
    const char* env = std::getenv("GFI_COLLAPSE");
    return env != nullptr && *env != '\0' && *env != '0';
}

bool CampaignRunner::batchBackendEnabled() const
{
    if (batchMode_ != 0) {
        return batchMode_ > 0;
    }
    const char* env = std::getenv("GFI_BATCH");
    return env != nullptr && *env != '\0' && *env != '0';
}

std::string CampaignRunner::forensicsDir() const
{
    if (forensicsSet_) {
        return forensicsDir_; // explicit setting (possibly empty = off) wins
    }
    const char* env = std::getenv("GFI_FORENSICS");
    return env != nullptr ? std::string(env) : std::string();
}

void CampaignRunner::runGolden()
{
    if (goldenRan_) {
        return;
    }
    if (!golden_) {
        golden_ = factory_(); // may already exist: preflight lints it pre-run
    }
    const SimTime cadence = effectiveCheckpointCadence();
    if (cadence > 0) {
        // Fork-from-golden: advance event by event and capture at the first
        // scheduled event past each cadence mark. Scheduled event times are
        // exactly where an uninterrupted run's kernels stop anyway (the
        // analog solver never steps past the next digital event), so the
        // capture points perturb nothing and a restored run is bit-identical
        // to a from-scratch one.
        auto& sim = golden_->sim();
        sim.elaborate();
        const SimTime duration = golden_->duration();
        SimTime nextMark = cadence;
        while (true) {
            const SimTime ev = sim.digital().scheduler().nextEventTime();
            if (ev >= duration) {
                break;
            }
            sim.run(ev);
            if (ev >= nextMark) {
                checkpoints_.put(kGoldenCheckpoints, std::make_shared<const snapshot::Snapshot>(
                                                         sim.captureSnapshot()));
                nextMark = ev + cadence;
                if (obs::Telemetry* tel = activeTelemetry();
                    tel != nullptr && tel->trace() != nullptr) {
                    tel->trace()->instantEvent("checkpoint", "golden",
                                               "{\"sim_time\": \"" + formatTime(ev) + "\"}");
                }
            }
        }
        sim.run(duration);
    } else {
        golden_->run();
    }
    goldenRan_ = true;
    for (const std::string& name : golden_->observedState()) {
        goldenState_[name] = golden_->sim().digital().instrumentation().hook(name).get();
    }
}

const fault::Testbench& CampaignRunner::golden() const
{
    if (!goldenRan_) {
        throw std::logic_error("CampaignRunner: golden run not executed yet");
    }
    return *golden_;
}

lint::Report CampaignRunner::preflightReport(const std::vector<fault::FaultSpec>& faults)
{
    if (!golden_) {
        golden_ = factory_(); // lint the design without running it
    }
    return lint::lintCampaign(*golden_, faults);
}

RunResult CampaignRunner::classify(fault::Testbench& tb, const fault::FaultSpec& fault) const
{
    RunResult result;
    result.fault = fault;

    const SimTime tEnd = tb.duration();
    bool anyOutputError = false;
    bool recoveredEverywhere = true;

    // Digital outputs: exact comparison.
    for (const std::string& name : tb.observedDigital()) {
        const auto diff =
            trace::compareDigital(golden_->recorder().digitalTrace(name),
                                  tb.recorder().digitalTrace(name), tEnd,
                                  tolerance_.digitalJitter);
        if (!diff.identical()) {
            anyOutputError = true;
            result.erredSignals.push_back(name);
            if (result.firstOutputError < 0 || diff.firstMismatch < result.firstOutputError) {
                result.firstOutputError = diff.firstMismatch;
            }
            if (diff.lastMismatchEnd > result.lastOutputErrorEnd) {
                result.lastOutputErrorEnd = diff.lastMismatchEnd;
            }
            result.totalOutputErrorTime += diff.totalMismatch;
            recoveredEverywhere = recoveredEverywhere && diff.matchesAt(tEnd);
        }
    }

    // Analog outputs: tolerance-based comparison.
    for (const std::string& name : tb.observedAnalog()) {
        const auto diff =
            trace::compareAnalog(golden_->recorder().analogTrace(name),
                                 tb.recorder().analogTrace(name), tolerance_.analogAbs,
                                 tolerance_.analogRel);
        result.maxAnalogDeviation = std::max(result.maxAnalogDeviation, diff.maxDeviation);
        if (!diff.withinTolerance()) {
            anyOutputError = true;
            result.erredSignals.push_back(name);
            result.analogTimeOutsideTol += diff.timeOutsideTol;
            recoveredEverywhere = recoveredEverywhere && diff.withinTolAtEnd;
            const SimTime first = fromSeconds(diff.firstExceed);
            if (result.firstOutputError < 0 || first < result.firstOutputError) {
                result.firstOutputError = first;
            }
        }
    }

    // Final-state comparison (latent faults).
    for (const std::string& name : tb.observedState()) {
        const std::uint64_t now = tb.sim().digital().instrumentation().hook(name).get();
        const auto it = goldenState_.find(name);
        if (it != goldenState_.end() && it->second != now) {
            result.corruptedState.push_back(name);
        }
    }

    if (anyOutputError) {
        result.outcome = recoveredEverywhere ? Outcome::TransientError : Outcome::Failure;
    } else if (!result.corruptedState.empty()) {
        result.outcome = Outcome::Latent;
    } else {
        result.outcome = Outcome::Silent;
    }
    return result;
}

RunResult CampaignRunner::attemptOne(const fault::FaultSpec& fault, int attempt)
{
    RunResult result;
    result.fault = fault;

    // Fork-from-golden: a first attempt at a real fault may resume from the
    // nearest golden checkpoint strictly before the injection instant (the
    // store is empty unless runGolden() captured in fork mode). Retries
    // always re-simulate from scratch — a tightened solver step invalidates
    // the captured integrator history.
    std::shared_ptr<const snapshot::Snapshot> cp;
    if (attempt == 1 && !fault::isGolden(fault)) {
        const SimTime tInj = fault::injectionTime(fault);
        if (tInj > 0) {
            cp = checkpoints_.nearestBefore(kGoldenCheckpoints, tInj);
        }
    }

    Watchdog watchdog(watchdogConfig_.scaledFor(activeWorkers_));
    obs::Telemetry* const tel = activeTelemetry();
    // Forensics: a bounded kernel-event ring rides along with the run; it is
    // declared before the testbench so the simulator's recorder pointer never
    // outlives it. Recording is a branch plus a fixed-slot write, so arming
    // it for every run of a campaign is fine.
    const std::string forensics = forensicsDir();
    std::unique_ptr<obs::FlightRecorder> recorder;
    if (!forensics.empty()) {
        recorder = std::make_unique<obs::FlightRecorder>(
            forensicsCapacity_ > 0 ? forensicsCapacity_
                                   : obs::FlightRecorder::kDefaultCapacity);
    }
    std::unique_ptr<fault::Testbench> tb;
    obs::ProbeSnapshot baseline;
    try {
        {
            obs::Span span(tel, "build", "run");
            tb = factory_();
        }
        if (recorder) {
            tb->sim().setFlightRecorder(recorder.get());
        }
        if (attempt > 1 && retryPolicy_.stepTighten > 0.0 && retryPolicy_.stepTighten < 1.0) {
            tb->sim().setSolverStepScale(std::pow(retryPolicy_.stepTighten, attempt - 1));
        }
        if (cp) {
            obs::Span span(tel, "restore", "run");
            tb->sim().restoreSnapshot(*cp);
            tb->recorder().preloadPrefix(golden_->recorder(), cp->time, cp->analogTime);
            // Re-arm so the wave/step/wall budgets meter only the post-restore
            // suffix, not the restore work — a forked run must never trip a
            // budget its from-scratch twin would survive.
            watchdog.arm();
        }
        tb->sim().setWatchdog(&watchdog);
        // Probe baseline AFTER a possible restore: restored kernels carry the
        // golden prefix's counters, which must not be billed to this run —
        // that subtraction is what makes per-run deltas agree between forked
        // and from-scratch execution.
        baseline = tb->sim().sampleProbes();
        fault::armFault(*tb, fault);
        {
            obs::Span span(tel, "simulate", "run");
            tb->run();
        }
        {
            obs::Span span(tel, "classify", "run");
            result = classify(*tb, fault);
        }
    } catch (const WatchdogTimeout& e) {
        result.outcome = Outcome::Timeout;
        result.diagnostics.error = e.what();
    } catch (const DivergenceError& e) {
        result.outcome = Outcome::Diverged;
        result.diagnostics.error = e.what();
    } catch (const std::exception& e) {
        // Unknown targets (std::invalid_argument), scheduler limits and any
        // other structural failure: a classified data point, not a crash.
        result.outcome = Outcome::SimError;
        result.diagnostics.error = e.what();
    }

    if (tb) {
        tb->sim().setWatchdog(nullptr);
        tb->sim().setFlightRecorder(nullptr);
        result.diagnostics.digitalWaves = tb->sim().digital().scheduler().deltaCycles();
        if (tb->sim().elaborated()) {
            const auto& stats = tb->sim().solver().stats();
            result.diagnostics.analogSteps = stats.acceptedSteps + stats.rejectedSteps;
        }
        if (baseline.valid) {
            // Sampled even after a watchdog unwind — the final queue depth
            // and solver step sizes are the stall picture for Timeout runs.
            result.diagnostics.probes = tb->sim().sampleProbes().delta(baseline);
        }
    }
    result.diagnostics.wallSeconds = recordTiming_ ? watchdog.elapsedSeconds() : 0.0;
    if (cp && recordTiming_) {
        result.diagnostics.checkpointTime = cp->time;
        if (tb) {
            result.diagnostics.resimulatedTime =
                std::max<SimTime>(tb->sim().now() - cp->time, 0);
        }
    }
    // Abnormal terminal attempt with forensics armed: dump the last-N kernel
    // window. Artifact names are derived from the fault identity and attempt
    // number only, so reruns and different worker widths produce identical
    // paths and (the events being simulated-time-only) identical bytes. A
    // failed dump must not turn a classified data point into a crash.
    if (recorder && isAbnormal(result.outcome)) {
        const std::string stem =
            forensics + "/run-" + fnv1aHex(fault::describe(fault)) + "-a" +
            std::to_string(attempt);
        try {
            recorder->writeArtifacts(stem);
            result.diagnostics.forensic = stem;
            if (tel != nullptr && tel->trace() != nullptr) {
                tel->trace()->instantEvent("forensic dump", "run",
                                           "{\"stem\": \"" + jsonEscape(stem) + "\"}");
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "gfi: forensics: dump failed for %s: %s\n", stem.c_str(),
                         e.what());
        }
    }
    return result;
}

RunResult CampaignRunner::runContained(const fault::FaultSpec& fault)
{
    const int maxAttempts = std::max(1, retryPolicy_.maxAttempts);
    RunResult result;
    for (int attempt = 1;; ++attempt) {
        result = attemptOne(fault, attempt);
        result.diagnostics.attempts = attempt;
        if (!isAbnormal(result.outcome) || attempt >= maxAttempts ||
            !retryPolicy_.shouldRetry(result.outcome)) {
            return result;
        }
        // Counted at decision time because only the final outcome survives
        // into the result — the cause label would otherwise be lost when a
        // retry succeeds.
        if (obs::Telemetry* tel = activeTelemetry()) {
            tel->metrics()
                .counter(std::string("gfi_run_retries_total{cause=\"") +
                             toString(result.outcome) + "\"}",
                         "Retried attempts by the abnormal outcome that triggered them")
                .inc();
        }
    }
}

RunResult CampaignRunner::runOne(const fault::FaultSpec& fault)
{
    runGolden();
    return runContained(fault);
}

std::map<Outcome, int> CampaignRunner::liveHistogram() const
{
    const std::lock_guard<std::mutex> lock(liveMutex_);
    return liveHistogram_;
}

std::size_t CampaignRunner::completedRuns() const
{
    const std::lock_guard<std::mutex> lock(liveMutex_);
    return liveCompleted_;
}

void CampaignRunner::recordRunMetrics(const RunResult& r)
{
    obs::Telemetry* const tel = activeTelemetry();
    if (tel == nullptr) {
        return;
    }
    obs::MetricsRegistry& m = tel->metrics();
    m.counter(std::string("gfi_runs_total{outcome=\"") + toString(r.outcome) + "\"}",
              "Classified campaign runs by outcome")
        .inc();
    m.counter("gfi_run_attempts_total", "Contained run attempts, including retries")
        .inc(static_cast<std::uint64_t>(std::max(1, r.diagnostics.attempts)));

    const obs::ProbeSnapshot& p = r.diagnostics.probes;
    if (!p.valid) {
        return; // never sampled (restored from a pre-telemetry journal)
    }
    m.counter("gfi_digital_events_total", "Digital event-queue entries executed")
        .inc(p.digitalEvents);
    m.counter("gfi_digital_delta_cycles_total", "Delta-cycle waves run").inc(p.deltaCycles);
    m.gauge("gfi_digital_queue_high_water", "Deepest pending event queue of any run")
        .foldMax(static_cast<double>(p.queueHighWater));
    m.counter("gfi_analog_steps_accepted_total", "Accepted analog integration steps")
        .inc(p.analogAcceptedSteps);
    m.counter("gfi_analog_steps_rejected_total", "Rejected analog integration steps")
        .inc(p.analogRejectedSteps);
    m.counter("gfi_analog_newton_iterations_total", "Newton iterations across all steps")
        .inc(p.newtonIterations);
    m.counter("gfi_analog_companion_rebuilds_total",
              "Companion-model restarts after discontinuities")
        .inc(p.companionRebuilds);
    m.gauge("gfi_analog_min_step_seconds", "Smallest accepted analog step of any run")
        .foldMinNonzero(p.minAcceptedDt);
    m.counter("gfi_bridge_atod_crossings_total", "Analog->digital threshold crossings")
        .inc(p.atodCrossings);
    m.counter("gfi_bridge_dtoa_events_total", "Digital->analog drive-level updates")
        .inc(p.dtoaEvents);

    // Per-run distributions of the deterministic resource counters.
    m.histogram("gfi_run_digital_waves", {10, 100, 1000, 10000, 100000, 1000000},
                "Delta-cycle waves per run")
        .observe(static_cast<double>(p.deltaCycles));
    m.histogram("gfi_run_analog_steps", {10, 100, 1000, 10000, 100000, 1000000},
                "Analog step attempts per run")
        .observe(static_cast<double>(p.analogAcceptedSteps + p.analogRejectedSteps));

    if (r.diagnostics.checkpointTime > 0) {
        m.counter("gfi_snapshot_skipped_fs_total",
                  "Simulated time skipped by forking from golden checkpoints")
            .inc(static_cast<std::uint64_t>(r.diagnostics.checkpointTime));
        m.counter("gfi_snapshot_resimulated_fs_total",
                  "Simulated time re-run after restoring a checkpoint")
            .inc(static_cast<std::uint64_t>(std::max<SimTime>(r.diagnostics.resimulatedTime, 0)));
    }
}

CampaignReport CampaignRunner::run(
    const std::vector<fault::FaultSpec>& faults,
    const std::function<void(std::size_t, const RunResult&)>& progress)
{
    // Resolve the telemetry sink once per campaign: the attached one wins,
    // else GFI_TRACE/GFI_METRICS builds a campaign-owned one (kept across
    // run() calls so repeated campaigns accumulate into one dump). tel ==
    // nullptr leaves every instrumentation site a no-op.
    if (telemetry_ == nullptr && !envTelemetry_) {
        envTelemetry_ = obs::Telemetry::fromEnv();
    }
    obs::Telemetry* const tel = activeTelemetry();
    const auto campaignStart = std::chrono::steady_clock::now();

    // Static-analysis phase: a broken design or malformed fault list fails
    // here in O(1), before the golden run and before any journal restore.
    if (preflight_) {
        obs::Span span(tel, "preflight", "campaign");
        lint::Report rep = preflightReport(faults);
        if (effectiveCheckpointCadence() > 0) {
            // Fork-from-golden restores component state through the
            // Snapshottable interface; a stateful component outside it would
            // silently resume stale (PRE006).
            rep.merge(lint::preflightSnapshot(*golden_));
        }
        if (rep.count(lint::Severity::Error) > 0) {
            throw lint::PreflightError(std::move(rep));
        }
    }
    {
        obs::Span span(tel, "golden", "campaign");
        if (tel != nullptr && tel->trace() != nullptr) {
            tel->trace()->nameCurrentTrack("campaign");
        }
        runGolden();
    }

    // Static fault collapsing: partition the list into provably-equivalent
    // classes; only class representatives simulate, members expand at commit
    // time. Purely structural (declared connectivity only), so the plan
    // costs microseconds even for thousands of faults.
    const bool collapsing = faultCollapsingEnabled();
    std::unique_ptr<analyze::CollapsePlan> plan;
    if (collapsing) {
        obs::Span span(tel, "collapse", "campaign");
        plan = std::make_unique<analyze::CollapsePlan>(
            analyze::collapseFaults(*golden_, faults));
        if (plan->collapsedRuns() == 0) {
            plan.reset(); // nothing to save: identical to a full campaign
        } else {
            std::fprintf(stderr, "gfi: fault collapsing: %zu fault%s -> %zu class%s\n",
                         faults.size(), faults.size() == 1 ? "" : "s", plan->classes(),
                         plan->classes() == 1 ? "" : "es");
            if (tel != nullptr) {
                tel->metrics()
                    .counter("gfi_runs_collapsed_total",
                             "Campaign runs expanded from a collapse representative "
                             "instead of simulated")
                    .inc(plan->collapsedRuns());
            }
        }
    }

    // Bit-parallel backend availability. Per-run watchdog budgets cannot be
    // metered inside a shared 64-lane word run, and fork-from-golden restores
    // event-kernel snapshots the word kernel cannot consume — either feature
    // falls the whole campaign back to the event-driven kernel, loudly.
    bool batching = batchBackendEnabled();
    if (batching && (watchdogConfig_.wallClockSeconds > 0.0 ||
                     watchdogConfig_.digitalWaves != 0 || watchdogConfig_.analogSteps != 0)) {
        std::fprintf(stderr, "gfi: batch: disabled (per-run watchdog budgets require "
                             "the event-driven kernel)\n");
        batching = false;
    }
    if (batching && effectiveCheckpointCadence() > 0) {
        std::fprintf(stderr, "gfi: batch: disabled (fork-from-golden uses event-kernel "
                             "checkpoints)\n");
        batching = false;
    }

    // Resume: index -> journal entry of an earlier (possibly killed) campaign.
    std::map<std::size_t, JournalEntry> done;
    std::unique_ptr<CampaignJournal> journal;
    std::size_t journalSkipped = 0;
    if (!journalPath_.empty()) {
        CampaignJournal::LoadResult loaded = CampaignJournal::loadWithStats(journalPath_);
        journalSkipped = loaded.skippedLines;
        for (JournalEntry& e : loaded.entries) {
            done[e.index] = std::move(e); // later duplicates win
        }
        journal = std::make_unique<CampaignJournal>(journalPath_);
        // With a sink attached, journal lines carry the per-run kernel deltas
        // so a resumed campaign rebuilds the same metric totals from restored
        // entries. Without one the line format stays exactly historical.
        journal->setEmbedProbes(tel != nullptr);
    }

    // Decide up front (serially — preflightFault is cheap registry lookups)
    // which journal entries are restorable, so the worker phase only ever
    // simulates.
    std::map<std::size_t, RunResult> restored;
    const bool forking = effectiveCheckpointCadence() > 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const auto it = done.find(i);
        bool restorable =
            it != done.end() && it->second.faultDescription == fault::describe(faults[i]);
        if (restorable && preflight_ &&
            lint::preflightFault(*golden_, faults[i], i).count(lint::Severity::Error) > 0) {
            // A checkpoint for a fault that no longer passes preflight (e.g.
            // a stale sim-error row) must not be resurrected.
            restorable = false;
        }
        if (restorable) {
            RunResult r = it->second.result;
            r.fault = faults[i];
            if (!forking) {
                // A journal written by an earlier fork-mode campaign carries
                // fork bookkeeping; resurrecting it into a non-forking
                // campaign would print a "forked runs" summary footer for a
                // campaign that forked nothing.
                r.diagnostics.checkpointTime = 0;
                r.diagnostics.resimulatedTime = 0;
            }
            if (!collapsing) {
                // Same for collapse provenance: a non-collapsing campaign
                // must not print a "collapsed runs" footer.
                r.diagnostics.collapsedFrom.clear();
            }
            if (!batching) {
                // And for batch provenance: a journal written by a batched
                // campaign must restore cleanly into an event-driven one.
                r.diagnostics.batchLane = 0;
            }
            if (forensicsDir().empty()) {
                // And for forensic provenance: with forensics off, restored
                // reports must match a never-instrumented campaign's.
                r.diagnostics.forensic.clear();
            }
            restored.emplace(i, std::move(r));
        }
    }
    // Resume log line: operators must be able to tell a clean resume from a
    // lossy one (skipped lines mean those runs re-simulate).
    if (!done.empty() || journalSkipped > 0) {
        std::fprintf(stderr,
                     "gfi: journal %s: %zu entr%s loaded, %zu restorable, %zu "
                     "torn/corrupt line%s skipped\n",
                     journalPath_.c_str(), done.size(), done.size() == 1 ? "y" : "ies",
                     restored.size(), journalSkipped, journalSkipped == 1 ? "" : "s");
    }
    if (tel != nullptr && journalSkipped > 0) {
        tel->metrics()
            .counter("gfi_journal_skipped_lines_total",
                     "Torn/corrupt journal lines skipped on resume")
            .inc(journalSkipped);
    }
    {
        const std::lock_guard<std::mutex> lock(liveMutex_);
        liveHistogram_.clear();
        liveCompleted_ = 0;
    }

    CampaignReport report;
    report.journalSkippedLines = journalSkipped;
    report.runs.resize(faults.size());

    // Bit-parallel pre-phase: pack the batch-eligible faults that still need
    // simulating into 64-lane word runs. Whatever the word kernel classifies
    // lands in `batched`; everything else (ineligible faults, ineligible
    // designs, cross-check fallbacks) flows through the ordinary contained
    // path below. Lane assignment ignores restoration status, so journals of
    // interrupted batched campaigns resume with identical batch_lane keys.
    std::map<std::size_t, RunResult> batched;
    if (batching) {
        obs::Span span(tel, "batch", "campaign");
        batch::BatchRequest breq;
        breq.factory = &factory_;
        breq.golden = golden_.get();
        breq.goldenState = &goldenState_;
        breq.goldenWaves = golden_->sim().digital().scheduler().deltaCycles();
        if (golden_->sim().elaborated()) {
            const auto& stats = golden_->sim().solver().stats();
            breq.goldenAnalogSteps = stats.acceptedSteps + stats.rejectedSteps;
        }
        breq.faults = &faults;
        for (std::size_t i = 0; i < faults.size(); ++i) {
            if (fault::isGolden(faults[i]) || (plan && !plan->isRepresentative(i))) {
                continue;
            }
            breq.candidates.push_back(i);
            breq.needSim.push_back(restored.count(i) == 0 ? 1 : 0);
        }
        breq.tolerance = tolerance_;
        breq.workers = workers_;
        breq.recordTiming = recordTiming_;
        const batch::BatchStats bstats = batch::runBatchedCampaign(breq, batched);
        if (!bstats.designEligible) {
            std::fprintf(stderr, "gfi: batch: event-driven fallback (%s)\n",
                         bstats.designReason.c_str());
        } else if (bstats.groups > 0 || !bstats.fallbacks.empty()) {
            std::fprintf(stderr,
                         "gfi: batch: %zu run%s word-simulated in %zu group%s, %zu "
                         "event-driven fallback%s\n",
                         bstats.batched, bstats.batched == 1 ? "" : "s", bstats.groups,
                         bstats.groups == 1 ? "" : "s", bstats.fallbacks.size(),
                         bstats.fallbacks.size() == 1 ? "" : "s");
        }
        if (bstats.crossCheckFailures > 0) {
            std::fprintf(stderr,
                         "gfi: batch: %zu group%s failed the golden cross-check and "
                         "re-ran event-driven\n",
                         bstats.crossCheckFailures,
                         bstats.crossCheckFailures == 1 ? "" : "s");
        }
        if (tel != nullptr && bstats.batched > 0) {
            tel->metrics()
                .counter("gfi_runs_batched_total",
                         "Campaign runs classified by the bit-parallel word kernel")
                .inc(bstats.batched);
        }
    }

    // Worker phase: simulations run concurrently, commits (journal append,
    // live counters, progress callback, report slot) run serialized in
    // fault-list order — byte-identical observable output at any width.
    core::Executor exec(workers_);
    activeWorkers_ = exec.effectiveWorkers();

    // Live progress stream (NDJSON). Counts are cumulative across the whole
    // campaign — journal-restored runs included — so a resumed campaign
    // reports restored + new, never from zero; throughput and ETA come from
    // newly executed (simulated or word-batched) runs only. All emission
    // happens on the serialized commit path plus the start/done bookends, so
    // no extra synchronization is needed beyond the live-counter mutex.
    struct ProgressCounters {
        std::size_t restored = 0;  ///< committed from the journal
        std::size_t batched = 0;   ///< committed from the word kernel
        std::size_t collapsed = 0; ///< expanded from a collapse representative
        std::size_t executed = 0;  ///< newly simulated or word-batched
    };
    ProgressCounters prog;
    const auto progressStart = std::chrono::steady_clock::now();
    auto lastBeat = progressStart;
    const auto emitProgress = [&](const char* event, const std::string& extra = "") {
        if (!progressSink_) {
            return;
        }
        std::map<Outcome, int> hist;
        std::size_t completed = 0;
        {
            const std::lock_guard<std::mutex> lock(liveMutex_);
            hist = liveHistogram_;
            completed = liveCompleted_;
        }
        std::string line = "{\"event\": \"" + std::string(event) + "\"";
        line += ", \"completed\": " + std::to_string(completed);
        line += ", \"total\": " + std::to_string(faults.size());
        line += ", \"outcomes\": {";
        bool first = true;
        for (Outcome o : kAllOutcomes) {
            const auto it = hist.find(o);
            line += std::string(first ? "" : ", ") + "\"" + toString(o) +
                    "\": " + std::to_string(it != hist.end() ? it->second : 0);
            first = false;
        }
        line += "}";
        line += ", \"restored\": " + std::to_string(prog.restored);
        line += ", \"batched\": " + std::to_string(prog.batched);
        line += ", \"collapsed\": " + std::to_string(prog.collapsed);
        line += ", \"workers\": " + std::to_string(activeWorkers_);
        // With timing recording off, elapsed is pinned to 0 and the derived
        // rate/ETA fields are omitted, so the stream is byte-deterministic.
        const double elapsed =
            recordTiming_ ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                          progressStart)
                                .count()
                          : 0.0;
        line += ", \"elapsed_s\": " + formatDouble(elapsed, 3);
        if (elapsed > 0.0 && prog.executed > 0) {
            const double rate = static_cast<double>(prog.executed) / elapsed;
            line += ", \"runs_per_s\": " + formatDouble(rate, 3);
            if (completed < faults.size()) {
                line += ", \"eta_s\": " +
                        formatDouble(static_cast<double>(faults.size() - completed) / rate, 3);
            }
        }
        line += extra;
        line += "}\n";
        progressSink_(line);
    };
    emitProgress("start", ", \"restorable\": " + std::to_string(restored.size()) +
                              ", \"collapsed_planned\": " +
                              std::to_string(plan ? plan->collapsedRuns() : 0) +
                              ", \"batched_planned\": " + std::to_string(batched.size()));

    try {
        exec.forEachOrdered(faults.size(), [&](std::size_t i) -> core::CommitFn {
            RunResult r;
            bool fromJournal = false;
            bool expand = false;
            if (const auto it = restored.find(i); it != restored.end()) {
                // Already classified by a previous invocation: restore only.
                r = it->second;
                fromJournal = true;
            } else if (const auto bt = batched.find(i); bt != batched.end()) {
                // Classified by the bit-parallel pre-phase: commit as-is.
                r = bt->second;
            } else if (plan && !plan->isRepresentative(i)) {
                // Collapse-class member: its representative (an earlier
                // index) commits first, so the verdict is expanded inside
                // the ordered commit, where the representative's slot is
                // guaranteed populated.
                expand = true;
            } else {
                if (tel != nullptr && tel->trace() != nullptr) {
                    tel->trace()->nameCurrentTrack(
                        "worker " + std::to_string(obs::TraceWriter::currentTrackId()));
                }
                obs::Span span(tel, "run #" + std::to_string(i), "campaign");
                r = runContained(faults[i]);
                span.setArgs("{\"fault\": \"" + jsonEscape(fault::describe(faults[i])) +
                             "\", \"outcome\": \"" + toString(r.outcome) + "\"}");
            }
            return [this, &report, &journal, &progress, &faults, &prog, &lastBeat,
                    &emitProgress, plan = plan.get(), i, fromJournal, expand,
                    r = std::move(r)]() mutable {
                if (expand) {
                    r = expandCollapsed(report.runs[plan->repOf[i]], faults[i]);
                }
                if (journal && !fromJournal) {
                    journal->append(i, r);
                }
                {
                    const std::lock_guard<std::mutex> lock(liveMutex_);
                    ++liveHistogram_[r.outcome];
                    ++liveCompleted_;
                }
                // Commit-order metric application: counters only see the
                // deterministic per-run deltas, so totals match at any
                // worker width; restored entries re-apply their journaled
                // deltas, reproducing the interrupted campaign's telemetry.
                recordRunMetrics(r);
                if (fromJournal) {
                    ++prog.restored;
                } else if (r.diagnostics.batchLane > 0) {
                    ++prog.batched;
                    ++prog.executed;
                } else if (!r.diagnostics.collapsedFrom.empty()) {
                    ++prog.collapsed;
                } else {
                    ++prog.executed;
                }
                report.runs[i] = std::move(r);
                if (progress) {
                    progress(i, report.runs[i]);
                }
                if (progressSink_) {
                    const auto beatNow = std::chrono::steady_clock::now();
                    if (progressCadence_ <= 0.0 ||
                        std::chrono::duration<double>(beatNow - lastBeat).count() >=
                            progressCadence_) {
                        lastBeat = beatNow;
                        emitProgress("heartbeat");
                    }
                }
            };
        });
    } catch (...) {
        activeWorkers_ = 1;
        throw;
    }
    emitProgress("done");
    const unsigned usedWorkers = activeWorkers_;
    activeWorkers_ = 1;

    if (tel != nullptr) {
        // Campaign-level readings. The checkpoint-store counters bill only
        // this run()'s usage (difference against the last application), so
        // repeated campaigns on one runner accumulate without double counting.
        obs::MetricsRegistry& m = tel->metrics();
        const snapshot::CheckpointStore::Stats st = checkpoints_.stats();
        m.counter("gfi_snapshot_checkpoints_total", "Golden checkpoints captured")
            .inc(st.puts - statsApplied_.puts);
        m.counter("gfi_snapshot_checkpoint_hits_total",
                  "Fork lookups that found a usable golden checkpoint")
            .inc(st.hits - statsApplied_.hits);
        m.counter("gfi_snapshot_checkpoint_misses_total",
                  "Fork lookups with no checkpoint before the injection time")
            .inc(st.misses - statsApplied_.misses);
        m.gauge("gfi_snapshot_bytes", "Serialized bytes held by the checkpoint store")
            .set(static_cast<double>(st.bytes));
        statsApplied_ = st;
        m.gauge("gfi_campaign_workers", "Resolved worker-thread count of the last campaign")
            .set(static_cast<double>(usedWorkers));
        m.gauge("gfi_campaign_wall_seconds", "Wall-clock time of the last campaign")
            .set(std::chrono::duration<double>(std::chrono::steady_clock::now() - campaignStart)
                     .count());
        tel->flush();
    }
    return report;
}

} // namespace gfi::campaign
