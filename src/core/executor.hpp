#pragma once
// Ordered-commit worker pool for embarrassingly parallel campaigns.
//
// A fault-injection campaign evaluates N independent jobs (one contained
// simulation per fault) whose *results* must nevertheless be observed in
// fault-list order: the journal is an append-only prefix, reports are
// position-indexed, and resuming relies on index stability. The Executor
// separates the two concerns: `produce(i)` runs concurrently on a worker
// pool, and the commit closure it returns runs serialized, in strict index
// order, regardless of completion order. A parallel campaign is therefore
// byte-identical to a serial one everywhere its committed side effects are
// observed.
//
// Scheduling: workers pull indices from a shared in-order cursor (sharding
// without a materialized queue) and park completed commits in a reorder
// buffer. The buffer is bounded by a commit window — a worker that sprints
// too far ahead of the slowest outstanding job blocks instead of buffering
// unbounded results — and the producer of the next-to-commit index is by
// construction never one of the blocked workers, so the window cannot
// deadlock. An exception from produce or commit (or requestCancel(), which
// is async-signal-safe) stops index hand-out; in-flight jobs finish, their
// in-order commits drain, and forEachOrdered() returns (or rethrows) with
// the committed prefix intact.

#include <cstddef>
#include <functional>

#include <atomic>

namespace gfi::core {

/// A job's deferred side effect: returned by produce, invoked serialized and
/// in index order. An empty function commits nothing (the slot still counts).
using CommitFn = std::function<void()>;

/// Produces job @p index's result concurrently and returns its commit.
using ProduceFn = std::function<CommitFn(std::size_t index)>;

class Executor {
public:
    /// @param workers  worker-thread count; 0 = defaultWorkers().
    explicit Executor(unsigned workers = 0) noexcept : workers_(workers) {}

    /// The configured count, with 0 resolved: GFI_JOBS when set to a positive
    /// integer, else std::thread::hardware_concurrency() (at least 1).
    [[nodiscard]] static unsigned defaultWorkers();

    /// Sets the worker count (0 = defaultWorkers()).
    void setWorkers(unsigned n) noexcept { workers_ = n; }

    /// The configured worker count (0 = auto).
    [[nodiscard]] unsigned workers() const noexcept { return workers_; }

    /// The count forEachOrdered() will actually use.
    [[nodiscard]] unsigned effectiveWorkers() const
    {
        return workers_ != 0 ? workers_ : defaultWorkers();
    }

    /// Maximum indices in flight past the next-to-commit one (the reorder
    /// buffer bound). 0 = automatic (4x the worker count).
    void setCommitWindow(std::size_t w) noexcept { window_ = w; }
    [[nodiscard]] std::size_t commitWindow() const noexcept { return window_; }

    /// Requests a clean stop: no new indices are handed out, in-flight jobs
    /// finish and their in-order commits drain. Safe from any thread and
    /// from signal handlers (a plain atomic store).
    void requestCancel() noexcept { cancel_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelRequested() const noexcept
    {
        return cancel_.load(std::memory_order_relaxed);
    }

    /// Runs jobs 0..count-1: produce concurrently, commit serialized in index
    /// order. Returns the committed-prefix length (== count unless cancelled
    /// or a job failed). The first exception from produce or commit is
    /// rethrown here after the pool drains. With an effective worker count
    /// of 1 (or count < 2) everything runs inline on the calling thread.
    std::size_t forEachOrdered(std::size_t count, const ProduceFn& produce);

private:
    std::size_t runInline(std::size_t count, const ProduceFn& produce);

    unsigned workers_ = 0;
    std::size_t window_ = 0;
    std::atomic<bool> cancel_{false};
};

} // namespace gfi::core
