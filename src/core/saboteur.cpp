#include "core/saboteur.hpp"

namespace gfi::fault {

// ---------------------------------------------------------------------------
// CurrentSaboteur

CurrentSaboteur::CurrentSaboteur(analog::AnalogSystem& sys, std::string name,
                                 analog::NodeId node)
    : analog::AnalogComponent(std::move(name)), node_(node)
{
    (void)sys;
}

void CurrentSaboteur::arm(double tInject, const PulseShape& shape)
{
    tInject_ = tInject;
    shape_ = shape.clone();
}

void CurrentSaboteur::disarm()
{
    shape_.reset();
}

void CurrentSaboteur::stamp(analog::Stamper& s, const analog::Solution&, double t, double,
                            bool dcMode)
{
    if (!shape_ || dcMode) {
        return;
    }
    const double i = shape_->current(t - tInject_);
    if (i != 0.0) {
        // Superposition of the spike with the normal node current: the whole
        // mechanism of the paper's analog fault injection.
        s.currentInto(node_, i);
    }
}

void CurrentSaboteur::collectBreakpoints(double tNow, double tMax, std::vector<double>& out)
{
    if (!shape_) {
        return;
    }
    for (double corner : shape_->corners()) {
        const double t = tInject_ + corner;
        if (t > tNow && t <= tMax) {
            out.push_back(t);
        }
    }
}

double CurrentSaboteur::maxStep(double t) const
{
    if (!shape_) {
        return 1e30;
    }
    // Resolve the pulse with at least ~25 points while it is active.
    const double rel = t - tInject_;
    if (rel >= 0.0 && rel <= shape_->duration()) {
        return shape_->duration() / 25.0;
    }
    return 1e30;
}

// ---------------------------------------------------------------------------
// DigitalSaboteur

DigitalSaboteur::DigitalSaboteur(digital::Circuit& c, std::string name,
                                 digital::LogicSignal& in, digital::LogicSignal& out,
                                 SimTime delay)
    : digital::Component(std::move(name)), circuit_(&c), in_(&in), out_(&out), delay_(delay)
{
    digital::Process& p = c.process(this->name() + "/pass", [this] { drive(); }, {&in});
    c.noteDrives(p, {&out});
    // Transparent mode is a pure pass-through; mode changes are the faults
    // themselves, so the golden structure is a buffer.
    c.noteCombKind(p, digital::CombKind::Buffer, delay_);
}

void DigitalSaboteur::drive()
{
    switch (mode_) {
    case Mode::Transparent:
        out_->scheduleInertial(in_->value(), delay_);
        break;
    case Mode::Stuck:
        out_->scheduleInertial(stuck_, delay_);
        break;
    case Mode::Invert:
        out_->scheduleInertial(digital::logicNot(in_->value()), delay_);
        break;
    }
}

void DigitalSaboteur::setMode(Mode mode, digital::Logic stuckValue)
{
    mode_ = mode;
    stuck_ = stuckValue;
    drive();
}

void DigitalSaboteur::injectPulse(SimTime start, SimTime width)
{
    auto& sched = circuit_->scheduler();
    sched.scheduleAction(start, [this] { setMode(Mode::Invert); });
    sched.scheduleAction(start + width, [this] { setMode(Mode::Transparent); });
}

void DigitalSaboteur::injectStuckAt(SimTime start, digital::Logic value, SimTime duration)
{
    auto& sched = circuit_->scheduler();
    sched.scheduleAction(start, [this, value] { setMode(Mode::Stuck, value); });
    if (duration > 0) {
        sched.scheduleAction(start + duration, [this] { setMode(Mode::Transparent); });
    }
}

} // namespace gfi::fault
