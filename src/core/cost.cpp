#include "core/cost.hpp"

#include "core/report.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <algorithm>

namespace gfi::campaign {

void CostBucket::add(const RunResult& r)
{
    ++runs;
    const auto att = static_cast<std::uint64_t>(std::max(1, r.diagnostics.attempts));
    attempts += att;
    retries += att - 1;
    digitalWaves += r.diagnostics.digitalWaves;
    analogSteps += r.diagnostics.analogSteps;
    wallSeconds += r.diagnostics.wallSeconds;
    if (r.diagnostics.fromJournal) {
        ++restored;
    }
    if (!r.diagnostics.collapsedFrom.empty()) {
        ++collapsed;
    }
    if (r.diagnostics.batchLane > 0) {
        ++batched;
    }
    if (r.diagnostics.checkpointTime > 0) {
        ++forked;
    }
}

CostReport buildCostReport(const CampaignReport& report)
{
    CostReport cost;
    for (const RunResult& r : report.runs) {
        cost.total.add(r);
        cost.byClass[fault::kindOf(r.fault)].add(r);
        cost.byTarget[targetOf(r.fault)].add(r);
        cost.byOutcome[toString(r.outcome)].add(r);
    }
    return cost;
}

namespace {

std::vector<std::string> bucketCells(const CostBucket& b)
{
    return {std::to_string(b.runs),
            std::to_string(b.attempts),
            std::to_string(b.retries),
            std::to_string(b.digitalWaves),
            std::to_string(b.analogSteps),
            formatDouble(b.wallSeconds, 6),
            std::to_string(b.restored),
            std::to_string(b.collapsed),
            std::to_string(b.batched),
            std::to_string(b.forked)};
}

std::string bucketJson(const CostBucket& b)
{
    std::string json = "{";
    json += "\"runs\": " + std::to_string(b.runs) + ", ";
    json += "\"attempts\": " + std::to_string(b.attempts) + ", ";
    json += "\"retries\": " + std::to_string(b.retries) + ", ";
    json += "\"digital_waves\": " + std::to_string(b.digitalWaves) + ", ";
    json += "\"analog_steps\": " + std::to_string(b.analogSteps) + ", ";
    json += "\"wall_s\": " + formatDouble(b.wallSeconds, 6) + ", ";
    json += "\"restored\": " + std::to_string(b.restored) + ", ";
    json += "\"collapsed\": " + std::to_string(b.collapsed) + ", ";
    json += "\"batched\": " + std::to_string(b.batched) + ", ";
    json += "\"forked\": " + std::to_string(b.forked);
    json += "}";
    return json;
}

std::string groupJson(const std::map<std::string, CostBucket>& group)
{
    std::string json = "{";
    bool first = true;
    for (const auto& [key, bucket] : group) {
        json += std::string(first ? "" : ", ") + "\"" + jsonEscape(key) +
                "\": " + bucketJson(bucket);
        first = false;
    }
    return json + "}";
}

} // namespace

std::string CostReport::table() const
{
    TextTable t;
    t.setHeader({"dimension", "key", "runs", "attempts", "retries", "waves", "steps",
                 "wall_s", "restored", "collapsed", "batched", "forked"});
    auto addRow = [&t](const std::string& dim, const std::string& key,
                       const CostBucket& b) {
        std::vector<std::string> row{dim, key};
        const auto cells = bucketCells(b);
        row.insert(row.end(), cells.begin(), cells.end());
        t.addRow(row);
    };
    addRow("total", "-", total);
    t.addSeparator();
    for (const auto& [key, bucket] : byClass) {
        addRow("class", key, bucket);
    }
    t.addSeparator();
    for (const auto& [key, bucket] : byTarget) {
        addRow("target", key, bucket);
    }
    t.addSeparator();
    for (const auto& [key, bucket] : byOutcome) {
        addRow("outcome", key, bucket);
    }
    return t.str();
}

std::string CostReport::toJson() const
{
    std::string json = "{\n";
    json += "  \"total\": " + bucketJson(total) + ",\n";
    json += "  \"by_class\": " + groupJson(byClass) + ",\n";
    json += "  \"by_target\": " + groupJson(byTarget) + ",\n";
    json += "  \"by_outcome\": " + groupJson(byOutcome) + "\n";
    json += "}\n";
    return json;
}

void CostReport::writeCsv(const std::string& path) const
{
    CsvWriter csv(path);
    csv.writeRow({"dimension", "key", "runs", "attempts", "retries", "digital_waves",
                  "analog_steps", "wall_s", "restored", "collapsed", "batched", "forked"});
    auto writeRow = [&csv](const std::string& dim, const std::string& key,
                           const CostBucket& b) {
        std::vector<std::string> row{dim, key};
        const auto cells = bucketCells(b);
        row.insert(row.end(), cells.begin(), cells.end());
        csv.writeRow(row);
    };
    writeRow("total", "", total);
    for (const auto& [key, bucket] : byClass) {
        writeRow("class", key, bucket);
    }
    for (const auto& [key, bucket] : byTarget) {
        writeRow("target", key, bucket);
    }
    for (const auto& [key, bucket] : byOutcome) {
        writeRow("outcome", key, bucket);
    }
}

} // namespace gfi::campaign
