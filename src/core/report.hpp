#pragma once
// Campaign report export: machine-readable CSV and JSON alongside the
// printable tables, so campaign results can feed external dashboards or
// regression tracking (the "failure report" artifact of the paper's flow).

#include "core/campaign.hpp"

namespace gfi::campaign {

/// Detail-CSV options. The defaults keep the historical column set
/// byte-identical; costColumns appends the per-run resource columns
/// (digital_waves, analog_steps, forensic) after batch_lane for campaigns
/// that feed cost dashboards.
struct CsvOptions {
    bool costColumns = false;
};

/// Writes one row per run: fault description, target, outcome, timing and
/// deviation metrics. Throws std::runtime_error when the file cannot open.
void writeReportCsv(const CampaignReport& report, const std::string& path,
                    const CsvOptions& options = {});

/// Writes the whole report as a JSON document:
/// { "summary": {outcome counts}, "runs": [ {...}, ... ] }.
void writeReportJson(const CampaignReport& report, const std::string& path);

/// Renders the report as a JSON string (used by writeReportJson; exposed for
/// embedding into other documents).
[[nodiscard]] std::string reportToJson(const CampaignReport& report);

/// Escapes a string for embedding in JSON output (shared with the campaign
/// journal writer).
[[nodiscard]] std::string jsonEscape(const std::string& s);

} // namespace gfi::campaign
