#include "core/report.hpp"

#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>
#include <stdexcept>

namespace gfi::campaign {

std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

void writeReportCsv(const CampaignReport& report, const std::string& path,
                    const CsvOptions& options)
{
    CsvWriter csv(path);
    std::vector<std::string> header{
        "fault", "target", "outcome", "first_output_error_fs", "total_output_error_fs",
        "max_analog_deviation_v", "analog_time_outside_tol_s", "erred_signals",
        "corrupted_state", "attempts", "wall_s", "checkpoint_fs", "resim_fs",
        "from_journal", "error", "collapsed_from", "batch_lane"};
    if (options.costColumns) {
        // Appended after every historical column so the default shape stays
        // byte-identical and trailing-column consumers keep working.
        header.insert(header.end(), {"digital_waves", "analog_steps", "forensic"});
    }
    csv.writeRow(header);
    for (const RunResult& r : report.runs) {
        std::string erred;
        for (const std::string& s : r.erredSignals) {
            erred += (erred.empty() ? "" : ";") + s;
        }
        std::string corrupted;
        for (const std::string& s : r.corruptedState) {
            corrupted += (corrupted.empty() ? "" : ";") + s;
        }
        std::vector<std::string> row{fault::describe(r.fault), targetOf(r.fault),
                                     toString(r.outcome),
                                     std::to_string(r.firstOutputError),
                                     std::to_string(r.totalOutputErrorTime),
                                     formatDouble(r.maxAnalogDeviation, 9),
                                     formatDouble(r.analogTimeOutsideTol, 9), erred,
                                     corrupted, std::to_string(r.diagnostics.attempts),
                                     formatDouble(r.diagnostics.wallSeconds, 6),
                                     std::to_string(r.diagnostics.checkpointTime),
                                     std::to_string(r.diagnostics.resimulatedTime),
                                     r.diagnostics.fromJournal ? "1" : "0",
                                     r.diagnostics.error, r.diagnostics.collapsedFrom,
                                     r.diagnostics.batchLane > 0
                                         ? std::to_string(r.diagnostics.batchLane)
                                         : ""};
        if (options.costColumns) {
            row.push_back(std::to_string(r.diagnostics.digitalWaves));
            row.push_back(std::to_string(r.diagnostics.analogSteps));
            row.push_back(r.diagnostics.forensic);
        }
        csv.writeRow(row);
    }
}

std::string reportToJson(const CampaignReport& report)
{
    const auto hist = report.histogram();
    auto count = [&](Outcome o) {
        const auto it = hist.find(o);
        return it == hist.end() ? 0 : it->second;
    };

    std::string json = "{\n  \"summary\": {\n";
    json += "    \"total\": " + std::to_string(report.runs.size());
    // One counter per Outcome category — iterate the full enum so new
    // categories can never be silently dropped from the summary.
    for (Outcome o : kAllOutcomes) {
        json += ",\n    \"" + std::string(toString(o)) + "\": " + std::to_string(count(o));
    }
    json += "\n  },\n";
    json += "  \"runs\": [\n";
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        const RunResult& r = report.runs[i];
        json += "    {";
        json += "\"fault\": \"" + jsonEscape(fault::describe(r.fault)) + "\", ";
        json += "\"target\": \"" + jsonEscape(targetOf(r.fault)) + "\", ";
        json += "\"outcome\": \"" + std::string(toString(r.outcome)) + "\", ";
        json += "\"first_output_error_fs\": " + std::to_string(r.firstOutputError) + ", ";
        json += "\"total_output_error_fs\": " + std::to_string(r.totalOutputErrorTime) + ", ";
        json += "\"max_analog_deviation_v\": " + formatDouble(r.maxAnalogDeviation, 9) + ", ";
        json += "\"attempts\": " + std::to_string(r.diagnostics.attempts);
        // Forked runs carry their checkpoint bookkeeping; from-scratch runs
        // omit the fields so pre-fork reports keep their exact shape.
        if (r.diagnostics.checkpointTime > 0) {
            json += ", \"checkpoint_fs\": " + std::to_string(r.diagnostics.checkpointTime);
            json += ", \"resim_fs\": " + std::to_string(r.diagnostics.resimulatedTime);
        }
        // Resumed campaigns restore classified rows from the journal; flag
        // them so a report consumer can tell restored from fresh results.
        if (r.diagnostics.fromJournal) {
            json += ", \"from_journal\": true";
        }
        if (!r.diagnostics.error.empty()) {
            json += ", \"error\": \"" + jsonEscape(r.diagnostics.error) + "\"";
        }
        // Expanded collapse-class members name their simulated
        // representative; simulated runs omit the key so pre-collapse
        // reports keep their exact shape.
        if (!r.diagnostics.collapsedFrom.empty()) {
            json += ", \"collapsed_from\": \"" + jsonEscape(r.diagnostics.collapsedFrom) +
                    "\"";
        }
        // Word-simulated runs name their fault lane (>= 1); event-driven
        // runs omit the key so pre-batch reports keep their exact shape.
        if (r.diagnostics.batchLane > 0) {
            json += ", \"batch_lane\": " + std::to_string(r.diagnostics.batchLane);
        }
        // Abnormal runs that dumped a flight-recorder window name the
        // artifact stem; other runs omit the key, keeping the exact
        // pre-forensics shape.
        if (!r.diagnostics.forensic.empty()) {
            json += ", \"forensic\": \"" + jsonEscape(r.diagnostics.forensic) + "\"";
        }
        json += "}";
        json += i + 1 < report.runs.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    return json;
}

void writeReportJson(const CampaignReport& report, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        throw std::runtime_error("writeReportJson: cannot open " + path);
    }
    const std::string json = reportToJson(report);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

} // namespace gfi::campaign
