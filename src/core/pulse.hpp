#pragma once
// SEU/SET current-pulse models (paper Section 2, Figure 1).
//
// The paper proposes replacing the classical double-exponential (Messenger)
// current model with a simpler trapezoidal pulse parameterized by amplitude
// (PA), rising time (RT), falling time (FT) and total width (PW), arguing the
// simpler shape cuts simulation cost while producing very similar circuit
// responses (its Figure 7). Both models are implemented here, together with
// the parameter fits of Figure 1(b) that translate between them.

#include <memory>
#include <string>
#include <vector>

namespace gfi::fault {

/// A transient current waveform, time-referenced to the injection instant.
class PulseShape {
public:
    virtual ~PulseShape() = default;

    /// Current (amps) at @p t seconds after the injection instant.
    [[nodiscard]] virtual double current(double t) const = 0;

    /// Time after which the pulse is (numerically) over.
    [[nodiscard]] virtual double duration() const = 0;

    /// Total injected charge (coulombs).
    [[nodiscard]] virtual double charge() const = 0;

    /// Peak current (amps).
    [[nodiscard]] virtual double peak() const = 0;

    /// Discontinuity/corner times relative to injection that the integrator
    /// should land on.
    [[nodiscard]] virtual std::vector<double> corners() const = 0;

    /// Human-readable parameter summary.
    [[nodiscard]] virtual std::string describe() const = 0;

    /// Deep copy.
    [[nodiscard]] virtual std::unique_ptr<PulseShape> clone() const = 0;
};

/// The paper's proposed model (Figure 1a): linear rise over RT to amplitude
/// PA, plateau, then linear fall over FT; PW is the *total* width (the
/// parameter sets of Figure 8 satisfy PW = RT + plateau + FT).
class TrapezoidPulse final : public PulseShape {
public:
    /// @param amplitude  PA (amps)
    /// @param riseTime   RT (seconds)
    /// @param fallTime   FT (seconds)
    /// @param width      PW, total duration including RT and FT (seconds)
    TrapezoidPulse(double amplitude, double riseTime, double fallTime, double width);

    [[nodiscard]] double current(double t) const override;
    [[nodiscard]] double duration() const override { return width_; }
    [[nodiscard]] double charge() const override;
    [[nodiscard]] double peak() const override { return amplitude_; }
    [[nodiscard]] std::vector<double> corners() const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<PulseShape> clone() const override
    {
        return std::make_unique<TrapezoidPulse>(*this);
    }

    [[nodiscard]] double amplitude() const noexcept { return amplitude_; }
    [[nodiscard]] double riseTime() const noexcept { return rise_; }
    [[nodiscard]] double fallTime() const noexcept { return fall_; }
    [[nodiscard]] double width() const noexcept { return width_; }

private:
    double amplitude_;
    double rise_;
    double fall_;
    double width_;
};

/// The classical double-exponential charge-collection model
/// (Messenger 1982, reference [12]): I(t) = I0 * (exp(-t/tauFall) - exp(-t/tauRise)).
class DoubleExpPulse final : public PulseShape {
public:
    /// @param i0       scale current (amps); the peak is lower than I0.
    /// @param tauRise  fast time constant (seconds), tauRise < tauFall.
    /// @param tauFall  slow time constant (seconds).
    DoubleExpPulse(double i0, double tauRise, double tauFall);

    [[nodiscard]] double current(double t) const override;
    [[nodiscard]] double duration() const override;
    [[nodiscard]] double charge() const override { return i0_ * (tauFall_ - tauRise_); }
    [[nodiscard]] double peak() const override;
    [[nodiscard]] std::vector<double> corners() const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<PulseShape> clone() const override
    {
        return std::make_unique<DoubleExpPulse>(*this);
    }

    [[nodiscard]] double i0() const noexcept { return i0_; }
    [[nodiscard]] double tauRise() const noexcept { return tauRise_; }
    [[nodiscard]] double tauFall() const noexcept { return tauFall_; }

    /// Time of the current peak.
    [[nodiscard]] double peakTime() const;

private:
    double i0_;
    double tauRise_;
    double tauFall_;
};

/// Figure 1(b) forward fit: derives trapezoid parameters from a
/// double-exponential pulse, matching the peak amplitude, placing the rise
/// corner at the double-exponential's peak time, and conserving total charge
/// (the fall time absorbs the exponential tail).
[[nodiscard]] TrapezoidPulse fitTrapezoid(const DoubleExpPulse& p);

/// Inverse fit: derives a double-exponential with the same peak current and
/// total charge as the trapezoid (tauRise tied to RT, tauFall solved
/// numerically).
[[nodiscard]] DoubleExpPulse fitDoubleExp(const TrapezoidPulse& p);

} // namespace gfi::fault
