#pragma once
// Per-fault cost attribution: where did the campaign's simulation budget go?
//
// Every RunResult already carries its deterministic resource bill (delta-cycle
// waves, analog step attempts, retry count) plus wall-clock time and execution
// provenance (restored / collapsed / batched / forked). buildCostReport folds
// those into buckets keyed by fault class, injection target and outcome — the
// three questions an operator asks when a campaign is slow: which fault KIND
// is expensive, which TARGET is expensive, and are the abnormal outcomes
// eating the budget.
//
// Determinism contract: the report is computed purely from journaled RunResult
// fields, in fault-list order, into ordered maps — so a resumed, forked,
// collapsed or parallel campaign reproduces byte-identical table/CSV/JSON
// output (wall-clock fields excepted unless setRecordTiming(false) zeroed
// them at the source).

#include "core/campaign.hpp"

#include <cstdint>
#include <map>
#include <string>

namespace gfi::campaign {

/// Accumulated cost of one group of runs.
struct CostBucket {
    std::uint64_t runs = 0;         ///< classified runs in the bucket
    std::uint64_t attempts = 0;     ///< contained attempts, retries included
    std::uint64_t retries = 0;      ///< attempts beyond the first, per run
    std::uint64_t digitalWaves = 0; ///< delta-cycle waves consumed
    std::uint64_t analogSteps = 0;  ///< analog step attempts consumed
    double wallSeconds = 0.0;       ///< wall-clock time of final attempts
    std::uint64_t restored = 0;     ///< restored from the journal, not simulated
    std::uint64_t collapsed = 0;    ///< expanded from a collapse representative
    std::uint64_t batched = 0;      ///< classified by the word kernel
    std::uint64_t forked = 0;       ///< forked from a golden checkpoint

    void add(const RunResult& r);
};

/// Cost attribution of a whole campaign.
struct CostReport {
    CostBucket total;
    std::map<std::string, CostBucket> byClass;   ///< fault::kindOf key
    std::map<std::string, CostBucket> byTarget;  ///< targetOf key
    std::map<std::string, CostBucket> byOutcome; ///< toString(outcome) key

    /// Printable attribution table (total row, then one section per
    /// grouping dimension, keys in lexicographic order).
    [[nodiscard]] std::string table() const;

    /// The report as a JSON document (stable key order).
    [[nodiscard]] std::string toJson() const;

    /// One CSV row per bucket: dimension, key, then the CostBucket fields.
    void writeCsv(const std::string& path) const;
};

/// Folds a finished campaign report into cost buckets.
[[nodiscard]] CostReport buildCostReport(const CampaignReport& report);

} // namespace gfi::campaign
