#pragma once
// Fault descriptors: the campaign-level vocabulary of injectable faults.
//
// Digital faults (paper Section 3): bit-flips and state writes in sequential
// elements (mutants), erroneous FSM transitions (reference [11]), SET pulses
// and stuck-ats on interconnects (saboteurs).
// Analog faults (paper Section 4): current pulses on structural nodes
// (saboteurs) and parametric deviations in behavioral blocks (reference [10]).

#include "core/pulse.hpp"
#include "digital/logic.hpp"
#include "sim/time.hpp"

#include <memory>
#include <string>
#include <variant>

namespace gfi::fault {

/// SEU: flips one stored bit of a named sequential element at a given time.
struct BitFlipFault {
    std::string target; ///< instrumentation hook name
    int bit = 0;        ///< which state bit to flip
    SimTime time = 0;   ///< injection instant
};

/// MBU: flips two bits of the same element in the same instant (adjacent
/// multi-cell upsets dominate the multi-bit rate in dense technologies).
struct DoubleBitFlipFault {
    std::string target;
    int bitA = 0;
    int bitB = 1;
    SimTime time = 0;
};

/// Overwrites the whole stored value of a named sequential element (models a
/// multiple-bit upset or a deliberate state corruption).
struct StateWriteFault {
    std::string target;
    std::uint64_t value = 0;
    SimTime time = 0;
};

/// High-level FSM fault (reference [11]): forces an erroneous transition at
/// the first active clock edge after the injection instant.
struct FsmTransitionFault {
    std::string target; ///< FSM registry name
    int forcedState = 0;
    SimTime time = 0;
};

/// SET on a digital interconnect: the named digital saboteur inverts the
/// signal for @p width.
struct DigitalPulseFault {
    std::string saboteur;
    SimTime time = 0;
    SimTime width = kNanosecond;
};

/// Stuck-at on a digital interconnect via saboteur; duration 0 = permanent.
struct StuckAtFault {
    std::string saboteur;
    digital::Logic value = digital::Logic::Zero;
    SimTime time = 0;
    SimTime duration = 0;
};

/// SEU-like current pulse injected on an analog node via a current saboteur.
struct CurrentPulseFault {
    std::string saboteur;
    double timeSeconds = 0.0;
    std::shared_ptr<const PulseShape> shape;
};

/// Parametric fault: scales a registered component parameter by @p factor at
/// @p time (process variation / aging model; paper Section 1 and ref [10]).
struct ParametricFault {
    std::string parameter;
    double factor = 1.0;
    SimTime time = 0;
};

/// Any injectable fault; std::monostate denotes the golden (fault-free) run.
using FaultSpec = std::variant<std::monostate, BitFlipFault, DoubleBitFlipFault,
                               StateWriteFault, FsmTransitionFault, DigitalPulseFault,
                               StuckAtFault, CurrentPulseFault, ParametricFault>;

/// One-line human-readable description of a fault.
[[nodiscard]] std::string describe(const FaultSpec& fault);

/// The injection instant of a fault (0 for the golden run).
[[nodiscard]] SimTime injectionTime(const FaultSpec& fault);

/// Stable fault-class name of a spec ("bit-flip", "current-pulse", ...; the
/// cost-attribution grouping key). One name per FaultSpec alternative.
[[nodiscard]] const char* kindOf(const FaultSpec& fault);

/// True for the golden (no-fault) spec.
[[nodiscard]] inline bool isGolden(const FaultSpec& fault)
{
    return std::holds_alternative<std::monostate>(fault);
}

} // namespace gfi::fault
