#pragma once
// Saboteurs: the paper's instrumentation blocks inserted on interconnections.
//
// CurrentSaboteur is the C++ equivalent of the paper's VHDL-AMS GenCur entity
// (its Figure 4): a component attached to an analog node that superposes a
// current pulse on the node's normal current when armed. DigitalSaboteur is
// the classic digital saboteur (MEFISTO-style, reference [6]): a pass-through
// block on a digital interconnect that can invert, stick or pulse the signal.

#include "analog/system.hpp"
#include "core/pulse.hpp"
#include "digital/circuit.hpp"
#include "snapshot/snapshot.hpp"

namespace gfi::fault {

/// Analog saboteur: injects a current pulse into one node.
class CurrentSaboteur : public analog::AnalogComponent {
public:
    CurrentSaboteur(analog::AnalogSystem& sys, std::string name, analog::NodeId node);

    /// Arms the saboteur: the pulse begins at @p tInject (seconds).
    void arm(double tInject, const PulseShape& shape);

    /// Removes any armed pulse.
    void disarm();

    /// True while a pulse is armed (it stays armed after it has elapsed so
    /// repeated stamps remain consistent; the waveform is simply zero there).
    [[nodiscard]] bool armed() const noexcept { return shape_ != nullptr; }

    /// The injection instant (seconds); meaningful only when armed.
    [[nodiscard]] double injectionTime() const noexcept { return tInject_; }

    /// The target node.
    [[nodiscard]] analog::NodeId node() const noexcept { return node_; }

    void stamp(analog::Stamper& s, const analog::Solution& x, double t, double dt,
               bool dcMode) override;
    void collectBreakpoints(double tNow, double tMax, std::vector<double>& out) override;
    [[nodiscard]] double maxStep(double t) const override;

    /// A saboteur is an open circuit in small-signal analysis.
    bool stampAc(analog::ComplexStamper&, double) const override { return true; }

private:
    analog::NodeId node_;
    double tInject_ = 0.0;
    std::unique_ptr<PulseShape> shape_;
};

/// Digital saboteur: a controllable pass-through inserted on a signal.
class DigitalSaboteur : public digital::Component, public snapshot::Snapshottable {
public:
    enum class Mode {
        Transparent, ///< out follows in
        Stuck,       ///< out forced to a constant value
        Invert,      ///< out is the inverse of in (SET model on interconnect)
    };

    /// Inserts the saboteur between @p in and @p out (zero added delay by
    /// default, like the paper's saboteurs which only modify interconnect).
    DigitalSaboteur(digital::Circuit& c, std::string name, digital::LogicSignal& in,
                    digital::LogicSignal& out, SimTime delay = 0);

    /// Switches the mode immediately and re-drives the output.
    void setMode(Mode mode, digital::Logic stuckValue = digital::Logic::X);

    /// Schedules an invert window [start, start+width): the standard SET
    /// (single event transient) injection on an interconnection.
    void injectPulse(SimTime start, SimTime width);

    /// Schedules a stuck-at window; @p duration 0 means permanent.
    void injectStuckAt(SimTime start, digital::Logic value, SimTime duration = 0);

    [[nodiscard]] Mode mode() const noexcept { return mode_; }

    /// Structural ports (word-level netlist compilation).
    [[nodiscard]] const digital::LogicSignal* input() const noexcept { return in_; }
    [[nodiscard]] const digital::LogicSignal* output() const noexcept { return out_; }
    [[nodiscard]] SimTime delay() const noexcept { return delay_; }

    /// Golden runs always capture the saboteur Transparent (faults arm only
    /// after restore), but the mode is serialized anyway for completeness.
    void captureState(snapshot::Writer& w) const override
    {
        w.u64(static_cast<std::uint64_t>(mode_));
        w.u64(static_cast<std::uint64_t>(stuck_));
    }

    void restoreState(snapshot::Reader& r) override
    {
        mode_ = static_cast<Mode>(r.u64());
        stuck_ = static_cast<digital::Logic>(r.u64());
    }

private:
    void drive();

    digital::Circuit* circuit_;
    digital::LogicSignal* in_;
    digital::LogicSignal* out_;
    SimTime delay_;
    Mode mode_ = Mode::Transparent;
    digital::Logic stuck_ = digital::Logic::X;
};

} // namespace gfi::fault
