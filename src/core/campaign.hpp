#pragma once
// Campaign engine: runs a golden reference plus one simulation per fault,
// compares traces and classifies each fault's effect — the "fault injection
// set-up -> simulation -> results analysis -> failure report/classification"
// pipeline of the paper's Figures 2 and 3.

#include "core/testbench.hpp"
#include "trace/compare.hpp"

#include <map>

namespace gfi::campaign {

/// Effect classification of one injected fault.
enum class Outcome {
    Silent,         ///< no observable difference at all
    Latent,         ///< outputs clean, but stored state differs at the end
    TransientError, ///< outputs diverged, then re-converged before the end
    Failure,        ///< outputs still wrong at the end of the observation
};

/// Short name for reports.
[[nodiscard]] const char* toString(Outcome o);

/// Analog comparison tolerance (paper Section 4.1: analog monitoring needs a
/// tolerance to avoid flagging non-significant deviations).
struct Tolerance {
    double analogAbs = 1e-3;      ///< volts
    double analogRel = 0.0;       ///< fraction of the golden value
    SimTime digitalJitter = 0;    ///< digital mismatch windows shorter than
                                  ///< this are ignored (clock-edge jitter)
};

/// Result of one injection run.
struct RunResult {
    fault::FaultSpec fault;
    Outcome outcome = Outcome::Silent;

    // Digital output divergence (across all observed digital signals).
    SimTime firstOutputError = -1;
    SimTime lastOutputErrorEnd = -1;
    SimTime totalOutputErrorTime = 0;

    // Analog divergence (worst observed node).
    double maxAnalogDeviation = 0.0;
    double analogTimeOutsideTol = 0.0;

    /// Observed signals/nodes that diverged in this run.
    std::vector<std::string> erredSignals;

    /// State elements that differed at the end of the run.
    std::vector<std::string> corruptedState;
};

/// Aggregate of a whole campaign.
struct CampaignReport {
    std::vector<RunResult> runs;

    /// Count of runs per outcome.
    [[nodiscard]] std::map<Outcome, int> histogram() const;

    /// Paper-style classification table as printable text.
    [[nodiscard]] std::string summaryTable() const;

    /// Full per-run listing as printable text.
    [[nodiscard]] std::string detailTable() const;
};

/// Error-propagation model: which injection targets affect which outputs
/// (the "behavioural model generation" box in the paper's flow).
class PropagationModel {
public:
    /// Accumulates one run's observation.
    void record(const std::string& target, const std::vector<std::string>& erredSignals);

    /// Number of runs recorded for @p target.
    [[nodiscard]] int runsFor(const std::string& target) const;

    /// Number of runs in which @p target's fault reached @p signal.
    [[nodiscard]] int reaches(const std::string& target, const std::string& signal) const;

    /// Printable target x signal propagation matrix.
    [[nodiscard]] std::string table() const;

private:
    std::map<std::string, std::map<std::string, int>> counts_;
    std::map<std::string, int> totals_;
};

/// The injection target a fault addresses (for propagation bookkeeping).
[[nodiscard]] std::string targetOf(const fault::FaultSpec& fault);

/// Runs campaigns: one golden run, then one run per fault.
class CampaignRunner {
public:
    /// @param factory  builds a fresh instrumented testbench per run.
    explicit CampaignRunner(fault::TestbenchFactory factory, Tolerance tolerance = {});

    /// Runs the golden reference (idempotent; run() calls it automatically).
    void runGolden();

    /// Runs one fault against the golden reference and classifies it.
    RunResult runOne(const fault::FaultSpec& fault);

    /// Runs a whole fault list; @p progress (optional) is called per run.
    CampaignReport run(const std::vector<fault::FaultSpec>& faults,
                       const std::function<void(std::size_t, const RunResult&)>& progress = {});

    /// The golden testbench (valid after runGolden); exposes golden traces.
    [[nodiscard]] const fault::Testbench& golden() const;

    /// Builds a throwaway testbench (target enumeration for fault lists).
    [[nodiscard]] std::unique_ptr<fault::Testbench> makeTestbench() const { return factory_(); }

    /// The tolerance in use.
    [[nodiscard]] const Tolerance& tolerance() const noexcept { return tolerance_; }

    /// Adjusts the analog tolerance (ablation sweeps re-classify with this).
    void setTolerance(Tolerance t) { tolerance_ = t; }

    /// Re-classifies a finished faulty testbench against the golden traces
    /// (used by tolerance-sweep ablations without re-simulating).
    [[nodiscard]] RunResult classify(fault::Testbench& tb, const fault::FaultSpec& fault) const;

private:
    fault::TestbenchFactory factory_;
    Tolerance tolerance_;
    std::unique_ptr<fault::Testbench> golden_;
    std::map<std::string, std::uint64_t> goldenState_;
};

} // namespace gfi::campaign
