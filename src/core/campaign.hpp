#pragma once
// Campaign engine: runs a golden reference plus one simulation per fault,
// compares traces and classifies each fault's effect — the "fault injection
// set-up -> simulation -> results analysis -> failure report/classification"
// pipeline of the paper's Figures 2 and 3.
//
// Fault-tolerant execution: by construction many injected runs are
// pathological (a current pulse can diverge the analog solver, a mutated FSM
// can oscillate the delta-cycle engine), so each run executes inside a
// containment boundary with a per-run watchdog. Misbehaving runs become
// classified data points (SimError / Timeout / Diverged) with structured
// diagnostics instead of tool crashes; transient failures can be retried
// with a tightened solver step, and every completed run can be journaled to
// a JSONL checkpoint so an interrupted campaign resumes losing at most one
// run.
//
// Parallel execution: the fault list is embarrassingly parallel (every run
// compares an independent simulation against one golden reference), so run()
// shards it across a core::Executor worker pool — each worker builds its own
// testbench, the golden trace is shared read-only, and results commit in
// fault-list order so parallel output is identical to serial output.

#include "core/executor.hpp"
#include "core/testbench.hpp"
#include "lint/diagnostic.hpp"
#include "obs/probe.hpp"
#include "sim/watchdog.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/compare.hpp"

#include <array>
#include <map>
#include <memory>
#include <mutex>

namespace gfi::obs {
class Telemetry;
}

namespace gfi::campaign {

/// Effect classification of one injected fault.
enum class Outcome {
    Silent,         ///< no observable difference at all
    Latent,         ///< outputs clean, but stored state differs at the end
    TransientError, ///< outputs diverged, then re-converged before the end
    Failure,        ///< outputs still wrong at the end of the observation
    SimError,       ///< the run aborted on a structural simulation error
                    ///< (unknown target, delta-cycle limit, ...)
    Timeout,        ///< a watchdog budget expired before the run finished
    Diverged,       ///< the analog solver lost the solution (non-finite
                    ///< values or step failure at the minimum step)
};

/// Every outcome, in report order. Iterate this — never hard-code the list —
/// so new categories can't be silently dropped from reports.
inline constexpr std::array<Outcome, 7> kAllOutcomes{
    Outcome::Silent,   Outcome::Latent,  Outcome::TransientError, Outcome::Failure,
    Outcome::SimError, Outcome::Timeout, Outcome::Diverged};

/// True for the outcomes produced by run containment rather than comparison.
[[nodiscard]] constexpr bool isAbnormal(Outcome o) noexcept
{
    return o == Outcome::SimError || o == Outcome::Timeout || o == Outcome::Diverged;
}

/// Short name for reports.
[[nodiscard]] const char* toString(Outcome o);

/// Parses a summaryTable()/journal outcome name; false when unknown.
[[nodiscard]] bool outcomeFromString(const std::string& name, Outcome& out);

/// Analog comparison tolerance (paper Section 4.1: analog monitoring needs a
/// tolerance to avoid flagging non-significant deviations).
struct Tolerance {
    double analogAbs = 1e-3;      ///< volts
    double analogRel = 0.0;       ///< fraction of the golden value
    SimTime digitalJitter = 0;    ///< digital mismatch windows shorter than
                                  ///< this are ignored (clock-edge jitter)
};

/// How one injection run executed (containment + resource bookkeeping).
struct RunDiagnostics {
    std::string error;              ///< what() of the contained failure; empty when clean
    int attempts = 1;               ///< total attempts, including the final one
    double wallSeconds = 0.0;       ///< wall-clock time of the final attempt
    std::uint64_t digitalWaves = 0; ///< delta cycles consumed by the final attempt
    std::uint64_t analogSteps = 0;  ///< analog step attempts of the final attempt
    bool fromJournal = false;       ///< restored from a checkpoint, not simulated
    std::string collapsedFrom;      ///< fault description of the simulated
                                    ///< representative this verdict was
                                    ///< expanded from (empty = simulated)
    SimTime checkpointTime = 0;     ///< golden checkpoint this run forked from
                                    ///< (0 = simulated from scratch)
    SimTime resimulatedTime = 0;    ///< simulated time actually re-run after the
                                    ///< fork (0 when from scratch)
    int batchLane = 0;              ///< word-simulation lane (1..63) this verdict
                                    ///< came from; 0 = event-driven kernel
    std::string forensic;           ///< artifact stem of the flight-recorder
                                    ///< dump written for this run (abnormal
                                    ///< outcomes with forensics enabled only;
                                    ///< empty otherwise)

    /// The run's own kernel-counter consumption (final reading minus the
    /// post-restore baseline): how many events/steps/crossings THIS run cost,
    /// plus the final queue depth and step sizes — populated even when the
    /// run ended on a watchdog unwind, which is when the stall picture
    /// matters most. Deterministic (simulated work only), so equal-width and
    /// cross-width campaigns agree. In-memory only unless a telemetry sink
    /// asks the journal to embed it.
    obs::ProbeSnapshot probes;
};

/// Result of one injection run.
struct RunResult {
    fault::FaultSpec fault;
    Outcome outcome = Outcome::Silent;

    // Digital output divergence (across all observed digital signals).
    SimTime firstOutputError = -1;
    SimTime lastOutputErrorEnd = -1;
    SimTime totalOutputErrorTime = 0;

    // Analog divergence (worst observed node).
    double maxAnalogDeviation = 0.0;
    double analogTimeOutsideTol = 0.0;

    /// Observed signals/nodes that diverged in this run.
    std::vector<std::string> erredSignals;

    /// State elements that differed at the end of the run.
    std::vector<std::string> corruptedState;

    /// Containment/watchdog/retry bookkeeping for this run.
    RunDiagnostics diagnostics;
};

/// Retry policy for abnormal runs (transient solver failures mostly).
struct RetryPolicy {
    int maxAttempts = 1;        ///< total attempts per fault (1 = no retry)
    double stepTighten = 0.25;  ///< solver dtMax/dtInitial scale per extra
                                ///< attempt (1.0 = keep the nominal step)
    bool retryDiverged = true;  ///< retry Outcome::Diverged runs
    bool retryTimeout = false;  ///< retry Outcome::Timeout runs
    bool retrySimError = false; ///< retry Outcome::SimError runs

    [[nodiscard]] bool shouldRetry(Outcome o) const noexcept
    {
        switch (o) {
        case Outcome::Diverged:
            return retryDiverged;
        case Outcome::Timeout:
            return retryTimeout;
        case Outcome::SimError:
            return retrySimError;
        default:
            return false;
        }
    }
};

/// Aggregate of a whole campaign.
struct CampaignReport {
    std::vector<RunResult> runs;

    /// Torn/corrupt journal lines skipped while resuming (0 for a fresh or
    /// clean campaign). Non-zero means the journal lost data — typically a
    /// line torn by a mid-append kill — and the affected runs re-simulated.
    std::size_t journalSkippedLines = 0;

    /// Count of runs per outcome.
    [[nodiscard]] std::map<Outcome, int> histogram() const;

    /// Paper-style classification table as printable text (one row per
    /// Outcome category, always all of them).
    [[nodiscard]] std::string summaryTable() const;

    /// Full per-run listing as printable text.
    [[nodiscard]] std::string detailTable() const;
};

/// Error-propagation model: which injection targets affect which outputs
/// (the "behavioural model generation" box in the paper's flow).
class PropagationModel {
public:
    /// Accumulates one run's observation.
    void record(const std::string& target, const std::vector<std::string>& erredSignals);

    /// Number of runs recorded for @p target.
    [[nodiscard]] int runsFor(const std::string& target) const;

    /// Number of runs in which @p target's fault reached @p signal.
    [[nodiscard]] int reaches(const std::string& target, const std::string& signal) const;

    /// Printable target x signal propagation matrix.
    [[nodiscard]] std::string table() const;

private:
    std::map<std::string, std::map<std::string, int>> counts_;
    std::map<std::string, int> totals_;
};

/// The injection target a fault addresses (for propagation bookkeeping).
[[nodiscard]] std::string targetOf(const fault::FaultSpec& fault);

/// Runs campaigns: one golden run, then one contained run per fault.
class CampaignRunner {
public:
    /// @param factory  builds a fresh instrumented testbench per run.
    explicit CampaignRunner(fault::TestbenchFactory factory, Tolerance tolerance = {});
    ~CampaignRunner(); // out of line: owns a fwd-declared obs::Telemetry

    /// Runs the golden reference (idempotent; run() calls it automatically).
    /// The golden run is NOT contained: a design that cannot complete its
    /// fault-free run is a configuration error and throws.
    void runGolden();

    /// Runs one fault against the golden reference and classifies it. Never
    /// throws on a misbehaving run: simulation errors, watchdog timeouts and
    /// solver divergence become SimError/Timeout/Diverged results with the
    /// failure recorded in diagnostics, retried per the RetryPolicy.
    RunResult runOne(const fault::FaultSpec& fault);

    /// Runs a whole fault list; @p progress (optional) is called per run.
    /// With a journal path set, each result is appended to the JSONL journal
    /// as it completes, and faults already classified in an existing journal
    /// are restored (diagnostics.fromJournal = true) instead of re-simulated.
    ///
    /// Unless disabled with setPreflight(false), the campaign first runs the
    /// static-analysis phase (design lint + fault-list preflight) and throws
    /// lint::PreflightError when it finds errors — a broken design or a
    /// typo'd target fails once, up front, instead of once per run.
    ///
    /// The fault list is sharded across workers() threads (each worker builds
    /// its own testbenches through the factory; the golden trace is shared
    /// read-only). Results still commit in fault-list order, so the report,
    /// the journal, the progress-callback sequence and every table are
    /// identical to a serial run — wall-clock timing fields excepted, which
    /// setRecordTiming(false) zeroes for byte-level diffing.
    CampaignReport run(const std::vector<fault::FaultSpec>& faults,
                       const std::function<void(std::size_t, const RunResult&)>& progress = {});

    /// Worker threads for run() (0 = auto: GFI_JOBS when set, else
    /// hardware_concurrency; 1 = serial on the calling thread). The factory
    /// must be safe to call concurrently — it should build each testbench
    /// from per-instance state only.
    void setWorkers(unsigned n) noexcept { workers_ = n; }
    [[nodiscard]] unsigned workers() const noexcept { return workers_; }

    /// Fork-from-golden execution: with a cadence > 0, runGolden() advances
    /// the golden run event by event and captures a full simulator snapshot
    /// at the first scheduled event past each cadence mark. Every first
    /// attempt of a real fault then restores the nearest checkpoint strictly
    /// before its injection instant and simulates only the suffix — results
    /// (journal, report, summary table) stay byte-identical to from-scratch
    /// execution because checkpoints live at points where an uninterrupted
    /// run's kernels land anyway. Retries and golden runs always simulate
    /// from scratch. run()'s preflight phase adds the PRE006 snapshot-
    /// readiness check while forking is enabled.
    ///
    /// 0 (the default) defers to the GFI_CHECKPOINT environment variable
    /// (cadence in seconds); a negative cadence disables forking even when
    /// the variable is set. Requires testbenches that use the default
    /// Testbench::run() (plain sim().run(duration())).
    void setCheckpointCadence(SimTime cadence) noexcept { checkpointCadence_ = cadence; }
    [[nodiscard]] SimTime checkpointCadence() const noexcept { return checkpointCadence_; }

    /// Golden checkpoints captured so far (0 until runGolden() in fork mode).
    [[nodiscard]] std::size_t checkpointCount() const;

    /// Static fault collapsing: when enabled, run() partitions the fault
    /// list into provably-equivalent classes (analyze::collapseFaults) and
    /// simulates one representative per class; the other members' results
    /// are expanded from the representative's at commit time, with
    /// diagnostics.collapsedFrom naming the simulated fault. Per-fault
    /// classifications are byte-identical to a full campaign (that is the
    /// soundness contract of the collapser); resource diagnostics of
    /// expanded members are zero and their journal lines carry the
    /// "collapsed_from" provenance key. By default (unset) the GFI_COLLAPSE
    /// environment variable decides ("1"/non-empty = on); setFaultCollapsing
    /// beats the environment either way.
    void setFaultCollapsing(bool on) noexcept { collapseMode_ = on ? 1 : -1; }
    [[nodiscard]] bool faultCollapsingEnabled() const;

    /// Bit-parallel batch backend: when enabled, run() packs batch-eligible
    /// digital faults into 64-lane word simulations (lane 0 golden, lanes
    /// 1..63 one fault each — src/batch) and classifies each lane by its
    /// divergence against the golden reference; only faults the word kernel
    /// cannot replay bit-exactly (timing-dependent SET pulses, analog/AMS
    /// faults, components outside the word-compiled library) run through the
    /// event-driven kernel. Classifications, journals and reports are
    /// byte-identical to an event-driven campaign at any worker width; the
    /// only journal difference is the "batch_lane" provenance key on
    /// word-simulated lines. Composes with fault collapsing (representatives
    /// batch, members expand), journal resume and the worker pool. Per-run
    /// watchdog budgets disable batching for the campaign (a shared word run
    /// cannot meter per-fault budgets), as does fork-from-golden cadence
    /// (checkpointed prefixes are event-kernel snapshots). By default
    /// (unset) the GFI_BATCH environment variable decides ("1"/non-empty =
    /// on); setBatchBackend beats the environment either way.
    void setBatchBackend(bool on) noexcept { batchMode_ = on ? 1 : -1; }
    [[nodiscard]] bool batchBackendEnabled() const;

    /// When disabled, diagnostics.wallSeconds, checkpointTime and
    /// resimulatedTime are recorded as 0 so journals and reports are
    /// byte-stable across runs, worker counts and fork-from-golden modes
    /// (the wall clock is nondeterministic; the checkpoint fields depend on
    /// the configured cadence). Default: enabled.
    void setRecordTiming(bool on) noexcept { recordTiming_ = on; }
    [[nodiscard]] bool recordTiming() const noexcept { return recordTiming_; }

    /// Live outcome counts of the campaign in flight: committed runs only,
    /// restored-from-journal entries included. Safe to poll from any thread
    /// while run() executes.
    [[nodiscard]] std::map<Outcome, int> liveHistogram() const;

    /// Committed-run count of the campaign in flight (see liveHistogram).
    [[nodiscard]] std::size_t completedRuns() const;

    /// Enables/disables run()'s static-analysis phase (default: enabled).
    void setPreflight(bool on) noexcept { preflight_ = on; }
    [[nodiscard]] bool preflightEnabled() const noexcept { return preflight_; }

    /// The report run()'s preflight phase gates on: design lint of the
    /// golden testbench (built, not simulated) plus fault-list validation.
    [[nodiscard]] lint::Report preflightReport(const std::vector<fault::FaultSpec>& faults);

    /// The golden testbench (valid after runGolden); exposes golden traces.
    [[nodiscard]] const fault::Testbench& golden() const;

    /// Builds a throwaway testbench (target enumeration for fault lists).
    [[nodiscard]] std::unique_ptr<fault::Testbench> makeTestbench() const { return factory_(); }

    /// The tolerance in use.
    [[nodiscard]] const Tolerance& tolerance() const noexcept { return tolerance_; }

    /// Adjusts the analog tolerance (ablation sweeps re-classify with this).
    void setTolerance(Tolerance t) { tolerance_ = t; }

    /// Per-run watchdog budgets (default: unlimited).
    void setWatchdogConfig(WatchdogConfig c) noexcept { watchdogConfig_ = c; }
    [[nodiscard]] const WatchdogConfig& watchdogConfig() const noexcept
    {
        return watchdogConfig_;
    }

    /// Retry policy for abnormal runs (default: single attempt).
    void setRetryPolicy(RetryPolicy p) noexcept { retryPolicy_ = p; }
    [[nodiscard]] const RetryPolicy& retryPolicy() const noexcept { return retryPolicy_; }

    /// Enables the JSONL campaign journal (empty path disables). run() then
    /// checkpoints each result as it completes and resumes from an existing
    /// journal, so an interrupted campaign loses at most one run.
    void setJournalPath(std::string path) { journalPath_ = std::move(path); }
    [[nodiscard]] const std::string& journalPath() const noexcept { return journalPath_; }

    /// Attaches a telemetry sink (not owned; must outlive run()). run() then
    /// records campaign metrics into its registry, emits Chrome-trace spans
    /// when tracing is enabled, and embeds per-run kernel deltas into the
    /// journal so a resumed campaign reproduces the same metric counts.
    /// Without a sink, run() consults the GFI_TRACE / GFI_METRICS environment
    /// variables and, when either is set, builds a campaign-owned sink and
    /// flushes it to the named files at the end. No sink and no environment:
    /// every instrumentation site is a null-check no-op and all outputs are
    /// byte-identical to an unobserved campaign.
    void setTelemetry(obs::Telemetry& telemetry) noexcept { telemetry_ = &telemetry; }
    [[nodiscard]] obs::Telemetry* telemetry() const noexcept { return telemetry_; }

    /// Enables flight-recorder forensics: every contained attempt runs with a
    /// bounded kernel-event ring attached, and any attempt that ends
    /// abnormally (SimError/Timeout/Diverged) dumps its last-N window into
    /// @p dir as "<dir>/run-<fault-hash>-a<attempt>.jsonl" plus a
    /// Perfetto-loadable "....trace.json"; diagnostics.forensic then names
    /// the artifact stem and the journal line carries a "forensic" key.
    /// Events hold simulated time and kernel counters only, so the artifacts
    /// are byte-identical across reruns and worker widths. An explicit empty
    /// @p dir disables; unset, the GFI_FORENSICS environment variable (a
    /// directory path) decides. A failed dump warns on stderr and leaves the
    /// run classified — forensics never turn a data point into a crash.
    void setForensics(std::string dir)
    {
        forensicsDir_ = std::move(dir);
        forensicsSet_ = true;
    }
    [[nodiscard]] std::string forensicsDir() const;

    /// Ring capacity of the per-run flight recorder (the "last N" window).
    void setForensicsCapacity(std::size_t events) noexcept
    {
        forensicsCapacity_ = events > 0 ? events : 1;
    }
    [[nodiscard]] std::size_t forensicsCapacity() const noexcept { return forensicsCapacity_; }

    /// Attaches a live progress sink: run() then emits one NDJSON line per
    /// event — a "start" line before the worker phase, "heartbeat" lines from
    /// the ordered-commit path at most every @p cadenceSeconds (<= 0 = every
    /// commit, deterministic for tests), and a final "done" line. Counts are
    /// cumulative over the whole campaign including journal-restored runs, so
    /// a resumed campaign reports restored + new, never from zero; the
    /// throughput/ETA fields are computed from newly executed runs only, and
    /// are omitted (with elapsed_s pinned to 0) when setRecordTiming(false)
    /// keeps the stream byte-deterministic. The sink is called from inside
    /// the ordered commit — keep it fast; an empty function detaches.
    void setProgressSink(std::function<void(const std::string&)> sink,
                         double cadenceSeconds = 1.0)
    {
        progressSink_ = std::move(sink);
        progressCadence_ = cadenceSeconds;
    }

    /// Re-classifies a finished faulty testbench against the golden traces
    /// (used by tolerance-sweep ablations without re-simulating).
    [[nodiscard]] RunResult classify(fault::Testbench& tb, const fault::FaultSpec& fault) const;

private:
    /// One contained attempt: build, arm, run under the watchdog, classify.
    RunResult attemptOne(const fault::FaultSpec& fault, int attempt);

    /// runOne() minus the golden-run bootstrap — the worker entry point:
    /// requires runGolden() to have completed, touches only run-local state
    /// plus the read-only golden reference.
    RunResult runContained(const fault::FaultSpec& fault);

    /// Resolves the fork-from-golden cadence: the explicit setting when
    /// positive, else GFI_CHECKPOINT (seconds), else 0 (disabled).
    [[nodiscard]] SimTime effectiveCheckpointCadence() const;

    /// The sink instrumentation sites use: the attached one, else the
    /// environment-built one while run() executes, else nullptr (no-op).
    [[nodiscard]] obs::Telemetry* activeTelemetry() const noexcept
    {
        return telemetry_ != nullptr ? telemetry_ : envTelemetry_.get();
    }

    /// Applies one committed run to the metrics registry (outcome/attempt
    /// counters, kernel-probe deltas, fork savings). Called in commit order;
    /// only counter/gauge folds, so totals are worker-width invariant.
    void recordRunMetrics(const RunResult& r);

    fault::TestbenchFactory factory_;
    Tolerance tolerance_;
    WatchdogConfig watchdogConfig_;
    RetryPolicy retryPolicy_;
    std::string journalPath_;
    unsigned workers_ = 0;        ///< 0 = auto (GFI_JOBS / hardware_concurrency)
    unsigned activeWorkers_ = 1;  ///< resolved count while run() executes
    bool recordTiming_ = true;
    bool preflight_ = true;
    bool goldenRan_ = false;
    SimTime checkpointCadence_ = 0; ///< 0 = GFI_CHECKPOINT env, negative = off
    int collapseMode_ = 0;          ///< 0 = GFI_COLLAPSE env, 1 = on, -1 = off
    int batchMode_ = 0;             ///< 0 = GFI_BATCH env, 1 = on, -1 = off
    std::unique_ptr<fault::Testbench> golden_;
    std::map<std::string, std::uint64_t> goldenState_;
    snapshot::CheckpointStore checkpoints_; ///< golden snapshots, fork mode only
    obs::Telemetry* telemetry_ = nullptr;   ///< attached sink (not owned)
    std::unique_ptr<obs::Telemetry> envTelemetry_; ///< GFI_TRACE/GFI_METRICS sink
    snapshot::CheckpointStore::Stats statsApplied_; ///< store stats already billed
    std::string forensicsDir_;        ///< flight-recorder dump directory
    bool forensicsSet_ = false;       ///< explicit setting beats GFI_FORENSICS
    std::size_t forensicsCapacity_ = 0; ///< 0 = FlightRecorder default
    std::function<void(const std::string&)> progressSink_; ///< NDJSON consumer
    double progressCadence_ = 1.0;    ///< min seconds between heartbeats

    mutable std::mutex liveMutex_;           ///< guards the live counters
    std::map<Outcome, int> liveHistogram_;   ///< committed-run outcome counts
    std::size_t liveCompleted_ = 0;          ///< committed-run total
};

} // namespace gfi::campaign
