#pragma once
// Testbench: one self-contained, instrumented simulation instance.
//
// A fault-injection campaign needs a *fresh* circuit per run (the paper's
// flow re-runs the instrumented description once per fault). A Testbench
// bundles the mixed simulator, the trace recorder, the saboteur/mutant/
// parameter registries the injector addresses by name, and the observation
// configuration (which signals/nodes/states the classifier compares).

#include "ams/mixed_sim.hpp"
#include "core/fault.hpp"
#include "core/saboteur.hpp"
#include "digital/fsm.hpp"
#include "trace/trace.hpp"

#include <functional>
#include <map>
#include <memory>

namespace gfi::fault {

/// An instrumented design instance plus its observation configuration.
class Testbench {
public:
    Testbench()
        : sim_(std::make_unique<ams::MixedSimulator>()),
          recorder_(std::make_unique<trace::Recorder>(*sim_))
    {
    }
    virtual ~Testbench() = default;
    Testbench(const Testbench&) = delete;
    Testbench& operator=(const Testbench&) = delete;

    /// The simulator (build the circuit through this).
    [[nodiscard]] ams::MixedSimulator& sim() noexcept { return *sim_; }
    [[nodiscard]] const ams::MixedSimulator& sim() const noexcept { return *sim_; }

    /// The trace recorder.
    [[nodiscard]] trace::Recorder& recorder() noexcept { return *recorder_; }
    [[nodiscard]] const trace::Recorder& recorder() const noexcept { return *recorder_; }

    /// Constructs an arbitrary helper object (bridge, driver, ...) owned by
    /// this testbench — it is destroyed with the testbench.
    template <typename T, typename... Args>
    T& make(Args&&... args)
    {
        auto obj = std::make_shared<T>(std::forward<Args>(args)...);
        T& ref = *obj;
        held_.push_back(std::move(obj));
        return ref;
    }

    // --- injection-target registries --------------------------------------

    /// Registers an analog current saboteur under its component name.
    void addCurrentSaboteur(CurrentSaboteur& s) { currentSaboteurs_[s.name()] = &s; }

    /// Registers a digital saboteur under its component name.
    void addDigitalSaboteur(DigitalSaboteur& s) { digitalSaboteurs_[s.name()] = &s; }

    /// Registers an FSM for transition-fault injection.
    void addFsm(digital::TableFsm& f) { fsms_[f.name()] = &f; }

    /// Registers a named parametric-fault setter (factor 1.0 = nominal).
    void addParameter(const std::string& name, std::function<void(double)> setter)
    {
        parameters_[name] = std::move(setter);
    }

    [[nodiscard]] CurrentSaboteur* findCurrentSaboteur(const std::string& name) const
    {
        const auto it = currentSaboteurs_.find(name);
        return it == currentSaboteurs_.end() ? nullptr : it->second;
    }
    [[nodiscard]] DigitalSaboteur* findDigitalSaboteur(const std::string& name) const
    {
        const auto it = digitalSaboteurs_.find(name);
        return it == digitalSaboteurs_.end() ? nullptr : it->second;
    }
    [[nodiscard]] digital::TableFsm* findFsm(const std::string& name) const
    {
        const auto it = fsms_.find(name);
        return it == fsms_.end() ? nullptr : it->second;
    }
    [[nodiscard]] const std::function<void(double)>* findParameter(const std::string& name) const
    {
        const auto it = parameters_.find(name);
        return it == parameters_.end() ? nullptr : &it->second;
    }

    /// Names of all registered current saboteurs (campaign target lists).
    [[nodiscard]] std::vector<std::string> currentSaboteurNames() const
    {
        std::vector<std::string> names;
        for (const auto& [name, ptr] : currentSaboteurs_) {
            names.push_back(name);
        }
        return names;
    }

    /// Names of all registered digital saboteurs.
    [[nodiscard]] std::vector<std::string> digitalSaboteurNames() const
    {
        std::vector<std::string> names;
        for (const auto& [name, ptr] : digitalSaboteurs_) {
            names.push_back(name);
        }
        return names;
    }

    // --- observation configuration ----------------------------------------

    /// Marks a digital signal as a compared output (records its trace).
    void observeDigital(const std::string& signalName)
    {
        recorder_->recordDigital(signalName);
        observedDigital_.push_back(signalName);
    }

    /// Marks an analog node as a compared output (records its waveform).
    void observeAnalog(const std::string& nodeName)
    {
        recorder_->recordAnalog(nodeName);
        observedAnalog_.push_back(nodeName);
    }

    /// Marks a state element (instrumentation hook) for end-of-run latent
    /// comparison.
    void observeState(const std::string& hookName) { observedState_.push_back(hookName); }

    /// Marks every registered state element for latent comparison.
    void observeAllState()
    {
        for (const std::string& name : sim_->digital().instrumentation().names()) {
            observedState_.push_back(name);
        }
    }

    [[nodiscard]] const std::vector<std::string>& observedDigital() const noexcept
    {
        return observedDigital_;
    }
    [[nodiscard]] const std::vector<std::string>& observedAnalog() const noexcept
    {
        return observedAnalog_;
    }
    [[nodiscard]] const std::vector<std::string>& observedState() const noexcept
    {
        return observedState_;
    }

    // --- execution ----------------------------------------------------------

    /// Sets how long the experiment runs.
    void setDuration(SimTime t) { duration_ = t; }
    [[nodiscard]] SimTime duration() const noexcept { return duration_; }

    /// Runs the experiment (default: run the mixed simulation to duration()).
    virtual void run() { sim_->run(duration_); }

private:
    std::unique_ptr<ams::MixedSimulator> sim_;
    std::unique_ptr<trace::Recorder> recorder_;
    std::vector<std::shared_ptr<void>> held_;
    std::map<std::string, CurrentSaboteur*> currentSaboteurs_;
    std::map<std::string, DigitalSaboteur*> digitalSaboteurs_;
    std::map<std::string, digital::TableFsm*> fsms_;
    std::map<std::string, std::function<void(double)>> parameters_;
    std::vector<std::string> observedDigital_;
    std::vector<std::string> observedAnalog_;
    std::vector<std::string> observedState_;
    SimTime duration_ = kMicrosecond;
};

/// Builds a fresh testbench instance; campaigns call this once per run.
using TestbenchFactory = std::function<std::unique_ptr<Testbench>()>;

/// Arms @p fault on @p tb (schedules the injection); throws
/// std::invalid_argument when the fault's target is not registered.
void armFault(Testbench& tb, const FaultSpec& fault);

} // namespace gfi::fault
