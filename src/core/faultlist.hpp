#pragma once
// Fault-list generation: turns an instrumented testbench into the campaign's
// fault population — exhaustively, by sweep, or by reproducible random
// sampling (statistical fault injection).
//
// The paper's "campaign definition" step is exactly this: "the designer
// provides all the information required for the fault injection". These
// helpers enumerate the instrumentation registry (mutant targets), the
// saboteur registries (interconnect and analog node targets) and combine
// them with injection-time and pulse-parameter ranges.

#include "core/testbench.hpp"
#include "util/rng.hpp"

namespace gfi::fault {

/// All single-bit SEU flips of every registered state element, at each time.
[[nodiscard]] std::vector<FaultSpec> allBitFlips(const Testbench& tb,
                                                 const std::vector<SimTime>& times);

/// @p count random single-bit flips uniformly over (element, bit, time) with
/// time uniform in [window.first, window.second]. Deterministic under @p rng.
[[nodiscard]] std::vector<FaultSpec> randomBitFlips(const Testbench& tb, int count,
                                                    std::pair<SimTime, SimTime> window,
                                                    Rng& rng);

/// Adjacent double-bit upsets (MBU model): flips bits (i, i+1) of every
/// multi-bit element, at each time. Models the growing multi-cell upset rate
/// of dense technologies (the trend the paper's introduction describes).
[[nodiscard]] std::vector<FaultSpec> adjacentDoubleFlips(const Testbench& tb,
                                                         const std::vector<SimTime>& times);

/// SET pulses through every digital saboteur: times x widths.
[[nodiscard]] std::vector<FaultSpec> allSetPulses(const Testbench& tb,
                                                  const std::vector<SimTime>& times,
                                                  const std::vector<SimTime>& widths);

/// Current pulses through every (or the named subset of) analog saboteurs:
/// targets x times x shapes.
[[nodiscard]] std::vector<FaultSpec> currentPulseSweep(
    const std::vector<std::string>& saboteurs, const std::vector<double>& timesSeconds,
    const std::vector<std::shared_ptr<const PulseShape>>& shapes);

/// @p count random current pulses: uniform target, uniform time in the
/// window, trapezoid with log-uniform amplitude in [paMin, paMax] and
/// width in [pwMin, pwMax] (RT = FT = PW/3, the paper's Figure 8 style).
[[nodiscard]] std::vector<FaultSpec> randomCurrentPulses(
    const std::vector<std::string>& saboteurs, int count,
    std::pair<double, double> windowSeconds, std::pair<double, double> paRange,
    std::pair<double, double> pwRange, Rng& rng);

/// Removes exact duplicates (same describe() string — random generators and
/// concatenated sweeps can repeat a spec), keeping the first occurrence of
/// each fault in list order. Golden entries dedupe like any other spec.
[[nodiscard]] std::vector<FaultSpec> dedupe(std::vector<FaultSpec> faults);

} // namespace gfi::fault
