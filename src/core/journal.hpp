#pragma once
// Campaign journal: a JSONL checkpoint of classified runs. The runner appends
// one line per completed RunResult (flushed immediately, so a killed campaign
// loses at most the run in flight) and resumes by loading the journal and
// skipping every fault whose (index, description) pair is already classified.
//
// A journal line stores the classification and diagnostics, not the FaultSpec
// itself: on resume the FaultSpec is taken from the *current* fault list and
// validated against the recorded description, so a journal can never replay
// results onto a different fault list unnoticed.

#include "core/campaign.hpp"

#include <cstdio>
#include <mutex>
#include <optional>

namespace gfi::campaign {

/// One parsed journal line.
struct JournalEntry {
    std::size_t index = 0;        ///< position in the campaign fault list
    std::string faultDescription; ///< fault::describe() at write time
    RunResult result;             ///< fault field is left golden; the resumer
                                  ///< re-attaches the FaultSpec from its list
};

/// Append-mode writer plus loader for campaign checkpoints.
class CampaignJournal {
public:
    /// Opens @p path for appending (creates it if missing). Throws
    /// std::runtime_error when the file cannot be opened.
    explicit CampaignJournal(std::string path);
    ~CampaignJournal();
    CampaignJournal(const CampaignJournal&) = delete;
    CampaignJournal& operator=(const CampaignJournal&) = delete;

    /// Appends one classified run and flushes the line to disk. Thread-safe:
    /// concurrent appends serialize behind an internal mutex, so every
    /// journal line is written whole — a torn interleaving would poison the
    /// checkpoint for resume.
    void append(std::size_t index, const RunResult& result);

    /// The journal file path.
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

    /// When enabled, appended lines carry the run's kernel-probe deltas in a
    /// "probes" object, so a resumed campaign can rebuild the same telemetry
    /// counts from restored entries. Off by default: without a telemetry sink
    /// the line format stays byte-identical to pre-observability journals.
    void setEmbedProbes(bool on) noexcept { embedProbes_ = on; }
    [[nodiscard]] bool embedProbes() const noexcept { return embedProbes_; }

    /// Renders one journal line (without trailing newline). With
    /// @p embedProbes the line gains a "probes" object when the result
    /// carries a valid probe snapshot.
    [[nodiscard]] static std::string entryToJson(std::size_t index, const RunResult& result,
                                                 bool embedProbes = false);

    /// Parses one journal line; std::nullopt on malformed input.
    [[nodiscard]] static std::optional<JournalEntry> parseLine(const std::string& line);

    /// What loadWithStats() found: the well-formed entries plus how many
    /// non-empty lines failed to parse (torn by a kill mid-append, or
    /// corrupted on disk) and were skipped.
    struct LoadResult {
        std::vector<JournalEntry> entries;
        std::size_t skippedLines = 0;
    };

    /// Loads every well-formed entry of @p path; empty when the file does not
    /// exist. Later duplicates of an index win (a retried/rewritten run).
    /// Unparseable lines are skipped but counted, so a resume can tell a
    /// clean journal from a lossy one.
    [[nodiscard]] static LoadResult loadWithStats(const std::string& path);

    /// loadWithStats() without the skip count (compatibility shorthand).
    [[nodiscard]] static std::vector<JournalEntry> load(const std::string& path);

private:
    std::mutex mutex_;
    std::string path_;
    std::FILE* file_ = nullptr;
    bool embedProbes_ = false;
};

/// Rebuilds a complete CampaignReport from journal @p entries covering the
/// whole of @p faults: every index 0..faults.size()-1 must be present (later
/// duplicates win) with a description matching the fault at that index, which
/// is then re-attached. The restored runs are indistinguishable from a live
/// campaign (fromJournal is cleared), so a report rebuilt from a verified
/// store entry renders byte-identically to the run that produced it. Throws
/// std::runtime_error on a missing index or a description mismatch.
[[nodiscard]] CampaignReport reportFromEntries(const std::vector<fault::FaultSpec>& faults,
                                               const std::vector<JournalEntry>& entries);

} // namespace gfi::campaign
