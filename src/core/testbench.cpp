#include "core/testbench.hpp"

#include <stdexcept>

namespace gfi::fault {

namespace {

[[noreturn]] void unknownTarget(const char* kind, const std::string& name)
{
    throw std::invalid_argument(std::string("armFault: unknown ") + kind + " '" + name + "'");
}

struct Armer {
    Testbench& tb;

    void operator()(const std::monostate&) const {} // golden run: nothing to arm

    void operator()(const BitFlipFault& f) const
    {
        auto& reg = tb.sim().digital().instrumentation();
        if (!reg.contains(f.target)) {
            unknownTarget("state element", f.target);
        }
        const digital::StateHook& hook = reg.hook(f.target);
        const int bit = f.bit;
        tb.sim().digital().scheduler().scheduleAction(f.time,
                                                      [&hook, bit] { hook.flipBit(bit); });
    }

    void operator()(const DoubleBitFlipFault& f) const
    {
        auto& reg = tb.sim().digital().instrumentation();
        if (!reg.contains(f.target)) {
            unknownTarget("state element", f.target);
        }
        const digital::StateHook& hook = reg.hook(f.target);
        const int bitA = f.bitA;
        const int bitB = f.bitB;
        tb.sim().digital().scheduler().scheduleAction(f.time, [&hook, bitA, bitB] {
            hook.flipBit(bitA);
            hook.flipBit(bitB);
        });
    }

    void operator()(const StateWriteFault& f) const
    {
        auto& reg = tb.sim().digital().instrumentation();
        if (!reg.contains(f.target)) {
            unknownTarget("state element", f.target);
        }
        const digital::StateHook& hook = reg.hook(f.target);
        const std::uint64_t value = f.value;
        tb.sim().digital().scheduler().scheduleAction(f.time,
                                                      [&hook, value] { hook.set(value); });
    }

    void operator()(const FsmTransitionFault& f) const
    {
        digital::TableFsm* fsm = tb.findFsm(f.target);
        if (fsm == nullptr) {
            unknownTarget("FSM", f.target);
        }
        const int state = f.forcedState;
        tb.sim().digital().scheduler().scheduleAction(
            f.time, [fsm, state] { fsm->corruptNextTransition(state); });
    }

    void operator()(const DigitalPulseFault& f) const
    {
        DigitalSaboteur* sab = tb.findDigitalSaboteur(f.saboteur);
        if (sab == nullptr) {
            unknownTarget("digital saboteur", f.saboteur);
        }
        sab->injectPulse(f.time, f.width);
    }

    void operator()(const StuckAtFault& f) const
    {
        DigitalSaboteur* sab = tb.findDigitalSaboteur(f.saboteur);
        if (sab == nullptr) {
            unknownTarget("digital saboteur", f.saboteur);
        }
        sab->injectStuckAt(f.time, f.value, f.duration);
    }

    void operator()(const CurrentPulseFault& f) const
    {
        CurrentSaboteur* sab = tb.findCurrentSaboteur(f.saboteur);
        if (sab == nullptr) {
            unknownTarget("current saboteur", f.saboteur);
        }
        if (!f.shape) {
            throw std::invalid_argument("armFault: current pulse without a shape");
        }
        sab->arm(f.timeSeconds, *f.shape);
    }

    void operator()(const ParametricFault& f) const
    {
        const auto* setter = tb.findParameter(f.parameter);
        if (setter == nullptr) {
            unknownTarget("parameter", f.parameter);
        }
        const double factor = f.factor;
        auto& simRef = tb.sim();
        auto apply = [setter, factor, &simRef] {
            (*setter)(factor);
            if (simRef.elaborated()) {
                simRef.solver().markDiscontinuity();
            }
        };
        if (f.time == 0) {
            apply(); // present from elaboration (process-variation style)
        } else {
            simRef.digital().scheduler().scheduleAction(f.time, apply);
        }
    }
};

} // namespace

void armFault(Testbench& tb, const FaultSpec& fault)
{
    std::visit(Armer{tb}, fault);
}

} // namespace gfi::fault
