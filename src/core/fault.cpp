#include "core/fault.hpp"

#include "util/units.hpp"

namespace gfi::fault {

namespace {

struct Describer {
    std::string operator()(const std::monostate&) const { return "golden (no fault)"; }
    std::string operator()(const BitFlipFault& f) const
    {
        return "bit-flip " + f.target + "[" + std::to_string(f.bit) + "] @ " +
               formatTime(f.time);
    }
    std::string operator()(const DoubleBitFlipFault& f) const
    {
        return "double-flip " + f.target + "[" + std::to_string(f.bitA) + "," +
               std::to_string(f.bitB) + "] @ " + formatTime(f.time);
    }
    std::string operator()(const StateWriteFault& f) const
    {
        return "state-write " + f.target + "=" + std::to_string(f.value) + " @ " +
               formatTime(f.time);
    }
    std::string operator()(const FsmTransitionFault& f) const
    {
        return "fsm-transition " + f.target + "->S" + std::to_string(f.forcedState) + " @ " +
               formatTime(f.time);
    }
    std::string operator()(const DigitalPulseFault& f) const
    {
        return "set-pulse " + f.saboteur + " width " + formatTime(f.width) + " @ " +
               formatTime(f.time);
    }
    std::string operator()(const StuckAtFault& f) const
    {
        return "stuck-at-" + std::string(1, digital::toChar(f.value)) + " " + f.saboteur +
               " @ " + formatTime(f.time) +
               (f.duration > 0 ? " for " + formatTime(f.duration) : std::string(" permanent"));
    }
    std::string operator()(const CurrentPulseFault& f) const
    {
        return "current-pulse " + f.saboteur + " " +
               (f.shape ? f.shape->describe() : std::string("<none>")) + " @ " +
               formatSi(f.timeSeconds, "s");
    }
    std::string operator()(const ParametricFault& f) const
    {
        return "parametric " + f.parameter + " x" + formatDouble(f.factor) + " @ " +
               formatTime(f.time);
    }
};

struct TimeGetter {
    SimTime operator()(const std::monostate&) const { return 0; }
    SimTime operator()(const BitFlipFault& f) const { return f.time; }
    SimTime operator()(const DoubleBitFlipFault& f) const { return f.time; }
    SimTime operator()(const StateWriteFault& f) const { return f.time; }
    SimTime operator()(const FsmTransitionFault& f) const { return f.time; }
    SimTime operator()(const DigitalPulseFault& f) const { return f.time; }
    SimTime operator()(const StuckAtFault& f) const { return f.time; }
    SimTime operator()(const CurrentPulseFault& f) const { return fromSeconds(f.timeSeconds); }
    SimTime operator()(const ParametricFault& f) const { return f.time; }
};

} // namespace

std::string describe(const FaultSpec& fault)
{
    return std::visit(Describer{}, fault);
}

SimTime injectionTime(const FaultSpec& fault)
{
    return std::visit(TimeGetter{}, fault);
}

const char* kindOf(const FaultSpec& fault)
{
    struct Kinder {
        const char* operator()(const std::monostate&) const { return "golden"; }
        const char* operator()(const BitFlipFault&) const { return "bit-flip"; }
        const char* operator()(const DoubleBitFlipFault&) const { return "double-bit-flip"; }
        const char* operator()(const StateWriteFault&) const { return "state-write"; }
        const char* operator()(const FsmTransitionFault&) const { return "fsm-transition"; }
        const char* operator()(const DigitalPulseFault&) const { return "digital-pulse"; }
        const char* operator()(const StuckAtFault&) const { return "stuck-at"; }
        const char* operator()(const CurrentPulseFault&) const { return "current-pulse"; }
        const char* operator()(const ParametricFault&) const { return "parametric"; }
    };
    return std::visit(Kinder{}, fault);
}

} // namespace gfi::fault
