#include "core/pulse.hpp"

#include "util/units.hpp"

#include <cmath>
#include <stdexcept>

namespace gfi::fault {

// ---------------------------------------------------------------------------
// TrapezoidPulse

TrapezoidPulse::TrapezoidPulse(double amplitude, double riseTime, double fallTime, double width)
    : amplitude_(amplitude), rise_(riseTime), fall_(fallTime), width_(width)
{
    if (riseTime < 0.0 || fallTime < 0.0 || width <= 0.0) {
        throw std::invalid_argument("TrapezoidPulse: negative edge time or non-positive width");
    }
    if (riseTime + fallTime > width * (1.0 + 1e-9)) {
        throw std::invalid_argument("TrapezoidPulse: RT + FT exceeds PW");
    }
}

double TrapezoidPulse::current(double t) const
{
    if (t <= 0.0 || t >= width_) {
        return 0.0;
    }
    if (t < rise_) {
        return amplitude_ * t / rise_;
    }
    if (t <= width_ - fall_) {
        return amplitude_;
    }
    return amplitude_ * (width_ - t) / fall_;
}

double TrapezoidPulse::charge() const
{
    // Trapezoid area: plateau plus both triangular edges.
    const double plateau = width_ - rise_ - fall_;
    return amplitude_ * (plateau + 0.5 * (rise_ + fall_));
}

std::vector<double> TrapezoidPulse::corners() const
{
    return {0.0, rise_, width_ - fall_, width_};
}

std::string TrapezoidPulse::describe() const
{
    return "trapezoid(PA=" + formatSi(amplitude_, "A") + ", RT=" + formatSi(rise_, "s") +
           ", FT=" + formatSi(fall_, "s") + ", PW=" + formatSi(width_, "s") + ")";
}

// ---------------------------------------------------------------------------
// DoubleExpPulse

DoubleExpPulse::DoubleExpPulse(double i0, double tauRise, double tauFall)
    : i0_(i0), tauRise_(tauRise), tauFall_(tauFall)
{
    if (tauRise <= 0.0 || tauFall <= tauRise) {
        throw std::invalid_argument("DoubleExpPulse: need 0 < tauRise < tauFall");
    }
}

double DoubleExpPulse::current(double t) const
{
    if (t <= 0.0) {
        return 0.0;
    }
    return i0_ * (std::exp(-t / tauFall_) - std::exp(-t / tauRise_));
}

double DoubleExpPulse::duration() const
{
    // The tail is below ~0.005% of I0 after 10 fall time constants.
    return 10.0 * tauFall_;
}

double DoubleExpPulse::peakTime() const
{
    return tauRise_ * tauFall_ / (tauFall_ - tauRise_) * std::log(tauFall_ / tauRise_);
}

double DoubleExpPulse::peak() const
{
    return current(peakTime());
}

std::vector<double> DoubleExpPulse::corners() const
{
    // Smooth waveform: only the start and the effective end, plus the peak
    // neighbourhood so the integrator resolves it.
    return {0.0, peakTime(), duration()};
}

std::string DoubleExpPulse::describe() const
{
    return "doubleExp(I0=" + formatSi(i0_, "A") + ", tauR=" + formatSi(tauRise_, "s") +
           ", tauF=" + formatSi(tauFall_, "s") + ")";
}

// ---------------------------------------------------------------------------
// Fits (Figure 1b)

TrapezoidPulse fitTrapezoid(const DoubleExpPulse& p)
{
    const double pa = p.peak();
    const double rt = p.peakTime();
    const double q = p.charge();
    // Conserve charge with a triangle: Q = PA*RT/2 + PA*FT/2.
    double ft = 2.0 * q / pa - rt;
    if (ft < rt) {
        ft = rt; // degenerate (very symmetric pulse): keep a valid shape
    }
    return TrapezoidPulse(pa, rt, ft, rt + ft);
}

DoubleExpPulse fitDoubleExp(const TrapezoidPulse& p)
{
    // Keep the rise comparable: the double-exponential reaches its peak near
    // the trapezoid's rise corner.
    const double q = p.charge();
    const double peak = p.amplitude();

    // Solve for (tauR, tauF) such that peakTime(tauR, tauF) = RT and the
    // peak-current/charge ratio matches: Q = I0 (tauF - tauR) with
    // I0 = peak / k(tauR, tauF). Single unknown after fixing the ratio
    // r = tauF / tauR: peakTime = tauR * r/(r-1) * ln r, so tauR follows from
    // RT once r is chosen; r itself is solved by bisection on the charge.
    const double rt = std::max(p.riseTime(), 1e-15);
    auto chargeForRatio = [&](double r) {
        const double tauR = rt * (r - 1.0) / (r * std::log(r));
        const double tauF = r * tauR;
        // k = peak / I0 at the peak time.
        const double tp = tauR * r / (r - 1.0) * std::log(r);
        const double k = std::exp(-tp / tauF) - std::exp(-tp / tauR);
        const double i0 = peak / k;
        return i0 * (tauF - tauR);
    };

    // Charge grows monotonically with the tail ratio r; bisect.
    double lo = 1.0 + 1e-6;
    double hi = 1e6;
    if (chargeForRatio(hi) < q) {
        hi = 1e9; // extremely long tail needed; extend the bracket
    }
    if (chargeForRatio(lo) > q) {
        // The trapezoid is nearly symmetric and narrow; the shortest valid
        // tail already over-delivers charge. Use the minimal ratio.
        hi = lo * 2.0;
    }
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = std::sqrt(lo * hi); // geometric bisection
        if (chargeForRatio(mid) < q) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    const double r = std::sqrt(lo * hi);
    const double tauR = rt * (r - 1.0) / (r * std::log(r));
    const double tauF = r * tauR;
    const double tp = tauR * r / (r - 1.0) * std::log(r);
    const double k = std::exp(-tp / tauF) - std::exp(-tp / tauR);
    return DoubleExpPulse(peak / k, tauR, tauF);
}

} // namespace gfi::fault
