#include "core/executor.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace gfi::core {

unsigned Executor::defaultWorkers()
{
    if (const char* env = std::getenv("GFI_JOBS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0) {
            return static_cast<unsigned>(v);
        }
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc != 0 ? hc : 1;
}

std::size_t Executor::runInline(std::size_t count, const ProduceFn& produce)
{
    std::size_t committed = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (cancelRequested()) {
            break;
        }
        CommitFn commit = produce(i);
        if (commit) {
            commit();
        }
        ++committed;
    }
    return committed;
}

std::size_t Executor::forEachOrdered(std::size_t count, const ProduceFn& produce)
{
    cancel_.store(false, std::memory_order_relaxed);
    if (count == 0) {
        return 0;
    }
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(effectiveWorkers(), count));
    if (n <= 1) {
        return runInline(count, produce);
    }
    const std::size_t window = window_ != 0 ? window_ : 4u * n;

    // Shared scheduling state. `nextFetch` is the in-order hand-out cursor,
    // `nextCommit` the committed-prefix length, `pending` the reorder buffer.
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t nextFetch = 0;
    std::size_t nextCommit = 0;
    std::map<std::size_t, CommitFn> pending;
    std::exception_ptr firstError;
    bool commitFailed = false;

    auto worker = [&] {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            // Backpressure: wait while the reorder window is full. Poll with
            // a timeout so an external requestCancel() (atomic store only,
            // no notify) is observed promptly.
            while (nextFetch < count && firstError == nullptr && !cancelRequested() &&
                   nextFetch >= nextCommit + window) {
                cv.wait_for(lock, std::chrono::milliseconds(20));
            }
            if (nextFetch >= count || firstError != nullptr || cancelRequested()) {
                return;
            }
            const std::size_t index = nextFetch++;
            lock.unlock();

            CommitFn commit;
            bool failed = false;
            try {
                commit = produce(index);
            } catch (...) {
                failed = true;
                lock.lock();
                if (firstError == nullptr) {
                    firstError = std::current_exception();
                }
            }
            if (!failed) {
                lock.lock();
                pending[index] = std::move(commit);
            }

            // Drain every commit that is now in order. Commits run under the
            // lock: they are cheap (journal line, vector slot, callback) and
            // this serializes them without a dedicated committer thread.
            // A produce failure leaves a gap that stops the drain at the
            // failed index; a commit failure stops committing outright (the
            // journal is likely broken — don't keep writing past the error).
            while (!commitFailed && !pending.empty() &&
                   pending.begin()->first == nextCommit) {
                CommitFn fn = std::move(pending.begin()->second);
                pending.erase(pending.begin());
                if (fn) {
                    try {
                        fn();
                    } catch (...) {
                        if (firstError == nullptr) {
                            firstError = std::current_exception();
                        }
                        commitFailed = true;
                        break;
                    }
                }
                ++nextCommit;
            }
            cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
        t.join();
    }
    if (firstError != nullptr) {
        std::rethrow_exception(firstError);
    }
    return nextCommit;
}

} // namespace gfi::core
