#include "core/faultlist.hpp"

#include <cmath>
#include <set>

namespace gfi::fault {

std::vector<FaultSpec> allBitFlips(const Testbench& tb, const std::vector<SimTime>& times)
{
    std::vector<FaultSpec> out;
    for (const auto& [name, hook] : tb.sim().digital().instrumentation().all()) {
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                out.emplace_back(BitFlipFault{name, bit, t});
            }
        }
    }
    return out;
}

std::vector<FaultSpec> randomBitFlips(const Testbench& tb, int count,
                                      std::pair<SimTime, SimTime> window, Rng& rng)
{
    // Flatten (element, bit) pairs so each BIT is equally likely — larger
    // registers are proportionally bigger targets, like real silicon area.
    std::vector<std::pair<std::string, int>> bits;
    for (const auto& [name, hook] : tb.sim().digital().instrumentation().all()) {
        for (int bit = 0; bit < hook.width; ++bit) {
            bits.emplace_back(name, bit);
        }
    }
    std::vector<FaultSpec> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count && !bits.empty(); ++i) {
        const auto& [name, bit] = bits[rng.below(bits.size())];
        const SimTime t = rng.range(window.first, window.second);
        out.emplace_back(BitFlipFault{name, bit, t});
    }
    return out;
}

std::vector<FaultSpec> adjacentDoubleFlips(const Testbench& tb,
                                           const std::vector<SimTime>& times)
{
    std::vector<FaultSpec> out;
    for (const auto& [name, hook] : tb.sim().digital().instrumentation().all()) {
        for (int bit = 0; bit + 1 < hook.width; ++bit) {
            for (SimTime t : times) {
                out.emplace_back(DoubleBitFlipFault{name, bit, bit + 1, t});
            }
        }
    }
    return out;
}

std::vector<FaultSpec> allSetPulses(const Testbench& tb, const std::vector<SimTime>& times,
                                    const std::vector<SimTime>& widths)
{
    std::vector<FaultSpec> out;
    for (const std::string& sab : tb.digitalSaboteurNames()) {
        for (SimTime t : times) {
            for (SimTime w : widths) {
                out.emplace_back(DigitalPulseFault{sab, t, w});
            }
        }
    }
    return out;
}

std::vector<FaultSpec> currentPulseSweep(
    const std::vector<std::string>& saboteurs, const std::vector<double>& timesSeconds,
    const std::vector<std::shared_ptr<const PulseShape>>& shapes)
{
    std::vector<FaultSpec> out;
    for (const std::string& sab : saboteurs) {
        for (double t : timesSeconds) {
            for (const auto& shape : shapes) {
                out.emplace_back(CurrentPulseFault{sab, t, shape});
            }
        }
    }
    return out;
}

std::vector<FaultSpec> randomCurrentPulses(const std::vector<std::string>& saboteurs,
                                           int count, std::pair<double, double> windowSeconds,
                                           std::pair<double, double> paRange,
                                           std::pair<double, double> pwRange, Rng& rng)
{
    std::vector<FaultSpec> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count && !saboteurs.empty(); ++i) {
        const std::string& sab = saboteurs[rng.below(saboteurs.size())];
        const double t = rng.uniform(windowSeconds.first, windowSeconds.second);
        // Log-uniform sampling spans the decades of particle LET spectra.
        const double pa = std::exp(rng.uniform(std::log(paRange.first), std::log(paRange.second)));
        const double pw = std::exp(rng.uniform(std::log(pwRange.first), std::log(pwRange.second)));
        const double edge = pw / 3.0;
        out.emplace_back(CurrentPulseFault{
            sab, t, std::make_shared<TrapezoidPulse>(pa, edge, edge, pw)});
    }
    return out;
}

std::vector<FaultSpec> dedupe(std::vector<FaultSpec> faults)
{
    std::set<std::string> seen;
    std::vector<FaultSpec> out;
    out.reserve(faults.size());
    for (FaultSpec& f : faults) {
        if (seen.insert(describe(f)).second) {
            out.push_back(std::move(f));
        }
    }
    return out;
}

} // namespace gfi::fault
