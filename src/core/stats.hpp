#pragma once
// Statistical support for sampled fault-injection campaigns.
//
// Exhaustive injection is only feasible for small blocks; realistic campaigns
// sample the fault space and report outcome *rates* with confidence
// intervals. These helpers implement the standard Wilson score interval for
// binomial proportions plus the sample-size planning formula, so campaign
// reports can state "failure rate 12.3 % +/- 2.1 % (95 %)" honestly.

#include "core/campaign.hpp"

#include <mutex>

namespace gfi::campaign {

/// Thread-safe running outcome histogram. CampaignRunner feeds one of these
/// as results commit, so a monitor (progress UI, watchdog process) can poll
/// live counts while a parallel campaign is still executing.
class OutcomeTally {
public:
    /// Counts one classified run.
    void add(Outcome o);

    /// Drops all counts (a runner calls this when a new campaign starts).
    void reset();

    /// Copy of the current histogram.
    [[nodiscard]] std::map<Outcome, int> snapshot() const;

    /// Total runs counted so far.
    [[nodiscard]] int total() const;

private:
    mutable std::mutex mutex_;
    std::map<Outcome, int> counts_;
    int total_ = 0;
};

/// A binomial proportion with its Wilson score confidence interval.
struct Proportion {
    double estimate = 0.0; ///< successes / trials
    double low = 0.0;      ///< interval lower bound
    double high = 0.0;     ///< interval upper bound
    int successes = 0;
    int trials = 0;
};

/// Wilson score interval for @p successes out of @p trials at confidence
/// z (default 1.96 = 95 %). Well-behaved at 0 and N (unlike the normal
/// approximation), which matters for rare failure outcomes.
[[nodiscard]] Proportion wilsonInterval(int successes, int trials, double z = 1.96);

/// Number of samples needed so the half-width of the (worst-case p = 0.5)
/// normal-approximation interval is at most @p halfWidth at confidence z.
[[nodiscard]] int requiredSamples(double halfWidth, double z = 1.96);

/// Outcome-rate statistics over a campaign report.
struct OutcomeRates {
    Proportion silent;
    Proportion latent;
    Proportion transient;
    Proportion failure;

    /// Any-observable-effect rate (non-silent).
    Proportion effective;
};

/// Computes per-outcome Wilson intervals over @p report.
[[nodiscard]] OutcomeRates outcomeRates(const CampaignReport& report, double z = 1.96);

/// Renders the rates as a printable table.
[[nodiscard]] std::string ratesTable(const OutcomeRates& rates);

} // namespace gfi::campaign
