#include "inject/sweep.hpp"

#include "util/table.hpp"
#include "util/units.hpp"

#include <stdexcept>

namespace gfi::inject {

const SupervisorReport& SweepReport::report(duts::HardeningMode mode) const
{
    for (const SweepEntry& e : entries) {
        if (e.mode == mode) {
            return e.report;
        }
    }
    throw std::out_of_range(std::string("SweepReport: no entry for mode ") +
                            duts::toString(mode));
}

campaign::Proportion SweepReport::rate(duts::HardeningMode mode, TargetClass t,
                                       CpuClass c) const
{
    return report(mode).rate(t, c);
}

std::string SweepReport::table() const
{
    TextTable t;
    std::vector<std::string> header{"hardening", "runs"};
    for (CpuClass c : kAllCpuClasses) {
        header.emplace_back(toString(c));
    }
    t.setHeader(header);
    for (const SweepEntry& e : entries) {
        const int all = static_cast<int>(e.report.classes.size());
        std::vector<std::string> row{duts::toString(e.mode), std::to_string(all)};
        for (CpuClass c : kAllCpuClasses) {
            const auto it = e.report.totals.find(c);
            // Shared cell formatter: a zero-sample sweep entry renders "n/a"
            // instead of a degenerate 0% [0, 0] interval.
            row.push_back(formatRateCell(
                campaign::wilsonInterval(it == e.report.totals.end() ? 0 : it->second, all)));
        }
        t.addRow(row);
    }
    return t.str();
}

std::string SweepReport::csv() const
{
    std::string out = "mode,target_class,cpu_class,count,runs,rate,low,high\n";
    for (const SweepEntry& e : entries) {
        std::string perMode = e.report.csv();
        // Drop the per-report header line, prefix each row with the mode.
        const std::size_t firstNl = perMode.find('\n');
        std::size_t pos = firstNl == std::string::npos ? perMode.size() : firstNl + 1;
        while (pos < perMode.size()) {
            const std::size_t nl = perMode.find('\n', pos);
            const std::size_t end = nl == std::string::npos ? perMode.size() : nl;
            out += std::string(duts::toString(e.mode)) + "," +
                   perMode.substr(pos, end - pos) + "\n";
            pos = end + 1;
        }
    }
    return out;
}

std::string SweepReport::json() const
{
    std::string out = "{\"sweep\": [";
    bool first = true;
    for (const SweepEntry& e : entries) {
        if (!first) {
            out += ", ";
        }
        first = false;
        out += std::string("{\"mode\": \"") + duts::toString(e.mode) +
               "\", \"report\": " + e.report.json() + "}";
    }
    out += "]}";
    return out;
}

SweepReport runHardeningSweep(const duts::CpuSystemConfig& base,
                              const std::vector<duts::HardeningMode>& modes,
                              const SweepOptions& options)
{
    SweepReport sweep;
    for (duts::HardeningMode mode : modes) {
        duts::CpuSystemConfig cfg = base;
        cfg.hardening = duts::hardeningPreset(mode);
        InjectionSupervisor supervisor(cfg);
        supervisor.runner().setWorkers(options.workers);
        supervisor.runner().setRecordTiming(options.recordTiming);
        supervisor.runner().setWatchdogConfig(options.watchdog);
        if (options.telemetry != nullptr) {
            supervisor.runner().setTelemetry(*options.telemetry);
        }
        SweepEntry entry;
        entry.mode = mode;
        entry.report = supervisor.run(supervisor.sampleFaults(options.samples, options.seed));
        sweep.entries.push_back(std::move(entry));
    }
    return sweep;
}

} // namespace gfi::inject
