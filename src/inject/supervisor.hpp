#pragma once
// Processor-injection supervisor: architectural SEU campaigns over
// TinyCpu-based systems, à la COAST (ROADMAP open item).
//
// The signal-level campaign engine answers "did the outputs diverge?". For a
// processor that is the wrong question — the software-visible effect of a
// flipped architectural bit is what matters: did the program compute the
// wrong result (silent data corruption), never finish (hang), trip a
// protection mechanism (detected), get transparently repaired (corrected) or
// shrug the upset off entirely (masked)? The supervisor samples (cycle,
// target, bit) triples deterministically, injects through the ordinary
// scheduler/saboteur machinery and derives the architectural verdict purely
// from the journaled RunResult — erredSignals plus the CpuSystemTestbench
// supervisor hooks in corruptedState — so journal resume, parallel ordered
// commits and fork-from-golden execution apply unchanged.

#include "core/campaign.hpp"
#include "core/stats.hpp"
#include "duts/cpu_system.hpp"

#include <array>

namespace gfi::inject {

/// Architectural (software-visible) outcome of one injected run. Layered on
/// top of campaign::Outcome: containment outcomes (SimError / Timeout /
/// Diverged) map to Contained, every normally-completed run gets one of the
/// COAST-style classes.
enum class CpuClass {
    Masked,               ///< program behaved exactly like golden
    Corrected,            ///< golden-identical, but ECC/scrubber had to repair
    Detected,             ///< a protection mechanism raised an error flag
    SilentDataCorruption, ///< wrong OUT stream or wrong memory image, no flag
    Hang,                 ///< the program never reached HLT (no-halt detector)
    Contained             ///< the simulation itself misbehaved (abnormal run)
};

/// Every class, in report order.
inline constexpr std::array<CpuClass, 6> kAllCpuClasses{
    CpuClass::Masked, CpuClass::Corrected, CpuClass::Detected,
    CpuClass::SilentDataCorruption, CpuClass::Hang, CpuClass::Contained};

/// Short name for reports.
[[nodiscard]] const char* toString(CpuClass c);

/// Architectural target classes the supervisor aggregates cross-sections by.
enum class TargetClass {
    Pc,     ///< program counter (control flow)
    Acc,    ///< accumulator (datapath)
    Ctrl,   ///< CPU control state (RUN/HALT FSM)
    Ram,    ///< data-memory words (raw or ECC codewords)
    OutReg, ///< output-port register internals (copies / codeword / plain)
    Other   ///< everything else (supervisor meta-hooks excluded from sampling)
};

/// Target classes that appear in reports, in order.
inline constexpr std::array<TargetClass, 5> kReportTargetClasses{
    TargetClass::Pc, TargetClass::Acc, TargetClass::Ctrl, TargetClass::Ram,
    TargetClass::OutReg};

/// Short name for reports.
[[nodiscard]] const char* toString(TargetClass t);

/// Maps an instrumentation-hook name onto its architectural target class.
[[nodiscard]] TargetClass targetClassOf(const std::string& hookName);

/// Renders one cross-section cell: "count (rate % [low, high])". A class
/// with zero samples has no estimate at all — the Wilson interval is
/// undefined at n = 0 — so it renders "n/a" instead of a degenerate
/// 0% [0, 0] interval. Shared by the supervisor and sweep tables.
[[nodiscard]] std::string formatRateCell(const campaign::Proportion& p);

/// One enumerable injection target of the system.
struct ArchTarget {
    std::string hook; ///< instrumentation-hook name
    int width = 0;    ///< state bits
    TargetClass cls = TargetClass::Other;
};

/// Per-target-class, per-outcome-class cross-section statistics of one
/// supervisor campaign.
struct SupervisorReport {
    campaign::CampaignReport campaign; ///< the underlying signal-level report
    std::vector<CpuClass> classes;     ///< per run, campaign order

    std::map<TargetClass, std::map<CpuClass, int>> byTarget;
    std::map<CpuClass, int> totals;

    /// Recomputes classes / byTarget / totals from `campaign`.
    void rebuild();

    /// Runs recorded against @p t.
    [[nodiscard]] int runsFor(TargetClass t) const;

    /// Cross-section of @p c within target class @p t, with its Wilson
    /// interval (campaign::wilsonInterval).
    [[nodiscard]] campaign::Proportion rate(TargetClass t, CpuClass c,
                                            double z = 1.96) const;

    /// Printable target-class x outcome-class table ("count (rate [CI])").
    [[nodiscard]] std::string table() const;

    /// CSV rows: target_class,cpu_class,count,runs,rate,low,high.
    [[nodiscard]] std::string csv() const;

    /// JSON object with totals and per-target-class rates.
    [[nodiscard]] std::string json() const;
};

/// Runs architectural SEU campaigns over a CpuSystemTestbench configuration.
class InjectionSupervisor {
public:
    explicit InjectionSupervisor(duts::CpuSystemConfig config = {});

    /// The underlying campaign runner: configure workers, journal path,
    /// watchdog, telemetry, fork cadence... before calling run().
    [[nodiscard]] campaign::CampaignRunner& runner() noexcept { return runner_; }

    /// Configuration used.
    [[nodiscard]] const duts::CpuSystemConfig& config() const noexcept { return config_; }

    /// One system clock period.
    [[nodiscard]] SimTime clockPeriod() const;

    /// Time of the golden program's HLT, measured once on a probe run.
    /// Throws std::invalid_argument when the golden program does not halt
    /// before the hang deadline — the taxonomy is undefined for a golden
    /// hang, so it is a configuration error.
    [[nodiscard]] SimTime goldenHaltTime();

    /// Every architectural injection target (supervisor meta-hooks excluded),
    /// in deterministic (sorted-name) order.
    [[nodiscard]] std::vector<ArchTarget> targets() const;

    /// Deterministic seeded sampling of @p n (cycle, target, bit) triples:
    /// the target is weighted by bit count, the cycle is uniform in
    /// [1, golden halt cycle), the injection lands mid-cycle. Same seed, same
    /// fault list — on any platform (util::Rng).
    [[nodiscard]] std::vector<fault::FaultSpec> sampleFaults(std::size_t n,
                                                             std::uint64_t seed);

    /// Exhaustive single-bit flips over one target class, each bit injected
    /// at every time in @p times (cross-section baselines for small classes).
    [[nodiscard]] std::vector<fault::FaultSpec>
    exhaustiveFaults(TargetClass cls, const std::vector<SimTime>& times) const;

    /// Runs the campaign and aggregates the architectural taxonomy. With a
    /// telemetry sink attached to the runner, per-class counters
    /// (gfi_cpu_class_total{class="..."}) are recorded in commit order.
    SupervisorReport run(const std::vector<fault::FaultSpec>& faults);

    /// The architectural verdict of one classified run — a pure function of
    /// the journaled fields, so restored runs classify identically.
    /// Precedence: Contained > Hang > Detected > SDC > Corrected > Masked.
    [[nodiscard]] static CpuClass classifyRun(const campaign::RunResult& r);

private:
    duts::CpuSystemConfig config_;
    campaign::CampaignRunner runner_;
    SimTime goldenHalt_ = -1; ///< lazily measured; -1 = not yet
};

} // namespace gfi::inject
