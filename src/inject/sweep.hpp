#pragma once
// Hardening sweep: the same architectural SEU campaign (same seed, same
// sample count) against every hardening variant of the CPU system, reporting
// per-variant outcome-class cross-sections side by side — the paper's second
// goal ("validate the efficiency of the implemented mechanisms") lifted from
// a single register to a whole processor.

#include "inject/supervisor.hpp"
#include "sim/watchdog.hpp"

namespace gfi::obs {
class Telemetry;
}

namespace gfi::inject {

/// Parameters of a hardening sweep.
struct SweepOptions {
    std::size_t samples = 200;        ///< sampled faults per variant
    std::uint64_t seed = 0x5EEDu;     ///< sampling seed (shared by variants)
    unsigned workers = 0;             ///< CampaignRunner::setWorkers
    bool recordTiming = true;         ///< false = byte-stable reports
    WatchdogConfig watchdog{};        ///< per-run budgets
    obs::Telemetry* telemetry = nullptr; ///< optional sink (not owned)
};

/// One variant's result.
struct SweepEntry {
    duts::HardeningMode mode = duts::HardeningMode::None;
    SupervisorReport report;
};

/// All variants side by side.
struct SweepReport {
    std::vector<SweepEntry> entries;

    /// Convenience lookup (throws std::out_of_range when absent).
    [[nodiscard]] const SupervisorReport& report(duts::HardeningMode mode) const;

    /// Cross-section of @p c within target class @p t for @p mode.
    [[nodiscard]] campaign::Proportion rate(duts::HardeningMode mode, TargetClass t,
                                            CpuClass c) const;

    /// Printable variant x outcome-class comparison table.
    [[nodiscard]] std::string table() const;

    /// CSV rows: mode,target_class,cpu_class,count,runs,rate,low,high.
    [[nodiscard]] std::string csv() const;

    /// JSON object: {"sweep": [{"mode": ..., "report": {...}}, ...]}.
    [[nodiscard]] std::string json() const;
};

/// Runs the supervisor campaign once per mode in @p modes, with
/// @p base.hardening replaced by each mode's preset. Each variant samples its
/// own fault list (the target space differs per variant) from the same seed.
[[nodiscard]] SweepReport runHardeningSweep(const duts::CpuSystemConfig& base,
                                            const std::vector<duts::HardeningMode>& modes,
                                            const SweepOptions& options = {});

} // namespace gfi::inject
