#include "inject/supervisor.hpp"

#include "obs/telemetry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <algorithm>
#include <stdexcept>

namespace gfi::inject {

const char* toString(CpuClass c)
{
    switch (c) {
    case CpuClass::Masked:
        return "masked";
    case CpuClass::Corrected:
        return "corrected";
    case CpuClass::Detected:
        return "detected";
    case CpuClass::SilentDataCorruption:
        return "sdc";
    case CpuClass::Hang:
        return "hang";
    case CpuClass::Contained:
        return "contained";
    }
    return "?";
}

const char* toString(TargetClass t)
{
    switch (t) {
    case TargetClass::Pc:
        return "pc";
    case TargetClass::Acc:
        return "acc";
    case TargetClass::Ctrl:
        return "ctrl";
    case TargetClass::Ram:
        return "ram";
    case TargetClass::OutReg:
        return "outreg";
    case TargetClass::Other:
        return "other";
    }
    return "?";
}

TargetClass targetClassOf(const std::string& hookName)
{
    const auto endsWith = [&hookName](const char* suffix) {
        const std::size_t n = std::string(suffix).size();
        return hookName.size() >= n &&
               hookName.compare(hookName.size() - n, n, suffix) == 0;
    };
    if (hookName.find("/sup/") != std::string::npos) {
        return TargetClass::Other;
    }
    if (endsWith("/pc")) {
        return TargetClass::Pc;
    }
    if (endsWith("/acc")) {
        return TargetClass::Acc;
    }
    if (endsWith("/halt")) {
        return TargetClass::Ctrl;
    }
    if (hookName.find("/ram/w") != std::string::npos) {
        return TargetClass::Ram;
    }
    if (hookName.find("/outreg") != std::string::npos) {
        return TargetClass::OutReg;
    }
    return TargetClass::Other;
}

// ---------------------------------------------------------------------------
// SupervisorReport

void SupervisorReport::rebuild()
{
    classes.clear();
    byTarget.clear();
    totals.clear();
    classes.reserve(campaign.runs.size());
    for (const campaign::RunResult& r : campaign.runs) {
        const CpuClass c = InjectionSupervisor::classifyRun(r);
        classes.push_back(c);
        ++totals[c];
        ++byTarget[targetClassOf(campaign::targetOf(r.fault))][c];
    }
}

int SupervisorReport::runsFor(TargetClass t) const
{
    const auto it = byTarget.find(t);
    if (it == byTarget.end()) {
        return 0;
    }
    int n = 0;
    for (const auto& [cls, count] : it->second) {
        n += count;
    }
    return n;
}

campaign::Proportion SupervisorReport::rate(TargetClass t, CpuClass c, double z) const
{
    const int trials = runsFor(t);
    int successes = 0;
    if (const auto it = byTarget.find(t); it != byTarget.end()) {
        if (const auto jt = it->second.find(c); jt != it->second.end()) {
            successes = jt->second;
        }
    }
    return campaign::wilsonInterval(successes, trials, z);
}

std::string formatRateCell(const campaign::Proportion& p)
{
    if (p.trials == 0) {
        return "n/a";
    }
    return std::to_string(p.successes) + " (" + formatDouble(100.0 * p.estimate, 3) +
           " % [" + formatDouble(100.0 * p.low, 3) + ", " +
           formatDouble(100.0 * p.high, 3) + "])";
}

std::string SupervisorReport::table() const
{
    TextTable t;
    std::vector<std::string> header{"target class", "runs"};
    for (CpuClass c : kAllCpuClasses) {
        header.emplace_back(toString(c));
    }
    t.setHeader(header);
    for (TargetClass tc : kReportTargetClasses) {
        const int runs = runsFor(tc);
        if (runs == 0) {
            continue;
        }
        std::vector<std::string> row{toString(tc), std::to_string(runs)};
        for (CpuClass c : kAllCpuClasses) {
            row.push_back(formatRateCell(rate(tc, c)));
        }
        t.addRow(row);
    }
    t.addSeparator();
    std::vector<std::string> totalRow{"all", std::to_string(classes.size())};
    const int all = static_cast<int>(classes.size());
    for (CpuClass c : kAllCpuClasses) {
        const auto it = totals.find(c);
        totalRow.push_back(
            formatRateCell(campaign::wilsonInterval(it == totals.end() ? 0 : it->second, all)));
    }
    t.addRow(totalRow);
    return t.str();
}

std::string SupervisorReport::csv() const
{
    std::string out = "target_class,cpu_class,count,runs,rate,low,high\n";
    for (TargetClass tc : kReportTargetClasses) {
        const int runs = runsFor(tc);
        if (runs == 0) {
            continue;
        }
        for (CpuClass c : kAllCpuClasses) {
            const campaign::Proportion p = rate(tc, c);
            out += std::string(toString(tc)) + "," + toString(c) + "," +
                   std::to_string(p.successes) + "," + std::to_string(p.trials) + ",";
            if (p.trials == 0) {
                out += "n/a,n/a,n/a\n";
            } else {
                out += formatDouble(p.estimate, 6) + "," + formatDouble(p.low, 6) + "," +
                       formatDouble(p.high, 6) + "\n";
            }
        }
    }
    return out;
}

std::string SupervisorReport::json() const
{
    const auto prop = [](const campaign::Proportion& p) {
        if (p.trials == 0) {
            // No samples: the Wilson interval is undefined, so the estimate
            // fields are null rather than a misleading 0-width interval.
            return std::string("{\"count\": ") + std::to_string(p.successes) +
                   ", \"runs\": 0, \"rate\": null, \"low\": null, \"high\": null}";
        }
        return std::string("{\"count\": ") + std::to_string(p.successes) +
               ", \"runs\": " + std::to_string(p.trials) +
               ", \"rate\": " + formatDouble(p.estimate, 6) +
               ", \"low\": " + formatDouble(p.low, 6) +
               ", \"high\": " + formatDouble(p.high, 6) + "}";
    };
    std::string out = "{\"samples\": " + std::to_string(classes.size()) + ", \"classes\": {";
    const int all = static_cast<int>(classes.size());
    bool first = true;
    for (CpuClass c : kAllCpuClasses) {
        const auto it = totals.find(c);
        if (!first) {
            out += ", ";
        }
        first = false;
        out += std::string("\"") + toString(c) + "\": " +
               prop(campaign::wilsonInterval(it == totals.end() ? 0 : it->second, all));
    }
    out += "}, \"targets\": {";
    first = true;
    for (TargetClass tc : kReportTargetClasses) {
        if (runsFor(tc) == 0) {
            continue;
        }
        if (!first) {
            out += ", ";
        }
        first = false;
        out += std::string("\"") + toString(tc) + "\": {";
        bool firstClass = true;
        for (CpuClass c : kAllCpuClasses) {
            if (!firstClass) {
                out += ", ";
            }
            firstClass = false;
            out += std::string("\"") + toString(c) + "\": " + prop(rate(tc, c));
        }
        out += "}";
    }
    out += "}}";
    return out;
}

// ---------------------------------------------------------------------------
// InjectionSupervisor

InjectionSupervisor::InjectionSupervisor(duts::CpuSystemConfig config)
    : config_(std::move(config)),
      runner_([cfg = config_] { return std::make_unique<duts::CpuSystemTestbench>(cfg); })
{
}

SimTime InjectionSupervisor::clockPeriod() const
{
    return fromSeconds(1.0 / config_.clockHz);
}

SimTime InjectionSupervisor::goldenHaltTime()
{
    if (goldenHalt_ >= 0) {
        return goldenHalt_;
    }
    duts::CpuSystemTestbench probe(config_);
    probe.run();
    if (probe.hangDetected() || !probe.cpu().halted()) {
        throw std::invalid_argument(
            "InjectionSupervisor: the golden program must halt before the hang "
            "deadline (" + formatTime(probe.hangDeadline()) +
            ") — the Hang class is undefined for a program that never halts");
    }
    const auto edges = probe.recorder().digitalTrace("sys/halted").risingEdges();
    goldenHalt_ = edges.empty() ? probe.sim().now() : edges.front();
    return goldenHalt_;
}

std::vector<ArchTarget> InjectionSupervisor::targets() const
{
    const duts::CpuSystemTestbench probe(config_);
    std::vector<ArchTarget> out;
    // Map iteration order = sorted names: deterministic across platforms.
    for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
        const TargetClass cls = targetClassOf(name);
        if (cls == TargetClass::Other) {
            continue; // meta-hooks and non-architectural state
        }
        out.push_back(ArchTarget{name, hook.width, cls});
    }
    return out;
}

std::vector<fault::FaultSpec> InjectionSupervisor::sampleFaults(std::size_t n,
                                                                std::uint64_t seed)
{
    const std::vector<ArchTarget> tgts = targets();
    std::uint64_t totalBits = 0;
    for (const ArchTarget& t : tgts) {
        totalBits += static_cast<std::uint64_t>(t.width);
    }
    if (totalBits == 0) {
        throw std::invalid_argument("InjectionSupervisor: no architectural targets");
    }
    const SimTime period = clockPeriod();
    const auto haltCycle =
        static_cast<std::uint64_t>(std::max<SimTime>(goldenHaltTime() / period, 2));

    Rng rng(seed);
    std::vector<fault::FaultSpec> faults;
    faults.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Target weighted by bit count: every architectural bit is equally
        // likely, which is the physical cross-section model.
        std::uint64_t pick = rng.below(totalBits);
        const ArchTarget* target = &tgts.front();
        for (const ArchTarget& t : tgts) {
            if (pick < static_cast<std::uint64_t>(t.width)) {
                target = &t;
                break;
            }
            pick -= static_cast<std::uint64_t>(t.width);
        }
        const int bit = static_cast<int>(pick);
        // Cycle uniform in [1, golden halt cycle); the flip lands mid-cycle
        // so it never races the capture edge itself.
        const std::uint64_t cycle = 1 + rng.below(haltCycle - 1);
        const SimTime time =
            static_cast<SimTime>(cycle) * period + (period * 37) / 100;
        faults.emplace_back(fault::BitFlipFault{target->hook, bit, time});
    }
    return faults;
}

std::vector<fault::FaultSpec>
InjectionSupervisor::exhaustiveFaults(TargetClass cls,
                                      const std::vector<SimTime>& times) const
{
    std::vector<fault::FaultSpec> faults;
    for (const ArchTarget& t : targets()) {
        if (t.cls != cls) {
            continue;
        }
        for (int bit = 0; bit < t.width; ++bit) {
            for (SimTime time : times) {
                faults.emplace_back(fault::BitFlipFault{t.hook, bit, time});
            }
        }
    }
    return faults;
}

SupervisorReport InjectionSupervisor::run(const std::vector<fault::FaultSpec>& faults)
{
    goldenHaltTime(); // validates the golden program before any injection
    obs::Telemetry* const tel = runner_.telemetry();
    SupervisorReport report;
    report.campaign =
        runner_.run(faults, [tel](std::size_t, const campaign::RunResult& r) {
            if (tel != nullptr) {
                // Commit order, so totals are worker-width invariant.
                tel->metrics()
                    .counter(std::string("gfi_cpu_class_total{class=\"") +
                                 toString(classifyRun(r)) + "\"}",
                             "Architectural CPU outcome classes")
                    .inc();
            }
        });
    report.rebuild();
    return report;
}

CpuClass InjectionSupervisor::classifyRun(const campaign::RunResult& r)
{
    if (campaign::isAbnormal(r.outcome)) {
        return CpuClass::Contained;
    }
    const auto corrupted = [&r](const char* hook) {
        return std::find(r.corruptedState.begin(), r.corruptedState.end(), hook) !=
               r.corruptedState.end();
    };
    if (corrupted(duts::kHangHook)) {
        return CpuClass::Hang;
    }
    if (corrupted(duts::kDetectedHook)) {
        return CpuClass::Detected;
    }
    if (!r.erredSignals.empty() || corrupted(duts::kMemImageHook)) {
        return CpuClass::SilentDataCorruption;
    }
    if (corrupted(duts::kCorrectedHook)) {
        return CpuClass::Corrected;
    }
    return CpuClass::Masked;
}

} // namespace gfi::inject
