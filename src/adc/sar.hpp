#pragma once
// Successive-approximation (SAR) ADC case study.
//
// A mixed-signal block in the truest sense: a digital SAR controller, a
// behavioral DAC (digital-to-voltage bridge with an RC settling network) and
// an analog comparator close a loop across both domains. Faults can be
// injected in the SAR register (digital mutant), on the DAC settling node or
// the input (analog saboteurs) — the paper's unified flow in one component.

#include "core/testbench.hpp"
#include "digital/sequential.hpp"
#include "snapshot/snapshot.hpp"

namespace gfi::adc {

/// Digital SAR controller: one bit decided per clock.
class SarLogic : public digital::Component, public snapshot::Snapshottable {
public:
    /// @param start    begins a conversion at the next rising clock edge.
    /// @param cmp      comparator input (1 when vin > DAC level).
    /// @param dacCode  trial-code bus driving the DAC.
    /// @param result   final conversion result bus.
    /// @param done     high once the conversion has completed.
    SarLogic(digital::Circuit& c, std::string name, digital::LogicSignal& clk,
             digital::LogicSignal& start, digital::LogicSignal& cmp,
             const digital::Bus& dacCode, const digital::Bus& result,
             digital::LogicSignal& done, int bits, SimTime clkToQ = 200 * kPicosecond);

    /// The in-progress trial code.
    [[nodiscard]] std::uint64_t trialCode() const noexcept { return code_; }

    /// True while converting.
    [[nodiscard]] bool busy() const noexcept { return busy_; }

    void captureState(snapshot::Writer& w) const override
    {
        w.u64(code_);
        w.u64(result_);
        w.u64(static_cast<std::uint64_t>(bit_));
        w.boolean(busy_);
        w.boolean(doneFlag_);
    }

    void restoreState(snapshot::Reader& r) override
    {
        code_ = r.u64();
        result_ = r.u64();
        bit_ = static_cast<int>(r.u64());
        busy_ = r.boolean();
        doneFlag_ = r.boolean();
    }

private:
    void drive();

    std::uint64_t code_ = 0;
    std::uint64_t result_ = 0;
    int bit_ = 0;
    bool busy_ = false;
    bool doneFlag_ = false;
    int bits_;
    digital::Bus dacCode_;
    digital::Bus resultBus_;
    digital::LogicSignal* done_;
    SimTime clkToQ_;
};

/// SAR ADC parameters.
struct SarConfig {
    int bits = 8;            ///< resolution
    double vref = 4.0;       ///< DAC full scale (V)
    double clockHz = 2e6;    ///< conversion clock
    double dacSettleR = 1e3; ///< DAC output RC: resistance (ohm)
    double dacSettleC = 10e-12; ///< DAC output RC: capacitance (F)
    std::vector<double> inputLevels{0.5, 1.7, 2.9, 3.6}; ///< staircase test input (V)
    SimTime levelHold = 10 * kMicrosecond; ///< time per staircase level
};

/// The elaborated, instrumented SAR-ADC experiment. Runs one conversion per
/// staircase level and exposes the result bus and done strobe.
class SarAdcTestbench : public fault::Testbench {
public:
    explicit SarAdcTestbench(SarConfig config = {});

    /// Configuration used.
    [[nodiscard]] const SarConfig& config() const noexcept { return config_; }

    /// Result bus.
    [[nodiscard]] const digital::Bus& resultBus() const noexcept { return result_; }

    /// Expected ideal code for an input voltage.
    [[nodiscard]] int idealCode(double vin) const;

private:
    SarConfig config_;
    digital::Bus result_;
};

} // namespace gfi::adc
