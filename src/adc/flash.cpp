#include "adc/flash.hpp"

#include "ams/bridge.hpp"
#include "analog/controlled.hpp"
#include "analog/passive.hpp"
#include "analog/sources.hpp"

namespace gfi::adc {

FlashAdcTestbench::FlashAdcTestbench(FlashConfig config) : config_(config)
{
    auto& dig = sim().digital();
    auto& ana = sim().analog();
    const int levels = (1 << config_.bits) - 1; // comparator count

    // --- analog input -----------------------------------------------------
    const analog::NodeId vin = ana.node("adc/vin");
    ana.add<analog::SineVoltage>(ana, "adc/vin_src", vin, analog::kGround,
                                 config_.inputOffset, config_.inputAmplitude,
                                 config_.inputHz);

    // --- reference ladder ---------------------------------------------------
    const analog::NodeId vref = ana.node("adc/vref");
    ana.add<analog::VoltageSource>(ana, "adc/vref_src", vref, analog::kGround, config_.vref);
    // levels+1 equal resistors create taps at k/(levels+1) * vref.
    const double rUnit = 1e3;
    analog::NodeId below = analog::kGround;
    std::vector<analog::NodeId> taps;
    for (int k = 1; k <= levels; ++k) {
        const analog::NodeId tap = ana.node("adc/tap" + std::to_string(k));
        ana.add<analog::Resistor>(ana, "adc/rl" + std::to_string(k), tap, below, rUnit);
        taps.push_back(tap);
        below = tap;
    }
    ana.add<analog::Resistor>(ana, "adc/rl_top", vref, below, rUnit);

    // --- comparators: thermometer code -------------------------------------
    // Each comparator compares vin against its tap via a unity differential
    // VCVS and a zero-threshold digitizer bridge.
    std::vector<digital::LogicSignal*> thermo;
    for (int k = 0; k < levels; ++k) {
        const analog::NodeId diff = ana.node("adc/diff" + std::to_string(k + 1));
        ana.add<analog::Vcvs>(ana, "adc/cmp_diff" + std::to_string(k + 1), diff,
                              analog::kGround, vin, taps[static_cast<std::size_t>(k)], 1.0);
        auto& t = dig.logicSignal("adc/t" + std::to_string(k + 1), digital::Logic::Zero);
        make<ams::AtoDBridge>(sim(), "adc/cmp" + std::to_string(k + 1), diff, t, 0.0,
                              /*hysteresis=*/0.01);
        thermo.push_back(&t);
    }

    // --- thermometer -> binary encoder (combinational) -----------------------
    digital::Bus rawCode = dig.bus("adc/raw", config_.bits, digital::Logic::Zero);
    std::vector<digital::SignalBase*> sens(thermo.begin(), thermo.end());
    digital::Process& enc = dig.process("adc/encoder",
                [thermo, rawCode] {
                    int ones = 0;
                    for (const digital::LogicSignal* t : thermo) {
                        if (digital::toX01(t->value()) == digital::Logic::One) {
                            ++ones;
                        }
                    }
                    rawCode.scheduleUint(static_cast<std::uint64_t>(ones),
                                         100 * kPicosecond);
                },
                sens);
    dig.noteDrives(enc, digital::busSignals(rawCode));

    // --- sampling clock and output register ----------------------------------
    auto& clk = dig.logicSignal("adc/clk", digital::Logic::Zero);
    dig.add<digital::ClockGen>(dig, "adc/clkgen", clk,
                               fromSeconds(1.0 / config_.clockHz));
    code_ = dig.bus("adc/code", config_.bits, digital::Logic::Zero);
    dig.add<digital::Register>(dig, "adc/code_reg", clk, rawCode, code_);

    // --- instrumentation --------------------------------------------------------
    for (int k = 0; k < levels; ++k) {
        const std::string name = "sab/tap" + std::to_string(k + 1);
        auto& sab =
            ana.add<fault::CurrentSaboteur>(ana, name, taps[static_cast<std::size_t>(k)]);
        addCurrentSaboteur(sab);
        tapSaboteurs_.push_back(name);
    }
    auto& sabVin = ana.add<fault::CurrentSaboteur>(ana, "sab/vin", vin);
    addCurrentSaboteur(sabVin);

    // --- observation -------------------------------------------------------------
    for (int b = 0; b < config_.bits; ++b) {
        observeDigital("adc/code[" + std::to_string(b) + "]");
    }
    observeAnalog("adc/vin");
    observeAllState();
    setDuration(config_.duration);
}

} // namespace gfi::adc
