#include "adc/sar.hpp"

#include "ams/bridge.hpp"
#include "analog/controlled.hpp"
#include "analog/passive.hpp"
#include "analog/sources.hpp"
#include "digital/stimulus.hpp"

#include <algorithm>
#include <cmath>

namespace gfi::adc {

// ---------------------------------------------------------------------------
// SarLogic

SarLogic::SarLogic(digital::Circuit& c, std::string name, digital::LogicSignal& clk,
                   digital::LogicSignal& start, digital::LogicSignal& cmp,
                   const digital::Bus& dacCode, const digital::Bus& result,
                   digital::LogicSignal& done, int bits, SimTime clkToQ)
    : digital::Component(std::move(name)), bits_(bits), dacCode_(dacCode), resultBus_(result),
      done_(&done), clkToQ_(clkToQ)
{
    digital::Process& p = c.process(this->name() + "/seq",
              [this, &clk, &start, &cmp] {
                  if (!digital::risingEdge(clk)) {
                      return;
                  }
                  if (!busy_) {
                      if (digital::toX01(start.value()) == digital::Logic::One) {
                          busy_ = true;
                          doneFlag_ = false;
                          bit_ = bits_ - 1;
                          code_ = 1ull << bit_;
                          drive();
                      }
                      return;
                  }
                  // Decide the current bit from the settled comparator value.
                  if (digital::toX01(cmp.value()) != digital::Logic::One) {
                      code_ &= ~(1ull << bit_); // vin below trial level: clear
                  }
                  if (bit_ > 0) {
                      --bit_;
                      code_ |= 1ull << bit_;
                  } else {
                      busy_ = false;
                      doneFlag_ = true;
                      result_ = code_;
                  }
                  drive();
              },
              {&clk});
    c.noteSequential(p, &clk);
    c.noteReads(p, {&start, &cmp});
    {
        std::vector<digital::SignalBase*> outs = digital::busSignals(dacCode);
        const std::vector<digital::SignalBase*> res = digital::busSignals(result);
        outs.insert(outs.end(), res.begin(), res.end());
        outs.push_back(&done);
        c.noteDrives(p, outs);
    }

    // Two hooks: the SAR trial register and the bit counter — both are real
    // SEU targets with very different failure signatures.
    c.instrumentation().add(digital::StateHook{
        this->name() + "/code", bits_, [this] { return code_; },
        [this](std::uint64_t v) {
            code_ = v & ((1ull << bits_) - 1);
            drive();
        },
        [this](int bit) {
            code_ ^= 1ull << bit;
            drive();
        }});
    c.instrumentation().add(digital::StateHook{
        this->name() + "/bit", 4,
        [this] { return static_cast<std::uint64_t>(bit_); },
        [this](std::uint64_t v) { bit_ = static_cast<int>(v) % bits_; },
        [this](int b) { bit_ = (bit_ ^ (1 << b)) % bits_; }});
}

void SarLogic::drive()
{
    dacCode_.scheduleUint(code_, clkToQ_);
    resultBus_.scheduleUint(result_, clkToQ_);
    done_->scheduleInertial(digital::fromBool(doneFlag_), clkToQ_);
}

// ---------------------------------------------------------------------------
// SarAdcTestbench

SarAdcTestbench::SarAdcTestbench(SarConfig config) : config_(config)
{
    auto& dig = sim().digital();
    auto& ana = sim().analog();
    const int bits = config_.bits;

    // --- analog input: staircase over the configured levels --------------------
    const analog::NodeId vin = ana.node("adc/vin");
    auto& vinSrc = ana.add<analog::VoltageSource>(ana, "adc/vin_src", vin, analog::kGround,
                                                  config_.inputLevels.front());
    {
        analog::TimeFunction fn;
        const double hold = toSeconds(config_.levelHold);
        const std::vector<double> levels = config_.inputLevels;
        fn.value = [levels, hold](double t) {
            const auto idx = std::min<std::size_t>(static_cast<std::size_t>(t / hold),
                                                   levels.size() - 1);
            return levels[idx];
        };
        for (std::size_t k = 1; k < levels.size(); ++k) {
            fn.breakpoints.push_back(hold * static_cast<double>(k));
        }
        vinSrc.setFunction(std::move(fn));
    }

    // --- DAC: digital code -> voltage, with an RC settling network --------------
    digital::Bus dacCode = dig.bus("adc/dac_code", bits, digital::Logic::Zero);
    const analog::NodeId dacRaw = ana.node("adc/dac_raw");
    const analog::NodeId dacOut = ana.node("adc/dac_out");
    const double vref = config_.vref;
    const double scale = vref / static_cast<double>(1ull << bits);
    std::vector<digital::LogicSignal*> codeBits(dacCode.bits().begin(), dacCode.bits().end());
    make<ams::DigitalVoltageDriver>(
        sim(), "adc/dac", codeBits, dacRaw,
        [scale](const std::vector<digital::Logic>& v) {
            std::uint64_t code = 0;
            for (std::size_t i = 0; i < v.size(); ++i) {
                if (digital::toX01(v[i]) == digital::Logic::One) {
                    code |= 1ull << i;
                }
            }
            return scale * static_cast<double>(code);
        });
    ana.add<analog::Resistor>(ana, "adc/dac_r", dacRaw, dacOut, config_.dacSettleR);
    ana.add<analog::Capacitor>(ana, "adc/dac_c", dacOut, analog::kGround, config_.dacSettleC);

    // --- comparator: vin vs settled DAC level -----------------------------------
    const analog::NodeId diff = ana.node("adc/cmp_diff");
    ana.add<analog::Vcvs>(ana, "adc/cmp_vcvs", diff, analog::kGround, vin, dacOut, 1.0);
    auto& cmp = dig.logicSignal("adc/cmp", digital::Logic::Zero);
    make<ams::AtoDBridge>(sim(), "adc/cmp_bridge", diff, cmp, 0.0, /*hysteresis=*/0.002);

    // --- clocking and control -----------------------------------------------------
    auto& clk = dig.logicSignal("adc/clk", digital::Logic::Zero);
    dig.add<digital::ClockGen>(dig, "adc/clkgen", clk, fromSeconds(1.0 / config_.clockHz));

    // Start strobe: one conversion shortly after each staircase level begins.
    // The strobes live in a StimulusSchedule (not raw actions) so snapshots
    // know which ones have fired and restore can re-arm the rest.
    auto& start = dig.logicSignal("adc/start", digital::Logic::Zero);
    dig.noteExternalDriver(start); // forced by the scheduled strobes below
    const SimTime clkPeriod = fromSeconds(1.0 / config_.clockHz);
    auto& strobes = dig.add<digital::StimulusSchedule>(dig, "adc/start_strobes");
    for (std::size_t k = 0; k < config_.inputLevels.size(); ++k) {
        const SimTime t0 = static_cast<SimTime>(k) * config_.levelHold + clkPeriod;
        strobes.at(t0, start, digital::Logic::One);
        strobes.at(t0 + 2 * clkPeriod, start, digital::Logic::Zero);
    }

    result_ = dig.bus("adc/result", bits, digital::Logic::Zero);
    auto& done = dig.logicSignal("adc/done", digital::Logic::Zero);
    dig.add<SarLogic>(dig, "adc/sar", clk, start, cmp, dacCode, result_, done, bits);

    // --- instrumentation -------------------------------------------------------------
    auto& sabVin = ana.add<fault::CurrentSaboteur>(ana, "sab/vin", vin);
    auto& sabDac = ana.add<fault::CurrentSaboteur>(ana, "sab/dac_out", dacOut);
    addCurrentSaboteur(sabVin);
    addCurrentSaboteur(sabDac);

    // --- observation -------------------------------------------------------------------
    for (int b = 0; b < bits; ++b) {
        observeDigital("adc/result[" + std::to_string(b) + "]");
    }
    observeDigital("adc/done");
    observeAnalog("adc/dac_out");
    observeAllState();
    setDuration(static_cast<SimTime>(config_.inputLevels.size()) * config_.levelHold);
}

int SarAdcTestbench::idealCode(double vinVolts) const
{
    // The SAR converges to the largest code whose DAC level is below vin.
    const double lsb = config_.vref / static_cast<double>(1ull << config_.bits);
    const int code = static_cast<int>(std::floor(vinVolts / lsb));
    return std::clamp(code, 0, (1 << config_.bits) - 1);
}

} // namespace gfi::adc
