#pragma once
// Flash ADC case study.
//
// The paper's conclusion names analog-to-digital converters as the natural
// next target for the unified flow ("the interest of the approach could be
// still higher when analyzing ... e.g. analog to digital converters"), and
// its reference [9] (Singh & Koren) analyzed alpha-particle sensitivity of
// ADCs at transistor level. This module provides a behavioral flash ADC:
// resistor ladder, differential comparators (A->D bridges), thermometer-to-
// binary encoder and a sampled output register — instrumented with current
// saboteurs on every ladder tap (analog part) and mutant hooks in the output
// register (digital part), so campaigns can compare their sensitivities.

#include "core/testbench.hpp"
#include "digital/sequential.hpp"

namespace gfi::adc {

/// Flash ADC parameters.
struct FlashConfig {
    int bits = 3;            ///< resolution (2^bits - 1 comparators)
    double vref = 4.0;       ///< full-scale reference (V)
    double clockHz = 5e6;    ///< sampling clock
    double inputHz = 100e3;  ///< test sine frequency
    double inputAmplitude = 1.9; ///< test sine amplitude (V)
    double inputOffset = 2.0;    ///< test sine offset (V)
    SimTime duration = 20 * kMicrosecond;
};

/// The elaborated, instrumented flash-ADC experiment.
class FlashAdcTestbench : public fault::Testbench {
public:
    explicit FlashAdcTestbench(FlashConfig config = {});

    /// Configuration used.
    [[nodiscard]] const FlashConfig& config() const noexcept { return config_; }

    /// Output code bus (registered).
    [[nodiscard]] const digital::Bus& codeBus() const noexcept { return code_; }

    /// Names of the ladder-tap saboteurs, LSB-side first.
    [[nodiscard]] const std::vector<std::string>& tapSaboteurs() const noexcept
    {
        return tapSaboteurs_;
    }

private:
    FlashConfig config_;
    digital::Bus code_;
    std::vector<std::string> tapSaboteurs_;
};

} // namespace gfi::adc
