#pragma once
// Byte-stable binary serialization for simulator snapshots.
//
// The format is deliberately primitive so that two captures of identical
// simulator state produce identical bytes on any host:
//   - fixed-width little-endian integers (no varint, no host-order writes);
//   - doubles bit-cast to uint64 (round-trips NaN payloads and -0.0 exactly);
//   - strings and nested blobs length-prefixed with uint64 counts;
//   - no padding, no alignment, no map iteration — every writer emits fields
//     in a fixed declared order.
// A snapshot stream starts with an 8-byte magic plus a format version; readers
// reject foreign or future data with SnapshotFormatError instead of
// misinterpreting it.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace gfi::snapshot {

/// Malformed, truncated or version-mismatched snapshot data.
class SnapshotFormatError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Bumped on any layout change of the serialized state.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Stream magic: identifies a gfi snapshot byte stream.
inline constexpr char kMagic[8] = {'G', 'F', 'I', 'S', 'N', 'A', 'P', '\0'};

/// Appends primitive values to a byte buffer in the canonical encoding.
class Writer {
public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }

    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i) {
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void f64(double v)
    {
        std::uint64_t raw = 0;
        static_assert(sizeof raw == sizeof v);
        std::memcpy(&raw, &v, sizeof raw);
        u64(raw);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void str(const std::string& s)
    {
        u64(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    /// Length-prefixed nested byte block (isolates one component's payload so
    /// a buggy writer/reader pair cannot silently shift every later field).
    void blob(const std::vector<std::uint8_t>& b)
    {
        u64(b.size());
        bytes_.insert(bytes_.end(), b.begin(), b.end());
    }

    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

private:
    std::vector<std::uint8_t> bytes_;
};

/// Reads the canonical encoding back; throws SnapshotFormatError on underrun.
class Reader {
public:
    Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

    explicit Reader(const std::vector<std::uint8_t>& b) : Reader(b.data(), b.size()) {}

    std::uint8_t u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        }
        return v;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        }
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64()
    {
        const std::uint64_t raw = u64();
        double v = 0;
        std::memcpy(&v, &raw, sizeof v);
        return v;
    }

    bool boolean() { return u8() != 0; }

    std::string str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_) + pos_, n);
        pos_ += n;
        return s;
    }

    std::vector<std::uint8_t> blob()
    {
        const std::uint64_t n = u64();
        need(n);
        std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return b;
    }

    [[nodiscard]] bool atEnd() const noexcept { return pos_ == size_; }
    [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

private:
    void need(std::uint64_t n) const
    {
        if (n > size_ - pos_) {
            throw SnapshotFormatError("snapshot: truncated stream (need " + std::to_string(n) +
                                      " bytes, have " + std::to_string(size_ - pos_) + ")");
        }
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/// Writes the stream magic + format version (start of every snapshot).
inline void writeHeader(Writer& w)
{
    for (char c : kMagic) {
        w.u8(static_cast<std::uint8_t>(c));
    }
    w.u32(kFormatVersion);
}

/// Validates the magic + version; throws SnapshotFormatError on mismatch.
inline void readHeader(Reader& r)
{
    for (char c : kMagic) {
        if (r.u8() != static_cast<std::uint8_t>(c)) {
            throw SnapshotFormatError("snapshot: bad magic (not a gfi snapshot stream)");
        }
    }
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
        throw SnapshotFormatError("snapshot: format version " + std::to_string(version) +
                                  " unsupported (expected " + std::to_string(kFormatVersion) +
                                  ")");
    }
}

} // namespace gfi::snapshot
