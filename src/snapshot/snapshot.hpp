#pragma once
// Snapshot subsystem: versioned, deterministic capture/restore of full
// mixed-signal simulator state, plus the in-memory checkpoint cache behind
// the campaign engine's fork-from-golden mode.
//
// Capture walks the simulator in a fixed structural order (scheduler, then
// signals in creation order, then components in registration order, then
// bridges, then the analog solver) and serializes every piece through
// snapshot::Writer, so identical state yields identical bytes. Restore never
// replays instrumentation setters — those propagate (schedule transactions)
// and would perturb the delta-cycle count; instead every stateful component
// implements Snapshottable and writes its members back directly, re-arming
// any self-scheduled actions from recorded fire times.

#include "sim/time.hpp"
#include "snapshot/serialize.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gfi::snapshot {

/// Implemented by every stateful simulation object that participates in
/// snapshot capture/restore. captureState() must serialize all mutable
/// members (in a fixed order); restoreState() must read them back in the same
/// order and write them directly — never through setters that propagate —
/// re-arming self-scheduled actions from recorded fire times where needed.
class Snapshottable {
public:
    virtual ~Snapshottable() = default;

    virtual void captureState(Writer& w) const = 0;
    virtual void restoreState(Reader& r) = 0;
};

/// One captured simulator state: the byte stream plus the capture times
/// needed to pick a checkpoint and preload trace prefixes without parsing.
struct Snapshot {
    SimTime time = 0;       ///< digital kernel time at capture (fs)
    double analogTime = 0;  ///< analog solver time at capture (s); 0 if no analog
    std::vector<std::uint8_t> bytes;
};

/// Named Snapshottables outside the digital component list (AMS bridges).
/// Capture/restore iterate registration order; each payload is length-
/// prefixed and name-checked so a schema drift fails loudly.
class SnapshotRegistry {
public:
    void add(std::string name, Snapshottable* s) { entries_.emplace_back(std::move(name), s); }

    void capture(Writer& w) const;
    void restore(Reader& r) const;

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

private:
    std::vector<std::pair<std::string, Snapshottable*>> entries_;
};

/// In-memory checkpoint cache keyed by (testbench id, sim time). put() runs
/// during the (serial) golden phase; lookups run concurrently from campaign
/// workers, so entries are immutable shared_ptrs behind a mutex.
class CheckpointStore {
public:
    /// Usage counters (telemetry probes), maintained under the store mutex.
    struct Stats {
        std::uint64_t puts = 0;       ///< checkpoints stored
        std::uint64_t bytes = 0;      ///< serialized bytes currently held
        std::uint64_t hits = 0;       ///< nearestBefore() lookups that found one
        std::uint64_t misses = 0;     ///< lookups against a populated store that
                                      ///< found none before the requested time
                                      ///< (empty-store probes are not tracked)
    };

    void put(const std::string& testbenchId, std::shared_ptr<const Snapshot> snap);

    /// Latest checkpoint strictly before @p t, or nullptr. Strict: restoring
    /// a checkpoint taken exactly at the injection time would re-run the
    /// injection wave and break byte-identity with a from-scratch run.
    [[nodiscard]] std::shared_ptr<const Snapshot> nearestBefore(const std::string& testbenchId,
                                                                SimTime t) const;

    [[nodiscard]] std::size_t count(const std::string& testbenchId) const;
    [[nodiscard]] Stats stats() const;
    void clear();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::map<SimTime, std::shared_ptr<const Snapshot>>> store_;
    mutable Stats stats_;
};

} // namespace gfi::snapshot
