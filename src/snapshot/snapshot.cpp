#include "snapshot/snapshot.hpp"

namespace gfi::snapshot {

void SnapshotRegistry::capture(Writer& w) const
{
    w.u64(entries_.size());
    for (const auto& [name, obj] : entries_) {
        w.str(name);
        Writer payload;
        obj->captureState(payload);
        w.blob(payload.bytes());
    }
}

void SnapshotRegistry::restore(Reader& r) const
{
    const std::uint64_t n = r.u64();
    if (n != entries_.size()) {
        throw SnapshotFormatError("snapshot: registry entry count mismatch (stream has " +
                                  std::to_string(n) + ", simulator has " +
                                  std::to_string(entries_.size()) + ")");
    }
    for (const auto& [name, obj] : entries_) {
        const std::string streamName = r.str();
        if (streamName != name) {
            throw SnapshotFormatError("snapshot: registry entry '" + streamName +
                                      "' does not match simulator entry '" + name + "'");
        }
        const std::vector<std::uint8_t> payload = r.blob();
        Reader sub(payload);
        obj->restoreState(sub);
        if (!sub.atEnd()) {
            throw SnapshotFormatError("snapshot: registry entry '" + name + "' left " +
                                      std::to_string(sub.remaining()) +
                                      " unread payload bytes");
        }
    }
}

void CheckpointStore::put(const std::string& testbenchId, std::shared_ptr<const Snapshot> snap)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const SimTime t = snap->time;
    auto& slot = store_[testbenchId][t];
    if (slot) {
        stats_.bytes -= slot->bytes.size(); // replacing an existing checkpoint
    }
    ++stats_.puts;
    stats_.bytes += snap->bytes.size();
    slot = std::move(snap);
}

std::shared_ptr<const Snapshot> CheckpointStore::nearestBefore(const std::string& testbenchId,
                                                               SimTime t) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto byTb = store_.find(testbenchId);
    if (byTb == store_.end() || byTb->second.empty()) {
        // Untracked: a campaign without checkpoints (fork mode off) probes the
        // empty store once per run, and counting those as misses would bury
        // the fork-mode signal in noise.
        return nullptr;
    }
    auto it = byTb->second.lower_bound(t); // first entry >= t
    if (it == byTb->second.begin()) {
        ++stats_.misses;
        return nullptr; // every checkpoint is at or after t
    }
    --it;
    ++stats_.hits;
    return it->second;
}

std::size_t CheckpointStore::count(const std::string& testbenchId) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto byTb = store_.find(testbenchId);
    return byTb == store_.end() ? 0 : byTb->second.size();
}

CheckpointStore::Stats CheckpointStore::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void CheckpointStore::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    store_.clear();
    stats_ = Stats{};
}

} // namespace gfi::snapshot
