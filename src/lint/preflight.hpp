#pragma once
// Campaign preflight: validates a fault list against a testbench's
// registries and observation window *before* any run is attempted. A
// campaign with a typo'd target fails here with one structured report in
// O(1) instead of producing one sim-error row per run.
//
// Rules:
//   PRE001 (error)   unknown injection target (state hook, FSM, digital or
//                    current saboteur, parameter) — the exact registry
//                    lookups armFault() performs at run time.
//   PRE002 (error)   bit index outside the target state element's width.
//   PRE003 (error)   injection time outside the simulation window.
//   PRE004 (error)   current-pulse fault without a pulse shape.
//   PRE005 (warning) duplicate fault in the list (same description twice).
//   PRE006 (error)   fork-from-golden enabled, but the testbench registers a
//                    stateful digital component that is not Snapshottable —
//                    restoring a checkpoint would silently resume it stale.
//   PRE007 (warning) fault targets a dead/unobservable cone: no structural
//                    path from the injection site to any observed output,
//                    watched signal or compared state hook (the static
//                    fault-space analyzer proves the run classifies Silent).
//   PRE008 (warning) fault is not batch-eligible on a word-compilable design
//                    (timing-dependent SET pulse, analog fault, target outside
//                    the compiled netlist): with the bit-parallel backend on
//                    it falls back to the event-driven kernel. Scored only
//                    when the list also contains batch-eligible faults.
//   PRE009 (error)   stale golden-store entry: a stored campaign result is
//                    keyed by a netlist digest that no longer matches the
//                    circuit it is being replayed for. The diagnostic carries
//                    both digests; replaying would attribute another design's
//                    verdicts to this one.

#include "core/fault.hpp"
#include "lint/diagnostic.hpp"

#include <stdexcept>
#include <vector>

namespace gfi::fault {
class Testbench;
}

namespace gfi::lint {

/// Validates one fault against @p tb's registries and window. @p index is
/// used in the diagnostic path ("fault[3]"); pass 0 for standalone checks.
[[nodiscard]] Report preflightFault(const fault::Testbench& tb,
                                    const fault::FaultSpec& fault, std::size_t index = 0);

/// Validates a whole campaign fault list (per-fault checks + duplicates).
[[nodiscard]] Report preflightCampaign(const fault::Testbench& tb,
                                       const std::vector<fault::FaultSpec>& faults);

/// Snapshot readiness (PRE006): every digital component of @p tb must either
/// implement snapshot::Snapshottable or declare itself snapshotExempt()
/// (stateless). CampaignRunner runs this check only while fork-from-golden
/// checkpointing is enabled; each offending component is named.
[[nodiscard]] Report preflightSnapshot(const fault::Testbench& tb);

/// Stale-cache check (PRE009): compares the digest a stored campaign entry
/// was keyed under against the digest of the circuit about to replay it.
/// Pure string comparison — lint stays dependency-free of io; the golden
/// store calls this before trusting any cached verdicts. @p entryName names
/// the offending store entry in the diagnostic path.
[[nodiscard]] Report preflightStoredDigest(const std::string& entryName,
                                           const std::string& storedDigest,
                                           const std::string& currentDigest);

/// Thrown by CampaignRunner when the preflight phase finds errors; carries
/// the full report.
class PreflightError : public std::runtime_error {
public:
    explicit PreflightError(Report report);

    [[nodiscard]] const Report& report() const noexcept { return report_; }

private:
    Report report_;
};

} // namespace gfi::lint
