#pragma once
// Digital netlist linter. Works entirely on the declared connectivity of a
// Circuit (ProcessConnectivity records + external-driver set) — no process
// callback is ever executed, so a broken design is diagnosed before the
// first delta cycle.
//
// Rules:
//   DIG001 (error)   combinational loop — an SCC of combinational processes
//                    in the drive/trigger graph; names the cycle's processes
//                    and signals, the same participants SchedulerLimitError
//                    reports at runtime.
//   DIG002 (error)   multiple drivers on an unresolved signal (two processes,
//                    or a process plus an external driver).
//   DIG003 (warning) undriven input — a signal some process triggers on or
//                    reads that has no declared driver.
//   DIG004 (info)    dead signal — driven, but with no listener, watcher or
//                    declared reader.
//   DIG005 (warning) unclocked register — a sequential process whose clock
//                    has no driver.

#include "lint/diagnostic.hpp"

namespace gfi::digital {
class Circuit;
}

namespace gfi::lint {

/// Lints the declared netlist of @p circuit.
[[nodiscard]] Report lintDigital(const digital::Circuit& circuit);

} // namespace gfi::lint
