#include "lint/lint.hpp"

#include "core/testbench.hpp"

namespace gfi::lint {

Report lintTestbench(fault::Testbench& tb)
{
    Report report = lintDigital(tb.sim().digital());
    report.merge(lintAnalog(tb.sim().analog()));
    return report;
}

Report lintCampaign(fault::Testbench& tb, const std::vector<fault::FaultSpec>& faults)
{
    Report report = lintTestbench(tb);
    report.merge(preflightCampaign(tb, faults));
    return report;
}

} // namespace gfi::lint
