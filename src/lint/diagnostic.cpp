#include "lint/diagnostic.hpp"

#include "util/table.hpp"

#include <cstdio>

namespace gfi::lint {

namespace {

std::string escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char* toString(Severity s)
{
    switch (s) {
    case Severity::Info:
        return "info";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "?";
}

void Report::add(std::string rule, Severity severity, std::string path, std::string message,
                 std::string hint)
{
    diags_.push_back(Diagnostic{std::move(rule), severity, std::move(path),
                                std::move(message), std::move(hint)});
}

void Report::merge(const Report& other)
{
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::size_t Report::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic& d : diags_) {
        n += d.severity == severity ? 1 : 0;
    }
    return n;
}

bool Report::hasRule(const std::string& rule) const
{
    for (const Diagnostic& d : diags_) {
        if (d.rule == rule) {
            return true;
        }
    }
    return false;
}

std::vector<Diagnostic> Report::byRule(const std::string& rule) const
{
    std::vector<Diagnostic> out;
    for (const Diagnostic& d : diags_) {
        if (d.rule == rule) {
            out.push_back(d);
        }
    }
    return out;
}

std::string Report::table() const
{
    TextTable t;
    t.setHeader({"rule", "severity", "path", "message", "hint"});
    for (const Diagnostic& d : diags_) {
        t.addRow({d.rule, toString(d.severity), d.path, d.message,
                  d.hint.empty() ? "-" : d.hint});
    }
    t.addSeparator();
    t.addRow({"total", summary(), "", "", ""});
    return t.str();
}

std::string Report::json() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic& d = diags_[i];
        out += i == 0 ? "\n" : ",\n";
        out += "  {\"rule\": \"" + escape(d.rule) + "\", ";
        out += "\"severity\": \"" + std::string(toString(d.severity)) + "\", ";
        out += "\"path\": \"" + escape(d.path) + "\", ";
        out += "\"message\": \"" + escape(d.message) + "\", ";
        out += "\"hint\": \"" + escape(d.hint) + "\"}";
    }
    out += diags_.empty() ? "]" : "\n]";
    return out;
}

std::string Report::summary() const
{
    const std::size_t e = count(Severity::Error);
    const std::size_t w = count(Severity::Warning);
    const std::size_t i = count(Severity::Info);
    auto plural = [](std::size_t n, const char* word) {
        return std::to_string(n) + " " + word + (n == 1 ? "" : "s");
    };
    return plural(e, "error") + ", " + plural(w, "warning") + ", " + plural(i, "info");
}

} // namespace gfi::lint
