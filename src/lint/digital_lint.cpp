#include "lint/digital_lint.hpp"

#include "analyze/scc.hpp"
#include "digital/circuit.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace gfi::lint {

namespace {

using digital::Circuit;
using digital::Process;
using digital::ProcessConnectivity;
using digital::SignalBase;

std::string joinNames(const std::vector<std::string>& names)
{
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        out += (i == 0 ? "" : ", ") + names[i];
    }
    return out;
}

} // namespace

Report lintDigital(const Circuit& circuit)
{
    Report report;
    const std::vector<ProcessConnectivity>& conns = circuit.connectivity();

    // Per-signal driver / reader maps from the declared connectivity.
    std::map<SignalBase*, std::vector<const ProcessConnectivity*>> drivers;
    std::set<SignalBase*> readOrTriggered;
    std::set<SignalBase*> mentioned; // every signal the netlist knows about
    for (const ProcessConnectivity& c : conns) {
        for (SignalBase* s : c.drives) {
            drivers[s].push_back(&c);
            mentioned.insert(s);
        }
        for (SignalBase* s : c.triggers) {
            readOrTriggered.insert(s);
            mentioned.insert(s);
        }
        for (SignalBase* s : c.reads) {
            readOrTriggered.insert(s);
            mentioned.insert(s);
        }
    }
    for (SignalBase* s : circuit.externalDrivers()) {
        mentioned.insert(s);
    }

    // --- DIG001: combinational loops (Tarjan SCC) --------------------------
    // Vertices: combinational processes. Edge p -> q when p drives a signal
    // q is sensitive to. Sequential processes absorb the cycle at the clock
    // edge, so they are excluded — exactly why a registered feedback path is
    // legal and a gate loop is not.
    std::vector<const ProcessConnectivity*> comb;
    std::map<const Process*, int> combIndex;
    for (const ProcessConnectivity& c : conns) {
        if (!c.sequential) {
            combIndex[c.process] = static_cast<int>(comb.size());
            comb.push_back(&c);
        }
    }
    std::vector<std::vector<int>> adj(comb.size());
    for (std::size_t p = 0; p < comb.size(); ++p) {
        for (SignalBase* s : comb[p]->drives) {
            for (const ProcessConnectivity& c : conns) {
                if (c.sequential) {
                    continue;
                }
                if (std::find(c.triggers.begin(), c.triggers.end(), s) != c.triggers.end()) {
                    adj[p].push_back(combIndex.at(c.process));
                }
            }
        }
    }
    for (const std::vector<int>& scc : analyze::tarjanScc(adj)) {
        if (!analyze::sccIsCyclic(scc, adj)) {
            continue;
        }
        std::set<int> inScc(scc.begin(), scc.end());
        std::vector<std::string> procNames;
        std::vector<std::string> sigNames;
        for (const int v : scc) {
            const ProcessConnectivity* c = comb[static_cast<std::size_t>(v)];
            procNames.push_back(c->process->name());
            for (SignalBase* s : c->drives) {
                for (const int w : inScc) {
                    const ProcessConnectivity* d = comb[static_cast<std::size_t>(w)];
                    if (std::find(d->triggers.begin(), d->triggers.end(), s) !=
                            d->triggers.end() &&
                        std::find(sigNames.begin(), sigNames.end(), s->name()) ==
                            sigNames.end()) {
                        sigNames.push_back(s->name());
                    }
                }
            }
        }
        std::sort(procNames.begin(), procNames.end());
        report.add("DIG001", Severity::Error, joinNames(procNames),
                   "combinational loop through signal(s) " + joinNames(sigNames) +
                       " — the delta-cycle engine will oscillate until "
                       "SchedulerLimitError",
                   "register the feedback path or break the zero-delay cycle");
    }

    // --- DIG002: multiple drivers on an unresolved signal ------------------
    for (const auto& [sig, procs] : drivers) {
        const int external = circuit.isExternallyDriven(*sig) ? 1 : 0;
        if (static_cast<int>(procs.size()) + external < 2) {
            continue;
        }
        std::vector<std::string> names;
        for (const ProcessConnectivity* c : procs) {
            names.push_back(c->process->name());
        }
        if (external != 0) {
            names.emplace_back("<external driver>");
        }
        std::sort(names.begin(), names.end());
        report.add("DIG002", Severity::Error, sig->name(),
                   "unresolved signal has " + std::to_string(names.size()) +
                       " drivers: " + joinNames(names),
                   "single-driver nets only: mux the sources or insert a resolved bus");
    }

    // --- DIG003: undriven inputs -------------------------------------------
    for (SignalBase* s : readOrTriggered) {
        if (drivers.count(s) == 0 && !circuit.isExternallyDriven(*s)) {
            report.add("DIG003", Severity::Warning, s->name(),
                       "read by a process but never driven — it will hold its "
                       "initial value for the whole run",
                       "drive it, or declare it external with noteExternalDriver()");
        }
    }

    // --- DIG004: dead signals ----------------------------------------------
    for (SignalBase* s : mentioned) {
        const bool driven = drivers.count(s) != 0 || circuit.isExternallyDriven(*s);
        const bool used = readOrTriggered.count(s) != 0 || s->listenerCount() > 0 ||
                          s->watcherCount() > 0;
        if (driven && !used) {
            report.add("DIG004", Severity::Info, s->name(),
                       "driven but never read, listened to or recorded",
                       "remove it, or observe it in the testbench");
        }
    }

    // --- DIG005: unclocked registers ---------------------------------------
    for (const ProcessConnectivity& c : conns) {
        if (!c.sequential || c.clock == nullptr) {
            continue;
        }
        if (drivers.count(c.clock) == 0 && !circuit.isExternallyDriven(*c.clock)) {
            report.add("DIG005", Severity::Warning, c.process->name(),
                       "sequential process clocked by '" + c.clock->name() +
                           "', which has no driver — the register will never update",
                       "connect a clock generator or mark the clock external");
        }
    }

    return report;
}

} // namespace gfi::lint
