#pragma once
// Analog topology checker. Replays every component's MNA stamp once in DC
// mode and once in transient mode against a StampObserver, reconstructs the
// connectivity/branch-incidence structure, and diagnoses the classic
// singular-matrix topologies *before* LU/Newton fails inside a run:
//
//   ANA001 (error) floating node — no path to ground even in the transient
//                  stamp graph; only gmin determines its voltage.
//   ANA002 (error) voltage-source loop — the rigid (voltage-defined) branch
//                  edges close a cycle; the MNA matrix is singular.
//   ANA003 (error) current-source cutset — a nonzero DC current injection
//                  into an island with no DC path to ground; the operating
//                  point is i/gmin, i.e. nonsense.
//   ANA004 (error) singular DC matrix (with gmin) not explained by the rules
//                  above — the operating-point solve will throw
//                  DivergenceError.
//   ANA005 (info)  no DC path to ground but a transient path exists (charge
//                  integrator / AC coupling): legal, but the operating point
//                  relies on gmin.

#include "lint/diagnostic.hpp"

namespace gfi::analog {
class AnalogSystem;
}

namespace gfi::lint {

/// Lints the MNA stamp structure of @p system. Components are stamped (their
/// contribution recorded, then discarded) but never solved; behavioral state
/// is untouched.
[[nodiscard]] Report lintAnalog(analog::AnalogSystem& system);

} // namespace gfi::lint
