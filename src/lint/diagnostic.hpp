#pragma once
// Structured lint findings. Every static-analysis rule (digital netlist,
// analog topology, campaign preflight) reports lint::Diagnostic records: a
// stable rule id, a severity, the hierarchical path of the offender, a
// human-readable message and a fix hint. A Report aggregates them and
// renders as a text table or JSON — the same record feeds the CLI, the
// campaign preflight gate and the tests.

#include <cstddef>
#include <string>
#include <vector>

namespace gfi::lint {

/// How bad a finding is. Errors gate the campaign preflight; warnings and
/// infos are advisory.
enum class Severity {
    Info,    ///< stylistic / informational (dead signal, gmin reliance)
    Warning, ///< suspicious but simulatable (undriven input)
    Error,   ///< will or may break simulation (combinational loop, V-loop)
};

/// Short name for reports ("info" / "warning" / "error").
[[nodiscard]] const char* toString(Severity s);

/// One static-analysis finding.
struct Diagnostic {
    std::string rule;     ///< stable rule id, e.g. "DIG001"
    Severity severity = Severity::Warning;
    std::string path;     ///< hierarchical path of the offender
                          ///< (signal/process/node/fault description)
    std::string message;  ///< what is wrong
    std::string hint;     ///< how to fix it (may be empty)
};

/// Aggregated findings of one lint pass.
class Report {
public:
    /// Appends one finding.
    void add(Diagnostic d) { diags_.push_back(std::move(d)); }

    /// Convenience append.
    void add(std::string rule, Severity severity, std::string path, std::string message,
             std::string hint = {});

    /// Appends every finding of @p other.
    void merge(const Report& other);

    /// All findings, in report order.
    [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept
    {
        return diags_;
    }

    /// Number of findings at @p severity.
    [[nodiscard]] std::size_t count(Severity severity) const;

    /// Total number of findings.
    [[nodiscard]] std::size_t size() const noexcept { return diags_.size(); }

    /// True when the design passes: no errors and no warnings (infos allowed).
    [[nodiscard]] bool clean() const
    {
        return count(Severity::Error) == 0 && count(Severity::Warning) == 0;
    }

    /// True when at least one finding carries rule id @p rule.
    [[nodiscard]] bool hasRule(const std::string& rule) const;

    /// Findings with rule id @p rule.
    [[nodiscard]] std::vector<Diagnostic> byRule(const std::string& rule) const;

    /// Printable text table (rule | severity | path | message | hint).
    [[nodiscard]] std::string table() const;

    /// JSON array of findings (machine-readable reports).
    [[nodiscard]] std::string json() const;

    /// One-line summary, e.g. "2 errors, 1 warning, 3 infos".
    [[nodiscard]] std::string summary() const;

private:
    std::vector<Diagnostic> diags_;
};

} // namespace gfi::lint
