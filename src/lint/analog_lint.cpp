#include "lint/analog_lint.hpp"

#include "analog/linear.hpp"
#include "analog/system.hpp"

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gfi::lint {

namespace {

using analog::AnalogSystem;
using analog::kGround;
using analog::NodeId;

/// Plain union-find over node ids.
class UnionFind {
public:
    explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n))
    {
        for (int i = 0; i < n; ++i) {
            parent_[static_cast<std::size_t>(i)] = i;
        }
    }
    int find(int x)
    {
        while (parent_[static_cast<std::size_t>(x)] != x) {
            parent_[static_cast<std::size_t>(x)] =
                parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
            x = parent_[static_cast<std::size_t>(x)];
        }
        return x;
    }
    /// Returns false when @p a and @p b were already connected.
    bool unite(int a, int b)
    {
        const int ra = find(a);
        const int rb = find(b);
        if (ra == rb) {
            return false;
        }
        parent_[static_cast<std::size_t>(ra)] = rb;
        return true;
    }

private:
    std::vector<int> parent_;
};

/// Records the structure of one stamping pass (one mode).
class TopologyRecorder : public analog::StampObserver {
public:
    explicit TopologyRecorder(int nodeCount) : nodeCount_(nodeCount) {}

    void setComponent(const std::string* name) { current_ = name; }

    void onConductance(NodeId a, NodeId b, double g) override
    {
        touch(a);
        touch(b);
        if (g != 0.0) {
            edges_.emplace_back(a, b);
        }
    }

    void onCurrentInto(NodeId n, double i) override
    {
        touch(n);
        injection_[n] += i;
        if (i != 0.0 && current_ != nullptr) {
            injector_[n] = *current_;
        }
    }

    void onVccs(NodeId outP, NodeId outM, NodeId ctrlP, NodeId ctrlM, double) override
    {
        touch(outP);
        touch(outM);
        touch(ctrlP);
        touch(ctrlM);
    }

    void onAddA(int row, int col, double v) override
    {
        if (v == 0.0) {
            return;
        }
        matrix_[{row, col}] += v;
        // Branch incidence: a node row entry in a branch column paired with
        // the transposed branch row entry marks the node as an endpoint of a
        // voltage-defined branch (V source, VCVS output, VCO output).
        if (isBranchVar(col) && isNodeVar(row)) {
            touch(nodeOfVar(row));
            if (current_ != nullptr && branchOwner_.count(branchOfVar(col)) == 0) {
                branchOwner_[branchOfVar(col)] = *current_;
            }
        }
    }

    void onAddB(int, double) override {}

    /// Nodes incident to branch @p b: rows with A[node][branch] != 0 that the
    /// branch equation also references (A[branch][node] != 0). The transpose
    /// check keeps CCCS output rows (which add gain entries in a *sense*
    /// branch column) from being mistaken for branch endpoints.
    [[nodiscard]] std::vector<NodeId> branchIncidence(int b) const
    {
        std::vector<NodeId> nodes;
        const int bcol = nodeCount_ - 1 + b;
        for (int var = 0; var < nodeCount_ - 1; ++var) {
            const bool nodeRow = matrix_.count({var, bcol}) != 0;
            const bool branchRow = matrix_.count({bcol, var}) != 0;
            if (nodeRow && branchRow) {
                nodes.push_back(nodeOfVar(var));
            }
        }
        return nodes;
    }

    [[nodiscard]] std::set<int> branches() const
    {
        std::set<int> out;
        for (const auto& [rc, v] : matrix_) {
            if (isBranchVar(rc.second)) {
                out.insert(branchOfVar(rc.second));
            }
            if (isBranchVar(rc.first)) {
                out.insert(branchOfVar(rc.first));
            }
        }
        return out;
    }

    [[nodiscard]] const std::vector<std::pair<NodeId, NodeId>>& edges() const noexcept
    {
        return edges_;
    }
    [[nodiscard]] const std::map<NodeId, double>& injections() const noexcept
    {
        return injection_;
    }
    [[nodiscard]] std::string injectorOf(NodeId n) const
    {
        const auto it = injector_.find(n);
        return it == injector_.end() ? std::string("?") : it->second;
    }
    [[nodiscard]] std::string branchOwnerOf(int b) const
    {
        const auto it = branchOwner_.find(b);
        return it == branchOwner_.end() ? std::string("?") : it->second;
    }
    [[nodiscard]] bool touched(NodeId n) const { return touched_.count(n) != 0; }

private:
    [[nodiscard]] bool isNodeVar(int var) const { return var >= 0 && var < nodeCount_ - 1; }
    [[nodiscard]] bool isBranchVar(int var) const { return var >= nodeCount_ - 1; }
    [[nodiscard]] NodeId nodeOfVar(int var) const { return var + 1; }
    [[nodiscard]] int branchOfVar(int var) const { return var - (nodeCount_ - 1); }

    void touch(NodeId n) { touched_.insert(n); }

    int nodeCount_;
    const std::string* current_ = nullptr;
    std::vector<std::pair<NodeId, NodeId>> edges_;
    std::map<NodeId, double> injection_;
    std::map<NodeId, std::string> injector_;
    std::map<std::pair<int, int>, double> matrix_;
    std::map<int, std::string> branchOwner_;
    std::set<NodeId> touched_;
};

/// Stamps every component once in the given mode, mirroring the structure
/// into @p recorder and the values into @p A / @p rhs.
void recordMode(AnalogSystem& sys, bool dcMode, TopologyRecorder& recorder,
                analog::DenseMatrix& A, std::vector<double>& rhs)
{
    const int n = sys.unknownCount();
    A.resize(n);
    rhs.assign(static_cast<std::size_t>(n), 0.0);
    analog::Stamper stamper(A, rhs, sys.nodeCount());
    stamper.setObserver(&recorder);
    const std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const analog::Solution candidate(x, sys.nodeCount());
    const double dt = dcMode ? 0.0 : 1e-9;
    for (const auto& comp : sys.components()) {
        recorder.setComponent(&comp->name());
        comp->stamp(stamper, candidate, 0.0, dt, dcMode);
    }
    recorder.setComponent(nullptr);
}

/// Connectivity of one mode: conductance edges plus rigid branch edges.
UnionFind connectivityOf(const TopologyRecorder& rec, int nodeCount)
{
    UnionFind uf(nodeCount);
    for (const auto& [a, b] : rec.edges()) {
        uf.unite(a, b);
    }
    for (const int b : rec.branches()) {
        const std::vector<NodeId> inc = rec.branchIncidence(b);
        if (inc.size() == 1) {
            uf.unite(inc.front(), kGround); // grounded voltage-defined branch
        }
        for (std::size_t i = 1; i < inc.size(); ++i) {
            uf.unite(inc[0], inc[i]);
        }
    }
    return uf;
}

} // namespace

Report lintAnalog(AnalogSystem& sys)
{
    Report report;
    const int nodeCount = sys.nodeCount();
    if (nodeCount <= 1 && sys.components().empty()) {
        return report; // no analog half at all
    }

    TopologyRecorder dcRec(nodeCount);
    TopologyRecorder trRec(nodeCount);
    analog::DenseMatrix dcA;
    analog::DenseMatrix trA;
    std::vector<double> dcRhs;
    std::vector<double> trRhs;
    recordMode(sys, /*dcMode=*/true, dcRec, dcA, dcRhs);
    recordMode(sys, /*dcMode=*/false, trRec, trA, trRhs);

    UnionFind dcConn = connectivityOf(dcRec, nodeCount);
    UnionFind trConn = connectivityOf(trRec, nodeCount);

    // --- ANA001 / ANA005: floating nodes -----------------------------------
    bool anyError = false;
    for (NodeId n = 1; n < nodeCount; ++n) {
        const bool dcGrounded = dcConn.find(n) == dcConn.find(kGround);
        const bool trGrounded = trConn.find(n) == trConn.find(kGround);
        if (!trGrounded) {
            report.add("ANA001", Severity::Error, sys.nodeName(n),
                       trRec.touched(n)
                           ? std::string("floating node: no path to ground in any mode — "
                                         "only gmin determines its voltage")
                           : std::string("dangling node: no component connects to it"),
                       "add a DC path to ground (resistor, source) or remove the node");
            anyError = true;
        } else if (!dcGrounded) {
            report.add("ANA005", Severity::Info, sys.nodeName(n),
                       "no DC path to ground (capacitive island): the operating point "
                       "relies on gmin",
                       "expected for charge integrators (PLL loop filters); add a "
                       "bleed resistor if the DC level matters");
        }
    }

    // --- ANA002: voltage-source loops --------------------------------------
    {
        UnionFind rigid(nodeCount);
        for (const int b : dcRec.branches()) {
            const std::vector<NodeId> inc = dcRec.branchIncidence(b);
            NodeId x = kGround;
            NodeId y = kGround;
            if (inc.size() == 1) {
                x = inc.front(); // grounded source: edge to ground
            } else if (inc.size() == 2) {
                x = inc[0];
                y = inc[1];
            } else {
                continue; // degenerate/no incidence: not a rigid edge
            }
            if (!rigid.unite(x, y)) {
                report.add(
                    "ANA002", Severity::Error,
                    dcRec.branchOwnerOf(b),
                    "voltage-source loop closed between node(s) '" + sys.nodeName(x) +
                        "' and '" + sys.nodeName(y) +
                        "': the MNA matrix is singular and the DC solve will diverge",
                    "break the loop (series resistance) or drop one source");
                anyError = true;
            }
        }
    }

    // --- ANA003: current-source cutsets ------------------------------------
    {
        // Sum the DC injections per DC island; an island with no ground path
        // and nonzero net |injection| pushes current through gmin only.
        std::map<int, double> islandInjection;
        std::map<int, NodeId> islandExample;
        for (const auto& [n, i] : dcRec.injections()) {
            if (n == kGround || std::fabs(i) < 1e-30) {
                continue;
            }
            const int root = dcConn.find(n);
            islandInjection[root] += std::fabs(i);
            islandExample.emplace(root, n);
        }
        const int groundRoot = dcConn.find(kGround);
        for (const auto& [root, total] : islandInjection) {
            if (root == groundRoot || total < 1e-30) {
                continue;
            }
            const NodeId n = islandExample.at(root);
            report.add("ANA003", Severity::Error, sys.nodeName(n),
                       "current source '" + dcRec.injectorOf(n) +
                           "' injects DC current into an island with no DC return "
                           "path — the operating point is i/gmin",
                       "give the island a DC path to ground");
            anyError = true;
        }
    }

    // --- ANA004: singular DC matrix (with gmin), catch-all ------------------
    if (!anyError) {
        analog::Stamper gminStamper(dcA, dcRhs, nodeCount);
        for (NodeId n = 1; n < nodeCount; ++n) {
            gminStamper.conductance(n, kGround, 1e-12);
        }
        std::vector<double> x = dcRhs;
        if (!analog::luSolveInPlace(dcA, x)) {
            report.add("ANA004", Severity::Error, "<matrix>",
                       "DC MNA matrix is singular even with gmin — the operating-"
                       "point solve will throw DivergenceError",
                       "check for degenerate controlled-source constraints");
        }
    }

    return report;
}

} // namespace gfi::lint
