#include "lint/preflight.hpp"

#include "analyze/graph.hpp"
#include "batch/word_model.hpp"
#include "core/testbench.hpp"
#include "snapshot/snapshot.hpp"
#include "util/units.hpp"

#include <set>

namespace gfi::lint {

namespace {

using fault::FaultSpec;
using fault::Testbench;

struct Checker {
    const Testbench& tb;
    const FaultSpec& spec;
    Report& report;

    [[nodiscard]] std::string path() const { return fault::describe(spec); }

    void unknown(const char* kind, const std::string& name) const
    {
        report.add("PRE001", Severity::Error, path(),
                   std::string("unknown ") + kind + " '" + name + "'",
                   "check the testbench's registered injection targets");
    }

    void checkWindow(SimTime t) const
    {
        if (t < 0 || t > tb.duration()) {
            report.add("PRE003", Severity::Error, path(),
                       "injection time " + formatTime(t) +
                           " is outside the simulation window [0, " +
                           formatTime(tb.duration()) + "]",
                       "move the injection inside the observed run");
        }
    }

    void checkBit(const std::string& target, int bit) const
    {
        const auto& reg = tb.sim().digital().instrumentation();
        if (!reg.contains(target)) {
            return; // PRE001 already reported
        }
        const int width = reg.hook(target).width;
        if (bit < 0 || bit >= width) {
            report.add("PRE002", Severity::Error, path(),
                       "bit " + std::to_string(bit) + " is outside '" + target +
                           "' (width " + std::to_string(width) + ")",
                       "valid bits are 0.." + std::to_string(width - 1));
        }
    }

    void operator()(const std::monostate&) const {} // golden: always valid

    void operator()(const fault::BitFlipFault& f) const
    {
        if (!tb.sim().digital().instrumentation().contains(f.target)) {
            unknown("state element", f.target);
        }
        checkBit(f.target, f.bit);
        checkWindow(f.time);
    }

    void operator()(const fault::DoubleBitFlipFault& f) const
    {
        if (!tb.sim().digital().instrumentation().contains(f.target)) {
            unknown("state element", f.target);
        }
        checkBit(f.target, f.bitA);
        checkBit(f.target, f.bitB);
        if (f.bitA == f.bitB) {
            report.add("PRE002", Severity::Warning, path(),
                       "double flip of the same bit " + std::to_string(f.bitA) +
                           " is a no-op",
                       "pick two distinct bits");
        }
        checkWindow(f.time);
    }

    void operator()(const fault::StateWriteFault& f) const
    {
        const auto& reg = tb.sim().digital().instrumentation();
        if (!reg.contains(f.target)) {
            unknown("state element", f.target);
        } else {
            const int width = reg.hook(f.target).width;
            if (width < 64 && (f.value >> width) != 0) {
                report.add("PRE002", Severity::Warning, path(),
                           "value " + std::to_string(f.value) + " is wider than '" +
                               f.target + "' (width " + std::to_string(width) + ")",
                           "the write will be truncated");
            }
        }
        checkWindow(f.time);
    }

    void operator()(const fault::FsmTransitionFault& f) const
    {
        if (tb.findFsm(f.target) == nullptr) {
            unknown("FSM", f.target);
        }
        checkWindow(f.time);
    }

    void operator()(const fault::DigitalPulseFault& f) const
    {
        if (tb.findDigitalSaboteur(f.saboteur) == nullptr) {
            unknown("digital saboteur", f.saboteur);
        }
        if (f.width <= 0) {
            report.add("PRE002", Severity::Warning, path(),
                       "pulse width " + formatTime(f.width) + " never asserts",
                       "use a positive width");
        }
        checkWindow(f.time);
    }

    void operator()(const fault::StuckAtFault& f) const
    {
        if (tb.findDigitalSaboteur(f.saboteur) == nullptr) {
            unknown("digital saboteur", f.saboteur);
        }
        checkWindow(f.time);
    }

    void operator()(const fault::CurrentPulseFault& f) const
    {
        if (tb.findCurrentSaboteur(f.saboteur) == nullptr) {
            unknown("current saboteur", f.saboteur);
        }
        if (!f.shape) {
            report.add("PRE004", Severity::Error, path(),
                       "current-pulse fault without a pulse shape",
                       "attach a PulseShape (rectangular, double-exponential, ...)");
        }
        checkWindow(fromSeconds(f.timeSeconds));
    }

    void operator()(const fault::ParametricFault& f) const
    {
        if (tb.findParameter(f.parameter) == nullptr) {
            unknown("parameter", f.parameter);
        }
        checkWindow(f.time);
    }
};

} // namespace

Report preflightFault(const Testbench& tb, const FaultSpec& fault, std::size_t)
{
    Report report;
    std::visit(Checker{tb, fault, report}, fault);
    return report;
}

Report preflightCampaign(const Testbench& tb, const std::vector<FaultSpec>& faults)
{
    Report report;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        report.merge(preflightFault(tb, faults[i], i));
        if (fault::isGolden(faults[i])) {
            continue;
        }
        const std::string desc = fault::describe(faults[i]);
        if (!seen.insert(desc).second) {
            report.add("PRE005", Severity::Warning, desc,
                       "duplicate fault at index " + std::to_string(i),
                       "every run re-simulates; drop the duplicate");
        }
    }
    // PRE007: faults with no structural path to anything the classifier
    // observes. The graph is built once for the whole list (it depends only
    // on the netlist), and only statically-valid faults are scored — a
    // typo'd target is a PRE001, not an unobservable fault.
    const analyze::SignalGraph graph(tb);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (fault::isGolden(faults[i]) ||
            preflightFault(tb, faults[i], i).count(Severity::Error) != 0) {
            continue;
        }
        if (!graph.faultObservable(faults[i])) {
            report.add("PRE007", Severity::Warning, fault::describe(faults[i]),
                       "fault target has no structural path to any observed "
                       "output, watched signal or compared state",
                       "the run will classify Silent; observe the cone or drop "
                       "the fault (see analyze::SignalGraph)");
        }
    }
    // PRE008: batch-backend eligibility. Only scored when the design itself
    // word-compiles AND the list mixes batch-eligible with ineligible faults:
    // a design the word kernel cannot lift, or a list that is uniformly
    // event-driven, gains nothing from one warning per fault.
    const batch::CompileResult compiled = batch::compileWordModel(tb);
    if (compiled.model) {
        bool anyEligible = false;
        std::vector<std::pair<std::size_t, std::string>> ineligible;
        for (std::size_t i = 0; i < faults.size(); ++i) {
            if (fault::isGolden(faults[i]) ||
                preflightFault(tb, faults[i], i).count(Severity::Error) != 0) {
                continue;
            }
            const batch::FaultEligibility e =
                batch::faultEligibility(*compiled.model, faults[i]);
            if (e.eligible) {
                anyEligible = true;
            } else {
                ineligible.emplace_back(i, e.reason);
            }
        }
        if (anyEligible) {
            for (const auto& [i, reason] : ineligible) {
                report.add("PRE008", Severity::Warning, fault::describe(faults[i]),
                           "fault is not batch-eligible: " + reason,
                           "it falls back to the event-driven kernel when the "
                           "bit-parallel backend is on (see DESIGN.md §13)");
            }
        }
    }
    return report;
}

Report preflightSnapshot(const Testbench& tb)
{
    Report report;
    for (const auto& comp : tb.sim().digital().components()) {
        if (comp->snapshotExempt()) {
            continue; // declared stateless (gates, ROMs, structural shells)
        }
        if (dynamic_cast<const snapshot::Snapshottable*>(comp.get()) != nullptr) {
            continue;
        }
        report.add("PRE006", Severity::Error, comp->name(),
                   "component '" + comp->name() +
                       "' holds state but does not implement snapshot::Snapshottable",
                   "implement captureState/restoreState (or mark it snapshotExempt() "
                   "if stateless) before enabling fork-from-golden checkpoints");
    }
    return report;
}

Report preflightStoredDigest(const std::string& entryName, const std::string& storedDigest,
                             const std::string& currentDigest)
{
    Report report;
    if (storedDigest != currentDigest) {
        report.add("PRE009", Severity::Error, entryName,
                   "stale golden-store entry: stored netlist digest " + storedDigest +
                       " does not match the loaded circuit's digest " + currentDigest,
                   "the design changed since this entry was recorded; re-run the "
                   "campaign (or point the store at the matching netlist) instead of "
                   "replaying another design's verdicts");
    }
    return report;
}

PreflightError::PreflightError(Report report)
    : std::runtime_error("campaign preflight failed: " + report.summary() + "\n" +
                         report.table()),
      report_(std::move(report))
{
}

} // namespace gfi::lint
