#pragma once
// Umbrella entry point for the static-analysis subsystem: one call lints a
// whole testbench (digital netlist + analog topology), and one call adds the
// campaign fault-list preflight on top. CampaignRunner, the benches and the
// tests all go through these.

#include "lint/analog_lint.hpp"
#include "lint/digital_lint.hpp"
#include "lint/preflight.hpp"

namespace gfi::lint {

/// Lints both halves of @p tb's design. Non-const because the analog pass
/// replays component stamps (structure only; nothing is solved or advanced).
[[nodiscard]] Report lintTestbench(fault::Testbench& tb);

/// Design lint plus fault-list preflight: everything the campaign's
/// preflight phase checks.
[[nodiscard]] Report lintCampaign(fault::Testbench& tb,
                                  const std::vector<fault::FaultSpec>& faults);

} // namespace gfi::lint
