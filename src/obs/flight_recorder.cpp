#include "obs/flight_recorder.hpp"

#include "util/units.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace gfi::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1))
{
}

std::size_t FlightRecorder::size() const noexcept
{
    return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
}

void FlightRecorder::clear() noexcept
{
    head_ = 0;
    total_ = 0;
}

std::vector<FlightRecorder::Event> FlightRecorder::window() const
{
    const std::size_t n = size();
    std::vector<Event> out;
    out.reserve(n);
    // Oldest slot: head_ when the ring has wrapped, 0 otherwise.
    const std::size_t start = total_ > ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

const FlightRecorder::Event* FlightRecorder::lastOfKind(Kind kind) const
{
    const std::size_t n = size();
    const std::size_t start = total_ > ring_.size() ? head_ : 0;
    for (std::size_t i = n; i > 0; --i) {
        const Event& e = ring_[(start + i - 1) % ring_.size()];
        if (e.kind == kind) {
            return &e;
        }
    }
    return nullptr;
}

const char* FlightRecorder::kindName(Kind kind)
{
    switch (kind) {
    case Kind::Wave:
        return "wave";
    case Kind::SolverAccept:
        return "solver-accept";
    case Kind::SolverReject:
        return "solver-reject";
    case Kind::AtoD:
        return "atod";
    case Kind::DtoA:
        return "dtoa";
    case Kind::Restore:
        return "restore";
    }
    return "?";
}

namespace {

/// Kind-specific payload keys, appended after the common prefix.
std::string payloadJson(const FlightRecorder::Event& e)
{
    using Kind = FlightRecorder::Kind;
    switch (e.kind) {
    case Kind::Wave:
        return ", \"waves\": " + std::to_string(e.a) +
               ", \"pending_events\": " + std::to_string(e.b);
    case Kind::SolverAccept:
        return ", \"accepted_steps\": " + std::to_string(e.a) +
               ", \"dt_s\": " + formatDouble(e.value, 12);
    case Kind::SolverReject:
        return ", \"rejected_steps\": " + std::to_string(e.a) +
               ", \"dt_s\": " + formatDouble(e.value, 12);
    case Kind::AtoD:
        return ", \"crossings\": " + std::to_string(e.a) +
               ", \"rising\": " + (e.value != 0.0 ? std::string("true") : std::string("false"));
    case Kind::DtoA:
        return ", \"updates\": " + std::to_string(e.a) +
               ", \"level_v\": " + formatDouble(e.value, 9);
    case Kind::Restore:
        return "";
    }
    return "";
}

/// Simulated-time timestamp in microseconds for the Chrome trace: the analog
/// clock when the event came from the analog domain, the digital clock
/// otherwise.
std::string simMicros(const FlightRecorder::Event& e)
{
    using Kind = FlightRecorder::Kind;
    const bool analog = e.kind == Kind::SolverAccept || e.kind == Kind::SolverReject;
    const double us = analog ? e.analogTime * 1e6 : toSeconds(e.timeFs) * 1e6;
    return formatDouble(us, 9);
}

/// Chrome-trace track per kernel domain, so the forensic window renders as
/// one lane each for scheduler, solver and bridges.
int trackOf(FlightRecorder::Kind kind)
{
    using Kind = FlightRecorder::Kind;
    switch (kind) {
    case Kind::Wave:
        return 1;
    case Kind::SolverAccept:
    case Kind::SolverReject:
        return 2;
    case Kind::AtoD:
    case Kind::DtoA:
        return 3;
    case Kind::Restore:
        return 0;
    }
    return 0;
}

} // namespace

std::string FlightRecorder::jsonl() const
{
    std::string out;
    std::size_t seq = 0;
    for (const Event& e : window()) {
        out += "{\"seq\": " + std::to_string(seq++) + ", \"kind\": \"" + kindName(e.kind) +
               "\", \"t_fs\": " + std::to_string(e.timeFs) +
               ", \"t_analog_s\": " + formatDouble(e.analogTime, 12) + payloadJson(e) + "}\n";
    }
    return out;
}

std::string FlightRecorder::chromeTraceJson() const
{
    std::vector<std::string> entries;
    // Track-name metadata first, one lane per kernel domain.
    const std::pair<int, const char*> tracks[] = {
        {0, "simulator"}, {1, "digital scheduler"}, {2, "analog solver"}, {3, "ams bridges"}};
    for (const auto& [tid, name] : tracks) {
        entries.push_back("{\"pid\": 1, \"tid\": " + std::to_string(tid) +
                          ", \"ph\": \"M\", \"name\": \"thread_name\", \"args\": "
                          "{\"name\": \"" +
                          std::string(name) + "\"}}");
    }
    for (const Event& e : window()) {
        entries.push_back("{\"pid\": 1, \"tid\": " + std::to_string(trackOf(e.kind)) +
                          ", \"ph\": \"i\", \"s\": \"t\", \"name\": \"" + kindName(e.kind) +
                          "\", \"cat\": \"kernel\", \"ts\": " + simMicros(e) +
                          ", \"args\": {\"t_fs\": " + std::to_string(e.timeFs) +
                          payloadJson(e) + "}}");
    }
    std::string out = "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        out += "  " + entries[i] + (i + 1 < entries.size() ? ",\n" : "\n");
    }
    out += "], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

namespace {

void writeFileOrThrow(const std::string& path, const std::string& body)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        throw std::runtime_error("FlightRecorder: cannot open " + path);
    }
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (!ok) {
        throw std::runtime_error("FlightRecorder: write failed on " + path);
    }
}

} // namespace

void FlightRecorder::writeArtifacts(const std::string& stem) const
{
    const std::filesystem::path parent = std::filesystem::path(stem).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        if (ec) {
            throw std::runtime_error("FlightRecorder: cannot create " + parent.string() +
                                     ": " + ec.message());
        }
    }
    writeFileOrThrow(stem + ".jsonl", jsonl());
    writeFileOrThrow(stem + ".trace.json", chromeTraceJson());
}

} // namespace gfi::obs
