#include "obs/bench_compare.hpp"

#include "util/json.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cmath>

namespace gfi::obs {

namespace {

bool endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

BenchMeta parseMeta(const util::JsonValue& doc)
{
    BenchMeta meta;
    const util::JsonValue* m = doc.find("meta");
    if (m == nullptr || !m->isObject()) {
        return meta;
    }
    meta.present = true;
    if (const auto* v = m->find("schema"); v != nullptr && v->isNumber()) {
        meta.schema = static_cast<long long>(v->asNumber());
    }
    if (const auto* v = m->find("tool"); v != nullptr && v->isString()) {
        meta.tool = v->asString();
    }
    if (const auto* v = m->find("git_sha"); v != nullptr && v->isString()) {
        meta.gitSha = v->asString();
    }
    if (const auto* v = m->find("build_type"); v != nullptr && v->isString()) {
        meta.buildType = v->asString();
    }
    if (const auto* v = m->find("workers"); v != nullptr && v->isNumber()) {
        meta.workers = static_cast<long long>(v->asNumber());
    }
    if (const auto* v = m->find("timestamp"); v != nullptr && v->isString()) {
        meta.timestamp = v->asString();
    }
    return meta;
}

/// Numeric members of @p obj (document order), skipping "meta" and names.
BenchSample sampleFromObject(std::string name, const util::JsonObject& obj)
{
    BenchSample s;
    s.name = std::move(name);
    for (const auto& [key, value] : obj) {
        if (value.isNumber()) {
            s.values.emplace_back(key, value.asNumber());
        } else if (value.isBool()) {
            // Booleans compare for equality drift (e.g. "identical"), mapped
            // onto 0/1 so a flipped invariant shows as a changed metric.
            s.values.emplace_back(key, value.asBool() ? 1.0 : 0.0);
        }
    }
    return s;
}

} // namespace

const double* BenchSample::value(const std::string& key) const
{
    for (const auto& [k, v] : values) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

const BenchSample* BenchSet::sample(const std::string& name) const
{
    for (const BenchSample& s : samples) {
        if (s.name == name) {
            return &s;
        }
    }
    return nullptr;
}

BenchSet parseBenchSet(const std::string& jsonText, std::string source)
{
    BenchSet set;
    set.source = std::move(source);
    const util::JsonValue doc = util::parseJson(jsonText);
    if (!doc.isObject()) {
        throw std::runtime_error(set.source + ": not a JSON object");
    }
    set.meta = parseMeta(doc);

    if (const auto* benches = doc.find("benchmarks");
        benches != nullptr && benches->isArray()) {
        // Tee shape: {"tool": ..., "benchmarks": [{"name": ..., metrics}]}.
        if (!set.meta.present) {
            if (const auto* tool = doc.find("tool"); tool != nullptr && tool->isString()) {
                set.meta.tool = tool->asString();
            }
        }
        for (const util::JsonValue& b : benches->asArray()) {
            if (!b.isObject()) {
                continue;
            }
            std::string name = "?";
            if (const auto* n = b.find("name"); n != nullptr && n->isString()) {
                name = n->asString();
            }
            set.samples.push_back(sampleFromObject(std::move(name), b.asObject()));
        }
        return set;
    }
    if (const auto* bench = doc.find("benchmark"); bench != nullptr && bench->isString()) {
        // Single-object shape: {"benchmark": "perf_x", metrics...}.
        set.samples.push_back(sampleFromObject(bench->asString(), doc.asObject()));
        return set;
    }
    throw std::runtime_error(set.source +
                             ": neither a \"benchmarks\" array nor a \"benchmark\" object");
}

MetricDirection metricDirection(const std::string& key)
{
    if (key.find("per_s") != std::string::npos ||
        key.find("per_second") != std::string::npos || key.rfind("speedup", 0) == 0) {
        return MetricDirection::HigherIsBetter;
    }
    if (endsWith(key, "_s") || endsWith(key, "_ms") || endsWith(key, "_seconds") ||
        key == "wall_ms" || endsWith(key, "_ns")) {
        return MetricDirection::LowerIsBetter;
    }
    return MetricDirection::Ignore;
}

std::size_t BenchComparison::regressions() const
{
    std::size_t n = 0;
    for (const BenchDelta& d : deltas) {
        n += d.regression ? 1 : 0;
    }
    return n;
}

std::string BenchComparison::table() const
{
    std::string out;
    for (const std::string& s : incompatibilities) {
        out += "INCOMPATIBLE: " + s + "\n";
    }
    for (const std::string& s : warnings) {
        out += "note: " + s + "\n";
    }
    if (refused()) {
        return out;
    }
    TextTable t;
    t.setHeader({"benchmark", "metric", "baseline", "current", "change", "verdict"});
    for (const BenchDelta& d : deltas) {
        const double pct = d.worseBy * 100.0;
        t.addRow({d.sample, d.metric, formatDouble(d.baseline, 6),
                  formatDouble(d.current, 6),
                  (pct >= 0 ? "+" : "") + formatDouble(pct, 2) + "% worse",
                  d.regression ? "REGRESSION" : (d.improvement ? "improved" : "ok")});
    }
    out += t.str();
    return out;
}

BenchComparison compareBenchSets(const BenchSet& baseline, const BenchSet& current,
                                 double threshold)
{
    BenchComparison cmp;
    const BenchMeta& bm = baseline.meta;
    const BenchMeta& cm = current.meta;
    if (!bm.present || !cm.present) {
        cmp.warnings.push_back("missing metadata block in " +
                               (!bm.present ? baseline.source : current.source) +
                               " (pre-metadata emitter?); comparability unchecked");
    } else {
        if (bm.schema != cm.schema) {
            cmp.incompatibilities.push_back(
                "metadata schema differs (" + std::to_string(bm.schema) + " vs " +
                std::to_string(cm.schema) + ")");
        }
        if (!bm.tool.empty() && !cm.tool.empty() && bm.tool != cm.tool) {
            cmp.incompatibilities.push_back("tool differs (" + bm.tool + " vs " + cm.tool +
                                            ")");
        }
        if (bm.buildType != cm.buildType) {
            cmp.incompatibilities.push_back("build type differs (" + bm.buildType + " vs " +
                                            cm.buildType + ")");
        }
        if (bm.workers != cm.workers) {
            cmp.incompatibilities.push_back(
                "configured worker count differs (" + std::to_string(bm.workers) + " vs " +
                std::to_string(cm.workers) + ")");
        }
        if (bm.gitSha != cm.gitSha) {
            cmp.warnings.push_back("git sha " + bm.gitSha + " -> " + cm.gitSha);
        }
    }
    if (cmp.refused()) {
        return cmp;
    }

    for (const BenchSample& base : baseline.samples) {
        const BenchSample* cur = current.sample(base.name);
        if (cur == nullptr) {
            cmp.warnings.push_back("benchmark '" + base.name + "' missing from " +
                                   current.source);
            continue;
        }
        for (const auto& [key, baseVal] : base.values) {
            const MetricDirection dir = metricDirection(key);
            if (dir == MetricDirection::Ignore) {
                continue;
            }
            const double* curVal = cur->value(key);
            if (curVal == nullptr) {
                cmp.warnings.push_back("metric '" + base.name + "/" + key +
                                       "' missing from " + current.source);
                continue;
            }
            if (!(std::fabs(baseVal) > 0.0) || !std::isfinite(baseVal) ||
                !std::isfinite(*curVal)) {
                continue; // no meaningful relative change
            }
            BenchDelta d;
            d.sample = base.name;
            d.metric = key;
            d.baseline = baseVal;
            d.current = *curVal;
            d.worseBy = dir == MetricDirection::HigherIsBetter
                            ? (baseVal - *curVal) / baseVal
                            : (*curVal - baseVal) / baseVal;
            d.regression = d.worseBy > threshold;
            d.improvement = d.worseBy < -threshold;
            cmp.deltas.push_back(std::move(d));
        }
    }
    for (const BenchSample& cur : current.samples) {
        if (baseline.sample(cur.name) == nullptr) {
            cmp.warnings.push_back("benchmark '" + cur.name + "' new in " + current.source);
        }
    }
    return cmp;
}

} // namespace gfi::obs
