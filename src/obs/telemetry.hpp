#pragma once
// Telemetry facade: one object bundling the metrics registry and the Chrome
// trace writer, with the GFI_METRICS / GFI_TRACE environment switches.
//
// Zero overhead when disabled is the design contract: every instrumentation
// site is guarded by a null/flag check (Span construction on a null Telemetry
// is two pointer tests and no allocation), so a campaign without telemetry
// attached executes the exact code paths of the pre-observability engine and
// produces byte-identical journals, reports and summaries.

#include "obs/metrics.hpp"
#include "obs/trace_writer.hpp"

#include <memory>
#include <string>

namespace gfi::obs {

class Telemetry {
public:
    Telemetry() = default;

    /// Builds a telemetry instance from the environment: GFI_METRICS=<file>
    /// enables the metrics dump (Prometheus text, or JSON when the path ends
    /// in ".json"), GFI_TRACE=<file> enables Chrome-trace span collection.
    /// Returns nullptr when neither variable is set.
    [[nodiscard]] static std::unique_ptr<Telemetry> fromEnv();

    /// The metrics registry (always available; dumped only with a path set).
    [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
    [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }

    /// Enables span collection (idempotent). Spans emitted before this call
    /// are dropped by construction (null writer).
    void enableTracing()
    {
        if (!trace_) {
            trace_ = std::make_unique<TraceWriter>();
        }
    }

    /// The trace writer, or nullptr when tracing is disabled.
    [[nodiscard]] TraceWriter* trace() noexcept { return trace_.get(); }

    /// Output paths; empty = do not write that artifact in flush().
    void setTracePath(std::string path)
    {
        tracePath_ = std::move(path);
        if (!tracePath_.empty()) {
            enableTracing();
        }
    }
    void setMetricsPath(std::string path) { metricsPath_ = std::move(path); }
    [[nodiscard]] const std::string& tracePath() const noexcept { return tracePath_; }
    [[nodiscard]] const std::string& metricsPath() const noexcept { return metricsPath_; }

    /// Writes the configured artifacts: the trace JSON and the metrics dump.
    /// Safe to call repeatedly (each call rewrites the files).
    void flush() const;

private:
    MetricsRegistry metrics_;
    std::unique_ptr<TraceWriter> trace_;
    std::string tracePath_;
    std::string metricsPath_;
};

/// RAII scoped span: emits one Chrome-trace complete event covering its
/// lifetime, on the calling thread's track. Nesting spans on one thread
/// renders as a flame stack. Constructing a span on a null Telemetry or one
/// without tracing enabled is a no-op.
class Span {
public:
    Span(Telemetry* telemetry, std::string name, const char* category)
        : writer_(telemetry != nullptr ? telemetry->trace() : nullptr),
          name_(std::move(name)), category_(category)
    {
        if (writer_ != nullptr) {
            startUs_ = writer_->nowMicros();
        }
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attaches a JSON object body ("{...}") shown in the trace viewer's
    /// argument pane (e.g. the fault description, the outcome).
    void setArgs(std::string argsJson)
    {
        if (writer_ != nullptr) {
            args_ = std::move(argsJson);
        }
    }

    ~Span()
    {
        if (writer_ != nullptr) {
            writer_->completeEvent(name_, category_, startUs_, writer_->nowMicros() - startUs_,
                                   args_);
        }
    }

private:
    TraceWriter* writer_;
    std::string name_;
    const char* category_;
    std::string args_;
    double startUs_ = 0.0;
};

} // namespace gfi::obs
