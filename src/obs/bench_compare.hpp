#pragma once
// Bench regression comparison: parses the repo's BENCH_*.json artifacts
// (either shape — the google-benchmark tee {"tool": ..., "benchmarks": [...]}
// or the single-object {"benchmark": "perf_x", ...} summaries), checks the
// shared metadata blocks for comparability (schema / tool / build type /
// worker count — apples-to-oranges comparisons are refused, not warned away),
// and classifies each shared numeric metric as regression / improvement /
// stable against a relative threshold.
//
// Metric direction is inferred from the key name: throughput-like keys
// (*_per_s, *per_second, speedup*) are higher-is-better; duration-like keys
// (*_s, *_ms, *_seconds, wall_ms) are lower-is-better; anything else
// (counts, booleans, identifiers) is ignored for regression purposes.

#include <string>
#include <utility>
#include <vector>

namespace gfi::obs {

/// The shared metadata block bench emitters stamp into every BENCH_*.json.
struct BenchMeta {
    bool present = false;   ///< a "meta" object existed in the document
    long long schema = 0;   ///< metadata schema version
    std::string tool;       ///< emitting benchmark tool
    std::string gitSha;     ///< source revision (informational)
    std::string buildType;  ///< CMAKE_BUILD_TYPE of the binary
    long long workers = -1; ///< configured worker count (0 = auto)
    std::string timestamp;  ///< build timestamp (informational)
};

/// One named benchmark with its numeric metrics, document order.
struct BenchSample {
    std::string name;
    std::vector<std::pair<std::string, double>> values;

    [[nodiscard]] const double* value(const std::string& key) const;
};

/// One parsed BENCH_*.json document.
struct BenchSet {
    std::string source; ///< file name / label for messages
    BenchMeta meta;
    std::vector<BenchSample> samples;

    [[nodiscard]] const BenchSample* sample(const std::string& name) const;
};

/// Parses either BENCH document shape. Throws std::runtime_error on
/// malformed JSON or an unrecognized document layout.
[[nodiscard]] BenchSet parseBenchSet(const std::string& jsonText, std::string source);

/// How a metric key is judged.
enum class MetricDirection {
    HigherIsBetter, ///< throughput, speedup
    LowerIsBetter,  ///< durations
    Ignore,         ///< counts, flags — compared for presence only
};
[[nodiscard]] MetricDirection metricDirection(const std::string& key);

/// One compared metric of one sample.
struct BenchDelta {
    std::string sample;
    std::string metric;
    double baseline = 0.0;
    double current = 0.0;
    double worseBy = 0.0; ///< relative change in the "worse" direction
                          ///< (positive = regressed, negative = improved)
    bool regression = false;
    bool improvement = false;
};

/// Result of comparing two BenchSets.
struct BenchComparison {
    std::vector<std::string> incompatibilities; ///< non-empty = refused
    std::vector<std::string> warnings;          ///< informational notes
    std::vector<BenchDelta> deltas;             ///< per shared metric

    [[nodiscard]] bool refused() const noexcept { return !incompatibilities.empty(); }
    [[nodiscard]] std::size_t regressions() const;

    /// Printable comparison table plus notes.
    [[nodiscard]] std::string table() const;
};

/// Compares @p current against @p baseline. @p threshold is the relative
/// change (e.g. 0.20 = 20%) beyond which a metric counts as regressed or
/// improved. Metadata mismatches (schema/tool/build type/workers) refuse the
/// comparison; differing git SHAs and missing metadata only warn.
[[nodiscard]] BenchComparison compareBenchSets(const BenchSet& baseline,
                                               const BenchSet& current, double threshold);

} // namespace gfi::obs
