#include "obs/trace_writer.hpp"

#include "util/units.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace gfi::obs {

namespace {

std::string escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            // Remaining control characters are illegal raw inside JSON
            // strings; span names are caller-controlled, so harden here.
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string renderMicros(double us)
{
    // Trace timestamps want sub-microsecond precision but not 17 digits.
    return formatDouble(us, 3);
}

} // namespace

int TraceWriter::currentTrackId()
{
    static std::atomic<int> next{0};
    thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void TraceWriter::push(Event e)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(e));
}

void TraceWriter::completeEvent(const std::string& name, const std::string& category,
                                double startUs, double durationUs, const std::string& args)
{
    push(Event{'X', currentTrackId(), startUs, durationUs, name, category, args});
}

void TraceWriter::instantEvent(const std::string& name, const std::string& category,
                               const std::string& args)
{
    push(Event{'i', currentTrackId(), nowMicros(), 0.0, name, category, args});
}

void TraceWriter::nameCurrentTrack(const std::string& name)
{
    const int tid = currentTrackId();
    const std::lock_guard<std::mutex> lock(mutex_);
    for (int named : namedTracks_) {
        if (named == tid) {
            return;
        }
    }
    namedTracks_.push_back(tid);
    events_.push_back(Event{'M', tid, 0.0, 0.0, name, {}, {}});
}

std::size_t TraceWriter::eventCount() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::string TraceWriter::json() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event& e = events_[i];
        out += "  {\"pid\": 1, \"tid\": " + std::to_string(e.tid) + ", ";
        if (e.phase == 'M') {
            out += "\"ph\": \"M\", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
                   escape(e.name) + "\"}";
        } else {
            out += "\"ph\": \"" + std::string(1, e.phase) + "\", \"name\": \"" +
                   escape(e.name) + "\", \"cat\": \"" + escape(e.category) +
                   "\", \"ts\": " + renderMicros(e.tsUs);
            if (e.phase == 'X') {
                out += ", \"dur\": " + renderMicros(e.durUs);
            }
            if (e.phase == 'i') {
                out += ", \"s\": \"t\"";
            }
            if (!e.args.empty()) {
                out += ", \"args\": " + e.args;
            }
        }
        out += "}";
        out += i + 1 < events_.size() ? ",\n" : "\n";
    }
    out += "], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

void TraceWriter::writeFile(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        throw std::runtime_error("TraceWriter: cannot open " + path);
    }
    const std::string body = json();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (!ok) {
        throw std::runtime_error("TraceWriter: write failed on " + path);
    }
}

} // namespace gfi::obs
