#pragma once
// Chrome trace-event JSON writer: collects duration ("X"), instant ("i") and
// metadata ("M") events and serializes them in the Trace Event Format that
// chrome://tracing and Perfetto load directly, so a parallel fault-injection
// campaign renders as one flame timeline with a track per worker thread.
//
// Track model: every thread that emits an event gets a small dense track id
// on first use (thread_local lookup, one atomic increment per thread ever);
// the campaign layer names the tracks ("worker 0", "campaign") with metadata
// events. Timestamps are microseconds of wall clock since the writer was
// constructed — relative, so traces are small and diff-friendly modulo the
// timings themselves.
//
// Thread safety: emit calls append to a mutex-guarded buffer (spans are rare
// events — per run, not per kernel wave — so a mutex is fine); write() is a
// one-shot serialization at campaign end.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gfi::obs {

class TraceWriter {
public:
    TraceWriter() : epoch_(std::chrono::steady_clock::now()) {}
    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /// Microseconds since the writer's construction (event timestamps).
    [[nodiscard]] double nowMicros() const
    {
        return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                         epoch_)
            .count();
    }

    /// A dense per-thread track id, assigned on the calling thread's first
    /// emit and stable for the thread's lifetime.
    [[nodiscard]] static int currentTrackId();

    /// Emits one complete ("X") duration event on the calling thread's track.
    /// @p args is a ready-made JSON object body ("{...}"), or empty.
    void completeEvent(const std::string& name, const std::string& category, double startUs,
                       double durationUs, const std::string& args = {});

    /// Emits an instant ("i") event on the calling thread's track.
    void instantEvent(const std::string& name, const std::string& category,
                      const std::string& args = {});

    /// Names the calling thread's track (a "thread_name" metadata event).
    /// Deduplicated per track, so callers may invoke it once per unit of work
    /// instead of tracking first-use themselves.
    void nameCurrentTrack(const std::string& name);

    /// Number of buffered events (tests).
    [[nodiscard]] std::size_t eventCount() const;

    /// Serializes all buffered events as {"traceEvents": [...], ...} JSON.
    [[nodiscard]] std::string json() const;

    /// Writes json() to @p path; throws std::runtime_error on I/O failure.
    void writeFile(const std::string& path) const;

private:
    struct Event {
        char phase;           // 'X', 'i' or 'M'
        int tid;
        double tsUs;
        double durUs;         // X only
        std::string name;
        std::string category; // empty for M
        std::string args;     // JSON object body or empty
    };

    void push(Event e);

    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::vector<int> namedTracks_; // tids with a thread_name event already

};

} // namespace gfi::obs
