#pragma once
// Kernel probe snapshot: one coherent reading of the always-on kernel
// counters (digital scheduler, analog solver, AMS bridges) of a single
// simulator instance.
//
// The campaign engine samples a baseline right before a run starts (after a
// possible checkpoint restore, whose restored counters would otherwise be
// billed to the run) and a final reading when the run ends — including runs
// that end by unwinding on a watchdog timeout, which is exactly when the
// reading matters most ("why did this run stall?"). delta() of the two is the
// run's own deterministic resource consumption: it depends only on the
// simulated work, never on worker count or wall clock, which is what makes
// campaign metric counts reproducible at any parallel width.

#include <cstdint>
#include <string>

namespace gfi::obs {

/// One reading of a simulator's kernel counters. For per-run deltas the
/// counter fields subtract; the level fields (queue depth high-water, min
/// accepted step) are taken from the final reading as-is.
struct ProbeSnapshot {
    bool valid = false; ///< false = never sampled (e.g. testbench build threw)

    // Digital scheduler.
    std::uint64_t digitalEvents = 0;     ///< queue entries executed
    std::uint64_t deltaCycles = 0;       ///< waves run
    std::uint64_t queueHighWater = 0;    ///< max pending queue depth observed
    std::uint64_t pendingEvents = 0;     ///< queue depth at sample time

    // Analog solver (all zero for purely digital designs).
    std::uint64_t analogAcceptedSteps = 0;
    std::uint64_t analogRejectedSteps = 0;
    std::uint64_t newtonIterations = 0;
    std::uint64_t companionRebuilds = 0; ///< discontinuity restarts
    double minAcceptedDt = 0.0;          ///< smallest accepted step (s); 0 = none
    double lastAcceptedDt = 0.0;         ///< most recent accepted step (s)

    // AMS bridges.
    std::uint64_t atodCrossings = 0; ///< analog->digital threshold firings
    std::uint64_t dtoaEvents = 0;    ///< digital->analog drive updates

    /// This reading minus @p baseline for the monotone counters; level fields
    /// keep this reading's values. Both snapshots must be valid.
    [[nodiscard]] ProbeSnapshot delta(const ProbeSnapshot& baseline) const
    {
        ProbeSnapshot d = *this;
        auto sub = [](std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : 0; };
        d.digitalEvents = sub(digitalEvents, baseline.digitalEvents);
        d.deltaCycles = sub(deltaCycles, baseline.deltaCycles);
        d.analogAcceptedSteps = sub(analogAcceptedSteps, baseline.analogAcceptedSteps);
        d.analogRejectedSteps = sub(analogRejectedSteps, baseline.analogRejectedSteps);
        d.newtonIterations = sub(newtonIterations, baseline.newtonIterations);
        d.companionRebuilds = sub(companionRebuilds, baseline.companionRebuilds);
        d.atodCrossings = sub(atodCrossings, baseline.atodCrossings);
        d.dtoaEvents = sub(dtoaEvents, baseline.dtoaEvents);
        return d;
    }

    /// One-line human summary for stall diagnostics ("why did the watchdog
    /// fire?"): the last solver step sizes and the scheduler queue state.
    [[nodiscard]] std::string stallSummary() const
    {
        if (!valid) {
            return "no probe data";
        }
        std::string s = "queue depth " + std::to_string(pendingEvents) + " (high-water " +
                        std::to_string(queueHighWater) + "), " +
                        std::to_string(deltaCycles) + " waves";
        if (analogAcceptedSteps + analogRejectedSteps > 0) {
            s += ", solver " + std::to_string(analogAcceptedSteps) + " accepted / " +
                 std::to_string(analogRejectedSteps) + " rejected steps, last dt " +
                 std::to_string(lastAcceptedDt) + " s, min dt " +
                 std::to_string(minAcceptedDt) + " s";
        }
        return s;
    }
};

} // namespace gfi::obs
