#include "obs/metrics.hpp"

#include "util/units.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace gfi::obs {

namespace {

std::uint64_t packDouble(double v) noexcept
{
    std::uint64_t raw = 0;
    std::memcpy(&raw, &v, sizeof raw);
    return raw;
}

double unpackDouble(std::uint64_t raw) noexcept
{
    double v = 0;
    std::memcpy(&v, &raw, sizeof v);
    return v;
}

/// Numbers in exposition output: integers render without a decimal point so
/// counter dumps are byte-stable and diffable.
std::string renderNumber(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    return formatDouble(v, 9);
}

/// JSON string-escapes an instrument name: labeled names embed quotes
/// (`name{key="value"}`) which are legal Prometheus but must be escaped when
/// the name becomes a JSON object key.
std::string jsonEscapeName(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

/// The instrument name up to the label block (TYPE/HELP headers cover every
/// labeled sibling of the same base name).
std::string baseName(const std::string& name)
{
    const std::size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
}

} // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upperBounds) : bounds_(std::move(upperBounds))
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
        throw std::invalid_argument("Histogram: bucket bounds must be sorted ascending");
    }
    bucketStorage_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    buckets_ = bucketStorage_.get();
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

void Histogram::observe(double v) noexcept
{
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) {
        ++i;
    }
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = sumBits_.load(std::memory_order_relaxed);
    while (!sumBits_.compare_exchange_weak(cur, packDouble(unpackDouble(cur) + v),
                                           std::memory_order_relaxed)) {
    }
}

double Histogram::sum() const noexcept
{
    return unpackDouble(sumBits_.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Instrument& inst = instruments_[name];
    if (!inst.counter) {
        if (inst.gauge || inst.histogram) {
            throw std::logic_error("MetricsRegistry: '" + name +
                                   "' already registered as a different kind");
        }
        inst.counter = std::make_unique<Counter>();
        inst.help = help;
    }
    return *inst.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Instrument& inst = instruments_[name];
    if (!inst.gauge) {
        if (inst.counter || inst.histogram) {
            throw std::logic_error("MetricsRegistry: '" + name +
                                   "' already registered as a different kind");
        }
        inst.gauge = std::make_unique<Gauge>();
        inst.help = help;
    }
    return *inst.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upperBounds,
                                      const std::string& help)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Instrument& inst = instruments_[name];
    if (!inst.histogram) {
        if (inst.counter || inst.gauge) {
            throw std::logic_error("MetricsRegistry: '" + name +
                                   "' already registered as a different kind");
        }
        inst.histogram = std::make_unique<Histogram>(std::move(upperBounds));
        inst.help = help;
    }
    return *inst.histogram;
}

bool MetricsRegistry::has(const std::string& name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return instruments_.count(name) != 0;
}

std::uint64_t MetricsRegistry::counterValue(const std::string& name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = instruments_.find(name);
    return it != instruments_.end() && it->second.counter ? it->second.counter->value() : 0;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counterValues() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, inst] : instruments_) {
        if (inst.counter) {
            out[name] = inst.counter->value();
        }
    }
    return out;
}

std::string MetricsRegistry::prometheusText() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    std::string lastBase;
    for (const auto& [name, inst] : instruments_) {
        const std::string base = baseName(name);
        if (base != lastBase) {
            lastBase = base;
            if (!inst.help.empty()) {
                out += "# HELP " + base + " " + inst.help + "\n";
            }
            out += "# TYPE " + base + " ";
            out += inst.counter ? "counter" : inst.gauge ? "gauge" : "histogram";
            out += "\n";
        }
        if (inst.counter) {
            out += name + " " + std::to_string(inst.counter->value()) + "\n";
        } else if (inst.gauge) {
            out += name + " " + renderNumber(inst.gauge->value()) + "\n";
        } else if (inst.histogram) {
            const Histogram& h = *inst.histogram;
            // Buckets render cumulatively, per the exposition format.
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < h.upperBounds().size(); ++i) {
                cumulative += h.bucketCount(i);
                out += base + "_bucket{le=\"" + renderNumber(h.upperBounds()[i]) + "\"} " +
                       std::to_string(cumulative) + "\n";
            }
            out += base + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
            out += base + "_sum " + renderNumber(h.sum()) + "\n";
            out += base + "_count " + std::to_string(h.count()) + "\n";
        }
    }
    return out;
}

std::string MetricsRegistry::json() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string counters;
    std::string gauges;
    std::string histograms;
    for (const auto& [name, inst] : instruments_) {
        if (inst.counter) {
            counters += (counters.empty() ? "" : ",\n") + std::string("    \"") +
                        jsonEscapeName(name) + "\": " + std::to_string(inst.counter->value());
        } else if (inst.gauge) {
            gauges += (gauges.empty() ? "" : ",\n") + std::string("    \"") +
                      jsonEscapeName(name) + "\": " + renderNumber(inst.gauge->value());
        } else if (inst.histogram) {
            const Histogram& h = *inst.histogram;
            std::string buckets;
            for (std::size_t i = 0; i < h.upperBounds().size(); ++i) {
                buckets += (i > 0 ? ", " : "") + std::string("{\"le\": ") +
                           renderNumber(h.upperBounds()[i]) + ", \"count\": " +
                           std::to_string(h.bucketCount(i)) + "}";
            }
            buckets += (h.upperBounds().empty() ? "" : ", ") +
                       std::string("{\"le\": \"+Inf\", \"count\": ") +
                       std::to_string(h.bucketCount(h.upperBounds().size())) + "}";
            histograms += (histograms.empty() ? "" : ",\n") + std::string("    \"") +
                          jsonEscapeName(name) + "\": {\"count\": " + std::to_string(h.count()) +
                          ", \"sum\": " + renderNumber(h.sum()) + ", \"buckets\": [" +
                          buckets + "]}";
        }
    }
    return "{\n  \"counters\": {\n" + counters + "\n  },\n  \"gauges\": {\n" + gauges +
           "\n  },\n  \"histograms\": {\n" + histograms + "\n  }\n}\n";
}

} // namespace gfi::obs
