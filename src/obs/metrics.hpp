#pragma once
// Metrics registry: thread-safe counters, gauges and fixed-bucket histograms
// with Prometheus-style text and JSON exposition.
//
// Design constraints, in order:
//   1. Hot-path cost is one relaxed atomic RMW per update — instruments are
//      looked up once (registration) and then updated lock-free, so kernels
//      and campaign workers can hammer them concurrently.
//   2. Deterministic exposition: instruments render in name order and values
//      carry no timestamps, so two campaigns that do the same simulated work
//      produce byte-identical dumps (the worker-width invariance contract).
//   3. Labels ride inside the instrument name ("gfi_runs_total{outcome=
//      \"silent\"}"): the registry stays a flat map and the text exposition
//      is already in Prometheus form; the TYPE/HELP header is emitted once
//      per base name (the part before '{').

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gfi::obs {

/// Monotonically increasing event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or min/max-folded) measurement. Stored as double so it can
/// hold both counts (queue depths) and physical quantities (step sizes).
class Gauge {
public:
    void set(double v) noexcept { bits_.store(pack(v), std::memory_order_relaxed); }

    /// Folds in a candidate maximum (high-water marks).
    void foldMax(double v) noexcept
    {
        std::uint64_t cur = bits_.load(std::memory_order_relaxed);
        while (unpack(cur) < v &&
               !bits_.compare_exchange_weak(cur, pack(v), std::memory_order_relaxed)) {
        }
    }

    /// Folds in a candidate minimum, ignoring the initial 0 ("unset") state.
    void foldMinNonzero(double v) noexcept
    {
        if (v <= 0.0) {
            return;
        }
        std::uint64_t cur = bits_.load(std::memory_order_relaxed);
        while ((unpack(cur) == 0.0 || unpack(cur) > v) &&
               !bits_.compare_exchange_weak(cur, pack(v), std::memory_order_relaxed)) {
        }
    }

    [[nodiscard]] double value() const noexcept
    {
        return unpack(bits_.load(std::memory_order_relaxed));
    }

private:
    static std::uint64_t pack(double v) noexcept
    {
        std::uint64_t raw = 0;
        static_assert(sizeof raw == sizeof v);
        __builtin_memcpy(&raw, &v, sizeof raw);
        return raw;
    }
    static double unpack(std::uint64_t raw) noexcept
    {
        double v = 0;
        __builtin_memcpy(&v, &raw, sizeof v);
        return v;
    }

    std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram: cumulative bucket counts in Prometheus "le"
/// convention (each bucket counts observations <= its upper bound, plus an
/// implicit +Inf bucket). Bounds are fixed at construction; observe() is one
/// linear scan plus two relaxed increments.
class Histogram {
public:
    explicit Histogram(std::vector<double> upperBounds);

    void observe(double v) noexcept;

    [[nodiscard]] const std::vector<double>& upperBounds() const noexcept { return bounds_; }

    /// Count of observations in bucket @p i (non-cumulative; i == size() is
    /// the overflow/+Inf bucket).
    [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const noexcept
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept;

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> bucketStorage_;
    std::atomic<std::uint64_t>* buckets_; // bounds_.size() + 1 entries
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumBits_{0}; // CAS-folded double
};

/// Named instruments plus exposition. Registration (counter()/gauge()/
/// histogram()) takes a mutex and returns a stable reference; updates on the
/// returned instrument are lock-free. Instrument names may embed Prometheus
/// labels: `name{key="value"}`.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Returns the named counter, creating it on first use. @p help is kept
    /// from the first registration.
    Counter& counter(const std::string& name, const std::string& help = "");

    Gauge& gauge(const std::string& name, const std::string& help = "");

    /// Returns the named histogram, creating it with @p upperBounds on first
    /// use (later calls ignore the bounds argument).
    Histogram& histogram(const std::string& name, std::vector<double> upperBounds,
                         const std::string& help = "");

    /// True when an instrument of any kind is registered under @p name.
    [[nodiscard]] bool has(const std::string& name) const;

    /// Value of a registered counter; 0 when absent (dashboards and tests).
    [[nodiscard]] std::uint64_t counterValue(const std::string& name) const;

    /// All counters as name -> value, in name order. This is the worker-width
    /// invariant slice of the registry (gauges may hold timings).
    [[nodiscard]] std::map<std::string, std::uint64_t> counterValues() const;

    /// Prometheus text exposition format (one block per instrument, name
    /// order, TYPE/HELP emitted once per base name).
    [[nodiscard]] std::string prometheusText() const;

    /// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
    [[nodiscard]] std::string json() const;

private:
    struct Instrument {
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Instrument> instruments_;
};

} // namespace gfi::obs
