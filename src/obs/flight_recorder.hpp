#pragma once
// Flight recorder: a bounded ring buffer of recent kernel events (scheduler
// waves, analog solver step accepts/rejects, AMS bridge crossings, snapshot
// restores) that a campaign can attach to every contained run. Recording is
// always cheap — one branch plus a fixed-slot write, no allocation, no lock —
// so the recorder can stay armed for whole campaigns; when a run ends
// abnormally (SimError/Timeout/Diverged) the last-N window is dumped as a
// JSONL forensic log plus a Chrome-trace JSON that Perfetto loads directly,
// answering "what was the kernel doing right before this run died?".
//
// Determinism: events carry *simulated* time only (digital femtoseconds,
// analog seconds) and kernel counters, never wall clock, so the forensic
// artifacts of a deterministic run are byte-identical across reruns, worker
// widths and machines.
//
// Thread model: one recorder instrument one simulator instance, which is
// worker-local by construction (each campaign worker builds its own
// testbench) — hence no synchronization in record().

#include "sim/time.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace gfi::obs {

class FlightRecorder {
public:
    /// What happened. The payload fields a/b/value are kind-specific (see
    /// the Event comments); unused ones are zero.
    enum class Kind : std::uint8_t {
        Wave,         ///< digital delta-cycle wave retired
        SolverAccept, ///< analog integration step accepted
        SolverReject, ///< analog integration step rejected (Newton/LTE)
        AtoD,         ///< analog->digital threshold crossing fired
        DtoA,         ///< digital->analog drive-level update
        Restore,      ///< snapshot restored into the simulator
    };

    /// One recorded kernel event (POD; fixed slot in the ring).
    struct Event {
        Kind kind = Kind::Wave;
        SimTime timeFs = 0;      ///< digital simulation time (fs)
        double analogTime = 0.0; ///< analog simulation time (s); 0 if digital-only
        std::uint64_t a = 0;     ///< Wave: cumulative waves; Solver*: cumulative
                                 ///< accepted/rejected steps; AtoD/DtoA:
                                 ///< cumulative crossings/updates
        std::uint64_t b = 0;     ///< Wave: pending-queue depth after the wave
        double value = 0.0;      ///< Solver*: step size dt (s); AtoD: 1 = rising
                                 ///< edge; DtoA: driven level (V)
    };

    /// @param capacity  ring slots (the "last N" window); >= 1.
    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    /// Records one event, overwriting the oldest once the ring is full.
    void record(Kind kind, SimTime timeFs, double analogTime, std::uint64_t a,
                std::uint64_t b, double value) noexcept
    {
        Event& e = ring_[head_];
        e.kind = kind;
        e.timeFs = timeFs;
        e.analogTime = analogTime;
        e.a = a;
        e.b = b;
        e.value = value;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++total_;
    }

    /// Ring capacity (the maximum window length).
    [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

    /// Events currently held (min(total recorded, capacity)).
    [[nodiscard]] std::size_t size() const noexcept;

    /// Events ever recorded, including overwritten ones.
    [[nodiscard]] std::uint64_t totalRecorded() const noexcept { return total_; }

    /// Drops every event (the ring keeps its capacity).
    void clear() noexcept;

    /// The retained window, oldest first.
    [[nodiscard]] std::vector<Event> window() const;

    /// The most recent event of @p kind still in the window, or nullptr.
    [[nodiscard]] const Event* lastOfKind(Kind kind) const;

    /// Short event-kind name ("wave", "solver-accept", ...).
    [[nodiscard]] static const char* kindName(Kind kind);

    /// The window as JSONL: one object per event, oldest first, with
    /// kind-specific semantic keys plus a "seq" ordinal (position within the
    /// dumped window). Every line is an event — no header line.
    [[nodiscard]] std::string jsonl() const;

    /// The window as Chrome Trace Event Format JSON (instant events on one
    /// track per kernel domain, timestamps in simulated microseconds), ready
    /// for Perfetto / chrome://tracing.
    [[nodiscard]] std::string chromeTraceJson() const;

    /// Writes "<stem>.jsonl" and "<stem>.trace.json", creating parent
    /// directories as needed. Throws std::runtime_error on I/O failure.
    void writeArtifacts(const std::string& stem) const;

    static constexpr std::size_t kDefaultCapacity = 256;

private:
    std::vector<Event> ring_;
    std::size_t head_ = 0;     ///< next slot to write
    std::uint64_t total_ = 0;  ///< events ever recorded
};

} // namespace gfi::obs
