#include "obs/telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gfi::obs {

std::unique_ptr<Telemetry> Telemetry::fromEnv()
{
    const char* tracePath = std::getenv("GFI_TRACE");
    const char* metricsPath = std::getenv("GFI_METRICS");
    const bool wantTrace = tracePath != nullptr && *tracePath != '\0';
    const bool wantMetrics = metricsPath != nullptr && *metricsPath != '\0';
    if (!wantTrace && !wantMetrics) {
        return nullptr;
    }
    auto t = std::make_unique<Telemetry>();
    if (wantTrace) {
        t->setTracePath(tracePath);
    }
    if (wantMetrics) {
        t->setMetricsPath(metricsPath);
    }
    return t;
}

namespace {

void writeWhole(const std::string& path, const std::string& body, const char* what)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        throw std::runtime_error(std::string(what) + ": cannot open " + path);
    }
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (!ok) {
        throw std::runtime_error(std::string(what) + ": write failed on " + path);
    }
}

bool endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

void Telemetry::flush() const
{
    if (!tracePath_.empty() && trace_) {
        trace_->writeFile(tracePath_);
    }
    if (!metricsPath_.empty()) {
        writeWhole(metricsPath_,
                   endsWith(metricsPath_, ".json") ? metrics_.json()
                                                   : metrics_.prometheusText(),
                   "Telemetry");
    }
}

} // namespace gfi::obs
