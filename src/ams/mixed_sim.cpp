#include "ams/mixed_sim.hpp"

namespace gfi::ams {

void MixedSimulator::elaborate(analog::SolverOptions options)
{
    if (solver_) {
        return;
    }
    solver_ = std::make_unique<analog::TransientSolver>(analog_, options);
    solver_->solveDc();
    for (auto& hook : elaborationHooks_) {
        hook(*solver_);
    }
    // Bridges may have forced digital values from the DC solution; settle the
    // resulting delta cycles before time moves.
    digital_.scheduler().start();
}

void MixedSimulator::run(SimTime until)
{
    elaborate();
    auto& sched = digital_.scheduler();

    // If the design is purely digital, fall through to the event kernel.
    const bool hasAnalog = analog_.unknownCount() > 0;

    while (true) {
        const SimTime nextDigital = sched.nextEventTime();
        const SimTime target = nextDigital < until ? nextDigital : until;

        if (hasAnalog) {
            const double tGoal = toSeconds(target);
            while (solver_->time() < tGoal - 1e-18) {
                const double reached = solver_->advanceTo(tGoal);
                if (reached < tGoal - 1e-18) {
                    // A monitor fired: its bridge already advanced the digital
                    // clock to the crossing and ran deltas. A new digital
                    // event may now precede `target`; re-evaluate.
                    break;
                }
            }
            if (solver_->time() < tGoal - 1e-18) {
                continue; // re-enter with updated digital horizon
            }
        }

        if (target >= until) {
            sched.runUntil(until);
            break;
        }
        sched.runUntil(target);
    }
}

} // namespace gfi::ams
