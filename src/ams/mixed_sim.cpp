#include "ams/mixed_sim.hpp"

#include "obs/flight_recorder.hpp"

#include <algorithm>

namespace gfi::ams {

void MixedSimulator::setWatchdog(Watchdog* wd)
{
    watchdog_ = wd;
    digital_.scheduler().setWatchdog(wd);
    if (solver_) {
        solver_->setWatchdog(wd);
    }
}

void MixedSimulator::setFlightRecorder(obs::FlightRecorder* fr)
{
    recorder_ = fr;
    digital_.scheduler().setFlightRecorder(fr);
    if (solver_) {
        solver_->setFlightRecorder(fr);
    }
}

void MixedSimulator::elaborate(analog::SolverOptions options)
{
    if (solver_) {
        return;
    }
    if (stepScale_ != 1.0) {
        // Retry tightening: smaller maximum/restart steps, same floors.
        options.dtMax = std::max(options.dtMax * stepScale_, options.dtMin);
        options.dtInitial = std::max(options.dtInitial * stepScale_, options.dtMin);
    }
    solver_ = std::make_unique<analog::TransientSolver>(analog_, options);
    solver_->setWatchdog(watchdog_);
    solver_->setFlightRecorder(recorder_);
    solver_->solveDc();
    for (auto& hook : elaborationHooks_) {
        hook(*solver_);
    }
    // Bridges may have forced digital values from the DC solution; settle the
    // resulting delta cycles before time moves.
    digital_.scheduler().start();
}

namespace {

/// Snapshottable digital components, registration order. Exempt components
/// (pure combinational, ROMs, structural shells) carry no state and are
/// skipped; a stateful non-Snapshottable component is a preflight error
/// (PRE006), not a silent gap.
snapshot::SnapshotRegistry digitalRegistry(const digital::Circuit& c)
{
    snapshot::SnapshotRegistry reg;
    for (const auto& comp : c.components()) {
        if (auto* s = dynamic_cast<snapshot::Snapshottable*>(comp.get())) {
            reg.add(comp->name(), s);
        }
    }
    return reg;
}

/// All analog components, registration order. Stateless ones serialize an
/// empty payload through the default AnalogComponent hooks.
snapshot::SnapshotRegistry analogRegistry(const analog::AnalogSystem& sys)
{
    snapshot::SnapshotRegistry reg;
    for (const auto& comp : sys.components()) {
        reg.add(comp->name(), comp.get());
    }
    return reg;
}

} // namespace

snapshot::Snapshot MixedSimulator::captureSnapshot()
{
    elaborate();
    snapshot::Writer w;
    snapshot::writeHeader(w);

    digital_.scheduler().captureState(w);

    // Signals, creation order; each payload length-prefixed and name-tagged.
    const auto& names = digital_.signalNames();
    w.u64(names.size());
    for (const std::string& name : names) {
        w.str(name);
        snapshot::Writer sub;
        digital_.findSignal(name).captureState(sub);
        w.blob(sub.bytes());
    }

    digitalRegistry(digital_).capture(w);
    bridges_.capture(w);

    const bool hasAnalog = analog_.unknownCount() > 0;
    w.boolean(hasAnalog);
    if (hasAnalog) {
        snapshot::Writer sub;
        solver_->captureState(sub);
        w.blob(sub.bytes());
        analogRegistry(analog_).capture(w);
    }

    snapshot::Snapshot snap;
    snap.time = digital_.scheduler().now();
    snap.analogTime = hasAnalog ? solver_->time() : 0.0;
    snap.bytes = w.take();
    return snap;
}

void MixedSimulator::restoreSnapshot(const snapshot::Snapshot& snap)
{
    elaborate();
    snapshot::Reader r(snap.bytes);
    snapshot::readHeader(r);

    digital_.scheduler().restoreState(
        r, [this](const std::string& name) -> digital::SignalBase& {
            try {
                return digital_.findSignal(name);
            } catch (const std::out_of_range&) {
                throw snapshot::SnapshotFormatError(
                    "snapshot: pending transaction targets unknown signal '" + name +
                    "' (testbench factory mismatch?)");
            }
        });

    const std::uint64_t n = r.u64();
    const auto& names = digital_.signalNames();
    if (n != names.size()) {
        throw snapshot::SnapshotFormatError(
            "snapshot: stream has " + std::to_string(n) + " signals, circuit has " +
            std::to_string(names.size()) + " (testbench factory mismatch?)");
    }
    for (const std::string& expected : names) {
        const std::string name = r.str();
        if (name != expected) {
            throw snapshot::SnapshotFormatError("snapshot: signal '" + name +
                                                "' where '" + expected + "' was expected");
        }
        const std::vector<std::uint8_t> payload = r.blob();
        snapshot::Reader sub(payload);
        digital_.findSignal(name).restoreState(sub);
        if (!sub.atEnd()) {
            throw snapshot::SnapshotFormatError("snapshot: signal '" + name + "' left " +
                                                std::to_string(sub.remaining()) +
                                                " unread payload bytes");
        }
    }

    digitalRegistry(digital_).restore(r);
    bridges_.restore(r);

    const bool hasAnalog = r.boolean();
    if (hasAnalog != (analog_.unknownCount() > 0)) {
        throw snapshot::SnapshotFormatError(
            "snapshot: analog-domain presence differs from the capture");
    }
    if (hasAnalog) {
        const std::vector<std::uint8_t> payload = r.blob();
        snapshot::Reader sub(payload);
        solver_->restoreState(sub);
        if (!sub.atEnd()) {
            throw snapshot::SnapshotFormatError(
                "snapshot: solver left " + std::to_string(sub.remaining()) +
                " unread payload bytes");
        }
        analogRegistry(analog_).restore(r);
    }

    if (!r.atEnd()) {
        throw snapshot::SnapshotFormatError("snapshot: " + std::to_string(r.remaining()) +
                                            " trailing bytes after restore");
    }
    if (recorder_ != nullptr) {
        recorder_->record(obs::FlightRecorder::Kind::Restore, snap.time, snap.analogTime,
                          0, 0, 0.0);
    }
}

obs::ProbeSnapshot MixedSimulator::sampleProbes() const
{
    obs::ProbeSnapshot p;
    p.valid = true;
    const auto& sched = digital_.scheduler();
    p.digitalEvents = sched.eventsDispatched();
    p.deltaCycles = sched.deltaCycles();
    p.queueHighWater = sched.queueHighWater();
    p.pendingEvents = sched.pendingEvents();
    if (solver_) {
        const analog::SolverStats& s = solver_->stats();
        p.analogAcceptedSteps = s.acceptedSteps;
        p.analogRejectedSteps = s.rejectedSteps;
        p.newtonIterations = s.newtonIterations;
        p.companionRebuilds = s.companionRebuilds;
        p.minAcceptedDt = s.minAcceptedDt;
        p.lastAcceptedDt = s.lastAcceptedDt;
    }
    p.atodCrossings = bridgeCounters_.atodCrossings;
    p.dtoaEvents = bridgeCounters_.dtoaEvents;
    return p;
}

void MixedSimulator::run(SimTime until)
{
    elaborate();
    auto& sched = digital_.scheduler();

    // If the design is purely digital, fall through to the event kernel.
    const bool hasAnalog = analog_.unknownCount() > 0;

    while (true) {
        if (watchdog_ != nullptr) {
            watchdog_->checkWallClock();
        }
        const SimTime nextDigital = sched.nextEventTime();
        const SimTime target = nextDigital < until ? nextDigital : until;

        if (hasAnalog) {
            const double tGoal = toSeconds(target);
            while (solver_->time() < tGoal - 1e-18) {
                const double reached = solver_->advanceTo(tGoal);
                if (reached < tGoal - 1e-18) {
                    // A monitor fired: its bridge already advanced the digital
                    // clock to the crossing and ran deltas. A new digital
                    // event may now precede `target`; re-evaluate.
                    break;
                }
            }
            if (solver_->time() < tGoal - 1e-18) {
                continue; // re-enter with updated digital horizon
            }
        }

        if (target >= until) {
            sched.runUntil(until);
            break;
        }
        sched.runUntil(target);
    }
}

} // namespace gfi::ams
