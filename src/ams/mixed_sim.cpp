#include "ams/mixed_sim.hpp"

#include <algorithm>

namespace gfi::ams {

void MixedSimulator::setWatchdog(Watchdog* wd)
{
    watchdog_ = wd;
    digital_.scheduler().setWatchdog(wd);
    if (solver_) {
        solver_->setWatchdog(wd);
    }
}

void MixedSimulator::elaborate(analog::SolverOptions options)
{
    if (solver_) {
        return;
    }
    if (stepScale_ != 1.0) {
        // Retry tightening: smaller maximum/restart steps, same floors.
        options.dtMax = std::max(options.dtMax * stepScale_, options.dtMin);
        options.dtInitial = std::max(options.dtInitial * stepScale_, options.dtMin);
    }
    solver_ = std::make_unique<analog::TransientSolver>(analog_, options);
    solver_->setWatchdog(watchdog_);
    solver_->solveDc();
    for (auto& hook : elaborationHooks_) {
        hook(*solver_);
    }
    // Bridges may have forced digital values from the DC solution; settle the
    // resulting delta cycles before time moves.
    digital_.scheduler().start();
}

void MixedSimulator::run(SimTime until)
{
    elaborate();
    auto& sched = digital_.scheduler();

    // If the design is purely digital, fall through to the event kernel.
    const bool hasAnalog = analog_.unknownCount() > 0;

    while (true) {
        if (watchdog_ != nullptr) {
            watchdog_->checkWallClock();
        }
        const SimTime nextDigital = sched.nextEventTime();
        const SimTime target = nextDigital < until ? nextDigital : until;

        if (hasAnalog) {
            const double tGoal = toSeconds(target);
            while (solver_->time() < tGoal - 1e-18) {
                const double reached = solver_->advanceTo(tGoal);
                if (reached < tGoal - 1e-18) {
                    // A monitor fired: its bridge already advanced the digital
                    // clock to the crossing and ran deltas. A new digital
                    // event may now precede `target`; re-evaluate.
                    break;
                }
            }
            if (solver_->time() < tGoal - 1e-18) {
                continue; // re-enter with updated digital horizon
            }
        }

        if (target >= until) {
            sched.runUntil(until);
            break;
        }
        sched.runUntil(target);
    }
}

} // namespace gfi::ams
