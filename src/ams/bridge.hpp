#pragma once
// Analog <-> digital conversion bridges.
//
// AtoDBridge is the paper's "digitizer (comparator, threshold 2.5 V)": it
// watches an analog node and drives a digital signal on threshold crossings,
// with optional hysteresis. DtoABridge drives an analog source from a digital
// signal with configurable levels and an optional linear slew, the behavioral
// equivalent of VHDL-AMS 'ramp on a digitally controlled quantity.
// DigitalCurrentDriver maps several digital signals to a current level — the
// PLL charge pump is one of these.

#include "ams/mixed_sim.hpp"
#include "analog/sources.hpp"

namespace gfi::ams {

/// Comparator-style analog-to-digital bridge.
class AtoDBridge : public snapshot::Snapshottable {
public:
    /// @param threshold   switching threshold (volts).
    /// @param hysteresis  full hysteresis band width (volts, 0 = none).
    AtoDBridge(MixedSimulator& sim, std::string name, analog::NodeId node,
               digital::LogicSignal& out, double threshold, double hysteresis = 0.0);

    /// Switching threshold.
    [[nodiscard]] double threshold() const noexcept { return threshold_; }

    /// Bridge name.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Snapshot: only the hysteresis state. The driven digital signal is
    /// captured with the rest of the circuit; monitors are structural.
    void captureState(snapshot::Writer& w) const override { w.boolean(high_); }
    void restoreState(snapshot::Reader& r) override { high_ = r.boolean(); }

private:
    void fire(MixedSimulator& sim, double tCross, bool rising);

    std::string name_;
    analog::NodeId node_;
    digital::LogicSignal* out_;
    double threshold_;
    double hysteresis_;
    bool high_ = false;
};

/// Digital-to-analog bridge driving a voltage source between two levels.
class DtoABridge : public snapshot::Snapshottable {
public:
    /// @param lowVolts/highVolts  output levels for logic 0/1.
    /// @param slewSeconds         0->instant; otherwise linear ramp duration.
    DtoABridge(MixedSimulator& sim, std::string name, digital::LogicSignal& in,
               analog::NodeId node, double lowVolts, double highVolts,
               double slewSeconds = 0.0);

    /// The underlying analog source (e.g. to probe its branch current).
    [[nodiscard]] analog::VoltageSource& source() noexcept { return *source_; }

    /// Snapshot: the settled drive level. The underlying source serializes
    /// its own DC value; an in-flight slew ramp is code, not data — a
    /// checkpoint taken mid-ramp restores to the ramp's target level (see
    /// DESIGN.md §9, "not captured").
    void captureState(snapshot::Writer& w) const override { w.f64(currentLevel_); }
    void restoreState(snapshot::Reader& r) override { currentLevel_ = r.f64(); }

private:
    void drive(MixedSimulator& sim);

    std::string name_;
    digital::LogicSignal* in_;
    analog::VoltageSource* source_;
    double low_;
    double high_;
    double slew_;
    double currentLevel_;
};

/// Maps a set of digital signals to a voltage level on an analog node — the
/// behavioral model of a DAC or digitally-programmed reference.
class DigitalVoltageDriver : public snapshot::Snapshottable {
public:
    using LevelFn = std::function<double(const std::vector<digital::Logic>&)>;

    /// @param inputs  digital control signals, passed to @p level on any event.
    /// @param level   maps control values to the driven voltage.
    DigitalVoltageDriver(MixedSimulator& sim, std::string name,
                         std::vector<digital::LogicSignal*> inputs, analog::NodeId node,
                         LevelFn level);

    /// The underlying voltage source.
    [[nodiscard]] analog::VoltageSource& source() noexcept { return *source_; }

    /// Snapshot: the last driven level (the source serializes its DC value).
    void captureState(snapshot::Writer& w) const override { w.f64(currentLevel_); }
    void restoreState(snapshot::Reader& r) override { currentLevel_ = r.f64(); }

private:
    void drive(MixedSimulator& sim);

    std::string name_;
    std::vector<digital::LogicSignal*> inputs_;
    analog::VoltageSource* source_;
    LevelFn level_;
    double currentLevel_ = 0.0;
};

/// Maps a set of digital signals to a current injected into an analog node.
/// The PLL charge pump is the canonical instance: I = Icp * (UP - DOWN).
class DigitalCurrentDriver : public snapshot::Snapshottable {
public:
    using LevelFn = std::function<double(const std::vector<digital::Logic>&)>;

    /// @param inputs  digital control signals, passed to @p level on any event.
    /// @param level   maps control values to the source current (amps into node).
    DigitalCurrentDriver(MixedSimulator& sim, std::string name,
                         std::vector<digital::LogicSignal*> inputs, analog::NodeId node,
                         LevelFn level);

    /// The underlying current source (fault campaigns may probe or usurp it).
    [[nodiscard]] analog::CurrentSource& source() noexcept { return *source_; }

    /// Snapshot: the last driven level (the source serializes its DC value).
    void captureState(snapshot::Writer& w) const override { w.f64(currentLevel_); }
    void restoreState(snapshot::Reader& r) override { currentLevel_ = r.f64(); }

private:
    void drive(MixedSimulator& sim);

    std::string name_;
    std::vector<digital::LogicSignal*> inputs_;
    analog::CurrentSource* source_;
    LevelFn level_;
    double currentLevel_ = 0.0;
};

} // namespace gfi::ams
