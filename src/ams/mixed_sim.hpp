#pragma once
// MixedSimulator: lockstep co-simulation of the digital event kernel and the
// analog transient solver — the C++ counterpart of the mixed-mode simulator
// (ADVance-MS) used in the paper.
//
// Synchronization protocol:
//   * the analog solver never advances past the next scheduled digital event,
//     so digital-driven analog levels are always current;
//   * analog threshold crossings (A->D bridges) cut the analog step exactly
//     at the crossing, advance the digital clock to that instant, force the
//     digital signal and run delta cycles before the analog solver resumes;
//   * digital events that change analog drives (D->A bridges) mark an analog
//     discontinuity so companion models restart cleanly.

#include "analog/solver.hpp"
#include "digital/circuit.hpp"
#include "obs/probe.hpp"
#include "sim/watchdog.hpp"
#include "snapshot/snapshot.hpp"

#include <functional>
#include <memory>

namespace gfi::ams {

/// Always-on counters of AMS bridge activity (bumped by the bridges in
/// bridge.cpp; cost: one increment per domain crossing).
struct BridgeCounters {
    std::uint64_t atodCrossings = 0; ///< analog->digital threshold firings
    std::uint64_t dtoaEvents = 0;    ///< digital->analog drive-level updates
};

/// Owns one digital circuit, one analog system, and the glue between them.
class MixedSimulator {
public:
    MixedSimulator() = default;
    MixedSimulator(const MixedSimulator&) = delete;
    MixedSimulator& operator=(const MixedSimulator&) = delete;

    /// The digital half (build your logic here).
    [[nodiscard]] digital::Circuit& digital() noexcept { return digital_; }
    [[nodiscard]] const digital::Circuit& digital() const noexcept { return digital_; }

    /// The analog half (build your circuit here).
    [[nodiscard]] analog::AnalogSystem& analog() noexcept { return analog_; }
    [[nodiscard]] const analog::AnalogSystem& analog() const noexcept { return analog_; }

    /// Registers a callback run once at elaboration, when the transient
    /// solver exists (bridges install their monitors here).
    void onElaborate(std::function<void(analog::TransientSolver&)> cb)
    {
        elaborationHooks_.push_back(std::move(cb));
    }

    /// Creates the solver, computes the DC operating point and installs the
    /// bridges. Called lazily by run(); call explicitly to pass options.
    void elaborate(analog::SolverOptions options = {});

    /// True once elaborate() has run.
    [[nodiscard]] bool elaborated() const noexcept { return solver_ != nullptr; }

    /// The transient solver; valid after elaborate().
    [[nodiscard]] analog::TransientSolver& solver()
    {
        if (!solver_) {
            throw std::logic_error("MixedSimulator: not elaborated yet");
        }
        return *solver_;
    }

    /// Runs the co-simulation until @p until (inclusive of events at @p until).
    void run(SimTime until);

    /// Current co-simulation time (the digital kernel's clock).
    [[nodiscard]] SimTime now() const noexcept { return digital_.scheduler().now(); }

    // --- kernel probes ------------------------------------------------------

    /// Bridge-crossing counters (the bridges increment these).
    [[nodiscard]] BridgeCounters& bridgeCounters() noexcept { return bridgeCounters_; }
    [[nodiscard]] const BridgeCounters& bridgeCounters() const noexcept
    {
        return bridgeCounters_;
    }

    /// One coherent reading of every kernel probe: scheduler dispatch/queue
    /// counters, solver step statistics, bridge crossings. Cheap (plain field
    /// reads); safe at any point, including after a watchdog unwind.
    [[nodiscard]] obs::ProbeSnapshot sampleProbes() const;

    // --- snapshot/restore ---------------------------------------------------

    /// Registry the AMS bridges add themselves to at construction; their
    /// hysteresis/level state rides along in every snapshot.
    [[nodiscard]] snapshot::SnapshotRegistry& bridgeRegistry() noexcept { return bridges_; }

    /// Serializes the full simulator state — digital scheduler (time, seq,
    /// wave counters, pending transactions), every signal, every Snapshottable
    /// digital component, the AMS bridges, and the analog solver plus
    /// per-component companion history — into one byte-stable stream.
    /// The simulator must be quiescent: call after run(t) returns, never from
    /// inside a process or bridge callback.
    [[nodiscard]] snapshot::Snapshot captureSnapshot();

    /// Restores state captured by captureSnapshot() into THIS simulator,
    /// which must be a freshly built structural twin (same testbench factory).
    /// Elaborates first (DC solve + bridge hooks), then overwrites members
    /// directly — no instrumentation setters, no event propagation — and
    /// re-arms component self-scheduled actions. After this returns, run()
    /// continues exactly as the captured simulator would have.
    void restoreSnapshot(const snapshot::Snapshot& snap);

    // --- fault-tolerant execution support ----------------------------------

    /// Attaches a per-run watchdog to both kernels (not owned; nullptr
    /// detaches). Digital waves and analog step attempts are charged against
    /// its budgets; exhaustion unwinds run() with WatchdogTimeout.
    void setWatchdog(Watchdog* wd);

    /// Attaches a flight recorder to both kernels and the AMS bridges (not
    /// owned; nullptr detaches). Scheduler waves, solver step accepts and
    /// rejects, bridge crossings and snapshot restores then record into its
    /// bounded ring — always cheap, so a campaign can keep it armed for
    /// every contained run and dump the window only when a run dies.
    void setFlightRecorder(obs::FlightRecorder* fr);
    [[nodiscard]] obs::FlightRecorder* flightRecorder() const noexcept { return recorder_; }

    /// Scales the solver's dtMax/dtInitial at elaboration time — the retry
    /// policy uses this to re-run a diverged fault with a tightened step.
    /// Must be set before elaborate(); 1.0 = nominal.
    void setSolverStepScale(double scale) noexcept { stepScale_ = scale; }
    [[nodiscard]] double solverStepScale() const noexcept { return stepScale_; }

private:
    digital::Circuit digital_;
    analog::AnalogSystem analog_;
    std::unique_ptr<analog::TransientSolver> solver_;
    snapshot::SnapshotRegistry bridges_;
    std::vector<std::function<void(analog::TransientSolver&)>> elaborationHooks_;
    Watchdog* watchdog_ = nullptr;
    obs::FlightRecorder* recorder_ = nullptr;
    double stepScale_ = 1.0;
    BridgeCounters bridgeCounters_;
};

} // namespace gfi::ams
