#include "ams/bridge.hpp"

#include "obs/flight_recorder.hpp"

namespace gfi::ams {

// ---------------------------------------------------------------------------
// AtoDBridge

AtoDBridge::AtoDBridge(MixedSimulator& sim, std::string name, analog::NodeId node,
                       digital::LogicSignal& out, double threshold, double hysteresis)
    : name_(std::move(name)), node_(node), out_(&out), threshold_(threshold),
      hysteresis_(hysteresis)
{
    sim.digital().noteExternalDriver(out); // forced from the analog domain
    sim.bridgeRegistry().add(name_, this);
    sim.onElaborate([this, &sim](analog::TransientSolver& solver) {
        // Initial digital value from the DC operating point.
        const double v0 = sim.analog().voltage(node_);
        high_ = v0 >= threshold_;
        out_->forceValue(high_ ? digital::Logic::One : digital::Logic::Zero);

        const double hi = threshold_ + hysteresis_ / 2.0;
        const double lo = threshold_ - hysteresis_ / 2.0;
        solver.addMonitor(node_, hi, analog::CrossingMonitor::Edge::Rising,
                          [this, &sim](double t, bool) { fire(sim, t, true); });
        solver.addMonitor(node_, lo, analog::CrossingMonitor::Edge::Falling,
                          [this, &sim](double t, bool) { fire(sim, t, false); });
    });
}

void AtoDBridge::fire(MixedSimulator& sim, double tCross, bool rising)
{
    if (rising == high_) {
        return; // hysteresis: already in that state
    }
    high_ = rising;
    ++sim.bridgeCounters().atodCrossings;
    auto& sched = sim.digital().scheduler();
    const SimTime tFs = fromSeconds(tCross);
    if (auto* fr = sim.flightRecorder()) {
        fr->record(obs::FlightRecorder::Kind::AtoD, tFs, tCross,
                   sim.bridgeCounters().atodCrossings, 0, rising ? 1.0 : 0.0);
    }
    // No digital events exist before tCross (the synchronizer guarantees it),
    // so advancing the digital clock here only moves time.
    sched.runUntil(tFs > sched.now() ? tFs : sched.now());
    out_->forceValue(rising ? digital::Logic::One : digital::Logic::Zero);
    sched.runDeltasNow();
}

// ---------------------------------------------------------------------------
// DtoABridge

DtoABridge::DtoABridge(MixedSimulator& sim, std::string name, digital::LogicSignal& in,
                       analog::NodeId node, double lowVolts, double highVolts,
                       double slewSeconds)
    : name_(std::move(name)), in_(&in), low_(lowVolts), high_(highVolts), slew_(slewSeconds),
      currentLevel_(lowVolts)
{
    source_ = &sim.analog().add<analog::VoltageSource>(sim.analog(), name_ + "/vsrc", node,
                                                       analog::kGround, lowVolts);
    sim.bridgeRegistry().add(name_, this);
    digital::SignalWatch::onEvent(in, [this, &sim] { drive(sim); });
    sim.onElaborate([this, &sim](analog::TransientSolver&) {
        // Pick up the digital value present at elaboration.
        drive(sim);
    });
}

void DtoABridge::drive(MixedSimulator& sim)
{
    const digital::Logic v = digital::toX01(in_->value());
    const double target = v == digital::Logic::One
                              ? high_
                              : (v == digital::Logic::Zero ? low_ : (low_ + high_) / 2.0);
    if (target == currentLevel_) {
        return;
    }
    ++sim.bridgeCounters().dtoaEvents;
    if (auto* fr = sim.flightRecorder()) {
        fr->record(obs::FlightRecorder::Kind::DtoA, sim.now(),
                   sim.elaborated() ? sim.solver().time() : 0.0,
                   sim.bridgeCounters().dtoaEvents, 0, target);
    }
    if (!sim.elaborated()) {
        currentLevel_ = target;
        source_->setLevel(target);
        return;
    }
    auto& solver = sim.solver();
    const double tNow = solver.time();
    if (slew_ <= 0.0) {
        source_->setLevel(target);
    } else {
        const double from = currentLevel_;
        const double to = target;
        const double t0 = tNow;
        const double tr = slew_;
        analog::TimeFunction fn;
        fn.value = [from, to, t0, tr](double t) {
            if (t <= t0) {
                return from;
            }
            if (t >= t0 + tr) {
                return to;
            }
            return from + (to - from) * (t - t0) / tr;
        };
        fn.breakpoints = {t0, t0 + tr};
        source_->setFunction(std::move(fn));
    }
    currentLevel_ = target;
    solver.markDiscontinuity();
}

// ---------------------------------------------------------------------------
// DigitalVoltageDriver

DigitalVoltageDriver::DigitalVoltageDriver(MixedSimulator& sim, std::string name,
                                           std::vector<digital::LogicSignal*> inputs,
                                           analog::NodeId node, LevelFn level)
    : name_(std::move(name)), inputs_(std::move(inputs)), level_(std::move(level))
{
    source_ = &sim.analog().add<analog::VoltageSource>(sim.analog(), name_ + "/vsrc", node,
                                                       analog::kGround, 0.0);
    sim.bridgeRegistry().add(name_, this);
    for (digital::LogicSignal* in : inputs_) {
        digital::SignalWatch::onEvent(*in, [this, &sim] { drive(sim); });
    }
    sim.onElaborate([this, &sim](analog::TransientSolver&) { drive(sim); });
}

void DigitalVoltageDriver::drive(MixedSimulator& sim)
{
    std::vector<digital::Logic> values;
    values.reserve(inputs_.size());
    for (const digital::LogicSignal* in : inputs_) {
        values.push_back(in->value());
    }
    const double target = level_(values);
    if (target == currentLevel_) {
        return;
    }
    ++sim.bridgeCounters().dtoaEvents;
    if (auto* fr = sim.flightRecorder()) {
        fr->record(obs::FlightRecorder::Kind::DtoA, sim.now(),
                   sim.elaborated() ? sim.solver().time() : 0.0,
                   sim.bridgeCounters().dtoaEvents, 0, target);
    }
    currentLevel_ = target;
    source_->setLevel(target);
    if (sim.elaborated()) {
        sim.solver().markDiscontinuity();
    }
}

// ---------------------------------------------------------------------------
// DigitalCurrentDriver

DigitalCurrentDriver::DigitalCurrentDriver(MixedSimulator& sim, std::string name,
                                           std::vector<digital::LogicSignal*> inputs,
                                           analog::NodeId node, LevelFn level)
    : name_(std::move(name)), inputs_(std::move(inputs)), level_(std::move(level))
{
    source_ = &sim.analog().add<analog::CurrentSource>(sim.analog(), name_ + "/isrc", node,
                                                       analog::kGround, 0.0);
    sim.bridgeRegistry().add(name_, this);
    for (digital::LogicSignal* in : inputs_) {
        digital::SignalWatch::onEvent(*in, [this, &sim] { drive(sim); });
    }
    sim.onElaborate([this, &sim](analog::TransientSolver&) { drive(sim); });
}

void DigitalCurrentDriver::drive(MixedSimulator& sim)
{
    std::vector<digital::Logic> values;
    values.reserve(inputs_.size());
    for (const digital::LogicSignal* in : inputs_) {
        values.push_back(in->value());
    }
    const double target = level_(values);
    if (target == currentLevel_) {
        return;
    }
    ++sim.bridgeCounters().dtoaEvents;
    if (auto* fr = sim.flightRecorder()) {
        fr->record(obs::FlightRecorder::Kind::DtoA, sim.now(),
                   sim.elaborated() ? sim.solver().time() : 0.0,
                   sim.bridgeCounters().dtoaEvents, 0, target);
    }
    currentLevel_ = target;
    source_->setLevel(target);
    if (sim.elaborated()) {
        sim.solver().markDiscontinuity();
    }
}

} // namespace gfi::ams
