#include "analyze/scoap.hpp"

#include "analyze/graph.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <map>
#include <queue>

namespace gfi::analyze {

namespace {

using digital::ProcessConnectivity;
using digital::SignalBase;

std::int64_t satAdd(std::int64_t a, std::int64_t b)
{
    const std::int64_t sum = a + b;
    return sum >= kInfCost ? kInfCost : sum;
}

} // namespace

TestabilityReport scoreTestability(const SignalGraph& g)
{
    const std::vector<NodeInfo>& nodes = g.nodes();
    const std::size_t n = nodes.size();

    std::vector<std::vector<const ProcessConnectivity*>> driversOf(n);
    for (const ProcessConnectivity* p : g.processes()) {
        for (SignalBase* s : p->drives) {
            if (const int idx = g.indexOf(s); idx >= 0) {
                driversOf[static_cast<std::size_t>(idx)].push_back(p);
            }
        }
    }

    // --- controllability: forward, in level order -------------------------
    std::vector<std::int64_t> cc(n, kInfCost);
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (nodes[i].level >= 0) {
            order.push_back(i);
        }
    }
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return nodes[a].level < nodes[b].level;
    });
    for (const std::size_t i : order) {
        std::int64_t best = kInfCost;
        if (nodes[i].external || !nodes[i].driven) {
            best = 1;
        }
        for (const ProcessConnectivity* p : driversOf[i]) {
            if (p->sequential) {
                best = std::min(best, kSeqCost);
                continue;
            }
            std::int64_t cost = 1;
            for (SignalBase* s : SignalGraph::inputsOf(*p)) {
                const int idx = g.indexOf(s);
                cost = satAdd(cost, idx < 0 ? 1 : cc[static_cast<std::size_t>(idx)]);
            }
            best = std::min(best, cost);
        }
        cc[i] = best;
    }

    // --- observability: Dijkstra on the reversed graph --------------------
    // Edge drive -> input, cost 1 + side inputs + kSeqCost when sequential.
    std::vector<std::vector<std::pair<std::size_t, std::int64_t>>> radj(n);
    for (const ProcessConnectivity* p : g.processes()) {
        const std::vector<SignalBase*> inputs = SignalGraph::inputsOf(*p);
        if (inputs.empty()) {
            continue;
        }
        const std::int64_t w = 1 + static_cast<std::int64_t>(inputs.size()) - 1 +
                               (p->sequential ? kSeqCost : 0);
        for (SignalBase* d : p->drives) {
            const int di = g.indexOf(d);
            if (di < 0) {
                continue;
            }
            for (SignalBase* s : inputs) {
                if (const int si = g.indexOf(s); si >= 0) {
                    radj[static_cast<std::size_t>(di)].emplace_back(
                        static_cast<std::size_t>(si), w);
                }
            }
        }
    }
    std::vector<std::int64_t> co(n, -1);
    using Item = std::pair<std::int64_t, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    const auto seed = [&](std::size_t i) {
        if (co[i] != 0) {
            co[i] = 0;
            heap.emplace(0, i);
        }
    };
    for (std::size_t i = 0; i < n; ++i) {
        if (nodes[i].observedTrace || nodes[i].watched) {
            seed(i);
        }
    }
    // Inputs of processes belonging to a component with a compared state
    // hook: a perturbation there lands directly in classifier-visible state.
    for (const std::string& hook : g.observedStateHooks()) {
        const digital::Component* comp = g.componentOfHook(hook);
        if (comp == nullptr) {
            continue;
        }
        const std::string& prefix = comp->name();
        for (const ProcessConnectivity* p : g.processes()) {
            const std::string& pn = p->process->name();
            if (pn.compare(0, prefix.size(), prefix) != 0 ||
                (pn.size() > prefix.size() && pn[prefix.size()] != '/')) {
                continue;
            }
            for (SignalBase* s : SignalGraph::inputsOf(*p)) {
                if (const int idx = g.indexOf(s); idx >= 0) {
                    seed(static_cast<std::size_t>(idx));
                }
            }
        }
    }
    while (!heap.empty()) {
        const auto [d, v] = heap.top();
        heap.pop();
        if (co[v] >= 0 && d > co[v]) {
            continue;
        }
        for (const auto& [u, w] : radj[v]) {
            const std::int64_t nd = satAdd(d, w);
            if (co[u] < 0 || nd < co[u]) {
                co[u] = nd;
                heap.emplace(nd, u);
            }
        }
    }

    TestabilityReport report;
    report.ranked.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        NodeScore score;
        score.signal = nodes[i].signal->name();
        score.cc = cc[i];
        score.co = co[i];
        score.level = nodes[i].level;
        score.fanout = nodes[i].fanout;
        score.observable = nodes[i].observable;
        report.ranked.push_back(std::move(score));
    }
    std::sort(report.ranked.begin(), report.ranked.end(),
              [](const NodeScore& a, const NodeScore& b) {
                  if (a.score() != b.score()) {
                      return a.score() < b.score();
                  }
                  return a.signal < b.signal;
              });
    return report;
}

std::string TestabilityReport::table(std::size_t topN) const
{
    TextTable t;
    t.setHeader({"signal", "level", "fanout", "CC", "CO", "score"});
    std::size_t shown = 0;
    for (const NodeScore& s : ranked) {
        if (topN != 0 && shown++ >= topN) {
            break;
        }
        t.addRow({s.signal,
                  s.level < 0 ? "cyclic" : std::to_string(s.level),
                  std::to_string(s.fanout),
                  s.cc >= kInfCost ? "inf" : std::to_string(s.cc),
                  s.co < 0 ? "n/a" : std::to_string(s.co),
                  s.co < 0 || s.cc >= kInfCost ? "n/a" : std::to_string(s.score())});
    }
    return t.str();
}

std::string TestabilityReport::json() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const NodeScore& s = ranked[i];
        out += i == 0 ? "\n" : ",\n";
        out += "  {\"signal\": \"" + campaign::jsonEscape(s.signal) + "\"";
        out += ", \"level\": " + std::to_string(s.level);
        out += ", \"fanout\": " + std::to_string(s.fanout);
        out += ", \"cc\": ";
        out += s.cc >= kInfCost ? "null" : std::to_string(s.cc);
        out += ", \"co\": ";
        out += s.co < 0 ? "null" : std::to_string(s.co);
        out += ", \"observable\": ";
        out += s.observable ? "true" : "false";
        out += "}";
    }
    out += "\n]\n";
    return out;
}

} // namespace gfi::analyze
