#include "analyze/graph.hpp"

#include "analyze/scc.hpp"
#include "core/testbench.hpp"

#include <algorithm>
#include <deque>

namespace gfi::analyze {

using digital::CombKind;
using digital::ProcessConnectivity;
using digital::SignalBase;

SignalGraph::SignalGraph(const fault::Testbench& tb)
    : tb_(&tb), circuit_(&tb.sim().digital())
{
    buildNodes(tb);
    levelize();
    markObservable(tb);
}

int SignalGraph::addNode(const SignalBase* s)
{
    const auto it = index_.find(s);
    if (it != index_.end()) {
        return it->second;
    }
    const int idx = static_cast<int>(nodes_.size());
    index_.emplace(s, idx);
    NodeInfo n;
    n.signal = s;
    nodes_.push_back(n);
    readers_.emplace_back();
    return idx;
}

int SignalGraph::indexOf(const SignalBase* s) const
{
    const auto it = index_.find(s);
    return it == index_.end() ? -1 : it->second;
}

const std::vector<const ProcessConnectivity*>& SignalGraph::readersOf(int node) const
{
    return readers_.at(static_cast<std::size_t>(node));
}

std::vector<SignalBase*> SignalGraph::inputsOf(const ProcessConnectivity& p)
{
    std::vector<SignalBase*> inputs;
    for (SignalBase* s : p.triggers) {
        if (std::find(inputs.begin(), inputs.end(), s) == inputs.end()) {
            inputs.push_back(s);
        }
    }
    for (SignalBase* s : p.reads) {
        if (std::find(inputs.begin(), inputs.end(), s) == inputs.end()) {
            inputs.push_back(s);
        }
    }
    return inputs;
}

void SignalGraph::buildNodes(const fault::Testbench& tb)
{
    for (const ProcessConnectivity& c : circuit_->connectivity()) {
        processes_.push_back(&c);
        processByName_.emplace(c.process->name(), &c);
        for (SignalBase* s : c.drives) {
            nodes_[static_cast<std::size_t>(addNode(s))].driven = true;
        }
        for (SignalBase* s : inputsOf(c)) {
            const int idx = addNode(s);
            readers_[static_cast<std::size_t>(idx)].push_back(&c);
            ++nodes_[static_cast<std::size_t>(idx)].fanout;
        }
    }
    for (SignalBase* s : circuit_->externalDrivers()) {
        nodes_[static_cast<std::size_t>(addNode(s))].external = true;
    }
    for (NodeInfo& n : nodes_) {
        // Watchers are callbacks from OUTSIDE the declared process graph
        // (trace-recorder taps, D->A bridges) — genuine observation sinks.
        // Listeners are process sensitivities, already modeled as reader
        // edges, so they must NOT count as sinks here.
        n.watched = n.signal->watcherCount() > 0;
    }
    for (const std::string& name : tb.observedDigital()) {
        if (!circuit_->hasSignal(name)) {
            continue;
        }
        const int idx = indexOf(&circuit_->findSignal(name));
        if (idx >= 0) {
            nodes_[static_cast<std::size_t>(idx)].observedTrace = true;
        }
    }
    observedStateHooks_ = tb.observedState();
}

void SignalGraph::levelize()
{
    // Vertices: combinational processes; edge p -> q when p drives a signal
    // that is an input of q. Sequential processes and external drivers cut
    // the levels (their outputs are level-0 sources), mirroring how DIG001
    // excludes them from the cycle check.
    std::vector<const ProcessConnectivity*> comb;
    std::map<const ProcessConnectivity*, int> combIndex;
    for (const ProcessConnectivity* c : processes_) {
        if (!c->sequential) {
            combIndex[c] = static_cast<int>(comb.size());
            comb.push_back(c);
        }
    }
    std::vector<std::vector<int>> adj(comb.size());
    for (std::size_t p = 0; p < comb.size(); ++p) {
        for (SignalBase* s : comb[p]->drives) {
            const int node = indexOf(s);
            if (node < 0) {
                continue;
            }
            for (const ProcessConnectivity* r : readersOf(node)) {
                if (const auto it = combIndex.find(r); it != combIndex.end()) {
                    adj[p].push_back(it->second);
                }
            }
        }
    }

    // tarjanScc emits components in reverse topological order; walk it
    // backward so every process sees its inputs' levels already settled.
    const std::vector<std::vector<int>> sccs = tarjanScc(adj);
    for (auto it = sccs.rbegin(); it != sccs.rend(); ++it) {
        const std::vector<int>& scc = *it;
        if (sccIsCyclic(scc, adj)) {
            for (const int v : scc) {
                for (SignalBase* s : comb[static_cast<std::size_t>(v)]->drives) {
                    if (const int node = indexOf(s); node >= 0) {
                        nodes_[static_cast<std::size_t>(node)].level = -1;
                    }
                }
            }
            continue;
        }
        const ProcessConnectivity* p = comb[static_cast<std::size_t>(scc.front())];
        int inLevel = 0;
        bool cyclicInput = false;
        for (SignalBase* s : inputsOf(*p)) {
            const int node = indexOf(s);
            if (node < 0) {
                continue;
            }
            const int l = nodes_[static_cast<std::size_t>(node)].level;
            if (l < 0) {
                cyclicInput = true;
            } else {
                inLevel = std::max(inLevel, l);
            }
        }
        for (SignalBase* s : p->drives) {
            const int node = indexOf(s);
            if (node < 0) {
                continue;
            }
            NodeInfo& n = nodes_[static_cast<std::size_t>(node)];
            if (n.level >= 0) {
                n.level = cyclicInput ? -1 : std::max(n.level, inLevel + 1);
            }
        }
    }

    maxLevel_ = 0;
    cyclicSignals_ = 0;
    for (const NodeInfo& n : nodes_) {
        if (n.level < 0) {
            ++cyclicSignals_;
        } else {
            maxLevel_ = std::max(maxLevel_, n.level);
        }
    }
}

void SignalGraph::markObservable(const fault::Testbench& tb)
{
    // Sinks: compared traces, watched/listened signals (recorder taps, AMS
    // bridges), and every input of a process belonging to a component whose
    // state the classifier compares at the end of the run.
    std::deque<int> queue;
    const auto enqueue = [&](int node) {
        if (node >= 0 && !nodes_[static_cast<std::size_t>(node)].observable) {
            nodes_[static_cast<std::size_t>(node)].observable = true;
            queue.push_back(node);
        }
    };
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].observedTrace || nodes_[i].watched) {
            enqueue(static_cast<int>(i));
        }
    }
    for (const std::string& hook : tb.observedState()) {
        const digital::Component* comp = componentOfHook(hook);
        if (comp == nullptr) {
            continue;
        }
        const std::string& prefix = comp->name();
        for (const ProcessConnectivity* p : processes_) {
            const std::string& pn = p->process->name();
            if (pn.compare(0, prefix.size(), prefix) != 0 ||
                (pn.size() > prefix.size() && pn[prefix.size()] != '/')) {
                continue;
            }
            for (SignalBase* s : inputsOf(*p)) {
                enqueue(indexOf(s));
            }
        }
    }
    // Backward closure: an input of a process is observable when any of the
    // process's driven signals is (through registers too — a latent fault
    // stored now can surface on a compared output later).
    while (!queue.empty()) {
        const int node = queue.front();
        queue.pop_front();
        // Find every process driving this node and mark its inputs.
        for (const ProcessConnectivity* p : processes_) {
            bool drivesNode = false;
            for (SignalBase* s : p->drives) {
                if (indexOf(s) == node) {
                    drivesNode = true;
                    break;
                }
            }
            if (!drivesNode) {
                continue;
            }
            for (SignalBase* s : inputsOf(*p)) {
                enqueue(indexOf(s));
            }
        }
    }
}

bool SignalGraph::signalObservable(const SignalBase* s) const
{
    const int node = indexOf(s);
    if (node < 0) {
        return true; // unknown to the netlist: never statically mask
    }
    return nodes_[static_cast<std::size_t>(node)].observable;
}

const digital::Component* SignalGraph::componentOfHook(const std::string& hookName) const
{
    const digital::Component* best = nullptr;
    std::size_t bestLen = 0;
    for (const auto& comp : circuit_->components()) {
        const std::string& name = comp->name();
        const bool matches =
            hookName == name ||
            (hookName.size() > name.size() && hookName.compare(0, name.size(), name) == 0 &&
             hookName[name.size()] == '/');
        if (matches && name.size() >= bestLen) {
            best = comp.get();
            bestLen = name.size();
        }
    }
    return best;
}

bool SignalGraph::componentObservable(const std::string& componentName) const
{
    // A compared state hook owned by this component makes any internal state
    // fault observable (state-to-state coupling inside one component is
    // invisible to the netlist, so this is deliberately coarse).
    for (const std::string& hook : observedStateHooks_) {
        const digital::Component* owner = componentOfHook(hook);
        if (owner != nullptr && owner->name() == componentName) {
            return true;
        }
    }
    bool sawProcess = false;
    for (const ProcessConnectivity* p : processes_) {
        const std::string& pn = p->process->name();
        if (pn.compare(0, componentName.size(), componentName) != 0 ||
            (pn.size() > componentName.size() && pn[componentName.size()] != '/')) {
            continue;
        }
        sawProcess = true;
        for (SignalBase* s : p->drives) {
            if (signalObservable(s)) {
                return true;
            }
        }
    }
    // A component with no declared processes acts outside the netlist
    // (stimulus schedules, bridges): never statically mask it.
    return !sawProcess;
}

bool SignalGraph::hookObservable(const std::string& hookName) const
{
    if (std::find(observedStateHooks_.begin(), observedStateHooks_.end(), hookName) !=
        observedStateHooks_.end()) {
        return true;
    }
    const digital::Component* comp = componentOfHook(hookName);
    if (comp == nullptr) {
        return true; // unowned hook: never statically mask
    }
    return componentObservable(comp->name());
}

bool SignalGraph::faultObservable(const fault::FaultSpec& fault) const
{
    return std::visit(
        [this](const auto& f) -> bool {
            using T = std::decay_t<decltype(f)>;
            if constexpr (std::is_same_v<T, fault::BitFlipFault> ||
                          std::is_same_v<T, fault::DoubleBitFlipFault> ||
                          std::is_same_v<T, fault::StateWriteFault>) {
                return hookObservable(f.target);
            } else if constexpr (std::is_same_v<T, fault::FsmTransitionFault>) {
                return componentObservable(f.target);
            } else if constexpr (std::is_same_v<T, fault::DigitalPulseFault> ||
                                 std::is_same_v<T, fault::StuckAtFault>) {
                const auto it = processByName_.find(f.saboteur + "/pass");
                if (it == processByName_.end()) {
                    return true; // unknown saboteur: never statically mask
                }
                for (SignalBase* s : it->second->drives) {
                    if (signalObservable(s)) {
                        return true;
                    }
                }
                return false;
            } else {
                // Golden, analog and parametric faults: outside the digital
                // netlist, always treated as observable.
                return true;
            }
        },
        fault);
}

SignalGraph::ChainTerminal SignalGraph::chainTerminalOf(const std::string& saboteurName) const
{
    ChainTerminal terminal{saboteurName, false};
    const auto start = processByName_.find(saboteurName + "/pass");
    if (start == processByName_.end() || start->second->drives.size() != 1 ||
        start->second->combDelay != 0) {
        return terminal;
    }
    bool parity = false;
    const SignalBase* cur = start->second->drives.front();
    std::size_t hops = 0;
    while (hops++ < nodes_.size() + 1) { // cycle guard
        const int node = indexOf(cur);
        if (node < 0) {
            break;
        }
        const NodeInfo& n = nodes_[static_cast<std::size_t>(node)];
        // The intermediate net must be invisible (not compared, watched or
        // externally driven) and feed exactly one process, or collapsing
        // onto a downstream stage would change an observed waveform.
        if (n.observedTrace || n.watched || n.external) {
            break;
        }
        const auto& readers = readersOf(node);
        if (readers.size() != 1) {
            break;
        }
        const ProcessConnectivity* next = readers.front();
        if (next->sequential || next->combDelay != 0 ||
            next->combKind == CombKind::Opaque || next->drives.size() != 1 ||
            inputsOf(*next).size() != 1) {
            break;
        }
        if (next->combKind == CombKind::Inverter) {
            parity = !parity;
        }
        // A saboteur stage becomes the new collapse terminal; the parity
        // accumulated so far maps stuck values onto it.
        const std::string& pn = next->process->name();
        constexpr const char* kPassSuffix = "/pass";
        const std::size_t suffixLen = 5;
        if (pn.size() > suffixLen &&
            pn.compare(pn.size() - suffixLen, suffixLen, kPassSuffix) == 0 &&
            tb_->findDigitalSaboteur(pn.substr(0, pn.size() - suffixLen)) != nullptr) {
            terminal.saboteur = pn.substr(0, pn.size() - suffixLen);
            terminal.inverted = parity;
        }
        cur = next->drives.front();
    }
    return terminal;
}

} // namespace gfi::analyze
