#pragma once
// Structural fault collapsing — pass 2 of the static fault-space analyzer.
// Partitions a campaign fault list into equivalence classes whose members
// provably produce the same classification, so the campaign simulates one
// representative per class and expands its verdict to the other members:
//
//   - masked:      every *valid* fault with no structural path from its
//                  injection site to a compared output, watched signal or
//                  compared state hook (SignalGraph::faultObservable). All
//                  such faults land in one class — they cannot perturb
//                  anything the classifier looks at.
//   - chain:       SET pulses and stuck-at-0/1 faults on saboteurs that sit
//                  on the same zero-delay buffer/inverter chain collapse
//                  onto the chain terminal (SignalGraph::chainTerminalOf);
//                  pulses are parity-invariant, stuck values normalize by
//                  XOR with the accumulated inverter parity.
//   - singleton:   everything else — golden specs, faults the preflight
//                  rejects (they must keep their own SimError verdict),
//                  non-0/1 stuck values (U/X propagate differently through
//                  gates and raw saboteur pass-through), zero/negative
//                  pulse widths (delta-glitch ordering is not modeled).
//
// The plan is purely structural: it never runs a process callback, so
// building it costs microseconds even for campaigns with thousands of runs.

#include "core/fault.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace gfi::fault {
class Testbench;
}

namespace gfi::analyze {

class SignalGraph;

/// The collapse partition of one campaign fault list.
struct CollapsePlan {
    /// repOf[i] is the index of the fault whose simulated result stands in
    /// for fault i; repOf[i] == i marks a representative (simulated) fault.
    std::vector<std::size_t> repOf;

    /// The equivalence-class key of each fault (diagnostic; stable strings:
    /// "masked", "pulse|…", "stuck|…", "i|<index>" for singletons).
    std::vector<std::string> classKey;

    /// Number of simulated representatives (== distinct classes).
    [[nodiscard]] std::size_t classes() const;

    /// Number of runs saved: members whose verdict is expanded, not run.
    [[nodiscard]] std::size_t collapsedRuns() const;

    /// True when fault @p i is simulated rather than expanded.
    [[nodiscard]] bool isRepresentative(std::size_t i) const
    {
        return repOf[i] == i;
    }
};

/// Partitions @p faults into equivalence classes against @p g. The first
/// member of each class (in list order) becomes its representative.
[[nodiscard]] CollapsePlan collapseFaults(const SignalGraph& g,
                                          const fault::Testbench& tb,
                                          const std::vector<fault::FaultSpec>& faults);

/// Convenience overload: builds the SignalGraph internally.
[[nodiscard]] CollapsePlan collapseFaults(const fault::Testbench& tb,
                                          const std::vector<fault::FaultSpec>& faults);

} // namespace gfi::analyze
