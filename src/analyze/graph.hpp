#pragma once
// Structural connectivity graph over the declared netlist metadata — pass 1
// of the static fault-space analyzer. Built purely from the connectivity
// registry (noteDrives/noteReads/noteSequential/noteCombKind), the saboteur
// and instrumentation registries, and the testbench's observation
// configuration; no process callback is ever executed.
//
// The graph answers the two questions the fault collapser and the SCOAP
// scorer need:
//   - levelization: the combinational depth of every signal (sequential
//     processes and external drivers cut the levels, exactly like DIG001
//     cuts combinational cycles);
//   - observability: whether a perturbation on a signal / state element /
//     saboteur has any structural path to a compared output, a watched or
//     listened-to signal, or a state element the classifier compares at the
//     end of the run (the DIG004 dead-signal cone, generalized to transitive
//     unobservability).

#include "core/fault.hpp"
#include "digital/circuit.hpp"

#include <map>
#include <string>
#include <vector>

namespace gfi::fault {
class Testbench;
}

namespace gfi::analyze {

/// Per-signal facts derived from the declared connectivity.
struct NodeInfo {
    const digital::SignalBase* signal = nullptr;
    bool observedTrace = false; ///< compared output (Testbench::observeDigital)
    bool watched = false;       ///< has watcher callbacks (recorder, D->A bridges)
    bool external = false;      ///< declared externally driven
    bool driven = false;        ///< driven by at least one process
    int level = 0;              ///< combinational depth (0 = source/sequential
                                ///< output, -1 = inside a combinational cycle)
    int fanout = 0;             ///< processes reading or triggered by it
    bool observable = false;    ///< structural path to an observed sink
};

/// The signal-level connectivity graph of one instrumented testbench.
class SignalGraph {
public:
    explicit SignalGraph(const fault::Testbench& tb);

    /// All known signals, in discovery order (connectivity + externals).
    [[nodiscard]] const std::vector<NodeInfo>& nodes() const noexcept { return nodes_; }

    /// Index of @p s in nodes(), or -1 when the netlist never mentions it.
    [[nodiscard]] int indexOf(const digital::SignalBase* s) const;

    /// Deepest combinational level of any signal.
    [[nodiscard]] int maxLevel() const noexcept { return maxLevel_; }

    /// Signals caught inside a combinational cycle (level -1).
    [[nodiscard]] std::size_t cyclicSignals() const noexcept { return cyclicSignals_; }

    /// Connectivity records, one per process (borrowed from the circuit).
    [[nodiscard]] const std::vector<const digital::ProcessConnectivity*>&
    processes() const noexcept
    {
        return processes_;
    }

    /// Processes reading or triggered by node @p node.
    [[nodiscard]] const std::vector<const digital::ProcessConnectivity*>&
    readersOf(int node) const;

    /// State hooks the testbench classifier compares at the end of the run.
    [[nodiscard]] const std::vector<std::string>& observedStateHooks() const noexcept
    {
        return observedStateHooks_;
    }

    /// All inputs of @p p (triggers + reads, deduplicated, clock excluded).
    [[nodiscard]] static std::vector<digital::SignalBase*>
    inputsOf(const digital::ProcessConnectivity& p);

    /// True when a perturbation on @p s can structurally reach an observed
    /// sink. Conservative: unknown signals count as observable.
    [[nodiscard]] bool signalObservable(const digital::SignalBase* s) const;

    /// The component owning @p hookName: longest component-name prefix match
    /// (hook "cpu/core/pc" belongs to component "cpu/core"). Null if none.
    [[nodiscard]] const digital::Component*
    componentOfHook(const std::string& hookName) const;

    /// True when a fault inside @p componentName's state can structurally
    /// reach an observed sink: the component owns a compared state hook, or
    /// any signal driven by any of its processes is observable. Conservative:
    /// unknown components count as observable.
    [[nodiscard]] bool componentObservable(const std::string& componentName) const;

    /// True when flipping state hook @p hookName can reach an observed sink.
    [[nodiscard]] bool hookObservable(const std::string& hookName) const;

    /// True when @p fault can structurally affect any compared output or
    /// state. Conservative: golden, analog and unknown-target faults count
    /// as observable (they are never statically masked).
    [[nodiscard]] bool faultObservable(const fault::FaultSpec& fault) const;

    /// Where the zero-delay buffer/inverter chain downstream of a digital
    /// saboteur ends: the terminal saboteur every interconnect fault on the
    /// chain collapses onto, plus the inverter parity accumulated between
    /// the two (stuck-at-v upstream == stuck-at-(v ^ parity) at the
    /// terminal). The walk stops at observed/watched/multi-fanout signals,
    /// non-zero-delay stages and opaque logic — everything that would break
    /// waveform equivalence on the observed outputs.
    struct ChainTerminal {
        std::string saboteur;
        bool inverted = false;
    };
    [[nodiscard]] ChainTerminal chainTerminalOf(const std::string& saboteurName) const;

private:
    int addNode(const digital::SignalBase* s);
    void buildNodes(const fault::Testbench& tb);
    void levelize();
    void markObservable(const fault::Testbench& tb);

    const fault::Testbench* tb_;
    const digital::Circuit* circuit_;
    std::vector<NodeInfo> nodes_;
    std::map<const digital::SignalBase*, int> index_;
    std::vector<const digital::ProcessConnectivity*> processes_;
    std::map<std::string, const digital::ProcessConnectivity*> processByName_;
    std::vector<std::vector<const digital::ProcessConnectivity*>> readers_;
    std::vector<std::string> observedStateHooks_;
    int maxLevel_ = 0;
    std::size_t cyclicSignals_ = 0;
};

} // namespace gfi::analyze
