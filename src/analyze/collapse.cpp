#include "analyze/collapse.hpp"

#include "analyze/graph.hpp"
#include "lint/preflight.hpp"

#include <map>

namespace gfi::analyze {

namespace {

/// The equivalence-class key of one fault. "i|<index>" keys are unique per
/// fault and therefore always singletons.
std::string classKeyOf(const SignalGraph& g, const fault::Testbench& tb,
                       const fault::FaultSpec& fault, std::size_t index)
{
    const std::string singleton = "i|" + std::to_string(index);
    if (fault::isGolden(fault)) {
        return singleton;
    }
    // Faults the preflight rejects keep their own SimError verdict: expanding
    // a healthy representative's outcome onto them would hide the error.
    if (lint::preflightFault(tb, fault, index).count(lint::Severity::Error) != 0) {
        return singleton;
    }
    if (const auto* pulse = std::get_if<fault::DigitalPulseFault>(&fault)) {
        if (pulse->width <= 0) {
            // Zero-width invert/restore land in the same delta cycle; the
            // scheduler's action ordering decides what happens, which the
            // static model does not capture.
            return singleton;
        }
    }
    if (!g.faultObservable(fault)) {
        return "masked";
    }
    if (const auto* pulse = std::get_if<fault::DigitalPulseFault>(&fault)) {
        // Inverting for [t, t+w) commutes with every zero-delay buffer or
        // inverter on the chain, so the pulse key ignores parity.
        const SignalGraph::ChainTerminal term = g.chainTerminalOf(pulse->saboteur);
        return "pulse|" + term.saboteur + "|" + std::to_string(pulse->time) + "|" +
               std::to_string(pulse->width);
    }
    if (const auto* stuck = std::get_if<fault::StuckAtFault>(&fault)) {
        if (stuck->value != digital::Logic::Zero && stuck->value != digital::Logic::One) {
            // U/X stuck values are not parity-normalizable: gates map U to X
            // (toX01) while the saboteur pass-through forwards them raw.
            return singleton;
        }
        const SignalGraph::ChainTerminal term = g.chainTerminalOf(stuck->saboteur);
        bool one = stuck->value == digital::Logic::One;
        if (term.inverted) {
            one = !one;
        }
        return "stuck|" + term.saboteur + "|" + (one ? "1" : "0") + "|" +
               std::to_string(stuck->time) + "|" + std::to_string(stuck->duration);
    }
    return singleton;
}

} // namespace

std::size_t CollapsePlan::classes() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < repOf.size(); ++i) {
        if (repOf[i] == i) {
            ++n;
        }
    }
    return n;
}

std::size_t CollapsePlan::collapsedRuns() const
{
    return repOf.size() - classes();
}

CollapsePlan collapseFaults(const SignalGraph& g, const fault::Testbench& tb,
                            const std::vector<fault::FaultSpec>& faults)
{
    CollapsePlan plan;
    plan.repOf.resize(faults.size());
    plan.classKey.resize(faults.size());
    std::map<std::string, std::size_t> firstOf;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        std::string key = classKeyOf(g, tb, faults[i], i);
        const auto [it, inserted] = firstOf.emplace(key, i);
        plan.repOf[i] = it->second;
        plan.classKey[i] = std::move(key);
    }
    return plan;
}

CollapsePlan collapseFaults(const fault::Testbench& tb,
                            const std::vector<fault::FaultSpec>& faults)
{
    const SignalGraph g(tb);
    return collapseFaults(g, tb, faults);
}

} // namespace gfi::analyze
