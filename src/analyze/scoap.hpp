#pragma once
// SCOAP-style testability scoring — pass 3 of the static fault-space
// analyzer. Classic SCOAP assigns every net a combinational controllability
// (how hard it is to set from the inputs) and observability (how hard it is
// to propagate to an output); here both run over the declared connectivity
// graph, with opaque processes treated as worst-case gates:
//
//   CC  forward, in level order: external or undriven nets cost 1, outputs
//       of sequential processes cost kSeqCost (a clock cycle), outputs of
//       combinational processes cost 1 + sum of their input CCs (minimum
//       over drivers), nets inside combinational cycles are unscorable.
//   CO  shortest path to an observed sink (Dijkstra on the reversed graph):
//       sinks cost 0, crossing a process costs 1 plus one per side input
//       plus kSeqCost when the process is sequential; nets with no path are
//       unobservable (CO = -1, the DIG004 cone).
//
// The ranking (ascending CC + CO, unobservable nets last) is the paper's
// sensitivity ordering: nets near the top are the cheapest places for an
// SEU to both happen and matter, so campaigns target them first.

#include <cstdint>
#include <string>
#include <vector>

namespace gfi::analyze {

class SignalGraph;

/// Cost of crossing a sequential element (one clock cycle) in SCOAP units.
inline constexpr std::int64_t kSeqCost = 10;

/// Combinational-cycle / overflow sentinel for controllability.
inline constexpr std::int64_t kInfCost = 1'000'000'000;

/// Testability scores of one signal.
struct NodeScore {
    std::string signal;        ///< hierarchical signal name
    std::int64_t cc = 0;       ///< controllability (kInfCost = unscorable)
    std::int64_t co = -1;      ///< observability (-1 = no path to a sink)
    int level = 0;             ///< combinational depth
    int fanout = 0;            ///< reader count
    bool observable = false;   ///< structural path to an observed sink

    /// Combined sensitivity cost (lower = easier to hit and see).
    [[nodiscard]] std::int64_t score() const
    {
        return co < 0 ? kInfCost : cc + co;
    }
};

/// Ranked testability scores of a whole testbench.
struct TestabilityReport {
    /// Every known signal, ascending score, unobservable nets last; ties
    /// broken by name so the ranking is deterministic.
    std::vector<NodeScore> ranked;

    /// Printable ranking table of the @p topN most sensitive nets (0 = all).
    [[nodiscard]] std::string table(std::size_t topN = 0) const;

    /// JSON array of every score (machine-readable sensitivity ranking).
    [[nodiscard]] std::string json() const;
};

/// Scores every signal of @p g.
[[nodiscard]] TestabilityReport scoreTestability(const SignalGraph& g);

} // namespace gfi::analyze
