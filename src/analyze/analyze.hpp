#pragma once
// Facade of the static fault-space analyzer: builds the SignalGraph, runs
// the SCOAP scorer and summarizes the structural facts a campaign designer
// wants before burning simulation time — netlist size, combinational depth,
// cycles, and how much of the fault space is statically unobservable.
//
// The analysis never executes a process callback; it reads only the
// declared connectivity, the saboteur/instrumentation registries and the
// testbench's observation configuration.

#include "analyze/scoap.hpp"

#include <cstddef>
#include <string>

namespace gfi::fault {
class Testbench;
}

namespace gfi::analyze {

/// Structural summary + testability ranking of one testbench.
struct AnalysisReport {
    std::size_t signals = 0;             ///< known nets
    std::size_t processes = 0;           ///< declared processes
    std::size_t combProcesses = 0;       ///< combinational processes
    std::size_t seqProcesses = 0;        ///< sequential processes
    int maxLevel = 0;                    ///< deepest combinational level
    std::size_t cyclicSignals = 0;       ///< nets inside combinational cycles
    std::size_t observableSignals = 0;   ///< nets with a path to a sink
    std::size_t unobservableSignals = 0; ///< the statically-masked cone
    TestabilityReport testability;       ///< per-net SCOAP ranking

    /// Printable summary + the @p topN most sensitive nets (0 = all).
    [[nodiscard]] std::string table(std::size_t topN = 10) const;

    /// JSON document { "graph": {...}, "testability": [...] }.
    [[nodiscard]] std::string json() const;
};

/// Runs all three analyzer passes over @p tb.
[[nodiscard]] AnalysisReport analyzeTestbench(const fault::Testbench& tb);

} // namespace gfi::analyze
