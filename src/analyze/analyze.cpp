#include "analyze/analyze.hpp"

#include "analyze/graph.hpp"
#include "util/table.hpp"

namespace gfi::analyze {

AnalysisReport analyzeTestbench(const fault::Testbench& tb)
{
    const SignalGraph g(tb);

    AnalysisReport r;
    r.signals = g.nodes().size();
    r.processes = g.processes().size();
    for (const digital::ProcessConnectivity* p : g.processes()) {
        if (p->sequential) {
            ++r.seqProcesses;
        } else {
            ++r.combProcesses;
        }
    }
    r.maxLevel = g.maxLevel();
    r.cyclicSignals = g.cyclicSignals();
    for (const NodeInfo& n : g.nodes()) {
        if (n.observable) {
            ++r.observableSignals;
        } else {
            ++r.unobservableSignals;
        }
    }
    r.testability = scoreTestability(g);
    return r;
}

std::string AnalysisReport::table(std::size_t topN) const
{
    TextTable t;
    t.setHeader({"metric", "value"});
    t.addRow({"signals", std::to_string(signals)});
    t.addRow({"processes", std::to_string(processes)});
    t.addRow({"combinational", std::to_string(combProcesses)});
    t.addRow({"sequential", std::to_string(seqProcesses)});
    t.addRow({"max comb level", std::to_string(maxLevel)});
    t.addRow({"cyclic signals", std::to_string(cyclicSignals)});
    t.addRow({"observable signals", std::to_string(observableSignals)});
    t.addRow({"unobservable signals", std::to_string(unobservableSignals)});
    return t.str() + "\n" + testability.table(topN);
}

std::string AnalysisReport::json() const
{
    std::string out = "{\n  \"graph\": {";
    out += "\"signals\": " + std::to_string(signals);
    out += ", \"processes\": " + std::to_string(processes);
    out += ", \"combinational\": " + std::to_string(combProcesses);
    out += ", \"sequential\": " + std::to_string(seqProcesses);
    out += ", \"max_level\": " + std::to_string(maxLevel);
    out += ", \"cyclic_signals\": " + std::to_string(cyclicSignals);
    out += ", \"observable_signals\": " + std::to_string(observableSignals);
    out += ", \"unobservable_signals\": " + std::to_string(unobservableSignals);
    out += "},\n  \"testability\": " + testability.json();
    out += "}\n";
    return out;
}

} // namespace gfi::analyze
