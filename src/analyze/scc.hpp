#pragma once
// Strongly connected components over small index graphs. Shared by the lint
// subsystem (DIG001 combinational-loop detection) and the fault-space
// analyzer (levelization of the combinational drive/trigger graph) — one
// Tarjan, two consumers.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace gfi::analyze {

/// Iterative Tarjan SCC over an adjacency list of vertex indices. Returns
/// the strongly connected components in reverse topological order: every
/// component is emitted after all components it has edges into, so iterating
/// the result forward visits sinks first and iterating it backward visits
/// sources first (the levelization order).
inline std::vector<std::vector<int>> tarjanScc(const std::vector<std::vector<int>>& adj)
{
    const int n = static_cast<int>(adj.size());
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
    std::vector<bool> onStack(static_cast<std::size_t>(n), false);
    std::vector<int> stack;
    std::vector<std::vector<int>> sccs;
    int nextIndex = 0;

    struct Frame {
        int v;
        std::size_t edge;
    };
    for (int root = 0; root < n; ++root) {
        if (index[static_cast<std::size_t>(root)] != -1) {
            continue;
        }
        std::vector<Frame> call{{root, 0}};
        while (!call.empty()) {
            Frame& f = call.back();
            const auto v = static_cast<std::size_t>(f.v);
            if (f.edge == 0) {
                index[v] = lowlink[v] = nextIndex++;
                stack.push_back(f.v);
                onStack[v] = true;
            }
            bool descended = false;
            while (f.edge < adj[v].size()) {
                const int w = adj[v][f.edge++];
                const auto wi = static_cast<std::size_t>(w);
                if (index[wi] == -1) {
                    call.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[wi]) {
                    lowlink[v] = std::min(lowlink[v], index[wi]);
                }
            }
            if (descended) {
                continue;
            }
            if (lowlink[v] == index[v]) {
                std::vector<int> scc;
                int w = -1;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[static_cast<std::size_t>(w)] = false;
                    scc.push_back(w);
                } while (w != f.v);
                sccs.push_back(std::move(scc));
            }
            const int done = f.v;
            call.pop_back();
            if (!call.empty()) {
                const auto p = static_cast<std::size_t>(call.back().v);
                lowlink[p] = std::min(lowlink[p], lowlink[static_cast<std::size_t>(done)]);
            }
        }
    }
    return sccs;
}

/// True when @p scc is an actual cycle: more than one vertex, or a single
/// vertex with a self-edge in @p adj.
inline bool sccIsCyclic(const std::vector<int>& scc, const std::vector<std::vector<int>>& adj)
{
    if (scc.size() > 1) {
        return true;
    }
    const int v = scc.front();
    const auto& edges = adj[static_cast<std::size_t>(v)];
    return std::find(edges.begin(), edges.end(), v) != edges.end();
}

} // namespace gfi::analyze
