#include "pll/pll.hpp"

#include "ams/bridge.hpp"
#include "analog/passive.hpp"
#include "pll/pfd_structural.hpp"
#include "trace/metrics.hpp"

#include <cmath>

namespace gfi::pll {

PllTestbench::PllTestbench(PllConfig config) : config_(config)
{
    auto& dig = sim().digital();
    auto& ana = sim().analog();

    // --- digital signals ------------------------------------------------------
    auto& ref = dig.logicSignal(names::kRef, digital::Logic::Zero);
    auto& fb = dig.logicSignal(names::kFb, digital::Logic::Zero);
    auto& up = dig.logicSignal(names::kUp, digital::Logic::Zero);
    auto& down = dig.logicSignal(names::kDown, digital::Logic::Zero);
    auto& fout = dig.logicSignal(names::kFout, digital::Logic::Zero);

    // --- reference clock and PFD ----------------------------------------------
    const SimTime refPeriod = fromSeconds(1.0 / config_.refFrequency);
    dig.add<digital::ClockGen>(dig, "pll/refgen", ref, refPeriod, 0.5,
                               /*start=*/refPeriod / 4);
    if (config_.structuralPfd) {
        dig.add<StructuralPfd>(dig, "pll/pfd", ref, fb, up, down);
    } else {
        pfd_ = &dig.add<PhaseFreqDetector>(dig, "pll/pfd", ref, fb, up, down);
    }

    // --- analog nodes ------------------------------------------------------------
    const analog::NodeId vctrl = ana.node(names::kVctrl);
    const analog::NodeId vcoOut = ana.node(names::kVcoOut);
    const analog::NodeId filtMid = ana.node("pll/filt_mid");

    // --- charge pump: I = Icp * (UP - DOWN) into the filter input -----------------
    const double icp = config_.icp;
    make<ams::DigitalCurrentDriver>(
        sim(), "pll/cp", std::vector<digital::LogicSignal*>{&up, &down}, vctrl,
        [icp](const std::vector<digital::Logic>& v) {
            const double u = digital::toX01(v[0]) == digital::Logic::One ? 1.0 : 0.0;
            const double d = digital::toX01(v[1]) == digital::Logic::One ? 1.0 : 0.0;
            return icp * (u - d);
        });

    // --- loop filter: R1 + C1 series to ground, C2 shunt --------------------------
    auto& r1 = ana.add<analog::Resistor>(ana, "pll/r1", vctrl, filtMid, config_.r1);
    auto& c1 = ana.add<analog::Capacitor>(ana, "pll/c1", filtMid, analog::kGround, config_.c1);
    auto& c2 = ana.add<analog::Capacitor>(ana, "pll/c2", vctrl, analog::kGround, config_.c2);

    // --- VCO -----------------------------------------------------------------------
    vco_ = &ana.add<BehavioralVco>(ana, "pll/vco", vctrl, vcoOut, config_.f0, config_.kvco,
                                   config_.vcoOffset, config_.vcoAmplitude);

    // --- digitizer (comparator, threshold 2.5 V) ------------------------------------
    make<ams::AtoDBridge>(sim(), "pll/digitizer", vcoOut, fout, config_.digitizerThreshold,
                          /*hysteresis=*/0.0);

    // --- feedback divider -------------------------------------------------------------
    dig.add<digital::ClockDivider>(dig, "pll/divider", fout, fb, config_.dividerN);

    // --- instrumentation: saboteurs on the analog structural nodes ----------------
    sabFilter_ = &ana.add<fault::CurrentSaboteur>(ana, names::kSabFilter, vctrl);
    sabVcoOut_ = &ana.add<fault::CurrentSaboteur>(ana, names::kSabVcoOut, vcoOut);
    addCurrentSaboteur(*sabFilter_);
    addCurrentSaboteur(*sabVcoOut_);

    // --- parametric fault targets ----------------------------------------------------
    addParameter("pll/r1", [&r1, nominal = config_.r1](double factor) {
        r1.setResistance(nominal * factor);
    });
    addParameter("pll/c1", [&c1, nominal = config_.c1](double factor) {
        c1.setCapacitance(nominal * factor);
    });
    addParameter("pll/c2", [&c2, nominal = config_.c2](double factor) {
        c2.setCapacitance(nominal * factor);
    });
    addParameter("pll/kvco", [this, nominal = config_.kvco](double factor) {
        vco_->setKvco(nominal * factor);
    });

    // --- observation -------------------------------------------------------------------
    observeDigital(names::kFout);
    observeAnalog(names::kVctrl);
    recorder().recordDigital(names::kUp);
    recorder().recordDigital(names::kDown);
    recorder().recordDigital(names::kFb);
    observeAllState();
    setDuration(config_.duration);
}

SimTime lockTime(const trace::DigitalTrace& fout, SimTime nominalPeriod, double relTol,
                 int consecutive)
{
    const auto periods = trace::extractPeriods(fout);
    int streak = 0;
    for (const auto& p : periods) {
        const double rel = std::fabs(static_cast<double>(p.period - nominalPeriod)) /
                           static_cast<double>(nominalPeriod);
        if (rel <= relTol) {
            if (++streak >= consecutive) {
                return p.edge - (consecutive - 1) * nominalPeriod;
            }
        } else {
            streak = 0;
        }
    }
    return -1;
}

} // namespace gfi::pll
