#pragma once
// Behavioral voltage-controlled oscillator (paper Figure 5, "Analog VCO").
//
// Standard behavioral VCO model (Antao et al., reference [13]): the output
// frequency is f0 + Kvco * Vctrl and the output is a sinusoid obtained by
// integrating the instantaneous frequency into a phase. The control voltage
// is sampled at the start of each solver step (explicit coupling), which is
// exact to first order because the loop-filter dynamics are orders of
// magnitude slower than the solver step; it also makes the in-step output a
// pure sinusoid of time, so crossing bisection converges to the exact edge.

#include "analog/system.hpp"

namespace gfi::pll {

/// Sinusoidal behavioral VCO stamped as a branch voltage source.
class BehavioralVco : public analog::AnalogComponent {
public:
    /// @param f0         free-running frequency at Vctrl = 0 (Hz)
    /// @param kvco       gain (Hz per volt)
    /// @param offset     output DC level (V); the paper's digitizer threshold
    ///                   sits at this level
    /// @param amplitude  output sine amplitude (V)
    BehavioralVco(analog::AnalogSystem& sys, std::string name, analog::NodeId ctrl,
                  analog::NodeId out, double f0, double kvco, double offset = 2.5,
                  double amplitude = 2.5);

    /// Instantaneous frequency for a control voltage (clamped to stay
    /// physical under large fault transients).
    [[nodiscard]] double frequency(double vctrl) const;

    /// Accumulated phase (radians).
    [[nodiscard]] double phase() const noexcept { return phase_; }

    /// Gain mutator (parametric fault target).
    void setKvco(double kvco) { kvco_ = kvco; }
    [[nodiscard]] double kvco() const noexcept { return kvco_; }

    /// Center-frequency mutator (parametric fault target).
    void setF0(double f0) { f0_ = f0; }
    [[nodiscard]] double f0() const noexcept { return f0_; }

    void stamp(analog::Stamper& s, const analog::Solution& x, double t, double dt,
               bool dcMode) override;
    void acceptStep(const analog::Solution& x, double t, double dt) override;
    [[nodiscard]] double maxStep(double t) const override;

    void captureState(snapshot::Writer& w) const override
    {
        w.f64(phase_);
        w.f64(vctrl0_);
    }

    void restoreState(snapshot::Reader& r) override
    {
        phase_ = r.f64();
        vctrl0_ = r.f64();
    }

private:
    analog::NodeId ctrl_;
    analog::NodeId out_;
    int branch_;
    double f0_;
    double kvco_;
    double offset_;
    double amplitude_;
    double phase_ = 0.0;
    double vctrl0_ = 0.0; // control voltage at the start of the current step
};

} // namespace gfi::pll
