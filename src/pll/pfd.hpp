#pragma once
// Sequential phase-frequency detector (paper Figure 5, "Sequential
// Phase-frequency Detector").
//
// Classic tri-state PFD: a rising reference edge raises UP, a rising feedback
// edge raises DOWN, and when both are high an internal reset clears both
// after a short reset delay. The UP/DOWN flags are stored state and register
// instrumentation hooks, so the campaign can flip them like any other
// sequential element (SEUs in the PLL's digital part).

#include "digital/circuit.hpp"
#include "snapshot/snapshot.hpp"

namespace gfi::pll {

/// Behavioral tri-state phase-frequency detector.
class PhaseFreqDetector : public digital::Component, public snapshot::Snapshottable {
public:
    /// @param resetDelay  width of the simultaneous UP/DOWN pulse when the
    ///                    internal AND reset fires (anti-backlash window).
    PhaseFreqDetector(digital::Circuit& c, std::string name, digital::LogicSignal& ref,
                      digital::LogicSignal& fb, digital::LogicSignal& up,
                      digital::LogicSignal& down, SimTime resetDelay = 200 * kPicosecond,
                      SimTime delay = 100 * kPicosecond);

    /// Stored UP flag.
    [[nodiscard]] bool upState() const noexcept { return up_; }

    /// Stored DOWN flag.
    [[nodiscard]] bool downState() const noexcept { return down_; }

    /// Overwrites the stored flags and re-drives the outputs (SEU injection).
    void setState(bool up, bool down);

    /// Captures the flags, the reset token and the armed reset fire time;
    /// restore re-arms the in-flight reset action from it.
    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    void drive();
    void maybeScheduleReset();
    void scheduleResetAt(SimTime t);

    digital::Circuit* circuit_;
    digital::LogicSignal* upSig_;
    digital::LogicSignal* downSig_;
    bool up_ = false;
    bool down_ = false;
    SimTime resetDelay_;
    SimTime delay_;
    std::uint64_t resetToken_ = 0;  // invalidates stale scheduled resets
    SimTime pendingResetAt_ = -1;   // armed reset fire time, -1 if none
};

} // namespace gfi::pll
