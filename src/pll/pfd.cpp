#include "pll/pfd.hpp"

namespace gfi::pll {

using digital::Logic;

PhaseFreqDetector::PhaseFreqDetector(digital::Circuit& c, std::string name,
                                     digital::LogicSignal& ref, digital::LogicSignal& fb,
                                     digital::LogicSignal& up, digital::LogicSignal& down,
                                     SimTime resetDelay, SimTime delay)
    : digital::Component(std::move(name)), circuit_(&c), upSig_(&up), downSig_(&down),
      resetDelay_(resetDelay), delay_(delay)
{
    digital::Process& p = c.process(this->name() + "/seq",
              [this, &ref, &fb] {
                  bool changed = false;
                  if (digital::risingEdge(ref) && !up_) {
                      up_ = true;
                      changed = true;
                  }
                  if (digital::risingEdge(fb) && !down_) {
                      down_ = true;
                      changed = true;
                  }
                  if (changed) {
                      drive();
                      maybeScheduleReset();
                  }
              },
              {&ref, &fb});
    c.noteSequential(p, nullptr); // edge-triggered on both inputs, no single clock
    c.noteDrives(p, {&up, &down});

    c.instrumentation().add(digital::StateHook{
        this->name(), 2,
        [this] {
            return static_cast<std::uint64_t>(up_ ? 1 : 0) |
                   (static_cast<std::uint64_t>(down_ ? 1 : 0) << 1);
        },
        [this](std::uint64_t v) { setState((v & 1u) != 0, (v & 2u) != 0); },
        [this](int bit) {
            setState(bit == 0 ? !up_ : up_, bit == 1 ? !down_ : down_);
        }});
}

void PhaseFreqDetector::drive()
{
    upSig_->scheduleInertial(digital::fromBool(up_), delay_);
    downSig_->scheduleInertial(digital::fromBool(down_), delay_);
}

void PhaseFreqDetector::maybeScheduleReset()
{
    if (!(up_ && down_)) {
        return;
    }
    // AND reset: both flags clear after the anti-backlash window. A token
    // guards against stale resets if state was overwritten meanwhile.
    ++resetToken_;
    scheduleResetAt(circuit_->scheduler().now() + resetDelay_);
}

void PhaseFreqDetector::scheduleResetAt(SimTime t)
{
    pendingResetAt_ = t;
    const std::uint64_t token = resetToken_;
    circuit_->scheduler().scheduleAction(t, [this, token] {
        if (token != resetToken_) {
            return;
        }
        pendingResetAt_ = -1;
        up_ = false;
        down_ = false;
        drive();
    });
}

void PhaseFreqDetector::setState(bool up, bool down)
{
    up_ = up;
    down_ = down;
    ++resetToken_; // cancel any in-flight reset
    pendingResetAt_ = -1;
    drive();
    maybeScheduleReset();
}

void PhaseFreqDetector::captureState(snapshot::Writer& w) const
{
    w.boolean(up_);
    w.boolean(down_);
    w.u64(resetToken_);
    w.i64(pendingResetAt_);
}

void PhaseFreqDetector::restoreState(snapshot::Reader& r)
{
    up_ = r.boolean();
    down_ = r.boolean();
    resetToken_ = r.u64();
    const SimTime pending = r.i64();
    if (pending >= 0) {
        scheduleResetAt(pending); // re-arm with the restored (current) token
    } else {
        pendingResetAt_ = -1;
    }
}

} // namespace gfi::pll
