#include "pll/pfd_structural.hpp"

#include "digital/gates.hpp"
#include "digital/sequential.hpp"

namespace gfi::pll {

using namespace digital;

StructuralPfd::StructuralPfd(Circuit& c, std::string name, LogicSignal& ref, LogicSignal& fb,
                             LogicSignal& up, LogicSignal& down, SimTime resetDelay,
                             SimTime gateDelay)
    : Component(std::move(name))
{
    const std::string base = this->name();

    // Data inputs tied high.
    auto& vdd = c.logicSignal(base + "/vdd", Logic::One);
    c.noteExternalDriver(vdd); // constant tie-off

    // Internal reset net: rstn = NOT(UP AND DOWN), with the AND carrying the
    // anti-backlash delay.
    auto& resetAnd = c.logicSignal(base + "/rst_and", Logic::U);
    auto& rstn = c.logicSignal(base + "/rstn", Logic::U);

    // The two phase flip-flops drive the outputs directly.
    c.add<DFlipFlop>(c, base + "/ff_up", ref, vdd, up, &rstn, nullptr, gateDelay);
    c.add<DFlipFlop>(c, base + "/ff_down", fb, vdd, down, &rstn, nullptr, gateDelay);

    c.add<AndGate>(c, base + "/and", up, down, resetAnd, resetDelay);
    c.add<NotGate>(c, base + "/inv", resetAnd, rstn, gateDelay);
}

} // namespace gfi::pll
