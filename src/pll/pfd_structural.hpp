#pragma once
// Structural (gate-level) phase-frequency detector.
//
// The paper's conclusion plans "comparisons between results obtained on
// behavioral models and results obtained on lower level descriptions". This
// is the lower-level description of the PFD: the classic two-D-flip-flop
// implementation — DFF data inputs tied to '1', clocked by the reference and
// feedback edges, with an AND gate asynchronously resetting both flops —
// built entirely from library gates and flip-flops, each with its own
// instrumentation hook and realistic per-gate delays.
//
// Same interface as the behavioral PhaseFreqDetector, so PllTestbench can be
// built with either model and campaigns can be compared level against level.

#include "digital/circuit.hpp"

namespace gfi::pll {

/// Gate-level PFD: 2 DFFs + AND reset + reset-delay buffer chain.
class StructuralPfd : public digital::Component {
public:
    /// @param resetDelay  propagation of the reset path (sets the
    ///                    anti-backlash pulse width, like the behavioral
    ///                    model's resetDelay).
    StructuralPfd(digital::Circuit& c, std::string name, digital::LogicSignal& ref,
                  digital::LogicSignal& fb, digital::LogicSignal& up,
                  digital::LogicSignal& down, SimTime resetDelay = 200 * kPicosecond,
                  SimTime gateDelay = 50 * kPicosecond);

    /// The internal UP flip-flop's instrumentation hook name.
    [[nodiscard]] std::string upFlopHook() const { return name() + "/ff_up"; }

    /// The internal DOWN flip-flop's instrumentation hook name.
    [[nodiscard]] std::string downFlopHook() const { return name() + "/ff_down"; }

    /// Structural shell: all state lives in the DFF/gate components it
    /// registered, which snapshot themselves.
    [[nodiscard]] bool snapshotExempt() const noexcept override { return true; }
};

} // namespace gfi::pll
