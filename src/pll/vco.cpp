#include "pll/vco.hpp"

#include <algorithm>
#include <cmath>

namespace gfi::pll {

BehavioralVco::BehavioralVco(analog::AnalogSystem& sys, std::string name, analog::NodeId ctrl,
                             analog::NodeId out, double f0, double kvco, double offset,
                             double amplitude)
    : analog::AnalogComponent(std::move(name)), ctrl_(ctrl), out_(out),
      branch_(sys.allocateBranch()), f0_(f0), kvco_(kvco), offset_(offset),
      amplitude_(amplitude)
{
}

double BehavioralVco::frequency(double vctrl) const
{
    // Clamp: a real VCO neither stops nor runs away under a fault transient.
    return std::clamp(f0_ + kvco_ * vctrl, 0.05 * f0_, 5.0 * f0_);
}

void BehavioralVco::stamp(analog::Stamper& s, const analog::Solution& x, double, double dt,
                          bool dcMode)
{
    const int br = s.varOfBranch(branch_);
    const int vo = s.varOfNode(out_);
    s.addA(vo, br, 1.0);
    s.addA(br, vo, 1.0);
    if (dcMode) {
        vctrl0_ = x.voltage(ctrl_); // prime the explicit control sample
    }
    const double ph =
        dcMode ? phase_ : phase_ + 2.0 * M_PI * frequency(vctrl0_) * dt;
    s.addB(br, offset_ + amplitude_ * std::sin(ph));
}

void BehavioralVco::acceptStep(const analog::Solution& x, double, double dt)
{
    phase_ += 2.0 * M_PI * frequency(vctrl0_) * dt;
    if (phase_ > 1e6) {
        phase_ = std::fmod(phase_, 2.0 * M_PI); // keep the argument accurate
    }
    vctrl0_ = x.voltage(ctrl_);
}

double BehavioralVco::maxStep(double) const
{
    // Resolve each output cycle with >= 24 points (edge timing itself comes
    // from exact bisection, not from the step size).
    return 1.0 / (frequency(vctrl0_) * 24.0);
}

} // namespace gfi::pll
