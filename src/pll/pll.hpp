#pragma once
// The complete PLL case study of the paper (Section 5, Figure 5):
//
//   F_in (500 kHz) -> Sequential PFD -> Charge Pump -> Low-pass Filter ->
//   Analog VCO -> Digitizer (comparator, threshold 2.5 V) -> F_out (50 MHz)
//                                 ^-- Divider (/100) feeding back to the PFD
//
// PllTestbench wires the whole loop into a fault::Testbench: instrumented
// (current saboteurs on the analog structural nodes, mutant hooks in every
// digital state element, parametric setters on the filter/VCO), observed
// (F_out digital trace, VCO control voltage waveform) and ready for campaigns.

#include "core/testbench.hpp"
#include "digital/sequential.hpp"
#include "pll/pfd.hpp"
#include "pll/vco.hpp"

namespace gfi::pll {

/// Design parameters of the case-study PLL.
struct PllConfig {
    double refFrequency = 500e3; ///< input reference (Hz) — paper: 500 kHz
    int dividerN = 100;          ///< feedback divider — paper: 50 MHz / 500 kHz
    double f0 = 30e6;            ///< VCO free-running frequency (Hz)
    double kvco = 20e6;          ///< VCO gain (Hz/V) -> lock at Vctrl = 1 V
    double icp = 100e-6;         ///< charge-pump current (A)
    double r1 = 8.2e3;           ///< loop-filter series resistor (ohm)
    double c1 = 3.3e-9;          ///< loop-filter series capacitor (F)
    double c2 = 150e-12;         ///< loop-filter shunt capacitor (F)
    double vcoOffset = 2.5;      ///< VCO output DC level (V)
    double vcoAmplitude = 2.5;   ///< VCO output amplitude (V)
    double digitizerThreshold = 2.5; ///< paper: comparator threshold 2.5 V
    SimTime duration = 250 * kMicrosecond; ///< default observation window

    /// false: behavioral PFD (paper's level); true: gate-level structural PFD
    /// (the "lower level description" of the paper's planned comparison).
    bool structuralPfd = false;

    /// Nominal output period once locked.
    [[nodiscard]] SimTime nominalOutputPeriod() const
    {
        return fromSeconds(1.0 / (refFrequency * dividerN));
    }
};

/// Signal / node names exposed by PllTestbench.
namespace names {
inline constexpr const char* kRef = "pll/ref";          ///< digital reference input
inline constexpr const char* kFb = "pll/fb";            ///< divided feedback clock
inline constexpr const char* kUp = "pll/up";            ///< PFD UP output
inline constexpr const char* kDown = "pll/down";        ///< PFD DOWN output
inline constexpr const char* kFout = "pll/fout";        ///< digitized output clock
inline constexpr const char* kVctrl = "pll/vctrl";      ///< filter output / VCO control
inline constexpr const char* kVcoOut = "pll/vco_out";   ///< analog VCO output
inline constexpr const char* kSabFilter = "sab/filter_in"; ///< saboteur at the filter input
inline constexpr const char* kSabVcoOut = "sab/vco_out";   ///< saboteur at the VCO output
} // namespace names

/// The elaborated, instrumented PLL experiment.
class PllTestbench : public fault::Testbench {
public:
    explicit PllTestbench(PllConfig config = {});

    /// The configuration this instance was built with.
    [[nodiscard]] const PllConfig& config() const noexcept { return config_; }

    /// The saboteur at the low-pass-filter input (the paper's injection
    /// location: "the saboteur output at the input of the low-pass filter,
    /// i.e. at the output of the charge pump").
    [[nodiscard]] fault::CurrentSaboteur& filterSaboteur() noexcept { return *sabFilter_; }

    /// The saboteur at the VCO output node.
    [[nodiscard]] fault::CurrentSaboteur& vcoOutSaboteur() noexcept { return *sabVcoOut_; }

    /// Direct access to the behavioral VCO (parametric experiments).
    [[nodiscard]] BehavioralVco& vco() noexcept { return *vco_; }

    /// Direct access to the behavioral PFD (null when structuralPfd is set).
    [[nodiscard]] PhaseFreqDetector* pfd() noexcept { return pfd_; }

private:
    PllConfig config_;
    fault::CurrentSaboteur* sabFilter_ = nullptr;
    fault::CurrentSaboteur* sabVcoOut_ = nullptr;
    BehavioralVco* vco_ = nullptr;
    PhaseFreqDetector* pfd_ = nullptr;
};

/// Time at which the output clock first stays within @p relTol of the nominal
/// period for @p consecutive cycles, or -1 if it never locks.
[[nodiscard]] SimTime lockTime(const trace::DigitalTrace& fout, SimTime nominalPeriod,
                               double relTol = 1e-3, int consecutive = 20);

} // namespace gfi::pll
