#pragma once
// Bit-parallel campaign backend.
//
// runBatchedCampaign() takes the slice of a campaign's fault list that still
// needs simulating, packs eligible faults into 64-lane word-simulation groups
// (lane 0 golden, lanes 1..63 one fault each) and classifies every lane by
// its divergence against the golden reference — producing RunResults that are
// byte-identical to what the event-driven kernel would have produced for the
// same faults. Ineligible faults (and whole designs the word compiler cannot
// lift) are simply absent from the output map; the campaign runner simulates
// those through the ordinary contained path.
//
// Lane assignment is deliberately resume-invariant: a fault's lane depends
// only on its position among the batch-eligible candidates of the fault list,
// never on which entries happen to be restored from a journal, so the
// batch_lane provenance recorded in journals is stable across interrupted and
// resumed campaigns.

#include "batch/word_model.hpp"
#include "core/campaign.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gfi::batch {

/// What the campaign runner hands the batch backend.
struct BatchRequest {
    const fault::TestbenchFactory* factory = nullptr; ///< fresh testbench per group
    const fault::Testbench* golden = nullptr;         ///< finished golden run
    const std::map<std::string, std::uint64_t>* goldenState = nullptr;
    std::uint64_t goldenWaves = 0;       ///< golden run's delta-cycle count
    std::uint64_t goldenAnalogSteps = 0; ///< golden run's analog step attempts
    const std::vector<fault::FaultSpec>* faults = nullptr;

    /// Fault-list indices to consider, ascending: collapse representatives
    /// when a plan is active, else every non-golden fault — restoration
    /// status excluded on purpose (lane stability across resume).
    std::vector<std::size_t> candidates;

    /// Parallel to candidates: false when the index is restored from a
    /// journal and needs no result. Groups whose members are all restored
    /// are skipped entirely.
    std::vector<char> needSim;

    campaign::Tolerance tolerance;
    unsigned workers = 0;     ///< Executor worker count (0 = auto)
    bool recordTiming = true; ///< false zeroes diagnostics.wallSeconds
};

/// What happened, for the campaign's log line and telemetry.
struct BatchStats {
    bool designEligible = false;
    std::string designReason; ///< why not, when ineligible
    std::size_t batched = 0;  ///< results produced by the word kernel
    std::size_t groups = 0;   ///< word simulations executed
    /// Faults that fell back to the event-driven kernel: (index, reason).
    std::vector<std::pair<std::size_t, std::string>> fallbacks;
    /// Groups whose lane-0 replay failed the golden cross-check (all their
    /// members fell back). Always 0 for in-library designs; a nonzero count
    /// means a design construct escaped the compiler's eligibility net.
    std::size_t crossCheckFailures = 0;
};

/// Runs the word-level batches and fills @p out (fault-list index ->
/// classified result) for every candidate that was word-simulated. Indices
/// absent from @p out must be simulated by the event-driven kernel.
BatchStats runBatchedCampaign(const BatchRequest& req,
                              std::map<std::size_t, campaign::RunResult>& out);

} // namespace gfi::batch
