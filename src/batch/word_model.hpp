#pragma once
// Word-level netlist model for bit-parallel (PPSFP-style) fault simulation.
//
// The event-driven kernel simulates one fault per run. Classic test-generation
// literature batches them instead: every net becomes one machine word, bit
// lane 0 carries the golden circuit and lanes 1..63 carry fault variants, so
// one word-level simulation evaluates 64 circuits at once and a lane's
// divergence mask against lane 0 yields its classification. compileWordModel
// lifts an elaborated Testbench into that representation — or refuses, with a
// reason naming the offending component, when the design uses constructs the
// word kernel cannot reproduce bit-exactly (analog domains, unknown values,
// components outside the compiled library). The compiler is deliberately
// conservative: a design is only eligible when the word kernel provably
// replays the VHDL-style wave scheduler lane-for-lane, which is what lets the
// campaign layer swap backends without changing a byte of output.

#include "core/fault.hpp"
#include "core/testbench.hpp"
#include "digital/fsm.hpp"
#include "digital/gates.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gfi::batch {

/// Kinds of word-compiled processes (one per scalar Process).
enum class WordKind {
    Gate,
    Saboteur,
    Dff,
    Register,
    Counter,
    Shift,
    Lfsr,
    Fsm,
    Adder,
    Eq,
};

/// Stateful element kinds addressable by instrumentation-hook name.
enum class HookKind { Dff, Register, Counter, Shift, Lfsr, Fsm };

struct WordGate {
    digital::GateKind kind;
    std::vector<int> in;
    int out = -1;
    SimTime delay = 0;
};

struct WordSaboteur {
    std::string name;
    int in = -1;
    int out = -1;
    SimTime delay = 0;
};

struct WordDff {
    std::string name;
    int clk = -1;
    int d = -1;
    int q = -1;
    int qn = -1; ///< -1 when absent
    int rstn = -1;
    SimTime clkToQ = 0;
};

struct WordRegister {
    std::string name;
    int clk = -1;
    int en = -1;   ///< -1 when absent
    int rstn = -1; ///< -1 when absent
    std::vector<int> d;
    std::vector<int> q;
    std::uint64_t resetValue = 0;
    std::uint64_t mask = 0;
    SimTime clkToQ = 0;
};

struct WordCounter {
    std::string name;
    int clk = -1;
    int rstn = -1;
    int en = -1;
    int tc = -1;
    std::vector<int> q;
    std::uint64_t modulo = 0; ///< resolved wrap value (never 0)
    std::uint64_t mask = 0;
    SimTime clkToQ = 0;
};

struct WordShift {
    std::string name;
    int clk = -1;
    int serialIn = -1;
    int rstn = -1;
    std::vector<int> taps;
    SimTime clkToQ = 0;
};

struct WordLfsr {
    std::string name;
    int clk = -1;
    int rstn = -1;
    std::vector<int> q;
    std::uint64_t taps = 0;
    std::uint64_t seed = 0;
    std::uint64_t mask = 0;
    SimTime clkToQ = 0;
};

struct WordFsm {
    std::string name;
    int clk = -1;
    int rstn = -1;
    std::vector<int> in;
    std::vector<int> out;
    int numStates = 0;
    int resetState = 0;
    int stateBits = 0;
    digital::TableFsm::TransitionFn next;
    digital::TableFsm::OutputFn output;
    SimTime clkToQ = 0;
};

struct WordAdder {
    std::vector<int> a;
    std::vector<int> b;
    std::vector<int> sum;
    int cin = -1;
    int cout = -1;
    int width = 0;
    SimTime delay = 0;
};

struct WordEq {
    std::vector<int> a;
    std::vector<int> b;
    int eq = -1;
    SimTime delay = 0;
};

struct WordClockGen {
    int clk = -1;
    SimTime period = 0;
    SimTime highTime = 0;
    SimTime start = 0;
};

struct WordStimulus {
    struct Item {
        SimTime time;
        int signal;
        bool value; ///< two-valued by eligibility
    };
    std::vector<Item> items;
};

/// One word process: kind + index into the per-kind table + sensitivity list.
struct WordProcess {
    WordKind kind;
    int comp = 0;
    std::vector<int> sens; ///< signal indices, declaration order
};

/// One compiled hook target (BitFlip / StateWrite faults address these).
struct WordHook {
    HookKind kind;
    int comp = 0;
    int width = 1;
};

/// The compiled design: plain data plus the FSM callables. Every instance is
/// compiled from its own fresh Testbench, so concurrent word simulations
/// never share mutable state (the factory contract of CampaignRunner).
struct WordModel {
    std::vector<std::string> signalNames; ///< creation order
    std::vector<std::uint8_t> signalInit; ///< initial bit per signal
    std::vector<std::vector<int>> listeners; ///< per signal: woken processes, wake order

    std::vector<WordProcess> processes; ///< creation order (startup pass order)

    std::vector<WordGate> gates;
    std::vector<WordSaboteur> sabs;
    std::vector<WordDff> dffs;
    std::vector<WordRegister> regs;
    std::vector<WordCounter> counters;
    std::vector<WordShift> shifts;
    std::vector<WordLfsr> lfsrs;
    std::vector<WordFsm> fsms;
    std::vector<WordAdder> adders;
    std::vector<WordEq> eqs;
    std::vector<WordClockGen> clocks;
    std::vector<WordStimulus> stimuli;

    std::map<std::string, WordHook> hooks;  ///< state-element faults by name
    std::map<std::string, int> sabIndex;    ///< stuck-at faults by saboteur name
    std::map<std::string, int> fsmIndex;    ///< transition faults by FSM name

    std::vector<int> observedDigital;       ///< signal index per observed name
    std::vector<std::string> observedState; ///< hook names, observation order

    SimTime duration = 0;

    [[nodiscard]] int signalCount() const noexcept
    {
        return static_cast<int>(signalNames.size());
    }
};

/// Compilation outcome: a model, or a reason naming what blocked it.
struct CompileResult {
    std::unique_ptr<WordModel> model; ///< null when the design is ineligible
    std::string reason;               ///< why, when null
};

/// Lifts @p tb (a freshly built, not-yet-run testbench) into a WordModel.
[[nodiscard]] CompileResult compileWordModel(const fault::Testbench& tb);

/// Per-fault batch eligibility against a compiled design.
struct FaultEligibility {
    bool eligible = false;
    std::string reason; ///< why not, naming the component/target
};

/// Decides whether @p fault can ride a 64-lane word simulation of @p model.
/// Timing-dependent SET pulses, analog faults and faults addressing targets
/// outside the compiled netlist fall back to the event-driven kernel.
[[nodiscard]] FaultEligibility faultEligibility(const WordModel& model,
                                                const fault::FaultSpec& fault);

} // namespace gfi::batch
