#include "batch/word_model.hpp"

#include "analyze/graph.hpp"
#include "core/saboteur.hpp"
#include "digital/arith.hpp"
#include "digital/sequential.hpp"
#include "digital/stimulus.hpp"

#include <unordered_map>
#include <unordered_set>

namespace gfi::batch {

namespace {

using digital::Logic;

/// Width-safe hook masks, mirroring the sequential components' widthMask().
std::uint64_t widthMask(int w)
{
    return w >= 64 ? ~0ull : (1ull << w) - 1;
}

class Compiler {
public:
    explicit Compiler(const fault::Testbench& tb) : tb_(tb) {}

    CompileResult compile()
    {
        const digital::Circuit& dig = tb_.sim().digital();

        if (tb_.sim().analog().unknownCount() > 0) {
            return fail("design has an analog domain (the word kernel is digital-only)");
        }
        if (!tb_.observedAnalog().empty()) {
            return fail("campaign observes analog nodes");
        }

        model_ = std::make_unique<WordModel>();
        model_->duration = tb_.duration();

        // Signals: every signal must be a two-valued logic signal so the
        // word representation (one bit per lane) is exact from time zero.
        for (const std::string& name : dig.signalNames()) {
            const digital::SignalBase& base = dig.findSignal(name);
            const auto* sig = dynamic_cast<const digital::LogicSignal*>(&base);
            if (sig == nullptr) {
                return fail("signal '" + name + "' is not a logic signal");
            }
            const Logic v = sig->value();
            if (v != Logic::Zero && v != Logic::One) {
                return fail("signal '" + name + "' initializes to a non-two-valued level");
            }
            sigIndex_[&base] = static_cast<int>(model_->signalNames.size());
            model_->signalNames.push_back(name);
            model_->signalInit.push_back(v == Logic::One ? 1 : 0);
        }

        // Components: each must belong to the compiled library. Their process
        // names are claimed so nothing outside the library can schedule work.
        for (const auto& comp : dig.components()) {
            if (!compileComponent(*comp)) {
                return fail(reason_);
            }
        }

        // Processes: creation order is the startup-pass order and defines the
        // per-signal wake order; every process must have been claimed above.
        model_->listeners.resize(model_->signalNames.size());
        for (const digital::ProcessConnectivity& conn : dig.connectivity()) {
            const auto it = claimed_.find(conn.process->name());
            if (it == claimed_.end()) {
                return fail("process '" + conn.process->name() +
                            "' is not owned by a word-compilable component");
            }
            WordProcess p = it->second;
            const int procIdx = static_cast<int>(model_->processes.size());
            for (digital::SignalBase* s : conn.triggers) {
                const int idx = indexOf(s);
                if (idx < 0) {
                    return fail("process '" + conn.process->name() +
                                "' is sensitive to an unknown signal");
                }
                p.sens.push_back(idx);
                model_->listeners[static_cast<std::size_t>(idx)].push_back(procIdx);
            }
            model_->processes.push_back(std::move(p));
        }

        // Zero-delay combinational cycles have event-driven delta-limit
        // semantics the word kernel does not reproduce.
        if (analyze::SignalGraph(tb_).cyclicSignals() != 0) {
            return fail("design has combinational cycles (delta-limit semantics "
                        "require the event-driven kernel)");
        }

        // Observation configuration.
        for (const std::string& name : tb_.observedDigital()) {
            const int idx = indexOf(&dig.findSignal(name));
            if (idx < 0) {
                return fail("observed signal '" + name + "' is unknown");
            }
            model_->observedDigital.push_back(idx);
        }
        for (const std::string& name : tb_.observedState()) {
            if (model_->hooks.count(name) == 0) {
                return fail("observed state '" + name +
                            "' is not a word-compiled state element");
            }
            model_->observedState.push_back(name);
        }

        return CompileResult{std::move(model_), ""};
    }

private:
    CompileResult fail(std::string why)
    {
        return CompileResult{nullptr, std::move(why)};
    }

    int indexOf(const digital::SignalBase* s) const
    {
        const auto it = sigIndex_.find(s);
        return it == sigIndex_.end() ? -1 : it->second;
    }

    /// Maps a required port; records a failure reason when absent.
    bool port(const digital::LogicSignal* s, const std::string& owner, int& out)
    {
        out = s == nullptr ? -1 : indexOf(s);
        if (out < 0) {
            reason_ = "component '" + owner + "' has an unmapped port signal";
            return false;
        }
        return true;
    }

    /// Maps an optional port (-1 when the component does not wire it).
    bool optPort(const digital::LogicSignal* s, const std::string& owner, int& out)
    {
        if (s == nullptr) {
            out = -1;
            return true;
        }
        return port(s, owner, out);
    }

    bool busPorts(const digital::Bus& bus, const std::string& owner, std::vector<int>& out)
    {
        for (digital::LogicSignal* bit : bus.bits()) {
            int idx = -1;
            if (!port(bit, owner, idx)) {
                return false;
            }
            out.push_back(idx);
        }
        return true;
    }

    void claim(const std::string& procName, WordKind kind, int comp)
    {
        claimed_[procName] = WordProcess{kind, comp, {}};
    }

    /// Asynchronous-reset requirement: a DFF powers up 'U', so without a reset
    /// asserted from time zero a bit-flip before the first load would have to
    /// propagate an unknown — outside the two-valued word representation.
    bool requireAssertedReset(const digital::LogicSignal* rstn, const std::string& owner)
    {
        if (rstn == nullptr || rstn->value() != Logic::Zero) {
            reason_ = "component '" + owner +
                      "' powers up unknown (needs an asserted active-low reset)";
            return false;
        }
        return true;
    }

    bool compileComponent(const digital::Component& c)
    {
        if (const auto* g = dynamic_cast<const digital::ClockGen*>(&c)) {
            WordClockGen w;
            if (!port(g->clk(), c.name(), w.clk)) {
                return false;
            }
            w.period = g->period();
            w.highTime = g->highTime();
            w.start = g->nextRise();
            model_->clocks.push_back(w);
            return true;
        }
        if (const auto* s = dynamic_cast<const digital::StimulusSchedule*>(&c)) {
            WordStimulus w;
            for (const digital::StimulusSchedule::Item& item : s->items()) {
                const Logic v = item.value;
                if (v != Logic::Zero && v != Logic::One) {
                    reason_ = "component '" + c.name() +
                              "' schedules a non-two-valued stimulus";
                    return false;
                }
                const int idx = indexOf(item.signal);
                if (idx < 0) {
                    reason_ = "component '" + c.name() + "' drives an unknown signal";
                    return false;
                }
                w.items.push_back(WordStimulus::Item{item.time, idx, v == Logic::One});
            }
            model_->stimuli.push_back(std::move(w));
            return true;
        }
        if (const auto* g = dynamic_cast<const digital::Gate*>(&c)) {
            WordGate w;
            w.kind = g->kind();
            w.delay = g->delay();
            for (const digital::LogicSignal* in : g->inputs()) {
                int idx = -1;
                if (!port(in, c.name(), idx)) {
                    return false;
                }
                w.in.push_back(idx);
            }
            if (!port(g->output(), c.name(), w.out)) {
                return false;
            }
            claim(c.name() + "/eval", WordKind::Gate, static_cast<int>(model_->gates.size()));
            model_->gates.push_back(std::move(w));
            return true;
        }
        if (const auto* s = dynamic_cast<const fault::DigitalSaboteur*>(&c)) {
            WordSaboteur w;
            w.name = c.name();
            w.delay = s->delay();
            if (!port(s->input(), c.name(), w.in) || !port(s->output(), c.name(), w.out)) {
                return false;
            }
            claim(c.name() + "/pass", WordKind::Saboteur,
                  static_cast<int>(model_->sabs.size()));
            model_->sabIndex[c.name()] = static_cast<int>(model_->sabs.size());
            model_->sabs.push_back(std::move(w));
            return true;
        }
        if (const auto* f = dynamic_cast<const digital::DFlipFlop*>(&c)) {
            if (!requireAssertedReset(f->rstn(), c.name())) {
                return false;
            }
            WordDff w;
            w.name = c.name();
            w.clkToQ = f->clkToQ();
            if (!port(f->clk(), c.name(), w.clk) || !port(f->d(), c.name(), w.d) ||
                !port(f->q(), c.name(), w.q) || !optPort(f->qn(), c.name(), w.qn) ||
                !port(f->rstn(), c.name(), w.rstn)) {
                return false;
            }
            claim(c.name() + "/seq", WordKind::Dff, static_cast<int>(model_->dffs.size()));
            model_->hooks[c.name()] =
                WordHook{HookKind::Dff, static_cast<int>(model_->dffs.size()), 1};
            model_->dffs.push_back(std::move(w));
            return true;
        }
        if (const auto* r = dynamic_cast<const digital::Register*>(&c)) {
            WordRegister w;
            w.name = c.name();
            w.resetValue = r->resetValue();
            w.mask = widthMask(r->d().width());
            w.clkToQ = r->clkToQ();
            if (!port(r->clk(), c.name(), w.clk) || !optPort(r->en(), c.name(), w.en) ||
                !optPort(r->rstn(), c.name(), w.rstn) ||
                !busPorts(r->d(), c.name(), w.d) || !busPorts(r->q(), c.name(), w.q)) {
                return false;
            }
            claim(c.name() + "/seq", WordKind::Register,
                  static_cast<int>(model_->regs.size()));
            model_->hooks[c.name()] = WordHook{
                HookKind::Register, static_cast<int>(model_->regs.size()), r->d().width()};
            model_->regs.push_back(std::move(w));
            return true;
        }
        if (const auto* n = dynamic_cast<const digital::Counter*>(&c)) {
            WordCounter w;
            w.name = c.name();
            w.mask = widthMask(n->q().width());
            w.modulo = n->modulo();
            w.clkToQ = n->clkToQ();
            if (!port(n->clk(), c.name(), w.clk) || !optPort(n->rstn(), c.name(), w.rstn) ||
                !optPort(n->en(), c.name(), w.en) || !optPort(n->tc(), c.name(), w.tc) ||
                !busPorts(n->q(), c.name(), w.q)) {
                return false;
            }
            claim(c.name() + "/seq", WordKind::Counter,
                  static_cast<int>(model_->counters.size()));
            model_->hooks[c.name()] = WordHook{
                HookKind::Counter, static_cast<int>(model_->counters.size()), n->q().width()};
            model_->counters.push_back(std::move(w));
            return true;
        }
        if (const auto* s = dynamic_cast<const digital::ShiftRegister*>(&c)) {
            WordShift w;
            w.name = c.name();
            w.clkToQ = s->clkToQ();
            if (!port(s->clk(), c.name(), w.clk) ||
                !port(s->serialIn(), c.name(), w.serialIn) ||
                !optPort(s->rstn(), c.name(), w.rstn) ||
                !busPorts(s->taps(), c.name(), w.taps)) {
                return false;
            }
            claim(c.name() + "/seq", WordKind::Shift,
                  static_cast<int>(model_->shifts.size()));
            model_->hooks[c.name()] = WordHook{
                HookKind::Shift, static_cast<int>(model_->shifts.size()),
                s->taps().width()};
            model_->shifts.push_back(std::move(w));
            return true;
        }
        if (const auto* l = dynamic_cast<const digital::Lfsr*>(&c)) {
            WordLfsr w;
            w.name = c.name();
            w.taps = l->taps();
            w.seed = l->seed();
            w.mask = widthMask(l->q().width());
            w.clkToQ = l->clkToQ();
            if (!port(l->clk(), c.name(), w.clk) || !optPort(l->rstn(), c.name(), w.rstn) ||
                !busPorts(l->q(), c.name(), w.q)) {
                return false;
            }
            claim(c.name() + "/seq", WordKind::Lfsr, static_cast<int>(model_->lfsrs.size()));
            model_->hooks[c.name()] = WordHook{
                HookKind::Lfsr, static_cast<int>(model_->lfsrs.size()), l->q().width()};
            model_->lfsrs.push_back(std::move(w));
            return true;
        }
        if (const auto* f = dynamic_cast<const digital::TableFsm*>(&c)) {
            WordFsm w;
            w.name = c.name();
            w.numStates = f->numStates();
            w.resetState = f->resetState();
            w.stateBits = f->stateBits();
            w.next = f->transitionFn();
            w.output = f->outputFn();
            w.clkToQ = f->clkToQ();
            if (!port(f->clk(), c.name(), w.clk) || !optPort(f->rstn(), c.name(), w.rstn) ||
                !busPorts(f->inBus(), c.name(), w.in) ||
                !busPorts(f->outBus(), c.name(), w.out)) {
                return false;
            }
            claim(c.name() + "/seq", WordKind::Fsm, static_cast<int>(model_->fsms.size()));
            model_->hooks[c.name()] = WordHook{
                HookKind::Fsm, static_cast<int>(model_->fsms.size()), f->stateBits()};
            model_->fsmIndex[c.name()] = static_cast<int>(model_->fsms.size());
            model_->fsms.push_back(std::move(w));
            return true;
        }
        if (const auto* a = dynamic_cast<const digital::Adder*>(&c)) {
            WordAdder w;
            w.width = a->a().width();
            w.delay = a->delay();
            if (!busPorts(a->a(), c.name(), w.a) || !busPorts(a->b(), c.name(), w.b) ||
                !busPorts(a->sum(), c.name(), w.sum) ||
                !optPort(a->cin(), c.name(), w.cin) ||
                !optPort(a->cout(), c.name(), w.cout)) {
                return false;
            }
            claim(c.name() + "/eval", WordKind::Adder,
                  static_cast<int>(model_->adders.size()));
            model_->adders.push_back(std::move(w));
            return true;
        }
        if (const auto* e = dynamic_cast<const digital::EqComparator*>(&c)) {
            WordEq w;
            w.delay = e->delay();
            if (!busPorts(e->a(), c.name(), w.a) || !busPorts(e->b(), c.name(), w.b) ||
                !port(e->eq(), c.name(), w.eq)) {
                return false;
            }
            claim(c.name() + "/eval", WordKind::Eq, static_cast<int>(model_->eqs.size()));
            model_->eqs.push_back(std::move(w));
            return true;
        }
        reason_ = "component '" + c.name() + "' is outside the word-compiled library";
        return false;
    }

    const fault::Testbench& tb_;
    std::unique_ptr<WordModel> model_;
    std::unordered_map<const digital::SignalBase*, int> sigIndex_;
    std::unordered_map<std::string, WordProcess> claimed_;
    std::string reason_;
};

} // namespace

CompileResult compileWordModel(const fault::Testbench& tb)
{
    return Compiler(tb).compile();
}

FaultEligibility faultEligibility(const WordModel& model, const fault::FaultSpec& fault)
{
    struct Visitor {
        const WordModel& m;

        FaultEligibility operator()(const std::monostate&) const
        {
            return {false, "golden reference run"};
        }
        FaultEligibility hookTarget(const std::string& target, int bit) const
        {
            if (m.hooks.count(target) == 0) {
                return {false, "target '" + target +
                                   "' is not a word-compiled state element"};
            }
            if (bit < 0 || bit > 63) {
                return {false, "target '" + target + "' bit index out of word range"};
            }
            return {true, ""};
        }
        FaultEligibility operator()(const fault::BitFlipFault& f) const
        {
            return hookTarget(f.target, f.bit);
        }
        FaultEligibility operator()(const fault::DoubleBitFlipFault& f) const
        {
            const FaultEligibility a = hookTarget(f.target, f.bitA);
            return a.eligible ? hookTarget(f.target, f.bitB) : a;
        }
        FaultEligibility operator()(const fault::StateWriteFault& f) const
        {
            return hookTarget(f.target, 0);
        }
        FaultEligibility operator()(const fault::FsmTransitionFault& f) const
        {
            if (m.fsmIndex.count(f.target) == 0) {
                return {false, "target '" + f.target + "' is not a word-compiled FSM"};
            }
            return {true, ""};
        }
        FaultEligibility operator()(const fault::DigitalPulseFault& f) const
        {
            return {false, "saboteur '" + f.saboteur +
                               "': SET pulses are timing-dependent"};
        }
        FaultEligibility operator()(const fault::StuckAtFault& f) const
        {
            if (m.sabIndex.count(f.saboteur) == 0) {
                return {false, "saboteur '" + f.saboteur + "' is not word-compiled"};
            }
            if (f.value != digital::Logic::Zero && f.value != digital::Logic::One) {
                return {false, "saboteur '" + f.saboteur +
                                   "': stuck value is not two-valued"};
            }
            return {true, ""};
        }
        FaultEligibility operator()(const fault::CurrentPulseFault& f) const
        {
            return {false, "saboteur '" + f.saboteur + "': analog current-pulse fault"};
        }
        FaultEligibility operator()(const fault::ParametricFault& f) const
        {
            return {false, "parameter '" + f.parameter + "': analog/parametric fault"};
        }
    };
    return std::visit(Visitor{model}, fault);
}

} // namespace gfi::batch
