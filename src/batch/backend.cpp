#include "batch/backend.hpp"

#include "batch/word_sim.hpp"
#include "core/executor.hpp"
#include "trace/compare.hpp"

#include <algorithm>
#include <chrono>

namespace gfi::batch {

namespace {

/// Faults per word simulation: 63 (lane 0 carries the golden circuit).
constexpr std::size_t kLanesPerGroup = 63;

/// A digital trace collapsed to settled values: one entry per event time
/// point, carrying the last value recorded at that time. This is exactly what
/// the word kernel records per lane (glitches within one time point settle
/// before the flush), so collapsed scalar traces and word traces compare
/// elementwise.
struct CollapsedTrace {
    bool twoValued = true;
    bool initial = false;
    std::vector<std::pair<SimTime, bool>> events;
};

CollapsedTrace collapse(const trace::DigitalTrace& t)
{
    CollapsedTrace c;
    if (t.initial != digital::Logic::Zero && t.initial != digital::Logic::One) {
        c.twoValued = false;
        return c;
    }
    c.initial = t.initial == digital::Logic::One;
    for (const auto& [time, value] : t.events) {
        if (value != digital::Logic::Zero && value != digital::Logic::One) {
            c.twoValued = false;
            return c;
        }
        const bool bit = value == digital::Logic::One;
        if (!c.events.empty() && c.events.back().first == time) {
            c.events.back().second = bit; // same-time glitch: keep the settled value
        } else {
            c.events.emplace_back(time, bit);
        }
    }
    return c;
}

/// Lane @p lane of the word simulation's observed slot @p obs as a
/// DigitalTrace the production comparator understands.
trace::DigitalTrace laneTrace(const WordSim& sim, int obs, int lane,
                              const std::string& name)
{
    trace::DigitalTrace t;
    t.name = name;
    t.initial = sim.initialBit(obs) ? digital::Logic::One : digital::Logic::Zero;
    const std::uint64_t laneBit = 1ull << lane;
    for (const TracePoint& p : sim.points(obs)) {
        if ((p.changed & laneBit) != 0) {
            t.events.emplace_back(p.time, (p.value & laneBit) != 0
                                              ? digital::Logic::One
                                              : digital::Logic::Zero);
        }
    }
    return t;
}

/// True when lane 0 of @p sim replayed the golden run exactly: same settled
/// trace on every observed signal, same wave count, same end-of-run state in
/// every observed hook. Any mismatch means the word compilation missed a
/// semantic detail of this particular design, and the whole group must fall
/// back to the event-driven kernel rather than emit unsound verdicts.
bool goldenCrossCheck(const WordSim& sim, const WordModel& model, const BatchRequest& req)
{
    if (sim.waveCount(0) != req.goldenWaves) {
        return false;
    }
    const std::vector<std::string>& observed = req.golden->observedDigital();
    for (std::size_t k = 0; k < observed.size(); ++k) {
        const CollapsedTrace g =
            collapse(req.golden->recorder().digitalTrace(observed[k]));
        if (!g.twoValued) {
            return false;
        }
        const trace::DigitalTrace lane0 = laneTrace(sim, static_cast<int>(k), 0, observed[k]);
        if ((lane0.initial == digital::Logic::One) != g.initial ||
            lane0.events.size() != g.events.size()) {
            return false;
        }
        for (std::size_t e = 0; e < g.events.size(); ++e) {
            if (lane0.events[e].first != g.events[e].first ||
                (lane0.events[e].second == digital::Logic::One) != g.events[e].second) {
                return false;
            }
        }
    }
    for (const std::string& name : req.golden->observedState()) {
        const auto hook = model.hooks.find(name);
        const auto gold = req.goldenState->find(name);
        if (hook == model.hooks.end() || gold == req.goldenState->end() ||
            sim.hookValue(hook->second, 0) != gold->second) {
            return false;
        }
    }
    return true;
}

/// Classifies one faulty lane against the golden reference — a word-level
/// mirror of CampaignRunner::classify() (digital and state comparisons; the
/// analog loop is vacuous because eligible designs observe no analog nodes).
campaign::RunResult classifyLane(const WordSim& sim, const WordModel& model,
                                 const BatchRequest& req, int lane,
                                 const fault::FaultSpec& fault)
{
    campaign::RunResult result;
    result.fault = fault;

    const SimTime tEnd = model.duration;
    bool anyOutputError = false;
    bool recoveredEverywhere = true;

    const std::vector<std::string>& observed = req.golden->observedDigital();
    for (std::size_t k = 0; k < observed.size(); ++k) {
        const trace::DigitalTrace test =
            laneTrace(sim, static_cast<int>(k), lane, observed[k]);
        const auto diff =
            trace::compareDigital(req.golden->recorder().digitalTrace(observed[k]), test,
                                  tEnd, req.tolerance.digitalJitter);
        if (!diff.identical()) {
            anyOutputError = true;
            result.erredSignals.push_back(observed[k]);
            if (result.firstOutputError < 0 || diff.firstMismatch < result.firstOutputError) {
                result.firstOutputError = diff.firstMismatch;
            }
            if (diff.lastMismatchEnd > result.lastOutputErrorEnd) {
                result.lastOutputErrorEnd = diff.lastMismatchEnd;
            }
            result.totalOutputErrorTime += diff.totalMismatch;
            recoveredEverywhere = recoveredEverywhere && diff.matchesAt(tEnd);
        }
    }

    for (const std::string& name : req.golden->observedState()) {
        const auto hook = model.hooks.find(name);
        const auto gold = req.goldenState->find(name);
        if (hook != model.hooks.end() && gold != req.goldenState->end() &&
            sim.hookValue(hook->second, lane) != gold->second) {
            result.corruptedState.push_back(name);
        }
    }

    if (anyOutputError) {
        result.outcome = recoveredEverywhere ? campaign::Outcome::TransientError
                                             : campaign::Outcome::Failure;
    } else if (!result.corruptedState.empty()) {
        result.outcome = campaign::Outcome::Latent;
    } else {
        result.outcome = campaign::Outcome::Silent;
    }

    result.diagnostics.digitalWaves = sim.waveCount(lane);
    result.diagnostics.analogSteps = req.goldenAnalogSteps;
    result.diagnostics.batchLane = lane;
    return result;
}

/// One word-simulation group and its per-group outcome.
struct GroupOutcome {
    std::map<std::size_t, campaign::RunResult> results;
    std::vector<std::pair<std::size_t, std::string>> fallbacks;
    bool ran = false;
    bool crossCheckFailed = false;
};

GroupOutcome runGroup(const BatchRequest& req, const std::vector<std::size_t>& members,
                      const std::vector<char>& need)
{
    GroupOutcome out;
    const auto fallBackAll = [&](const std::string& reason) {
        out.results.clear();
        for (const std::size_t idx : members) {
            out.fallbacks.emplace_back(idx, reason);
        }
    };

    const auto started = std::chrono::steady_clock::now();
    const std::unique_ptr<fault::Testbench> tb = (*req.factory)();
    CompileResult compiled = compileWordModel(*tb);
    if (!compiled.model) {
        // The scout compile succeeded for this factory, so this is a
        // nondeterministic-design anomaly; fall back rather than guess.
        fallBackAll("word compilation failed: " + compiled.reason);
        return out;
    }
    const WordModel& model = *compiled.model;

    WordSim sim(model);
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
        const int lane = static_cast<int>(pos) + 1;
        if (!sim.armFault(lane, (*req.faults)[members[pos]])) {
            // Eligibility already vetted these; an arm failure leaves the
            // lane golden, so it must not be classified.
            out.fallbacks.emplace_back(members[pos], "word kernel could not arm the fault");
        }
    }
    if (!sim.run()) {
        fallBackAll("delta-cycle runaway in the word kernel");
        return out;
    }
    out.ran = true;

    if (!goldenCrossCheck(sim, model, req)) {
        out.crossCheckFailed = true;
        fallBackAll("golden cross-check mismatch (word kernel diverged from "
                    "the event-driven golden run)");
        return out;
    }

    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
        const std::size_t idx = members[pos];
        const bool armFailed =
            std::any_of(out.fallbacks.begin(), out.fallbacks.end(),
                        [idx](const auto& f) { return f.first == idx; });
        if (armFailed || need[pos] == 0) {
            continue; // restored from a journal: no result wanted
        }
        campaign::RunResult r =
            classifyLane(sim, model, req, static_cast<int>(pos) + 1, (*req.faults)[idx]);
        r.diagnostics.wallSeconds = req.recordTiming ? elapsed : 0.0;
        out.results.emplace(idx, std::move(r));
    }
    return out;
}

} // namespace

BatchStats runBatchedCampaign(const BatchRequest& req,
                              std::map<std::size_t, campaign::RunResult>& out)
{
    BatchStats stats;

    // Scout pass: compile once to decide design eligibility, then vet each
    // candidate fault against the compiled netlist.
    const std::unique_ptr<fault::Testbench> scout = (*req.factory)();
    CompileResult compiled = compileWordModel(*scout);
    if (!compiled.model) {
        stats.designReason = compiled.reason;
        return stats;
    }
    stats.designEligible = true;

    std::vector<std::size_t> eligible;     // candidate positions, ascending
    for (std::size_t c = 0; c < req.candidates.size(); ++c) {
        const std::size_t idx = req.candidates[c];
        const FaultEligibility e = faultEligibility(*compiled.model, (*req.faults)[idx]);
        if (e.eligible) {
            eligible.push_back(c);
        } else {
            stats.fallbacks.emplace_back(idx, e.reason);
        }
    }

    // Fixed-size grouping over the eligible candidates (restoration-blind,
    // so lanes are resume-invariant); a group only runs when at least one
    // member still needs a result.
    struct Group {
        std::vector<std::size_t> members; ///< fault-list indices, lane = pos+1
        std::vector<char> need;           ///< per member: emit a result
        bool needed = false;
    };
    std::vector<Group> groups;
    for (std::size_t at = 0; at < eligible.size(); at += kLanesPerGroup) {
        Group g;
        const std::size_t end = std::min(at + kLanesPerGroup, eligible.size());
        for (std::size_t e = at; e < end; ++e) {
            const std::size_t c = eligible[e];
            const bool need = req.needSim.empty() || req.needSim[c] != 0;
            g.members.push_back(req.candidates[c]);
            g.need.push_back(need ? 1 : 0);
            g.needed = g.needed || need;
        }
        groups.push_back(std::move(g));
    }

    std::vector<const Group*> toRun;
    for (const Group& g : groups) {
        if (g.needed) {
            toRun.push_back(&g);
        }
    }

    // Groups are independent word simulations; commits merge in group order
    // so stats and the result map are deterministic at any worker width.
    core::Executor exec(req.workers);
    exec.forEachOrdered(toRun.size(), [&](std::size_t g) -> core::CommitFn {
        GroupOutcome outcome = runGroup(req, toRun[g]->members, toRun[g]->need);
        return [&stats, &out, outcome = std::move(outcome)]() mutable {
            if (outcome.ran) {
                ++stats.groups;
            }
            if (outcome.crossCheckFailed) {
                ++stats.crossCheckFailures;
            }
            stats.batched += outcome.results.size();
            for (auto& [idx, r] : outcome.results) {
                out.emplace(idx, std::move(r));
            }
            stats.fallbacks.insert(stats.fallbacks.end(), outcome.fallbacks.begin(),
                                   outcome.fallbacks.end());
        };
    });

    std::sort(stats.fallbacks.begin(), stats.fallbacks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return stats;
}

} // namespace gfi::batch
