#include "batch/word_sim.hpp"

#include <algorithm>

namespace gfi::batch {

namespace {

/// Per-time-point wave budget, mirroring the scalar kernel's delta limit. A
/// word run that trips it bails out and the group re-runs event-driven, where
/// the scalar kernel raises its structured SchedulerLimitError per lane.
constexpr std::uint64_t kWaveLimit = 1'000'000;

std::uint64_t bitWord(bool b)
{
    return b ? kAllLanes : 0;
}

} // namespace

WordSim::WordSim(const WordModel& model) : model_(model)
{
    sig_.resize(static_cast<std::size_t>(model.signalCount()));
    for (std::size_t i = 0; i < sig_.size(); ++i) {
        const std::uint64_t v = bitWord(model.signalInit[i] != 0);
        sig_[i].val = v;
        sig_[i].prev = v;
    }
    // Duplicate observations share the first slot's recorded points.
    trace_.resize(model.observedDigital.size());
    for (std::size_t k = 0; k < model.observedDigital.size(); ++k) {
        SigState& s = sig_[static_cast<std::size_t>(model.observedDigital[k])];
        if (s.obs < 0) {
            s.obs = static_cast<int>(k);
        }
    }
    queued_.assign(model.processes.size(), 0);

    dffState_.assign(model.dffs.size(), 0);
    regState_.resize(model.regs.size());
    for (std::size_t i = 0; i < model.regs.size(); ++i) {
        regState_[i].assign(model.regs[i].d.size(), 0);
    }
    cntState_.resize(model.counters.size());
    for (std::size_t i = 0; i < model.counters.size(); ++i) {
        cntState_[i].assign(model.counters[i].q.size(), 0);
    }
    shiftState_.resize(model.shifts.size());
    for (std::size_t i = 0; i < model.shifts.size(); ++i) {
        shiftState_[i].assign(model.shifts[i].taps.size(), 0);
    }
    lfsrState_.resize(model.lfsrs.size());
    for (std::size_t i = 0; i < model.lfsrs.size(); ++i) {
        const WordLfsr& l = model.lfsrs[i];
        lfsrState_[i].resize(l.q.size());
        for (std::size_t b = 0; b < l.q.size(); ++b) {
            lfsrState_[i][b] = bitWord(((l.seed >> b) & 1) != 0);
        }
    }
    fsmState_.resize(model.fsms.size());
    for (std::size_t i = 0; i < model.fsms.size(); ++i) {
        fsmState_[i].state.fill(model.fsms[i].resetState);
    }
    sabState_.assign(model.sabs.size(), SabState{});

    armConstruction();
}

// --- scheduling primitives --------------------------------------------------

void WordSim::scheduleInertial(int sigIdx, std::uint64_t value, std::uint64_t lanes,
                               SimTime delay)
{
    SigState& s = sig_[static_cast<std::size_t>(sigIdx)];
    // Inertial semantics: a new schedule cancels every pending transaction —
    // lane-wise here. Canceled transactions stay queued (and still cost a
    // wave when dispatched), exactly like the scalar kernel.
    for (Txn& t : s.pending) {
        t.live &= ~lanes;
    }
    const std::uint64_t id = nextTxnId_++;
    s.pending.push_back(Txn{id, value, lanes});
    Entry e;
    e.time = now_ + delay;
    e.seq = seq_++;
    e.signal = sigIdx;
    e.txnId = id;
    e.occ = lanes;
    queue_.push(std::move(e));
}

void WordSim::scheduleAction(SimTime t, std::uint64_t occ,
                             std::function<void(std::uint64_t)> fn)
{
    Entry e;
    e.time = std::max(t, now_);
    e.seq = seq_++;
    e.fn = std::move(fn);
    e.occ = occ;
    queue_.push(std::move(e));
}

void WordSim::applyTxn(int sigIdx, std::uint64_t id)
{
    SigState& s = sig_[static_cast<std::size_t>(sigIdx)];
    for (std::size_t i = 0; i < s.pending.size(); ++i) {
        if (s.pending[i].id != id) {
            continue;
        }
        const Txn txn = s.pending[i];
        s.pending.erase(s.pending.begin() + static_cast<std::ptrdiff_t>(i));
        const std::uint64_t changed = txn.live & (s.val ^ txn.value);
        if (changed != 0) {
            s.prev = (s.prev & ~changed) | (s.val & changed);
            s.val = (s.val & ~changed) | (txn.value & changed);
            noteEvent(sigIdx, s, changed);
        }
        return;
    }
}

void WordSim::forceValue(int sigIdx, std::uint64_t value, std::uint64_t lanes)
{
    SigState& s = sig_[static_cast<std::size_t>(sigIdx)];
    const std::uint64_t changed = lanes & (s.val ^ value);
    if (changed == 0) {
        return;
    }
    s.prev = (s.prev & ~changed) | (s.val & changed);
    s.val = (s.val & ~changed) | (value & changed);
    noteEvent(sigIdx, s, changed);
}

void WordSim::noteEvent(int sigIdx, SigState& s, std::uint64_t changed)
{
    if (s.waveChange == 0) {
        changedSignals_.push_back(sigIdx);
    }
    s.waveChange |= changed;
    if (s.obs >= 0) {
        if (s.tpChange == 0) {
            tpSignals_.push_back(sigIdx);
        }
        s.tpChange |= changed;
    }
    for (const int p : model_.listeners[static_cast<std::size_t>(sigIdx)]) {
        wake(p);
    }
}

void WordSim::wake(int proc)
{
    if (queued_[static_cast<std::size_t>(proc)] == 0) {
        queued_[static_cast<std::size_t>(proc)] = 1;
        runnable_.push_back(proc);
    }
}

void WordSim::runWave()
{
    for (const int s : changedSignals_) {
        sig_[static_cast<std::size_t>(s)].waveChange = 0;
    }
    changedSignals_.clear();

    // Dispatch: pop everything due now, in (time, seq) order.
    static thread_local std::vector<std::pair<int, std::uint64_t>> txns;
    static thread_local std::vector<std::pair<std::function<void(std::uint64_t)>,
                                              std::uint64_t>> actions;
    txns.clear();
    actions.clear();
    std::uint64_t occupied = 0;
    while (!queue_.empty() && queue_.top().time <= now_) {
        Entry e = queue_.top();
        queue_.pop();
        occupied |= e.occ;
        if (e.signal >= 0) {
            txns.emplace_back(e.signal, e.txnId);
        } else {
            actions.emplace_back(std::move(e.fn), e.occ);
        }
    }
    for (std::uint64_t w = occupied; w != 0; w &= w - 1) {
        ++waveCount_[static_cast<std::size_t>(__builtin_ctzll(w))];
    }

    // Phase 1: transactions. Phase 2: actions. Phase 3: woken processes.
    for (const auto& [sigIdx, id] : txns) {
        applyTxn(sigIdx, id);
    }
    for (auto& [fn, occ] : actions) {
        fn(occ);
    }
    static thread_local std::vector<int> toRun;
    toRun.clear();
    toRun.swap(runnable_);
    for (const int p : toRun) {
        queued_[static_cast<std::size_t>(p)] = 0;
        std::uint64_t mask = 0;
        for (const int s : model_.processes[static_cast<std::size_t>(p)].sens) {
            mask |= sig_[static_cast<std::size_t>(s)].waveChange;
        }
        runProcess(p, mask);
    }
}

void WordSim::flushTimePoint(SimTime t)
{
    for (const int s : tpSignals_) {
        SigState& st = sig_[static_cast<std::size_t>(s)];
        trace_[static_cast<std::size_t>(st.obs)].push_back(
            TracePoint{t, st.tpChange, st.val});
        st.tpChange = 0;
    }
    tpSignals_.clear();
}

// --- construction-time schedule ---------------------------------------------

void WordSim::armConstruction()
{
    for (std::size_t i = 0; i < model_.clocks.size(); ++i) {
        // The ClockGen constructor parks the clock low with a zero-delay
        // transaction, then arms the first rising edge.
        scheduleInertial(model_.clocks[i].clk, 0, kAllLanes, 0);
        clockRise(static_cast<int>(i), model_.clocks[i].start);
    }
    for (const WordStimulus& stim : model_.stimuli) {
        for (const WordStimulus::Item& item : stim.items) {
            const int sigIdx = item.signal;
            const std::uint64_t v = bitWord(item.value);
            scheduleAction(item.time, kAllLanes, [this, sigIdx, v](std::uint64_t occ) {
                forceValue(sigIdx, v, occ);
            });
        }
    }
}

void WordSim::clockRise(int clock, SimTime t)
{
    scheduleAction(t, kAllLanes, [this, clock, t](std::uint64_t occ) {
        const WordClockGen& ck = model_.clocks[static_cast<std::size_t>(clock)];
        forceValue(ck.clk, kAllLanes, occ);
        clockFall(clock, t + ck.highTime);
        clockRise(clock, t + ck.period);
    });
}

void WordSim::clockFall(int clock, SimTime t)
{
    scheduleAction(t, kAllLanes, [this, clock](std::uint64_t occ) {
        forceValue(model_.clocks[static_cast<std::size_t>(clock)].clk, 0, occ);
    });
}

// --- process bodies ---------------------------------------------------------

std::uint64_t WordSim::risingLanes(int clkSig) const
{
    const SigState& s = sig_[static_cast<std::size_t>(clkSig)];
    return s.waveChange & s.val & ~s.prev;
}

std::uint64_t WordSim::resetLanes(int rstnSig, std::uint64_t runMask) const
{
    if (rstnSig < 0) {
        return 0;
    }
    return runMask & ~sig_[static_cast<std::size_t>(rstnSig)].val;
}

void WordSim::runProcess(int proc, std::uint64_t runMask)
{
    const WordProcess& p = model_.processes[static_cast<std::size_t>(proc)];
    switch (p.kind) {
    case WordKind::Gate:
        runGate(model_.gates[static_cast<std::size_t>(p.comp)], runMask);
        break;
    case WordKind::Saboteur:
        runSaboteur(p.comp, runMask);
        break;
    case WordKind::Dff:
        runDff(p.comp, runMask);
        break;
    case WordKind::Register:
        runRegister(p.comp, runMask);
        break;
    case WordKind::Counter:
        runCounter(p.comp, runMask);
        break;
    case WordKind::Shift:
        runShift(p.comp, runMask);
        break;
    case WordKind::Lfsr:
        runLfsr(p.comp, runMask);
        break;
    case WordKind::Fsm:
        runFsm(p.comp, runMask);
        break;
    case WordKind::Adder:
        runAdder(model_.adders[static_cast<std::size_t>(p.comp)], runMask);
        break;
    case WordKind::Eq:
        runEq(model_.eqs[static_cast<std::size_t>(p.comp)], runMask);
        break;
    }
}

void WordSim::runGate(const WordGate& g, std::uint64_t m)
{
    const auto in = [&](std::size_t i) {
        return sig_[static_cast<std::size_t>(g.in[i])].val;
    };
    std::uint64_t v = in(0);
    switch (g.kind) {
    case digital::GateKind::Buf:
        break;
    case digital::GateKind::Not:
        v = ~v;
        break;
    case digital::GateKind::And:
    case digital::GateKind::Nand:
        for (std::size_t i = 1; i < g.in.size(); ++i) {
            v &= in(i);
        }
        if (g.kind == digital::GateKind::Nand) {
            v = ~v;
        }
        break;
    case digital::GateKind::Or:
    case digital::GateKind::Nor:
        for (std::size_t i = 1; i < g.in.size(); ++i) {
            v |= in(i);
        }
        if (g.kind == digital::GateKind::Nor) {
            v = ~v;
        }
        break;
    case digital::GateKind::Xor:
    case digital::GateKind::Xnor:
        for (std::size_t i = 1; i < g.in.size(); ++i) {
            v ^= in(i);
        }
        if (g.kind == digital::GateKind::Xnor) {
            v = ~v;
        }
        break;
    }
    scheduleInertial(g.out, v, m, g.delay);
}

void WordSim::runSaboteur(int idx, std::uint64_t m)
{
    driveSaboteur(idx, m);
}

void WordSim::driveSaboteur(int idx, std::uint64_t lanes)
{
    const WordSaboteur& sab = model_.sabs[static_cast<std::size_t>(idx)];
    const SabState& st = sabState_[static_cast<std::size_t>(idx)];
    const std::uint64_t in = sig_[static_cast<std::size_t>(sab.in)].val;
    const std::uint64_t v = (in & ~st.stuckMask) | (st.stuckVal & st.stuckMask);
    scheduleInertial(sab.out, v, lanes, sab.delay);
}

void WordSim::runDff(int idx, std::uint64_t m)
{
    const WordDff& d = model_.dffs[static_cast<std::size_t>(idx)];
    const std::uint64_t reset = resetLanes(d.rstn, m);
    const std::uint64_t load = m & ~reset & risingLanes(d.clk);
    const std::uint64_t eff = reset | load;
    if (eff == 0) {
        return;
    }
    std::uint64_t state = dffState_[static_cast<std::size_t>(idx)];
    state &= ~reset;
    state = (state & ~load) | (sig_[static_cast<std::size_t>(d.d)].val & load);
    dffState_[static_cast<std::size_t>(idx)] = state;
    propagateDff(idx, eff);
}

void WordSim::propagateDff(int idx, std::uint64_t lanes)
{
    const WordDff& d = model_.dffs[static_cast<std::size_t>(idx)];
    const std::uint64_t state = dffState_[static_cast<std::size_t>(idx)];
    scheduleInertial(d.q, state, lanes, d.clkToQ);
    if (d.qn >= 0) {
        scheduleInertial(d.qn, ~state, lanes, d.clkToQ);
    }
}

void WordSim::runRegister(int idx, std::uint64_t m)
{
    const WordRegister& r = model_.regs[static_cast<std::size_t>(idx)];
    const std::uint64_t reset = resetLanes(r.rstn, m);
    const std::uint64_t en =
        r.en < 0 ? kAllLanes : sig_[static_cast<std::size_t>(r.en)].val;
    const std::uint64_t load = m & ~reset & risingLanes(r.clk) & en;
    const std::uint64_t eff = reset | load;
    if (eff == 0) {
        return;
    }
    std::vector<std::uint64_t>& planes = regState_[static_cast<std::size_t>(idx)];
    for (std::size_t b = 0; b < planes.size(); ++b) {
        std::uint64_t p = planes[b];
        p = (p & ~reset) | (((r.resetValue >> b) & 1) != 0 ? reset : 0);
        p = (p & ~load) | (sig_[static_cast<std::size_t>(r.d[b])].val & load);
        planes[b] = p;
    }
    propagateRegister(idx, eff);
}

void WordSim::propagateRegister(int idx, std::uint64_t lanes)
{
    const WordRegister& r = model_.regs[static_cast<std::size_t>(idx)];
    const std::vector<std::uint64_t>& planes = regState_[static_cast<std::size_t>(idx)];
    for (std::size_t b = 0; b < planes.size(); ++b) {
        scheduleInertial(r.q[b], planes[b], lanes, r.clkToQ);
    }
}

void WordSim::runCounter(int idx, std::uint64_t m)
{
    const WordCounter& n = model_.counters[static_cast<std::size_t>(idx)];
    const std::uint64_t reset = resetLanes(n.rstn, m);
    const std::uint64_t en =
        n.en < 0 ? kAllLanes : sig_[static_cast<std::size_t>(n.en)].val;
    const std::uint64_t inc = m & ~reset & risingLanes(n.clk) & en;
    const std::uint64_t eff = reset | inc;
    if (eff == 0) {
        return;
    }
    std::vector<std::uint64_t>& planes = cntState_[static_cast<std::size_t>(idx)];
    const std::size_t w = planes.size();
    for (std::size_t b = 0; b < w; ++b) {
        planes[b] &= ~reset;
    }
    // Ripple-carry increment in the inc lanes.
    std::uint64_t carry = inc;
    for (std::size_t b = 0; b < w; ++b) {
        const std::uint64_t nb = planes[b] ^ carry;
        const std::uint64_t c2 = planes[b] & carry;
        planes[b] = (planes[b] & ~inc) | (nb & inc);
        carry = c2;
    }
    // Modulo wrap: lanes whose (width+1)-bit incremented value equals the
    // wrap value go back to zero (the invariant count < modulo makes the
    // equality test exact).
    std::uint64_t wrap = inc;
    for (std::size_t b = 0; b < w; ++b) {
        wrap &= ((n.modulo >> b) & 1) != 0 ? planes[b] : ~planes[b];
    }
    if (w < 64) {
        wrap &= ((n.modulo >> w) & 1) != 0 ? carry : ~carry;
    } else {
        wrap &= ~carry;
    }
    for (std::size_t b = 0; b < w; ++b) {
        planes[b] &= ~wrap;
    }
    propagateCounter(idx, eff);
}

void WordSim::propagateCounter(int idx, std::uint64_t lanes)
{
    const WordCounter& n = model_.counters[static_cast<std::size_t>(idx)];
    const std::vector<std::uint64_t>& planes = cntState_[static_cast<std::size_t>(idx)];
    for (std::size_t b = 0; b < planes.size(); ++b) {
        scheduleInertial(n.q[b], planes[b], lanes, n.clkToQ);
    }
    if (n.tc >= 0) {
        const std::uint64_t last = n.modulo - 1;
        std::uint64_t tcVal = kAllLanes;
        for (std::size_t b = 0; b < planes.size(); ++b) {
            tcVal &= ((last >> b) & 1) != 0 ? planes[b] : ~planes[b];
        }
        scheduleInertial(n.tc, tcVal, lanes, n.clkToQ);
    }
}

void WordSim::runShift(int idx, std::uint64_t m)
{
    const WordShift& s = model_.shifts[static_cast<std::size_t>(idx)];
    const std::uint64_t reset = resetLanes(s.rstn, m);
    const std::uint64_t shift = m & ~reset & risingLanes(s.clk);
    const std::uint64_t eff = reset | shift;
    if (eff == 0) {
        return;
    }
    std::vector<std::uint64_t>& planes = shiftState_[static_cast<std::size_t>(idx)];
    const std::size_t w = planes.size();
    for (std::size_t b = 0; b < w; ++b) {
        planes[b] &= ~reset;
    }
    const std::uint64_t in = sig_[static_cast<std::size_t>(s.serialIn)].val;
    for (std::size_t b = 0; b < w; ++b) {
        const std::uint64_t nb = b + 1 < w ? planes[b + 1] : in;
        planes[b] = (planes[b] & ~shift) | (nb & shift);
    }
    propagateShift(idx, eff);
}

void WordSim::propagateShift(int idx, std::uint64_t lanes)
{
    const WordShift& s = model_.shifts[static_cast<std::size_t>(idx)];
    const std::vector<std::uint64_t>& planes = shiftState_[static_cast<std::size_t>(idx)];
    for (std::size_t b = 0; b < planes.size(); ++b) {
        scheduleInertial(s.taps[b], planes[b], lanes, s.clkToQ);
    }
}

void WordSim::runLfsr(int idx, std::uint64_t m)
{
    const WordLfsr& l = model_.lfsrs[static_cast<std::size_t>(idx)];
    const std::uint64_t reset = resetLanes(l.rstn, m);
    const std::uint64_t shift = m & ~reset & risingLanes(l.clk);
    const std::uint64_t eff = reset | shift;
    if (eff == 0) {
        return;
    }
    std::vector<std::uint64_t>& planes = lfsrState_[static_cast<std::size_t>(idx)];
    const std::size_t w = planes.size();
    for (std::size_t b = 0; b < w; ++b) {
        planes[b] = (planes[b] & ~reset) | (((l.seed >> b) & 1) != 0 ? reset : 0);
    }
    // Fibonacci feedback: parity of the tapped stages, then shift left.
    std::uint64_t fb = 0;
    for (std::size_t b = 0; b < w; ++b) {
        if (((l.taps >> b) & 1) != 0) {
            fb ^= planes[b];
        }
    }
    for (std::size_t b = w; b-- > 1;) {
        planes[b] = (planes[b] & ~shift) | (planes[b - 1] & shift);
    }
    planes[0] = (planes[0] & ~shift) | (fb & shift);
    propagateLfsr(idx, eff);
}

void WordSim::propagateLfsr(int idx, std::uint64_t lanes)
{
    const WordLfsr& l = model_.lfsrs[static_cast<std::size_t>(idx)];
    const std::vector<std::uint64_t>& planes = lfsrState_[static_cast<std::size_t>(idx)];
    for (std::size_t b = 0; b < planes.size(); ++b) {
        scheduleInertial(l.q[b], planes[b], lanes, l.clkToQ);
    }
}

void WordSim::runFsm(int idx, std::uint64_t m)
{
    const WordFsm& f = model_.fsms[static_cast<std::size_t>(idx)];
    FsmState& st = fsmState_[static_cast<std::size_t>(idx)];
    const std::uint64_t reset = resetLanes(f.rstn, m);
    const std::uint64_t trans = m & ~reset & risingLanes(f.clk);
    const std::uint64_t eff = reset | trans;
    if (eff == 0) {
        return;
    }
    for (std::uint64_t w = reset; w != 0; w &= w - 1) {
        st.state[static_cast<std::size_t>(__builtin_ctzll(w))] = f.resetState;
    }
    st.forcedMask &= ~reset;
    for (std::uint64_t w = trans; w != 0; w &= w - 1) {
        const int lane = __builtin_ctzll(w);
        const auto l = static_cast<std::size_t>(lane);
        if (((st.forcedMask >> lane) & 1) != 0) {
            st.state[l] = st.forcedNext[l];
            st.forcedMask &= ~(1ull << lane);
        } else {
            st.state[l] = f.next(st.state[l], busLaneValue(f.in, lane));
        }
    }
    driveFsm(idx, eff);
}

void WordSim::driveFsm(int idx, std::uint64_t lanes)
{
    const WordFsm& f = model_.fsms[static_cast<std::size_t>(idx)];
    const FsmState& st = fsmState_[static_cast<std::size_t>(idx)];
    std::vector<std::uint64_t> bits(f.out.size(), 0);
    for (std::uint64_t w = lanes; w != 0; w &= w - 1) {
        const int lane = __builtin_ctzll(w);
        const std::uint64_t out =
            f.output(st.state[static_cast<std::size_t>(lane)], busLaneValue(f.in, lane));
        for (std::size_t b = 0; b < bits.size(); ++b) {
            bits[b] |= ((out >> b) & 1) << lane;
        }
    }
    for (std::size_t b = 0; b < bits.size(); ++b) {
        scheduleInertial(f.out[b], bits[b], lanes, f.clkToQ);
    }
}

void WordSim::runAdder(const WordAdder& a, std::uint64_t m)
{
    static thread_local std::vector<std::uint64_t> sum;
    sum.assign(a.sum.size(), 0);
    std::uint64_t carry = a.cin < 0 ? 0 : sig_[static_cast<std::size_t>(a.cin)].val;
    for (std::size_t b = 0; b < sum.size(); ++b) {
        const std::uint64_t ab = sig_[static_cast<std::size_t>(a.a[b])].val;
        const std::uint64_t bb = sig_[static_cast<std::size_t>(a.b[b])].val;
        sum[b] = ab ^ bb ^ carry;
        carry = (ab & bb) | (carry & (ab ^ bb));
    }
    for (std::size_t b = 0; b < sum.size(); ++b) {
        scheduleInertial(a.sum[b], sum[b], m, a.delay);
    }
    if (a.cout >= 0) {
        scheduleInertial(a.cout, a.width < 64 ? carry : 0, m, a.delay);
    }
}

void WordSim::runEq(const WordEq& e, std::uint64_t m)
{
    std::uint64_t v = kAllLanes;
    for (std::size_t b = 0; b < e.a.size(); ++b) {
        v &= ~(sig_[static_cast<std::size_t>(e.a[b])].val ^
               sig_[static_cast<std::size_t>(e.b[b])].val);
    }
    scheduleInertial(e.eq, v, m, e.delay);
}

std::uint64_t WordSim::busLaneValue(const std::vector<int>& bits, int lane) const
{
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < bits.size(); ++b) {
        v |= ((sig_[static_cast<std::size_t>(bits[b])].val >> lane) & 1) << b;
    }
    return v;
}

// --- fault hooks ------------------------------------------------------------

std::uint64_t WordSim::readLaneState(const WordHook& h, int lane) const
{
    const auto i = static_cast<std::size_t>(h.comp);
    const auto pick = [lane](const std::vector<std::uint64_t>& planes) {
        std::uint64_t v = 0;
        for (std::size_t b = 0; b < planes.size(); ++b) {
            v |= ((planes[b] >> lane) & 1) << b;
        }
        return v;
    };
    switch (h.kind) {
    case HookKind::Dff:
        return (dffState_[i] >> lane) & 1;
    case HookKind::Register:
        return pick(regState_[i]);
    case HookKind::Counter:
        return pick(cntState_[i]);
    case HookKind::Shift:
        return pick(shiftState_[i]);
    case HookKind::Lfsr:
        return pick(lfsrState_[i]);
    case HookKind::Fsm:
        return static_cast<std::uint64_t>(
            fsmState_[i].state[static_cast<std::size_t>(lane)]);
    }
    return 0;
}

std::uint64_t WordSim::hookValue(const WordHook& h, int lane) const
{
    return readLaneState(h, lane);
}

void WordSim::writeLaneState(const WordHook& h, int lane, std::uint64_t v)
{
    const auto i = static_cast<std::size_t>(h.comp);
    const std::uint64_t laneMask = 1ull << lane;
    const auto put = [lane, laneMask](std::vector<std::uint64_t>& planes,
                                      std::uint64_t value) {
        for (std::size_t b = 0; b < planes.size(); ++b) {
            planes[b] = (planes[b] & ~laneMask) | (((value >> b) & 1) << lane);
        }
    };
    // Each branch replicates the scalar component's setState()/setCount()/
    // forceState() masking, then re-propagates the injected lane.
    switch (h.kind) {
    case HookKind::Dff:
        dffState_[i] = (dffState_[i] & ~laneMask) | ((v & 1) << lane);
        propagateDff(h.comp, laneMask);
        break;
    case HookKind::Register:
        put(regState_[i], v & model_.regs[i].mask);
        propagateRegister(h.comp, laneMask);
        break;
    case HookKind::Counter:
        put(cntState_[i], (v & model_.counters[i].mask) % model_.counters[i].modulo);
        propagateCounter(h.comp, laneMask);
        break;
    case HookKind::Shift:
        put(shiftState_[i], v & ((1ull << shiftState_[i].size()) - 1));
        propagateShift(h.comp, laneMask);
        break;
    case HookKind::Lfsr:
        put(lfsrState_[i], v & model_.lfsrs[i].mask);
        propagateLfsr(h.comp, laneMask);
        break;
    case HookKind::Fsm:
        fsmState_[i].state[static_cast<std::size_t>(lane)] =
            static_cast<int>(v) & ((1 << model_.fsms[i].stateBits) - 1);
        driveFsm(h.comp, laneMask);
        break;
    }
}

bool WordSim::armFault(int lane, const fault::FaultSpec& fault)
{
    const std::uint64_t laneMask = 1ull << lane;

    // NOTE: the deferred actions below must never capture the Visitor's
    // `this` — the Visitor is a stack temporary, dead long before run()
    // dispatches the action. Everything is init-captured by value (plus a
    // reference to the long-lived WordSim).
    struct Visitor {
        WordSim& sim;
        int lane;
        std::uint64_t laneMask;

        static void flipBit(WordSim& s, const WordHook& h, int lane, int bit)
        {
            // The DFF hook ignores the bit index (single-bit toggle); the
            // multi-bit hooks XOR the addressed bit, then re-mask on write.
            const std::uint64_t cur = s.readLaneState(h, lane);
            const std::uint64_t v =
                h.kind == HookKind::Dff ? cur ^ 1 : cur ^ (1ull << bit);
            s.writeLaneState(h, lane, v);
        }

        bool operator()(const std::monostate&) const { return false; }
        bool operator()(const fault::BitFlipFault& f) const
        {
            const auto it = sim.model_.hooks.find(f.target);
            if (it == sim.model_.hooks.end()) {
                return false;
            }
            const WordHook h = it->second;
            sim.scheduleAction(
                f.time, laneMask,
                [&s = sim, h, lane = lane, bit = f.bit](std::uint64_t) {
                    flipBit(s, h, lane, bit);
                });
            return true;
        }
        bool operator()(const fault::DoubleBitFlipFault& f) const
        {
            const auto it = sim.model_.hooks.find(f.target);
            if (it == sim.model_.hooks.end()) {
                return false;
            }
            const WordHook h = it->second;
            sim.scheduleAction(
                f.time, laneMask,
                [&s = sim, h, lane = lane, bitA = f.bitA, bitB = f.bitB](std::uint64_t) {
                    flipBit(s, h, lane, bitA);
                    flipBit(s, h, lane, bitB);
                });
            return true;
        }
        bool operator()(const fault::StateWriteFault& f) const
        {
            const auto it = sim.model_.hooks.find(f.target);
            if (it == sim.model_.hooks.end()) {
                return false;
            }
            const WordHook h = it->second;
            sim.scheduleAction(
                f.time, laneMask,
                [&s = sim, h, lane = lane, value = f.value](std::uint64_t) {
                    s.writeLaneState(h, lane, value);
                });
            return true;
        }
        bool operator()(const fault::FsmTransitionFault& f) const
        {
            const auto it = sim.model_.fsmIndex.find(f.target);
            if (it == sim.model_.fsmIndex.end()) {
                return false;
            }
            sim.scheduleAction(
                f.time, laneMask,
                [&s = sim, idx = it->second, lane = lane, mask = laneMask,
                 forced = f.forcedState](std::uint64_t) {
                    FsmState& st = s.fsmState_[static_cast<std::size_t>(idx)];
                    st.forcedNext[static_cast<std::size_t>(lane)] = forced;
                    st.forcedMask |= mask;
                });
            return true;
        }
        bool operator()(const fault::DigitalPulseFault&) const { return false; }
        bool operator()(const fault::StuckAtFault& f) const
        {
            const auto it = sim.model_.sabIndex.find(f.saboteur);
            if (it == sim.model_.sabIndex.end()) {
                return false;
            }
            if (f.value != digital::Logic::Zero && f.value != digital::Logic::One) {
                return false;
            }
            const int idx = it->second;
            const bool one = f.value == digital::Logic::One;
            sim.scheduleAction(
                f.time, laneMask,
                [&s = sim, idx, one, mask = laneMask](std::uint64_t) {
                    SabState& st = s.sabState_[static_cast<std::size_t>(idx)];
                    st.stuckMask |= mask;
                    st.stuckVal = (st.stuckVal & ~mask) | (one ? mask : 0);
                    s.driveSaboteur(idx, mask);
                });
            if (f.duration > 0) {
                sim.scheduleAction(
                    f.time + f.duration, laneMask,
                    [&s = sim, idx, mask = laneMask](std::uint64_t) {
                        s.sabState_[static_cast<std::size_t>(idx)].stuckMask &= ~mask;
                        s.driveSaboteur(idx, mask);
                    });
            }
            return true;
        }
        bool operator()(const fault::CurrentPulseFault&) const { return false; }
        bool operator()(const fault::ParametricFault&) const { return false; }
    };
    return std::visit(Visitor{*this, lane, laneMask}, fault);
}

// --- top-level run ----------------------------------------------------------

bool WordSim::run()
{
    // Startup pass: every process runs once in creation order (uncounted),
    // exactly like Scheduler::start(). No events exist yet, so sequential
    // elements see their asserted resets and no clock edges.
    for (std::size_t p = 0; p < model_.processes.size(); ++p) {
        runProcess(static_cast<int>(p), kAllLanes);
    }

    // Counted waves at time zero (the scalar kernel's runDeltasNow()).
    std::uint64_t wavesHere = 0;
    while (!runnable_.empty() || (!queue_.empty() && queue_.top().time <= now_)) {
        if (++wavesHere > kWaveLimit) {
            failed_ = true;
            return false;
        }
        runWave();
    }
    flushTimePoint(now_);

    while (!queue_.empty() && queue_.top().time <= model_.duration) {
        now_ = queue_.top().time;
        wavesHere = 0;
        while (!runnable_.empty() || (!queue_.empty() && queue_.top().time <= now_)) {
            if (++wavesHere > kWaveLimit) {
                failed_ = true;
                return false;
            }
            runWave();
        }
        flushTimePoint(now_);
    }
    now_ = model_.duration;
    return true;
}

} // namespace gfi::batch
