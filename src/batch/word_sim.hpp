#pragma once
// 64-lane word simulation kernel.
//
// WordSim replays the event-driven scheduler's three-phase wave algorithm on
// machine words: every net holds one uint64_t whose bit L is the net's value
// in lane L. Lane 0 is the golden circuit; lanes 1..63 each carry one armed
// fault. Per-lane exactness is the design invariant — for every lane L, the
// sequence of (time, settled value) changes on every net, the end-of-run
// state of every sequential element and the wave (delta-cycle) count are
// identical to what one scalar event-driven run of that lane's circuit would
// produce. The campaign backend relies on this to classify lanes by their
// divergence masks against lane 0 and emit byte-identical results.
//
// The replication hinges on three bookkeeping words per signal: the value
// word, a previous-value word with last-change semantics (rising-edge
// detection), and a per-wave change mask (the lane-wise analog of the scalar
// kernel's event stamps). Queue entries carry a lane-occupancy mask: a wave
// "happens" in exactly the lanes that have an entry due, which keeps the
// per-lane wave counters equal to the scalar kernel's deltaCycles().

#include "batch/word_model.hpp"

#include <array>
#include <cstdint>
#include <functional>
#include <queue>

namespace gfi::batch {

/// All 64 lanes.
inline constexpr std::uint64_t kAllLanes = ~0ull;

/// One recorded trace point of an observed signal: the settled value word at
/// @p time plus the mask of lanes whose value changed at that time point.
struct TracePoint {
    SimTime time;
    std::uint64_t changed;
    std::uint64_t value;
};

/// The word simulator. Build one per fault group from a freshly compiled
/// model (the model's FSM callables must stay alive for the sim's lifetime).
class WordSim {
public:
    explicit WordSim(const WordModel& model);

    /// Arms @p fault in lane @p lane (1..63). Must be called before run();
    /// returns false when the fault is not batch-eligible (callers filter
    /// with faultEligibility() first, so this is a safety net).
    bool armFault(int lane, const fault::FaultSpec& fault);

    /// Runs startup pass + waves to the model duration. Returns false when
    /// the kernel bails out (per-time-point wave runaway) — the caller then
    /// falls back to the event-driven kernel for the whole group.
    bool run();

    /// Per-lane wave count (the scalar scheduler's deltaCycles()).
    [[nodiscard]] std::uint64_t waveCount(int lane) const
    {
        return waveCount_[static_cast<std::size_t>(lane)];
    }

    /// Recorded points of observed signal slot @p obs (model.observedDigital
    /// order).
    [[nodiscard]] const std::vector<TracePoint>& points(int obs) const
    {
        return trace_[static_cast<std::size_t>(obs)];
    }

    /// Initial bit of observed slot @p obs.
    [[nodiscard]] bool initialBit(int obs) const
    {
        const int sig = model_.observedDigital[static_cast<std::size_t>(obs)];
        return model_.signalInit[static_cast<std::size_t>(sig)] != 0;
    }

    /// Lane @p lane's end-of-run value of hook @p h (instrumentation get()).
    [[nodiscard]] std::uint64_t hookValue(const WordHook& h, int lane) const;

private:
    struct Txn {
        std::uint64_t id;
        std::uint64_t value; ///< scheduled value word (live lanes meaningful)
        std::uint64_t live;  ///< lanes not yet canceled
    };

    struct SigState {
        std::uint64_t val = 0;
        std::uint64_t prev = 0;       ///< last-change previous value, per lane
        std::uint64_t waveChange = 0; ///< lanes evented in the current wave
        std::uint64_t tpChange = 0;   ///< lanes evented at the current time point
        std::vector<Txn> pending;
        int obs = -1; ///< observed slot, -1 when unobserved
    };

    struct Entry {
        SimTime time;
        std::uint64_t seq;
        int signal = -1;                       ///< >= 0: transaction entry
        std::uint64_t txnId = 0;
        std::function<void(std::uint64_t)> fn; ///< action entry when signal < 0
        std::uint64_t occ = 0;                 ///< lanes this entry exists in
    };
    struct EntryLater {
        bool operator()(const Entry& a, const Entry& b) const
        {
            return a.time != b.time ? a.time > b.time : a.seq > b.seq;
        }
    };

    // --- scheduling primitives (scalar-kernel replicas) ---------------------
    void scheduleInertial(int sig, std::uint64_t value, std::uint64_t lanes,
                          SimTime delay);
    void scheduleAction(SimTime t, std::uint64_t occ, std::function<void(std::uint64_t)> fn);
    void forceValue(int sig, std::uint64_t value, std::uint64_t lanes);
    void applyTxn(int sig, std::uint64_t id);
    void noteEvent(int sigIdx, SigState& s, std::uint64_t changed);
    void wake(int proc);
    void runWave();
    void flushTimePoint(SimTime t);

    // --- construction-time schedule (clocks, stimuli) -----------------------
    void armConstruction();
    void clockRise(int clock, SimTime t);
    void clockFall(int clock, SimTime t);

    // --- process bodies -----------------------------------------------------
    void runProcess(int proc, std::uint64_t runMask);
    [[nodiscard]] std::uint64_t risingLanes(int clkSig) const;
    [[nodiscard]] std::uint64_t resetLanes(int rstnSig, std::uint64_t runMask) const;

    void runGate(const WordGate& g, std::uint64_t m);
    void runSaboteur(int idx, std::uint64_t m);
    void runDff(int idx, std::uint64_t m);
    void runRegister(int idx, std::uint64_t m);
    void runCounter(int idx, std::uint64_t m);
    void runShift(int idx, std::uint64_t m);
    void runLfsr(int idx, std::uint64_t m);
    void runFsm(int idx, std::uint64_t m);
    void runAdder(const WordAdder& a, std::uint64_t m);
    void runEq(const WordEq& e, std::uint64_t m);

    // --- per-component propagation (shared by processes and fault hooks) ----
    void propagateDff(int idx, std::uint64_t lanes);
    void propagateRegister(int idx, std::uint64_t lanes);
    void propagateCounter(int idx, std::uint64_t lanes);
    void propagateShift(int idx, std::uint64_t lanes);
    void propagateLfsr(int idx, std::uint64_t lanes);
    void driveFsm(int idx, std::uint64_t lanes);
    void driveSaboteur(int idx, std::uint64_t lanes);

    // --- fault hook semantics (single-lane) ---------------------------------
    [[nodiscard]] std::uint64_t readLaneState(const WordHook& h, int lane) const;
    void writeLaneState(const WordHook& h, int lane, std::uint64_t v);

    [[nodiscard]] std::uint64_t busLaneValue(const std::vector<int>& bits, int lane) const;

    const WordModel& model_;
    std::vector<SigState> sig_;
    std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
    std::vector<int> runnable_;       ///< processes woken this wave, wake order
    std::vector<char> queued_;        ///< per process: already in runnable_
    std::vector<int> changedSignals_; ///< signals with waveChange != 0
    std::vector<int> tpSignals_;      ///< observed signals with tpChange != 0
    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t nextTxnId_ = 1;
    std::array<std::uint64_t, 64> waveCount_{};
    std::vector<std::vector<TracePoint>> trace_;

    // mutable component state
    std::vector<std::uint64_t> dffState_;
    std::vector<std::vector<std::uint64_t>> regState_;
    std::vector<std::vector<std::uint64_t>> cntState_;
    std::vector<std::vector<std::uint64_t>> shiftState_;
    std::vector<std::vector<std::uint64_t>> lfsrState_;
    struct FsmState {
        std::array<int, 64> state{};
        std::array<int, 64> forcedNext{};
        std::uint64_t forcedMask = 0;
    };
    std::vector<FsmState> fsmState_;
    struct SabState {
        std::uint64_t stuckMask = 0;
        std::uint64_t stuckVal = 0;
    };
    std::vector<SabState> sabState_;

    bool failed_ = false;
};

} // namespace gfi::batch
