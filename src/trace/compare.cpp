#include "trace/compare.hpp"

#include <algorithm>
#include <cmath>

namespace gfi::trace {

DigitalDiff compareDigital(const DigitalTrace& golden, const DigitalTrace& test, SimTime tEnd,
                           SimTime minWindow)
{
    // Merge the event timelines and walk both traces.
    std::vector<SimTime> times;
    times.reserve(golden.events.size() + test.events.size() + 2);
    times.push_back(0);
    for (const auto& [t, v] : golden.events) {
        times.push_back(t);
    }
    for (const auto& [t, v] : test.events) {
        times.push_back(t);
    }
    times.push_back(tEnd);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    // Monotone cursors over both event lists: the merged timeline is
    // ascending, so each trace is walked once (valueAt per point would make
    // this quadratic in the event count — clock traces have thousands).
    std::size_t gi = 0;
    std::size_t ti = 0;
    digital::Logic gv = golden.initial;
    digital::Logic tv = test.initial;

    DigitalDiff diff;
    bool inMismatch = false;
    SimTime windowStart = 0;
    for (SimTime t : times) {
        if (t > tEnd) {
            break;
        }
        while (gi < golden.events.size() && golden.events[gi].first <= t) {
            gv = golden.events[gi++].second;
        }
        while (ti < test.events.size() && test.events[ti].first <= t) {
            tv = test.events[ti++].second;
        }
        const bool differs = digital::toX01(gv) != digital::toX01(tv);
        if (differs && !inMismatch) {
            inMismatch = true;
            windowStart = t;
        } else if (!differs && inMismatch) {
            inMismatch = false;
            diff.mismatchWindows.emplace_back(windowStart, t);
        }
    }
    if (inMismatch) {
        diff.mismatchWindows.emplace_back(windowStart, tEnd);
    }
    if (minWindow > 0) {
        // Uniform filter: a window narrower than the jitter tolerance is not
        // a functional error even when it is cut short by the end of the
        // observation (a sub-tolerance edge offset straddling tEnd).
        std::erase_if(diff.mismatchWindows, [&](const std::pair<SimTime, SimTime>& w) {
            return w.second - w.first < minWindow;
        });
    }
    if (!diff.mismatchWindows.empty()) {
        diff.firstMismatch = diff.mismatchWindows.front().first;
        diff.lastMismatchEnd = diff.mismatchWindows.back().second;
        for (const auto& [a, b] : diff.mismatchWindows) {
            diff.totalMismatch += b - a;
        }
    }
    return diff;
}

AnalogDiff compareAnalog(const AnalogTrace& golden, const AnalogTrace& test, double absTol,
                         double relTol)
{
    // Sample lists are recorded in ascending time order, so the merged
    // timeline comes from a linear merge; a full sort over millions of
    // analog samples would dominate the whole classification.
    std::vector<double> ga;
    std::vector<double> ta;
    ga.reserve(golden.samples.size());
    ta.reserve(test.samples.size());
    for (const auto& [t, v] : golden.samples) {
        ga.push_back(t);
    }
    for (const auto& [t, v] : test.samples) {
        ta.push_back(t);
    }
    std::vector<double> times(ga.size() + ta.size());
    if (std::is_sorted(ga.begin(), ga.end()) && std::is_sorted(ta.begin(), ta.end())) {
        std::merge(ga.begin(), ga.end(), ta.begin(), ta.end(), times.begin());
    } else {
        times.clear();
        times.insert(times.end(), ga.begin(), ga.end());
        times.insert(times.end(), ta.begin(), ta.end());
        std::sort(times.begin(), times.end());
    }
    times.erase(std::unique(times.begin(), times.end()), times.end());

    // Monotone interpolation cursor per trace (ascending queries walk each
    // sample list once; identical to AnalogTrace::valueAt's interpolation).
    struct Cursor {
        const std::vector<std::pair<double, double>>& s;
        std::size_t i = 1; ///< candidate upper interval bound

        double at(double t)
        {
            if (s.empty()) {
                return 0.0;
            }
            if (t <= s.front().first) {
                return s.front().second;
            }
            if (t >= s.back().first) {
                return s.back().second;
            }
            while (i < s.size() && s[i].first < t) {
                ++i;
            }
            const auto& [t1, v1] = s[i];
            const auto& [t0, v0] = s[i - 1];
            if (t1 <= t0) {
                return v1;
            }
            return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
        }
    };
    Cursor goldenCur{golden.samples};
    Cursor testCur{test.samples};

    AnalogDiff diff;
    bool outside = false;
    double outsideStart = 0.0;
    for (double t : times) {
        const double g = goldenCur.at(t);
        const double v = testCur.at(t);
        const double dev = std::fabs(v - g);
        if (dev > diff.maxDeviation) {
            diff.maxDeviation = dev;
            diff.tMaxDeviation = t;
        }
        const bool exceeds = dev > absTol + relTol * std::fabs(g);
        if (exceeds) {
            if (diff.firstExceed < 0.0) {
                diff.firstExceed = t;
            }
            diff.lastExceed = t;
            if (!outside) {
                outside = true;
                outsideStart = t;
            }
        } else if (outside) {
            outside = false;
            diff.timeOutsideTol += t - outsideStart;
        }
    }
    if (outside && !times.empty()) {
        diff.timeOutsideTol += times.back() - outsideStart;
        diff.withinTolAtEnd = false;
    }
    return diff;
}

} // namespace gfi::trace
