#include "trace/compare.hpp"

#include <algorithm>
#include <cmath>

namespace gfi::trace {

DigitalDiff compareDigital(const DigitalTrace& golden, const DigitalTrace& test, SimTime tEnd,
                           SimTime minWindow)
{
    // Merge the event timelines and walk both traces.
    std::vector<SimTime> times;
    times.reserve(golden.events.size() + test.events.size() + 2);
    times.push_back(0);
    for (const auto& [t, v] : golden.events) {
        times.push_back(t);
    }
    for (const auto& [t, v] : test.events) {
        times.push_back(t);
    }
    times.push_back(tEnd);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    DigitalDiff diff;
    bool inMismatch = false;
    SimTime windowStart = 0;
    for (SimTime t : times) {
        if (t > tEnd) {
            break;
        }
        const bool differs =
            digital::toX01(golden.valueAt(t)) != digital::toX01(test.valueAt(t));
        if (differs && !inMismatch) {
            inMismatch = true;
            windowStart = t;
        } else if (!differs && inMismatch) {
            inMismatch = false;
            diff.mismatchWindows.emplace_back(windowStart, t);
        }
    }
    if (inMismatch) {
        diff.mismatchWindows.emplace_back(windowStart, tEnd);
    }
    if (minWindow > 0) {
        // Uniform filter: a window narrower than the jitter tolerance is not
        // a functional error even when it is cut short by the end of the
        // observation (a sub-tolerance edge offset straddling tEnd).
        std::erase_if(diff.mismatchWindows, [&](const std::pair<SimTime, SimTime>& w) {
            return w.second - w.first < minWindow;
        });
    }
    if (!diff.mismatchWindows.empty()) {
        diff.firstMismatch = diff.mismatchWindows.front().first;
        diff.lastMismatchEnd = diff.mismatchWindows.back().second;
        for (const auto& [a, b] : diff.mismatchWindows) {
            diff.totalMismatch += b - a;
        }
    }
    return diff;
}

AnalogDiff compareAnalog(const AnalogTrace& golden, const AnalogTrace& test, double absTol,
                         double relTol)
{
    std::vector<double> times;
    times.reserve(golden.samples.size() + test.samples.size());
    for (const auto& [t, v] : golden.samples) {
        times.push_back(t);
    }
    for (const auto& [t, v] : test.samples) {
        times.push_back(t);
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    AnalogDiff diff;
    bool outside = false;
    double outsideStart = 0.0;
    for (double t : times) {
        const double g = golden.valueAt(t);
        const double v = test.valueAt(t);
        const double dev = std::fabs(v - g);
        if (dev > diff.maxDeviation) {
            diff.maxDeviation = dev;
            diff.tMaxDeviation = t;
        }
        const bool exceeds = dev > absTol + relTol * std::fabs(g);
        if (exceeds) {
            if (diff.firstExceed < 0.0) {
                diff.firstExceed = t;
            }
            diff.lastExceed = t;
            if (!outside) {
                outside = true;
                outsideStart = t;
            }
        } else if (outside) {
            outside = false;
            diff.timeOutsideTol += t - outsideStart;
        }
    }
    if (outside && !times.empty()) {
        diff.timeOutsideTol += times.back() - outsideStart;
        diff.withinTolAtEnd = false;
    }
    return diff;
}

} // namespace gfi::trace
