#include "trace/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace gfi::trace {

std::vector<PeriodSample> extractPeriods(const DigitalTrace& clock)
{
    const std::vector<SimTime> edges = clock.risingEdges();
    std::vector<PeriodSample> periods;
    if (edges.size() < 2) {
        return periods;
    }
    periods.reserve(edges.size() - 1);
    for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
        periods.push_back({edges[i], edges[i + 1] - edges[i]});
    }
    return periods;
}

ClockPerturbation analyzeClock(const DigitalTrace& clock, SimTime nominalPeriod, double relTol,
                               SimTime from)
{
    ClockPerturbation result;
    result.nominalPeriod = nominalPeriod;
    for (const PeriodSample& p : extractPeriods(clock)) {
        if (p.edge < from) {
            continue;
        }
        ++result.totalCycles;
        const double rel = std::fabs(static_cast<double>(p.period - nominalPeriod)) /
                           static_cast<double>(nominalPeriod);
        if (rel > result.maxRelDeviation) {
            result.maxRelDeviation = rel;
            result.maxDeviationPeriod = p.period;
        }
        if (rel > relTol) {
            ++result.perturbedCycles;
            if (result.firstPerturbed < 0) {
                result.firstPerturbed = p.edge;
            }
            result.lastPerturbed = p.edge;
        }
    }
    return result;
}

double averagePeriod(const DigitalTrace& clock, int cycles)
{
    const std::vector<SimTime> edges = clock.risingEdges();
    if (static_cast<int>(edges.size()) < cycles + 1) {
        return 0.0;
    }
    const SimTime span = edges.back() - edges[edges.size() - 1 - static_cast<std::size_t>(cycles)];
    return static_cast<double>(span) / cycles;
}

double rmsPeriodJitter(const DigitalTrace& clock, SimTime from)
{
    std::vector<double> periods;
    for (const PeriodSample& p : extractPeriods(clock)) {
        if (p.edge >= from) {
            periods.push_back(toSeconds(p.period));
        }
    }
    if (periods.size() < 2) {
        return 0.0;
    }
    double mean = 0.0;
    for (double p : periods) {
        mean += p;
    }
    mean /= static_cast<double>(periods.size());
    double var = 0.0;
    for (double p : periods) {
        var += (p - mean) * (p - mean);
    }
    return std::sqrt(var / static_cast<double>(periods.size()));
}

double dutyCycle(const DigitalTrace& clock, SimTime from)
{
    // Walk rising/falling edges; accumulate high time per full cycle.
    const std::vector<SimTime> rises = clock.risingEdges();
    double highTotal = 0.0;
    double periodTotal = 0.0;
    for (std::size_t i = 0; i + 1 < rises.size(); ++i) {
        if (rises[i] < from) {
            continue;
        }
        // Find the falling edge inside this cycle.
        digital::Logic prev = digital::Logic::One;
        SimTime fallAt = -1;
        for (const auto& [t, v] : clock.events) {
            if (t <= rises[i] || t >= rises[i + 1]) {
                continue;
            }
            const digital::Logic now = digital::toX01(v);
            if (prev == digital::Logic::One && now == digital::Logic::Zero) {
                fallAt = t;
                break;
            }
            prev = now;
        }
        if (fallAt < 0) {
            continue;
        }
        highTotal += static_cast<double>(fallAt - rises[i]);
        periodTotal += static_cast<double>(rises[i + 1] - rises[i]);
    }
    return periodTotal > 0.0 ? highTotal / periodTotal : -1.0;
}

ClockPerturbation compareClocks(const DigitalTrace& golden, const DigitalTrace& faulty,
                                double relTol, SimTime from)
{
    // Use the golden trace's steady-state period as the reference, then
    // analyze the faulty clock against it. Cycle-index pairing would drift
    // after a perturbation; period-against-nominal is the robust comparison.
    ClockPerturbation result;
    const std::vector<PeriodSample> goldenPeriods = extractPeriods(golden);
    if (goldenPeriods.empty()) {
        return result;
    }
    // Median golden period after `from` as nominal.
    std::vector<SimTime> periods;
    for (const PeriodSample& p : goldenPeriods) {
        if (p.edge >= from) {
            periods.push_back(p.period);
        }
    }
    if (periods.empty()) {
        return result;
    }
    std::nth_element(periods.begin(), periods.begin() + periods.size() / 2, periods.end());
    const SimTime nominal = periods[periods.size() / 2];
    return analyzeClock(faulty, nominal, relTol, from);
}

} // namespace gfi::trace
