#pragma once
// Trace comparison: exact for digital signals, tolerance-based for analog
// nodes (the paper notes analog monitoring "may need an additional tolerance
// on the values to avoid non-significant error identifications" — Section 4.1).

#include "trace/trace.hpp"

namespace gfi::trace {

/// Result of comparing two digital traces.
struct DigitalDiff {
    /// Half-open windows [start, end) where the values differ (normalized to
    /// X01, so X vs 0 counts as a mismatch).
    std::vector<std::pair<SimTime, SimTime>> mismatchWindows;
    SimTime firstMismatch = -1;  ///< start of the first window, -1 if none
    SimTime lastMismatchEnd = -1;///< end of the last window, -1 if none
    SimTime totalMismatch = 0;   ///< accumulated mismatch duration

    [[nodiscard]] bool identical() const noexcept { return mismatchWindows.empty(); }

    /// True when the traces agree at (and after the last event before) @p t.
    /// A window that extends to exactly @p t means the traces were still
    /// diverged when observation stopped — that is NOT a recovery.
    [[nodiscard]] bool matchesAt(SimTime t) const noexcept
    {
        return mismatchWindows.empty() || mismatchWindows.back().second < t;
    }
};

/// Compares two digital traces over [0, tEnd]. Mismatch windows shorter than
/// @p minWindow are discarded: this is the digital counterpart of the analog
/// tolerance — edge jitter below the threshold (e.g. sub-ps clock wobble
/// while a PLL relocks) is not a functional error.
[[nodiscard]] DigitalDiff compareDigital(const DigitalTrace& golden, const DigitalTrace& test,
                                         SimTime tEnd, SimTime minWindow = 0);

/// Result of comparing two analog traces.
struct AnalogDiff {
    double maxDeviation = 0.0;    ///< max |test - golden| (volts)
    double tMaxDeviation = 0.0;   ///< time of the maximum deviation
    double firstExceed = -1.0;    ///< first time the tolerance was exceeded, -1 if never
    double lastExceed = -1.0;     ///< last time the tolerance was exceeded
    double timeOutsideTol = 0.0;  ///< accumulated time outside tolerance (seconds)
    bool withinTolAtEnd = true;   ///< back inside tolerance at the end of the run

    [[nodiscard]] bool withinTolerance() const noexcept { return firstExceed < 0.0; }
};

/// Compares two analog traces on the union of their sample points.
/// A point deviates when |test - golden| > absTol + relTol * |golden|.
[[nodiscard]] AnalogDiff compareAnalog(const AnalogTrace& golden, const AnalogTrace& test,
                                       double absTol, double relTol = 0.0);

} // namespace gfi::trace
