#pragma once
// Trace capture: digital event traces and analog sampled waveforms.
//
// The paper's flow runs the injection campaign, collects "results (traces)"
// and feeds them to the analysis step. Recorder attaches to a MixedSimulator
// and records selected digital signals (every event) and analog nodes (every
// accepted solver step), producing the traces the classifier compares.

#include "ams/mixed_sim.hpp"

#include <map>
#include <string>
#include <vector>

namespace gfi::trace {

/// Event-based value history of one digital signal.
struct DigitalTrace {
    std::string name;
    digital::Logic initial = digital::Logic::U;
    std::vector<std::pair<SimTime, digital::Logic>> events;

    /// Value at time @p t (the last event at or before @p t, else initial).
    [[nodiscard]] digital::Logic valueAt(SimTime t) const;

    /// Times of 0 -> 1 transitions.
    [[nodiscard]] std::vector<SimTime> risingEdges() const;
};

/// Sampled waveform of one analog node.
struct AnalogTrace {
    std::string name;
    std::vector<std::pair<double, double>> samples; // (seconds, volts)

    /// Linearly interpolated value at @p t (clamped to the sample range).
    [[nodiscard]] double valueAt(double t) const;

    /// Minimum / maximum sample value over [t0, t1] (full range by default).
    [[nodiscard]] std::pair<double, double> minmax(double t0 = -1e30, double t1 = 1e30) const;
};

/// Attaches probes to a simulator and owns the recorded traces.
class Recorder {
public:
    explicit Recorder(ams::MixedSimulator& sim) : sim_(&sim) {}
    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /// Records every event of the named digital signal.
    void recordDigital(const std::string& signalName);

    /// Records the named analog node at every accepted solver step.
    void recordAnalog(const std::string& nodeName);

    /// Fork-from-golden support: overwrites every recorded trace with the
    /// golden recorder's history up to the checkpoint — digital events at or
    /// before @p tDigital (fs), analog samples at or before @p tAnalog (s) —
    /// discarding anything this recorder captured during elaboration. Call
    /// right after MixedSimulator::restoreSnapshot(); the resumed run then
    /// appends only post-checkpoint history, so the combined traces are
    /// byte-identical to an uninterrupted run's.
    void preloadPrefix(const Recorder& golden, SimTime tDigital, double tAnalog);

    /// Recorded digital trace (throws std::out_of_range if not recorded).
    [[nodiscard]] const DigitalTrace& digitalTrace(const std::string& name) const;

    /// Recorded analog trace (throws std::out_of_range if not recorded).
    [[nodiscard]] const AnalogTrace& analogTrace(const std::string& name) const;

    /// All recorded digital traces, by name.
    [[nodiscard]] const std::map<std::string, DigitalTrace>& digitalTraces() const noexcept
    {
        return digital_;
    }

    /// All recorded analog traces, by name.
    [[nodiscard]] const std::map<std::string, AnalogTrace>& analogTraces() const noexcept
    {
        return analog_;
    }

private:
    ams::MixedSimulator* sim_;
    std::map<std::string, DigitalTrace> digital_;
    std::map<std::string, AnalogTrace> analog_;
};

/// Writes traces as CSV: one time column per domain plus one column per trace.
void writeAnalogCsv(const std::string& path, const std::vector<const AnalogTrace*>& traces);

/// Writes a (simple, two-state + X/Z) VCD file from digital traces and analog
/// traces (emitted as VCD real variables).
void writeVcd(const std::string& path, const std::vector<const DigitalTrace*>& digitalTraces,
              const std::vector<const AnalogTrace*>& analogTraces);

} // namespace gfi::trace
