#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace gfi::trace {

// ---------------------------------------------------------------------------
// DigitalTrace

digital::Logic DigitalTrace::valueAt(SimTime t) const
{
    digital::Logic v = initial;
    for (const auto& [time, value] : events) {
        if (time > t) {
            break;
        }
        v = value;
    }
    return v;
}

std::vector<SimTime> DigitalTrace::risingEdges() const
{
    std::vector<SimTime> edges;
    digital::Logic prev = digital::toX01(initial);
    for (const auto& [time, value] : events) {
        const digital::Logic now = digital::toX01(value);
        if (prev == digital::Logic::Zero && now == digital::Logic::One) {
            edges.push_back(time);
        }
        prev = now;
    }
    return edges;
}

// ---------------------------------------------------------------------------
// AnalogTrace

double AnalogTrace::valueAt(double t) const
{
    if (samples.empty()) {
        return 0.0;
    }
    if (t <= samples.front().first) {
        return samples.front().second;
    }
    if (t >= samples.back().first) {
        return samples.back().second;
    }
    // Binary search for the interval containing t.
    const auto it = std::lower_bound(
        samples.begin(), samples.end(), t,
        [](const std::pair<double, double>& s, double time) { return s.first < time; });
    const auto& [t1, v1] = *it;
    const auto& [t0, v0] = *(it - 1);
    if (t1 <= t0) {
        return v1;
    }
    return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
}

std::pair<double, double> AnalogTrace::minmax(double t0, double t1) const
{
    double lo = 1e300;
    double hi = -1e300;
    for (const auto& [t, v] : samples) {
        if (t < t0 || t > t1) {
            continue;
        }
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    if (lo > hi) {
        return {0.0, 0.0};
    }
    return {lo, hi};
}

// ---------------------------------------------------------------------------
// Recorder

void Recorder::preloadPrefix(const Recorder& golden, SimTime tDigital, double tAnalog)
{
    for (auto& [name, tr] : digital_) {
        const auto it = golden.digital_.find(name);
        if (it == golden.digital_.end()) {
            throw std::logic_error("Recorder::preloadPrefix: golden run did not record '" +
                                   name + "'");
        }
        const DigitalTrace& g = it->second;
        tr.initial = g.initial;
        tr.events.clear();
        for (const auto& ev : g.events) {
            if (ev.first > tDigital) {
                break;
            }
            tr.events.push_back(ev);
        }
    }
    for (auto& [name, tr] : analog_) {
        const auto it = golden.analog_.find(name);
        if (it == golden.analog_.end()) {
            throw std::logic_error("Recorder::preloadPrefix: golden run did not record '" +
                                   name + "'");
        }
        const AnalogTrace& g = it->second;
        tr.samples.clear();
        for (const auto& sample : g.samples) {
            if (sample.first > tAnalog) {
                break;
            }
            tr.samples.push_back(sample);
        }
    }
}

void Recorder::recordDigital(const std::string& signalName)
{
    auto& sig = sim_->digital().findLogic(signalName);
    auto [it, inserted] = digital_.try_emplace(signalName);
    if (!inserted) {
        return; // already recorded
    }
    DigitalTrace& tr = it->second;
    tr.name = signalName;
    tr.initial = sig.value();
    digital::SignalWatch::onEvent(sig, [&tr, &sig, this] {
        tr.events.emplace_back(sim_->digital().scheduler().now(), sig.value());
    });
}

void Recorder::recordAnalog(const std::string& nodeName)
{
    auto [it, inserted] = analog_.try_emplace(nodeName);
    if (!inserted) {
        return;
    }
    AnalogTrace& tr = it->second;
    tr.name = nodeName;
    const analog::NodeId node = sim_->analog().node(nodeName);
    auto* sim = sim_;
    sim_->onElaborate([&tr, node, sim](analog::TransientSolver& solver) {
        tr.samples.emplace_back(solver.time(), sim->analog().voltage(node));
        solver.onAccept(
            [&tr, node, sim](double t) { tr.samples.emplace_back(t, sim->analog().voltage(node)); });
    });
}

const DigitalTrace& Recorder::digitalTrace(const std::string& name) const
{
    const auto it = digital_.find(name);
    if (it == digital_.end()) {
        throw std::out_of_range("Recorder: digital trace '" + name + "' not recorded");
    }
    return it->second;
}

const AnalogTrace& Recorder::analogTrace(const std::string& name) const
{
    const auto it = analog_.find(name);
    if (it == analog_.end()) {
        throw std::out_of_range("Recorder: analog trace '" + name + "' not recorded");
    }
    return it->second;
}

// ---------------------------------------------------------------------------
// Writers

void writeAnalogCsv(const std::string& path, const std::vector<const AnalogTrace*>& traces)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        throw std::runtime_error("writeAnalogCsv: cannot open " + path);
    }
    std::fputs("time_s", f);
    for (const AnalogTrace* tr : traces) {
        std::fprintf(f, ",%s", tr->name.c_str());
    }
    std::fputc('\n', f);

    // Union of all sample times.
    std::vector<double> times;
    for (const AnalogTrace* tr : traces) {
        for (const auto& [t, v] : tr->samples) {
            times.push_back(t);
        }
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    for (double t : times) {
        std::fprintf(f, "%.12g", t);
        for (const AnalogTrace* tr : traces) {
            std::fprintf(f, ",%.9g", tr->valueAt(t));
        }
        std::fputc('\n', f);
    }
    std::fclose(f);
}

void writeVcd(const std::string& path, const std::vector<const DigitalTrace*>& digitalTraces,
              const std::vector<const AnalogTrace*>& analogTraces)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        throw std::runtime_error("writeVcd: cannot open " + path);
    }
    std::fputs("$timescale 1fs $end\n$scope module gfi $end\n", f);
    char id = '!';
    std::vector<char> digIds;
    for (const DigitalTrace* tr : digitalTraces) {
        std::fprintf(f, "$var wire 1 %c %s $end\n", id, tr->name.c_str());
        digIds.push_back(id++);
    }
    std::vector<char> anaIds;
    for (const AnalogTrace* tr : analogTraces) {
        std::fprintf(f, "$var real 64 %c %s $end\n", id, tr->name.c_str());
        anaIds.push_back(id++);
    }
    std::fputs("$upscope $end\n$enddefinitions $end\n", f);

    // Merge all change times.
    struct Change {
        SimTime t;
        std::string text;
    };
    std::vector<Change> changes;
    for (std::size_t i = 0; i < digitalTraces.size(); ++i) {
        const char c = digIds[i];
        changes.push_back({0, std::string(1, digital::toChar(digitalTraces[i]->initial)) +
                                  std::string(1, c)});
        for (const auto& [t, v] : digitalTraces[i]->events) {
            char ch = digital::toChar(v);
            if (ch == 'U' || ch == 'W' || ch == '-') {
                ch = 'x';
            }
            if (ch == 'L') {
                ch = '0';
            }
            if (ch == 'H') {
                ch = '1';
            }
            if (ch == 'X') {
                ch = 'x';
            }
            if (ch == 'Z') {
                ch = 'z';
            }
            changes.push_back({t, std::string(1, ch) + std::string(1, c)});
        }
    }
    for (std::size_t i = 0; i < analogTraces.size(); ++i) {
        const char c = anaIds[i];
        for (const auto& [t, v] : analogTraces[i]->samples) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "r%.9g %c", v, c);
            changes.push_back({fromSeconds(t), buf});
        }
    }
    std::stable_sort(changes.begin(), changes.end(),
                     [](const Change& a, const Change& b) { return a.t < b.t; });

    SimTime last = -1;
    for (const Change& ch : changes) {
        if (ch.t != last) {
            std::fprintf(f, "#%lld\n", static_cast<long long>(ch.t));
            last = ch.t;
        }
        std::fprintf(f, "%s\n", ch.text.c_str());
    }
    std::fclose(f);
}

} // namespace gfi::trace
