#pragma once
// Clock-waveform metrics for the PLL experiments.
//
// The paper's key Figure 6 observation is that a sub-nanosecond current pulse
// perturbs the generated clock for *many consecutive cycles*. These helpers
// extract per-cycle periods from a recorded clock trace and quantify the
// perturbation: how many cycles deviate, for how long, and by how much.

#include "trace/trace.hpp"

namespace gfi::trace {

/// One clock cycle: the time of a rising edge and the period to the next one.
struct PeriodSample {
    SimTime edge;   ///< rising-edge time
    SimTime period; ///< distance to the next rising edge
};

/// Extracts consecutive rising-edge periods from a clock trace.
[[nodiscard]] std::vector<PeriodSample> extractPeriods(const DigitalTrace& clock);

/// Summary of a clock perturbation relative to a nominal period.
struct ClockPerturbation {
    int totalCycles = 0;           ///< cycles examined
    int perturbedCycles = 0;       ///< cycles whose period deviates > relTol
    SimTime firstPerturbed = -1;   ///< edge time of the first perturbed cycle
    SimTime lastPerturbed = -1;    ///< edge time of the last perturbed cycle
    double maxRelDeviation = 0.0;  ///< max |period - nominal| / nominal
    SimTime maxDeviationPeriod = 0;///< the most deviant period observed
    SimTime nominalPeriod = 0;     ///< the reference period used

    /// Duration of the perturbed region (0 when no cycle deviates).
    [[nodiscard]] SimTime perturbationSpan() const noexcept
    {
        return firstPerturbed < 0 ? 0 : lastPerturbed - firstPerturbed;
    }
};

/// Analyzes @p clock against @p nominalPeriod over edges at or after @p from.
/// A cycle is perturbed when |period - nominal| / nominal > relTol.
[[nodiscard]] ClockPerturbation analyzeClock(const DigitalTrace& clock, SimTime nominalPeriod,
                                             double relTol, SimTime from = 0);

/// Measures the average period over the last @p cycles rising edges (lock
/// verification helper).
[[nodiscard]] double averagePeriod(const DigitalTrace& clock, int cycles);

/// Compares two clock traces cycle-by-cycle (golden vs faulty) and counts
/// cycles whose period differs by more than relTol of the golden period.
[[nodiscard]] ClockPerturbation compareClocks(const DigitalTrace& golden,
                                              const DigitalTrace& faulty, double relTol,
                                              SimTime from = 0);

/// RMS period jitter (seconds) relative to the mean period, over rising edges
/// at or after @p from.
[[nodiscard]] double rmsPeriodJitter(const DigitalTrace& clock, SimTime from = 0);

/// Average duty cycle (high-time fraction) over full cycles at or after
/// @p from; returns -1 when fewer than two full cycles exist.
[[nodiscard]] double dutyCycle(const DigitalTrace& clock, SimTime from = 0);

} // namespace gfi::trace
