#include "harden/ecc_ram.hpp"

#include <stdexcept>

namespace gfi::harden {

using digital::Bus;
using digital::Logic;
using digital::LogicSignal;

EccRam::EccRam(digital::Circuit& c, std::string name, LogicSignal& clk, LogicSignal& we,
               const Bus& addr, const Bus& wdata, const Bus& rdata,
               LogicSignal* uncorrectable, SimTime readDelay)
    : digital::Component(std::move(name)), depth_(1 << addr.width()), width_(wdata.width()),
      codeBits_(hammingCodewordBits(wdata.width())), addr_(addr), rdata_(rdata),
      uncorrectable_(uncorrectable), readDelay_(readDelay)
{
    if (wdata.width() != rdata.width()) {
        throw std::invalid_argument("EccRam '" + this->name() + "': wdata/rdata width mismatch");
    }
    if (addr.width() > 16) {
        throw std::invalid_argument("EccRam '" + this->name() + "': address bus too wide");
    }
    storage_.assign(static_cast<std::size_t>(depth_), hammingEncode(0, width_));

    digital::Process& wp =
        c.process(this->name() + "/write",
                  [this, &clk, &we, wdata] {
                      if (digital::risingEdge(clk) &&
                          digital::toX01(we.value()) == Logic::One) {
                          bool known = true;
                          const auto a = static_cast<int>(addr_.toUint(&known));
                          if (known) {
                              storage_[static_cast<std::size_t>(a)] =
                                  hammingEncode(wdata.toUint(), width_);
                              refreshRead();
                          }
                      }
                  },
                  {&clk});
    c.noteSequential(wp, &clk);
    {
        std::vector<digital::SignalBase*> ins{&we};
        ins.insert(ins.end(), addr.bits().begin(), addr.bits().end());
        ins.insert(ins.end(), wdata.bits().begin(), wdata.bits().end());
        c.noteReads(wp, ins);
    }
    std::vector<digital::SignalBase*> outs = digital::busSignals(rdata);
    if (uncorrectable != nullptr) {
        outs.push_back(uncorrectable);
    }
    // rdata's sole declared driver is the read process: the write port's
    // read-refresh is an intra-component update, not a second net driver.

    std::vector<digital::SignalBase*> sens(addr_.bits().begin(), addr_.bits().end());
    digital::Process& rp = c.process(this->name() + "/read", [this] { refreshRead(); }, sens);
    c.noteDrives(rp, outs);

    for (int w = 0; w < depth_; ++w) {
        c.instrumentation().add(digital::StateHook{
            this->name() + "/w" + std::to_string(w), codeBits_,
            [this, w] { return storage_[static_cast<std::size_t>(w)]; },
            [this, w](std::uint64_t v) { setCodeword(w, v); },
            [this, w](int bit) {
                setCodeword(w, storage_[static_cast<std::size_t>(w)] ^ (1ull << bit));
            }});
    }
}

void EccRam::setCodeword(int address, std::uint64_t value)
{
    const std::uint64_t mask = codeBits_ >= 64 ? ~0ull : ((1ull << codeBits_) - 1);
    storage_.at(static_cast<std::size_t>(address)) = value & mask;
    refreshRead();
}

bool EccRam::scrub(int address)
{
    const HammingDecode d = hammingDecode(codeword(address), width_);
    if (d.corrected) {
        ++corrections_;
        storage_.at(static_cast<std::size_t>(address)) = hammingEncode(d.data, width_);
        refreshRead();
        return true;
    }
    return false;
}

void EccRam::refreshRead()
{
    bool known = true;
    const auto a = static_cast<int>(addr_.toUint(&known));
    if (!known) {
        for (LogicSignal* s : rdata_.bits()) {
            s->scheduleInertial(Logic::X, readDelay_);
        }
        return;
    }
    const HammingDecode d = hammingDecode(storage_[static_cast<std::size_t>(a)], width_);
    if (d.corrected) {
        ++corrections_;
    }
    rdata_.scheduleUint(d.data, readDelay_);
    if (uncorrectable_ != nullptr) {
        uncorrectable_->scheduleInertial(digital::fromBool(d.uncorrectable), readDelay_);
    }
}

} // namespace gfi::harden
