#pragma once
// Memory scrubbing engine.
//
// SEC-DED only survives as long as no second upset hits a word before the
// first one is repaired. A scrubber walks the ECC RAM continuously, decoding
// and re-encoding one word per scrub period, bounding the accumulation
// window. The classic dependability trade-off — scrub rate vs multi-upset
// probability — is measured by bench/abl_scrub_interval.

#include "harden/ecc_ram.hpp"

namespace gfi::harden {

/// Walks an EccRam cyclically, scrubbing one word per period.
class Scrubber : public digital::Component, public snapshot::Snapshottable {
public:
    /// @param period  time between word scrubs (full-array sweep takes
    ///                depth * period).
    Scrubber(digital::Circuit& c, std::string name, EccRam& ram, SimTime period);

    /// Number of corrections this scrubber performed.
    [[nodiscard]] int repairs() const noexcept { return repairs_; }

    /// Number of full array sweeps completed.
    [[nodiscard]] int sweeps() const noexcept { return sweeps_; }

    /// Number of uncorrectable (>= 2-bit) words encountered while walking.
    /// The scrubber cannot repair these — it flags and skips them, so a
    /// supervisor can classify the run as Detected instead of Corrected. A
    /// word that stays broken is counted again on every later visit.
    [[nodiscard]] int uncorrectables() const noexcept { return uncorrectables_; }

    /// Captures the walk position plus the armed fire time; restore re-arms
    /// the periodic scrub action from it.
    void captureState(snapshot::Writer& w) const override;
    void restoreState(snapshot::Reader& r) override;

private:
    void scheduleAt(SimTime t);

    digital::Circuit* circuit_;
    EccRam* ram_;
    SimTime period_;
    SimTime nextFireAt_ = 0;
    int next_ = 0;
    int repairs_ = 0;
    int sweeps_ = 0;
    int uncorrectables_ = 0;
};

} // namespace gfi::harden
