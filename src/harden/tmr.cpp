#include "harden/tmr.hpp"

#include <stdexcept>

namespace gfi::harden {

using digital::Bus;
using digital::Logic;
using digital::LogicSignal;
using digital::StateHook;

namespace {

std::uint64_t widthMask(int width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

bool resetActive(const LogicSignal* rstn)
{
    return rstn != nullptr && digital::toX01(rstn->value()) == Logic::Zero;
}

} // namespace

// ---------------------------------------------------------------------------
// TmrRegister

TmrRegister::TmrRegister(digital::Circuit& c, std::string name, LogicSignal& clk, const Bus& d,
                         const Bus& q, LogicSignal* en, LogicSignal* rstn, SimTime clkToQ)
    : digital::Component(std::move(name)), mask_(widthMask(q.width())), q_(q), clkToQ_(clkToQ)
{
    if (d.width() != q.width()) {
        throw std::invalid_argument("TmrRegister '" + this->name() + "': width mismatch");
    }
    std::vector<digital::SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    digital::Process& p = c.process(this->name() + "/seq",
              [this, &clk, d, en, rstn] {
                  if (resetActive(rstn)) {
                      copies_ = {0, 0, 0};
                      propagate();
                  } else if (digital::risingEdge(clk)) {
                      if (en == nullptr || digital::toX01(en->value()) == Logic::One) {
                          // Every load rewrites all three copies: inherent
                          // scrubbing of any accumulated single-copy upset.
                          const std::uint64_t v = d.toUint() & mask_;
                          copies_ = {v, v, v};
                          propagate();
                      }
                  }
              },
              sens);
    c.noteSequential(p, &clk);
    {
        std::vector<digital::SignalBase*> ins = digital::busSignals(d);
        if (en != nullptr) {
            ins.push_back(en);
        }
        c.noteReads(p, ins);
    }
    c.noteDrives(p, digital::busSignals(q));

    for (int i = 0; i < 3; ++i) {
        c.instrumentation().add(StateHook{
            this->name() + "/copy" + std::to_string(i), q.width(),
            [this, i] { return copies_[static_cast<std::size_t>(i)]; },
            [this, i](std::uint64_t v) { setCopy(i, v); },
            [this, i](int bit) {
                setCopy(i, copies_[static_cast<std::size_t>(i)] ^ (1ull << bit));
            }});
    }
}

void TmrRegister::setCopy(int i, std::uint64_t v)
{
    copies_.at(static_cast<std::size_t>(i)) = v & mask_;
    propagate();
}

void TmrRegister::propagate()
{
    q_.scheduleUint(voted(), clkToQ_);
}

// ---------------------------------------------------------------------------
// DwcRegister

DwcRegister::DwcRegister(digital::Circuit& c, std::string name, LogicSignal& clk, const Bus& d,
                         const Bus& q, LogicSignal& error, LogicSignal* rstn, SimTime clkToQ)
    : digital::Component(std::move(name)), mask_(widthMask(q.width())), q_(q), error_(&error),
      clkToQ_(clkToQ)
{
    if (d.width() != q.width()) {
        throw std::invalid_argument("DwcRegister '" + this->name() + "': width mismatch");
    }
    std::vector<digital::SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    digital::Process& p = c.process(this->name() + "/seq",
              [this, &clk, d, rstn] {
                  if (resetActive(rstn)) {
                      copies_ = {0, 0};
                      propagate();
                  } else if (digital::risingEdge(clk)) {
                      const std::uint64_t v = d.toUint() & mask_;
                      copies_ = {v, v};
                      propagate();
                  }
              },
              sens);
    c.noteSequential(p, &clk);
    c.noteReads(p, digital::busSignals(d));
    {
        std::vector<digital::SignalBase*> outs = digital::busSignals(q);
        outs.push_back(&error);
        c.noteDrives(p, outs);
    }

    for (int i = 0; i < 2; ++i) {
        c.instrumentation().add(StateHook{
            this->name() + "/copy" + std::to_string(i), q.width(),
            [this, i] { return copies_[static_cast<std::size_t>(i)]; },
            [this, i](std::uint64_t v) { setCopy(i, v); },
            [this, i](int bit) {
                setCopy(i, copies_[static_cast<std::size_t>(i)] ^ (1ull << bit));
            }});
    }
}

void DwcRegister::setCopy(int i, std::uint64_t v)
{
    copies_.at(static_cast<std::size_t>(i)) = v & mask_;
    propagate();
}

void DwcRegister::propagate()
{
    q_.scheduleUint(copies_[0], clkToQ_);
    error_->scheduleInertial(digital::fromBool(copies_[0] != copies_[1]), clkToQ_);
}

// ---------------------------------------------------------------------------
// EccRegister

EccRegister::EccRegister(digital::Circuit& c, std::string name, LogicSignal& clk, const Bus& d,
                         const Bus& q, LogicSignal* uncorrectable, LogicSignal* rstn,
                         SimTime clkToQ)
    : digital::Component(std::move(name)), dataBits_(q.width()),
      codeBits_(hammingCodewordBits(q.width())), q_(q), uncorrectable_(uncorrectable),
      clkToQ_(clkToQ)
{
    if (d.width() != q.width()) {
        throw std::invalid_argument("EccRegister '" + this->name() + "': width mismatch");
    }
    code_ = hammingEncode(0, dataBits_);

    std::vector<digital::SignalBase*> sens{&clk};
    if (rstn != nullptr) {
        sens.push_back(rstn);
    }
    digital::Process& p = c.process(this->name() + "/seq",
              [this, &clk, d, rstn] {
                  if (resetActive(rstn)) {
                      code_ = hammingEncode(0, dataBits_);
                      propagate();
                  } else if (digital::risingEdge(clk)) {
                      code_ = hammingEncode(d.toUint() & widthMask(dataBits_), dataBits_);
                      propagate();
                  }
              },
              sens);
    c.noteSequential(p, &clk);
    c.noteReads(p, digital::busSignals(d));
    {
        std::vector<digital::SignalBase*> outs = digital::busSignals(q);
        if (uncorrectable != nullptr) {
            outs.push_back(uncorrectable);
        }
        c.noteDrives(p, outs);
    }

    c.instrumentation().add(StateHook{
        this->name() + "/code", codeBits_, [this] { return code_; },
        [this](std::uint64_t v) { setCodeword(v); },
        [this](int bit) { setCodeword(code_ ^ (1ull << bit)); }});
}

void EccRegister::setCodeword(std::uint64_t v)
{
    code_ = v & widthMask(codeBits_);
    propagate();
}

void EccRegister::propagate()
{
    const HammingDecode decoded = hammingDecode(code_, dataBits_);
    if (decoded.corrected) {
        ++corrections_;
    }
    q_.scheduleUint(decoded.data, clkToQ_);
    if (uncorrectable_ != nullptr) {
        uncorrectable_->scheduleInertial(digital::fromBool(decoded.uncorrectable), clkToQ_);
    }
}

} // namespace gfi::harden
