#pragma once
// SEU-hardened sequential elements: triple modular redundancy, duplication
// with comparison, and ECC-protected registers.
//
// These are the "implemented mechanisms" whose efficiency the paper's flow is
// meant to validate (introduction, goal (2)): build the protected block, run
// the same injection campaign as on the unprotected one, and compare outcome
// rates. The hooks deliberately target the *internal copies/codewords* so the
// injected SEU lands below the protection, where real particles strike.

#include "digital/circuit.hpp"
#include "harden/hamming.hpp"
#include "snapshot/snapshot.hpp"

#include <array>

namespace gfi::harden {

/// Triple-modular-redundant register: three storage copies, a bitwise
/// majority voter on the output, and (by construction) re-synchronization at
/// every load. Instrumentation: three hooks "<name>/copy{0,1,2}" so an SEU
/// flips exactly one copy.
class TmrRegister : public digital::Component, public snapshot::Snapshottable {
public:
    TmrRegister(digital::Circuit& c, std::string name, digital::LogicSignal& clk,
                const digital::Bus& d, const digital::Bus& q,
                digital::LogicSignal* en = nullptr, digital::LogicSignal* rstn = nullptr,
                SimTime clkToQ = 200 * kPicosecond);

    /// Stored copy value (diagnostics).
    [[nodiscard]] std::uint64_t copy(int i) const { return copies_.at(static_cast<std::size_t>(i)); }

    /// The voted output value.
    [[nodiscard]] std::uint64_t voted() const noexcept
    {
        return (copies_[0] & copies_[1]) | (copies_[0] & copies_[2]) |
               (copies_[1] & copies_[2]);
    }

    /// Overwrites one copy and re-votes (SEU injection path).
    void setCopy(int i, std::uint64_t v);

    void captureState(snapshot::Writer& w) const override
    {
        for (std::uint64_t c : copies_) {
            w.u64(c);
        }
    }

    void restoreState(snapshot::Reader& r) override
    {
        for (std::uint64_t& c : copies_) {
            c = r.u64();
        }
    }

private:
    void propagate();

    std::array<std::uint64_t, 3> copies_{};
    std::uint64_t mask_;
    digital::Bus q_;
    SimTime clkToQ_;
};

/// Duplication-with-comparison register: two copies, primary drives the
/// output, any mismatch raises the error flag (detection, not correction).
class DwcRegister : public digital::Component, public snapshot::Snapshottable {
public:
    DwcRegister(digital::Circuit& c, std::string name, digital::LogicSignal& clk,
                const digital::Bus& d, const digital::Bus& q, digital::LogicSignal& error,
                digital::LogicSignal* rstn = nullptr, SimTime clkToQ = 200 * kPicosecond);

    /// Overwrites one copy, updates the output/error flag (SEU injection).
    void setCopy(int i, std::uint64_t v);

    void captureState(snapshot::Writer& w) const override
    {
        for (std::uint64_t c : copies_) {
            w.u64(c);
        }
    }

    void restoreState(snapshot::Reader& r) override
    {
        for (std::uint64_t& c : copies_) {
            c = r.u64();
        }
    }

private:
    void propagate();

    std::array<std::uint64_t, 2> copies_{};
    std::uint64_t mask_;
    digital::Bus q_;
    digital::LogicSignal* error_;
    SimTime clkToQ_;
};

/// SEC-DED-protected register: stores the extended Hamming codeword; the
/// read path decodes (and corrects) on every propagation. Instrumentation
/// targets the raw codeword ("<name>/code"), so single flips are absorbed
/// and double flips are flagged on the uncorrectable output.
class EccRegister : public digital::Component, public snapshot::Snapshottable {
public:
    EccRegister(digital::Circuit& c, std::string name, digital::LogicSignal& clk,
                const digital::Bus& d, const digital::Bus& q,
                digital::LogicSignal* uncorrectable = nullptr,
                digital::LogicSignal* rstn = nullptr, SimTime clkToQ = 200 * kPicosecond);

    /// The stored raw codeword.
    [[nodiscard]] std::uint64_t codeword() const noexcept { return code_; }

    /// Number of corrections performed so far (scrub telemetry).
    [[nodiscard]] int correctionCount() const noexcept { return corrections_; }

    /// Overwrites the stored codeword (SEU injection path).
    void setCodeword(std::uint64_t v);

    void captureState(snapshot::Writer& w) const override
    {
        w.u64(code_);
        w.u64(static_cast<std::uint64_t>(corrections_));
    }

    void restoreState(snapshot::Reader& r) override
    {
        code_ = r.u64();
        corrections_ = static_cast<int>(r.u64());
    }

private:
    void propagate();

    std::uint64_t code_ = 0;
    int dataBits_;
    int codeBits_;
    int corrections_ = 0;
    digital::Bus q_;
    digital::LogicSignal* uncorrectable_;
    SimTime clkToQ_;
};

} // namespace gfi::harden
