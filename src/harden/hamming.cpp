#include "harden/hamming.hpp"

#include <stdexcept>

namespace gfi::harden {

namespace {

// Codeword layout: positions 1..m hold parity (power-of-two positions) and
// data bits in the classic Hamming arrangement; bit 0 of the stored word is
// the overall (DED) parity. Internally we use 1-based Hamming positions
// shifted up by one so position p lives at stored bit p.

bool isPow2(int x)
{
    return (x & (x - 1)) == 0;
}

int parityOf(std::uint64_t v)
{
    return __builtin_parityll(v);
}

} // namespace

int hammingParityBits(int dataBits)
{
    if (dataBits < 1 || dataBits > 57) {
        throw std::invalid_argument("hamming: dataBits must be in [1, 57]");
    }
    int r = 0;
    while ((1 << r) < dataBits + r + 1) {
        ++r;
    }
    return r;
}

int hammingCodewordBits(int dataBits)
{
    return dataBits + hammingParityBits(dataBits) + 1;
}

std::uint64_t hammingEncode(std::uint64_t data, int dataBits)
{
    const int r = hammingParityBits(dataBits);
    const int m = dataBits + r; // highest Hamming position

    // Scatter data bits into non-power-of-two positions.
    std::uint64_t word = 0; // stored bit p = Hamming position p; bit 0 = DED
    int dataIdx = 0;
    for (int pos = 1; pos <= m; ++pos) {
        if (isPow2(pos)) {
            continue;
        }
        if ((data >> dataIdx) & 1u) {
            word |= 1ull << pos;
        }
        ++dataIdx;
    }
    // Compute each parity bit: parity over positions with that bit set.
    for (int pb = 0; pb < r; ++pb) {
        const int ppos = 1 << pb;
        int parity = 0;
        for (int pos = 1; pos <= m; ++pos) {
            if ((pos & ppos) != 0 && ((word >> pos) & 1u)) {
                parity ^= 1;
            }
        }
        if (parity != 0) {
            word |= 1ull << ppos;
        }
    }
    // Overall parity over all codeword bits (positions 1..m) -> DED bit 0.
    if (parityOf(word >> 1 << 1) != 0) {
        word |= 1ull;
    }
    return word;
}

HammingDecode hammingDecode(std::uint64_t codeword, int dataBits)
{
    const int r = hammingParityBits(dataBits);
    const int m = dataBits + r;

    // Syndrome: XOR of the positions of all set bits.
    int syndrome = 0;
    for (int pos = 1; pos <= m; ++pos) {
        if ((codeword >> pos) & 1u) {
            syndrome ^= pos;
        }
    }
    const int overall = parityOf(codeword); // includes the DED bit

    HammingDecode result;
    if (syndrome != 0 && overall != 0) {
        // Single-bit error at `syndrome` (or in the DED bit if syndrome > m,
        // which cannot happen for valid positions): correct it.
        if (syndrome <= m) {
            codeword ^= 1ull << syndrome;
            result.corrected = true;
        } else {
            result.uncorrectable = true;
        }
    } else if (syndrome == 0 && overall != 0) {
        // The DED bit itself flipped; data is intact.
        result.corrected = true;
    } else if (syndrome != 0 && overall == 0) {
        // Even number of errors with a nonzero syndrome: double error.
        result.uncorrectable = true;
    }

    // Gather data bits.
    int dataIdx = 0;
    for (int pos = 1; pos <= m; ++pos) {
        if (isPow2(pos)) {
            continue;
        }
        if ((codeword >> pos) & 1u) {
            result.data |= 1ull << dataIdx;
        }
        ++dataIdx;
    }
    return result;
}

} // namespace gfi::harden
