#pragma once
// SEC-DED (single-error-correct, double-error-detect) Hamming coding.
//
// The paper's introduction motivates early fault injection with two goals:
// (1) find the nodes that need protection, and (2) "validate the efficiency
// of the implemented mechanisms". This module provides the mechanism side:
// extended Hamming codes for data widths up to 57 bits, used by EccRegister /
// EccRam in gfi::harden and validated by injection campaigns.

#include <cstdint>

namespace gfi::harden {

/// Number of parity bits (excluding the overall DED bit) for @p dataBits.
[[nodiscard]] int hammingParityBits(int dataBits);

/// Total codeword length: dataBits + parity bits + 1 overall-parity bit.
[[nodiscard]] int hammingCodewordBits(int dataBits);

/// Encodes @p data (low @p dataBits bits) into an extended Hamming codeword.
[[nodiscard]] std::uint64_t hammingEncode(std::uint64_t data, int dataBits);

/// Decode result.
struct HammingDecode {
    std::uint64_t data = 0;    ///< corrected data bits
    bool corrected = false;    ///< a single-bit error was found and fixed
    bool uncorrectable = false;///< a double-bit error was detected
};

/// Decodes an extended Hamming codeword of @p dataBits data bits.
[[nodiscard]] HammingDecode hammingDecode(std::uint64_t codeword, int dataBits);

} // namespace gfi::harden
