#pragma once
// SEC-DED-protected RAM: every word is stored as an extended Hamming
// codeword; reads correct single-bit upsets on the fly and flag double-bit
// upsets. Per-word instrumentation hooks target the RAW CODEWORD, so injected
// SEUs land beneath the protection exactly as particles do in the array.

#include "digital/circuit.hpp"
#include "harden/hamming.hpp"
#include "snapshot/snapshot.hpp"

namespace gfi::harden {

/// Synchronous-write, asynchronous-read ECC RAM.
class EccRam : public digital::Component, public snapshot::Snapshottable {
public:
    /// Same port shape as digital::Ram plus an uncorrectable-error flag that
    /// follows the read port.
    EccRam(digital::Circuit& c, std::string name, digital::LogicSignal& clk,
           digital::LogicSignal& we, const digital::Bus& addr, const digital::Bus& wdata,
           const digital::Bus& rdata, digital::LogicSignal* uncorrectable = nullptr,
           SimTime readDelay = 500 * kPicosecond);

    /// Word count / data width.
    [[nodiscard]] int depth() const noexcept { return depth_; }
    [[nodiscard]] int width() const noexcept { return width_; }

    /// Raw stored codeword of a word.
    [[nodiscard]] std::uint64_t codeword(int address) const
    {
        return storage_.at(static_cast<std::size_t>(address));
    }

    /// Decoded (corrected) data of a word.
    [[nodiscard]] std::uint64_t word(int address) const
    {
        return hammingDecode(codeword(address), width_).data;
    }

    /// Total single-bit corrections performed by reads so far.
    [[nodiscard]] int correctionCount() const noexcept { return corrections_; }

    /// True while the stored codeword of @p address carries an upset beyond
    /// SEC-DED's correction capability (>= 2 flipped bits).
    [[nodiscard]] bool wordUncorrectable(int address) const
    {
        return hammingDecode(codeword(address), width_).uncorrectable;
    }

    /// Overwrites a raw codeword (SEU injection path; also used by the
    /// per-word hooks "<name>/w<addr>").
    void setCodeword(int address, std::uint64_t value);

    /// Scrubs one word: decode, correct, re-encode, write back. Returns true
    /// if a correction happened. (Scrubbing engines call this periodically.)
    bool scrub(int address);

    void captureState(snapshot::Writer& w) const override
    {
        w.u64(storage_.size());
        for (std::uint64_t word : storage_) {
            w.u64(word);
        }
        w.u64(static_cast<std::uint64_t>(corrections_));
    }

    void restoreState(snapshot::Reader& r) override
    {
        const std::uint64_t n = r.u64();
        storage_.assign(n, 0);
        for (std::uint64_t i = 0; i < n; ++i) {
            storage_[i] = r.u64();
        }
        corrections_ = static_cast<int>(r.u64());
    }

private:
    void refreshRead();

    std::vector<std::uint64_t> storage_;
    int depth_;
    int width_;
    int codeBits_;
    int corrections_ = 0;
    digital::Bus addr_;
    digital::Bus rdata_;
    digital::LogicSignal* uncorrectable_;
    SimTime readDelay_;
};

} // namespace gfi::harden
