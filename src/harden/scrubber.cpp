#include "harden/scrubber.hpp"

namespace gfi::harden {

Scrubber::Scrubber(digital::Circuit& c, std::string name, EccRam& ram, SimTime period)
    : digital::Component(std::move(name)), circuit_(&c), ram_(&ram), period_(period)
{
    scheduleAt(c.scheduler().now() + period_);
}

void Scrubber::scheduleAt(SimTime t)
{
    nextFireAt_ = t;
    circuit_->scheduler().scheduleAction(t, [this] {
        if (ram_->wordUncorrectable(next_)) {
            ++uncorrectables_; // beyond SEC-DED: flag it, leave the word alone
        } else if (ram_->scrub(next_)) {
            ++repairs_;
        }
        next_ = (next_ + 1) % ram_->depth();
        if (next_ == 0) {
            ++sweeps_;
        }
        scheduleAt(circuit_->scheduler().now() + period_);
    });
}

void Scrubber::captureState(snapshot::Writer& w) const
{
    w.u64(static_cast<std::uint64_t>(next_));
    w.u64(static_cast<std::uint64_t>(repairs_));
    w.u64(static_cast<std::uint64_t>(sweeps_));
    w.u64(static_cast<std::uint64_t>(uncorrectables_));
    w.i64(nextFireAt_);
}

void Scrubber::restoreState(snapshot::Reader& r)
{
    next_ = static_cast<int>(r.u64());
    repairs_ = static_cast<int>(r.u64());
    sweeps_ = static_cast<int>(r.u64());
    uncorrectables_ = static_cast<int>(r.u64());
    scheduleAt(r.i64()); // re-arm: the restored queue carries no actions
}

} // namespace gfi::harden
