#include "harden/scrubber.hpp"

namespace gfi::harden {

Scrubber::Scrubber(digital::Circuit& c, std::string name, EccRam& ram, SimTime period)
    : digital::Component(std::move(name)), ram_(&ram), period_(period)
{
    scheduleNext(c);
}

void Scrubber::scheduleNext(digital::Circuit& c)
{
    c.scheduler().scheduleAction(c.scheduler().now() + period_, [this, &c] {
        if (ram_->scrub(next_)) {
            ++repairs_;
        }
        next_ = (next_ + 1) % ram_->depth();
        if (next_ == 0) {
            ++sweeps_;
        }
        scheduleNext(c);
    });
}

} // namespace gfi::harden
