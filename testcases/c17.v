// c17 — the smallest ISCAS-85 benchmark circuit, structural-Verilog form.
// Elaborates to the same design as c17.bench: the two files hash to the
// same netlist digest in the golden store.

module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  nand g10 (N10, N1, N3);
  nand g11 (N11, N3, N6);
  nand g16 (N16, N2, N11);
  nand g19 (N19, N11, N7);
  nand g22 (N22, N10, N16);
  nand g23 (N23, N16, N19);
endmodule
