// Tests for the tiny processor DUT and the memory scrubbing engine.

#include "core/campaign.hpp"
#include "duts/tiny_cpu.hpp"
#include "harden/scrubber.hpp"

#include <gtest/gtest.h>

namespace gfi::duts {
namespace {

std::uint64_t portAt(const fault::Testbench& tb, SimTime t)
{
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
        const auto lv =
            tb.recorder().digitalTrace("cpu/port[" + std::to_string(b) + "]").valueAt(t);
        if (digital::toX01(lv) == digital::Logic::One) {
            v |= 1ull << b;
        }
    }
    return v;
}

TEST(TinyCpuTest, CounterProgramStreamsIncrementingValues)
{
    TinyCpuTestbench tb;
    tb.run();
    // Loop body = ADD, OUT, JNZ = 3 cycles at 20 ns -> +1 every 60 ns.
    const std::uint64_t v1 = portAt(tb, 1 * kMicrosecond);
    const std::uint64_t v2 = portAt(tb, 2 * kMicrosecond);
    const std::uint64_t v3 = portAt(tb, 3 * kMicrosecond);
    EXPECT_GT(v2, v1);
    EXPECT_GT(v3, v2);
    EXPECT_NEAR(static_cast<double>(v2 - v1), 1e-6 / 60e-9, 2.0);
    EXPECT_FALSE(tb.cpu().halted());
}

TEST(TinyCpuTest, HltStopsTheMachine)
{
    TinyCpuConfig cfg;
    cfg.program = {asm1(Op::Ldi, 7), asm1(Op::Out), asm1(Op::Hlt), asm1(Op::Ldi, 1),
                   asm1(Op::Out)};
    cfg.duration = kMicrosecond;
    TinyCpuTestbench tb(cfg);
    tb.run();
    EXPECT_TRUE(tb.cpu().halted());
    EXPECT_EQ(portAt(tb, kMicrosecond), 7u); // the post-HLT OUT never ran
    EXPECT_EQ(digital::toX01(tb.recorder().digitalTrace("cpu/halted").valueAt(kMicrosecond)),
              digital::Logic::One);
}

TEST(TinyCpuTest, LoadStoreRoundTrip)
{
    TinyCpuConfig cfg;
    cfg.program = {asm1(Op::Ldi, 21), asm1(Op::Sta, 5),  asm1(Op::Ldi, 0),
                   asm1(Op::Lda, 5),  asm1(Op::Out),     asm1(Op::Hlt)};
    cfg.duration = kMicrosecond;
    TinyCpuTestbench tb(cfg);
    tb.run();
    EXPECT_EQ(portAt(tb, kMicrosecond), 21u);
}

TEST(TinyCpuTest, AccSeuCorruptsTheStreamPermanently)
{
    TinyCpuConfig cfg;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<TinyCpuTestbench>(cfg); });
    fault::BitFlipFault f{"cpu/core/acc", 6, 2 * kMicrosecond + 7 * kNanosecond};
    const auto r = runner.runOne(fault::FaultSpec{f});
    // The accumulator feeds itself: a +/-64 offset persists in every later OUT.
    EXPECT_EQ(r.outcome, campaign::Outcome::Failure);
}

TEST(TinyCpuTest, PcSeuDisturbsControlFlow)
{
    TinyCpuConfig cfg;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<TinyCpuTestbench>(cfg); });
    int nonSilent = 0;
    for (int bit = 0; bit < 5; ++bit) {
        fault::BitFlipFault f{"cpu/core/pc", bit, 2 * kMicrosecond + 7 * kNanosecond};
        nonSilent +=
            runner.runOne(fault::FaultSpec{f}).outcome != campaign::Outcome::Silent ? 1 : 0;
    }
    EXPECT_GE(nonSilent, 3);
}

TEST(TinyCpuTest, JnzBackwardBranchLoopTerminates)
{
    // Backward JNZ: sum a stride of 16 until the 8-bit accumulator wraps to
    // zero (16 iterations), then fall through and halt.
    TinyCpuConfig cfg;
    cfg.program = {asm1(Op::Ldi, 16), asm1(Op::Sta, 16), asm1(Op::Ldi, 0),
                   asm1(Op::Add, 16), asm1(Op::Out),     asm1(Op::Jnz, 3),
                   asm1(Op::Hlt)};
    cfg.duration = 3 * kMicrosecond;
    TinyCpuTestbench tb(cfg);
    tb.run();
    EXPECT_TRUE(tb.cpu().halted());
    EXPECT_EQ(tb.cpu().acc(), 0u);
    // The stream passed through nonzero multiples of 16 before wrapping.
    const std::uint64_t mid = portAt(tb, 400 * kNanosecond);
    EXPECT_NE(mid, 0u);
    EXPECT_EQ(mid % 16, 0u);
    EXPECT_EQ(portAt(tb, cfg.duration), 0u); // the final OUT streamed the wrap
}

TEST(TinyCpuTest, AccFlipAfterHltStaysLatent)
{
    // An upset landing after the machine halted can never reach an output:
    // the campaign must classify it Latent (state diff only), not Silent.
    TinyCpuConfig cfg;
    cfg.program = {asm1(Op::Ldi, 7), asm1(Op::Out), asm1(Op::Hlt)};
    cfg.duration = kMicrosecond;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<TinyCpuTestbench>(cfg); });
    const auto r = runner.runOne(
        fault::FaultSpec{fault::BitFlipFault{"cpu/core/acc", 4, 500 * kNanosecond}});
    EXPECT_EQ(r.outcome, campaign::Outcome::Latent);
    EXPECT_TRUE(r.erredSignals.empty());
    ASSERT_EQ(r.corruptedState.size(), 1u);
    EXPECT_EQ(r.corruptedState.front(), "cpu/core/acc");
}

TEST(TinyCpuTest, HaltStateFlipResumesAtTheNextInstruction)
{
    // Flipping the RUN/HALT state bit un-halts the core: it resumes at the
    // instruction after HLT, streams 1, runs off into the ROM's NOP padding,
    // wraps the 5-bit PC and re-executes the program from 0 until HLT again.
    TinyCpuConfig cfg;
    cfg.program = {asm1(Op::Ldi, 7), asm1(Op::Out), asm1(Op::Hlt), asm1(Op::Ldi, 1),
                   asm1(Op::Out)};
    cfg.duration = 2 * kMicrosecond;
    TinyCpuTestbench tb(cfg);
    tb.sim().digital().scheduler().scheduleAction(500 * kNanosecond, [&tb] {
        tb.sim().digital().instrumentation().hook("cpu/core/halt").flipBit(0);
    });
    tb.run();
    EXPECT_EQ(portAt(tb, 450 * kNanosecond), 7u); // halted with 7 on the port
    EXPECT_EQ(portAt(tb, 700 * kNanosecond), 1u); // resumed: the post-HLT OUT ran
    EXPECT_TRUE(tb.cpu().halted());               // wrapped around and re-halted
    EXPECT_EQ(portAt(tb, cfg.duration), 7u);      // after re-running from PC 0
}

TEST(TinyCpuTest, PcWrapAroundRunsTheRomCyclically)
{
    // No HLT anywhere: the PC walks the whole 32-word ROM (the tail is NOP
    // padding) and wraps back to 0, incrementing RAM[17] once per pass.
    TinyCpuConfig cfg;
    cfg.program = {asm1(Op::Ldi, 1),  asm1(Op::Sta, 16), asm1(Op::Lda, 17),
                   asm1(Op::Add, 16), asm1(Op::Sta, 17), asm1(Op::Out)};
    cfg.duration = 6 * kMicrosecond;
    TinyCpuTestbench tb(cfg);
    tb.run();
    EXPECT_FALSE(tb.cpu().halted());
    const std::uint64_t v1 = portAt(tb, 2 * kMicrosecond);
    const std::uint64_t v2 = portAt(tb, 4 * kMicrosecond);
    EXPECT_GT(v2, v1);
    // One wrap = 32 instructions x 20 ns = 640 ns -> ~3.1 passes per 2 us.
    EXPECT_NEAR(static_cast<double>(v2 - v1), 2e-6 / 640e-9, 1.5);
}

} // namespace
} // namespace gfi::duts

namespace gfi::harden {
namespace {

using namespace digital;

TEST(ScrubberTest, RepairsInjectedUpsetsDuringSweep)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& we = c.logicSignal("we", Logic::Zero);
    Bus addr = c.bus("addr", 2, Logic::Zero);
    Bus wdata = c.bus("wdata", 8, Logic::Zero);
    Bus rdata = c.bus("rdata", 8, Logic::U);
    auto& ram = c.add<EccRam>(c, "eram", clk, we, addr, wdata, rdata);
    auto& scrubber = c.add<Scrubber>(c, "scrub", ram, 10 * kMicrosecond);

    // Flip one bit in each of two words.
    c.scheduler().scheduleAction(kMicrosecond, [&c] {
        c.instrumentation().hook("eram/w1").flipBit(2);
        c.instrumentation().hook("eram/w3").flipBit(7);
    });
    // One full sweep (4 words x 10 us) plus margin.
    c.runUntil(60 * kMicrosecond);
    EXPECT_EQ(scrubber.repairs(), 2);
    EXPECT_GE(scrubber.sweeps(), 1);
    // Storage is clean again.
    EXPECT_EQ(ram.codeword(1), hammingEncode(0, 8));
    EXPECT_EQ(ram.codeword(3), hammingEncode(0, 8));
}

TEST(ScrubberTest, FlagsUncorrectableWordsInsteadOfScrubbing)
{
    // A double-bit upset is beyond SEC-DED: the scrubber must not "repair" it
    // (a miscorrecting write-back would silently corrupt the word further) —
    // it counts the word as uncorrectable and leaves it alone.
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& we = c.logicSignal("we", Logic::Zero);
    Bus addr = c.bus("addr", 2, Logic::Zero);
    Bus wdata = c.bus("wdata", 8, Logic::Zero);
    Bus rdata = c.bus("rdata", 8, Logic::U);
    auto& ram = c.add<EccRam>(c, "eram", clk, we, addr, wdata, rdata);
    auto& scrubber = c.add<Scrubber>(c, "scrub", ram, 10 * kMicrosecond);

    c.scheduler().scheduleAction(kMicrosecond, [&c] {
        c.instrumentation().hook("eram/w2").flipBit(1);
        c.instrumentation().hook("eram/w2").flipBit(6);
    });
    const auto poisoned = hammingEncode(0, 8) ^ (1ull << 1) ^ (1ull << 6);
    c.runUntil(60 * kMicrosecond);
    EXPECT_TRUE(ram.wordUncorrectable(2));
    EXPECT_GE(scrubber.uncorrectables(), 1);
    EXPECT_EQ(scrubber.repairs(), 0);
    EXPECT_EQ(ram.codeword(2), poisoned); // untouched, not miscorrected
}

TEST(ScrubberTest, PreventsDoubleErrorAccumulation)
{
    // Two upsets in the same word, far enough apart that a fast scrubber
    // repairs the first before the second lands -> the word stays readable.
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& we = c.logicSignal("we", Logic::Zero);
    Bus addr = c.bus("addr", 2, Logic::Zero);
    Bus wdata = c.bus("wdata", 8, Logic::Zero);
    Bus rdata = c.bus("rdata", 8, Logic::U);
    auto& ram = c.add<EccRam>(c, "eram", clk, we, addr, wdata, rdata);
    c.add<Scrubber>(c, "scrub", ram, 5 * kMicrosecond);

    c.scheduler().scheduleAction(kMicrosecond,
                                 [&c] { c.instrumentation().hook("eram/w0").flipBit(1); });
    c.scheduler().scheduleAction(100 * kMicrosecond,
                                 [&c] { c.instrumentation().hook("eram/w0").flipBit(9); });
    c.runUntil(200 * kMicrosecond);
    const auto d = hammingDecode(ram.codeword(0), 8);
    EXPECT_FALSE(d.uncorrectable);
    EXPECT_EQ(ram.word(0), 0u);
}

} // namespace
} // namespace gfi::harden
