// Tests for the tiny processor DUT and the memory scrubbing engine.

#include "core/campaign.hpp"
#include "duts/tiny_cpu.hpp"
#include "harden/scrubber.hpp"

#include <gtest/gtest.h>

namespace gfi::duts {
namespace {

std::uint64_t portAt(const fault::Testbench& tb, SimTime t)
{
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
        const auto lv =
            tb.recorder().digitalTrace("cpu/port[" + std::to_string(b) + "]").valueAt(t);
        if (digital::toX01(lv) == digital::Logic::One) {
            v |= 1ull << b;
        }
    }
    return v;
}

TEST(TinyCpuTest, CounterProgramStreamsIncrementingValues)
{
    TinyCpuTestbench tb;
    tb.run();
    // Loop body = ADD, OUT, JNZ = 3 cycles at 20 ns -> +1 every 60 ns.
    const std::uint64_t v1 = portAt(tb, 1 * kMicrosecond);
    const std::uint64_t v2 = portAt(tb, 2 * kMicrosecond);
    const std::uint64_t v3 = portAt(tb, 3 * kMicrosecond);
    EXPECT_GT(v2, v1);
    EXPECT_GT(v3, v2);
    EXPECT_NEAR(static_cast<double>(v2 - v1), 1e-6 / 60e-9, 2.0);
    EXPECT_FALSE(tb.cpu().halted());
}

TEST(TinyCpuTest, HltStopsTheMachine)
{
    TinyCpuConfig cfg;
    cfg.program = {asm1(Op::Ldi, 7), asm1(Op::Out), asm1(Op::Hlt), asm1(Op::Ldi, 1),
                   asm1(Op::Out)};
    cfg.duration = kMicrosecond;
    TinyCpuTestbench tb(cfg);
    tb.run();
    EXPECT_TRUE(tb.cpu().halted());
    EXPECT_EQ(portAt(tb, kMicrosecond), 7u); // the post-HLT OUT never ran
    EXPECT_EQ(digital::toX01(tb.recorder().digitalTrace("cpu/halted").valueAt(kMicrosecond)),
              digital::Logic::One);
}

TEST(TinyCpuTest, LoadStoreRoundTrip)
{
    TinyCpuConfig cfg;
    cfg.program = {asm1(Op::Ldi, 21), asm1(Op::Sta, 5),  asm1(Op::Ldi, 0),
                   asm1(Op::Lda, 5),  asm1(Op::Out),     asm1(Op::Hlt)};
    cfg.duration = kMicrosecond;
    TinyCpuTestbench tb(cfg);
    tb.run();
    EXPECT_EQ(portAt(tb, kMicrosecond), 21u);
}

TEST(TinyCpuTest, AccSeuCorruptsTheStreamPermanently)
{
    TinyCpuConfig cfg;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<TinyCpuTestbench>(cfg); });
    fault::BitFlipFault f{"cpu/core/acc", 6, 2 * kMicrosecond + 7 * kNanosecond};
    const auto r = runner.runOne(fault::FaultSpec{f});
    // The accumulator feeds itself: a +/-64 offset persists in every later OUT.
    EXPECT_EQ(r.outcome, campaign::Outcome::Failure);
}

TEST(TinyCpuTest, PcSeuDisturbsControlFlow)
{
    TinyCpuConfig cfg;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<TinyCpuTestbench>(cfg); });
    int nonSilent = 0;
    for (int bit = 0; bit < 5; ++bit) {
        fault::BitFlipFault f{"cpu/core/pc", bit, 2 * kMicrosecond + 7 * kNanosecond};
        nonSilent +=
            runner.runOne(fault::FaultSpec{f}).outcome != campaign::Outcome::Silent ? 1 : 0;
    }
    EXPECT_GE(nonSilent, 3);
}

} // namespace
} // namespace gfi::duts

namespace gfi::harden {
namespace {

using namespace digital;

TEST(ScrubberTest, RepairsInjectedUpsetsDuringSweep)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& we = c.logicSignal("we", Logic::Zero);
    Bus addr = c.bus("addr", 2, Logic::Zero);
    Bus wdata = c.bus("wdata", 8, Logic::Zero);
    Bus rdata = c.bus("rdata", 8, Logic::U);
    auto& ram = c.add<EccRam>(c, "eram", clk, we, addr, wdata, rdata);
    auto& scrubber = c.add<Scrubber>(c, "scrub", ram, 10 * kMicrosecond);

    // Flip one bit in each of two words.
    c.scheduler().scheduleAction(kMicrosecond, [&c] {
        c.instrumentation().hook("eram/w1").flipBit(2);
        c.instrumentation().hook("eram/w3").flipBit(7);
    });
    // One full sweep (4 words x 10 us) plus margin.
    c.runUntil(60 * kMicrosecond);
    EXPECT_EQ(scrubber.repairs(), 2);
    EXPECT_GE(scrubber.sweeps(), 1);
    // Storage is clean again.
    EXPECT_EQ(ram.codeword(1), hammingEncode(0, 8));
    EXPECT_EQ(ram.codeword(3), hammingEncode(0, 8));
}

TEST(ScrubberTest, PreventsDoubleErrorAccumulation)
{
    // Two upsets in the same word, far enough apart that a fast scrubber
    // repairs the first before the second lands -> the word stays readable.
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& we = c.logicSignal("we", Logic::Zero);
    Bus addr = c.bus("addr", 2, Logic::Zero);
    Bus wdata = c.bus("wdata", 8, Logic::Zero);
    Bus rdata = c.bus("rdata", 8, Logic::U);
    auto& ram = c.add<EccRam>(c, "eram", clk, we, addr, wdata, rdata);
    c.add<Scrubber>(c, "scrub", ram, 5 * kMicrosecond);

    c.scheduler().scheduleAction(kMicrosecond,
                                 [&c] { c.instrumentation().hook("eram/w0").flipBit(1); });
    c.scheduler().scheduleAction(100 * kMicrosecond,
                                 [&c] { c.instrumentation().hook("eram/w0").flipBit(9); });
    c.runUntil(200 * kMicrosecond);
    const auto d = hammingDecode(ram.codeword(0), 8);
    EXPECT_FALSE(d.uncorrectable);
    EXPECT_EQ(ram.word(0), 0u);
}

} // namespace
} // namespace gfi::harden
