// Tests for the ADC case studies: conversion correctness and fault
// sensitivity of the analog vs digital parts (the paper's future-work
// direction, reference [9]).

#include "adc/flash.hpp"
#include "adc/sar.hpp"
#include "core/campaign.hpp"

#include <gtest/gtest.h>

namespace gfi::adc {
namespace {

std::uint64_t busValueAt(const fault::Testbench& tb, const std::string& prefix, int bits,
                         SimTime t)
{
    std::uint64_t code = 0;
    for (int b = 0; b < bits; ++b) {
        const auto v =
            tb.recorder().digitalTrace(prefix + "[" + std::to_string(b) + "]").valueAt(t);
        if (digital::toX01(v) == digital::Logic::One) {
            code |= 1ull << b;
        }
    }
    return code;
}

TEST(SarAdc, ConvertsStaircaseWithinOneLsb)
{
    SarAdcTestbench tb;
    tb.run();
    const auto& cfg = tb.config();
    for (std::size_t k = 0; k < cfg.inputLevels.size(); ++k) {
        const SimTime tEnd = static_cast<SimTime>(k + 1) * cfg.levelHold - kMicrosecond;
        const auto code =
            static_cast<int>(busValueAt(tb, "adc/result", cfg.bits, tEnd));
        EXPECT_NEAR(code, tb.idealCode(cfg.inputLevels[k]), 1)
            << "vin=" << cfg.inputLevels[k];
    }
}

TEST(SarAdc, DonePulsesOncePerConversion)
{
    SarAdcTestbench tb;
    tb.run();
    const auto& done = tb.recorder().digitalTrace("adc/done");
    EXPECT_EQ(done.risingEdges().size(), tb.config().inputLevels.size());
}

TEST(SarAdc, BitFlipInSarRegisterCorruptsCode)
{
    const SarConfig cfg;
    campaign::CampaignRunner runner([cfg] { return std::make_unique<SarAdcTestbench>(cfg); });
    // Flip the MSB of the SAR trial register mid-conversion of level 1.
    fault::BitFlipFault f{"adc/sar/code", cfg.bits - 1,
                          cfg.levelHold + 3 * fromSeconds(1.0 / cfg.clockHz)};
    const auto r = runner.runOne(fault::FaultSpec{f});
    EXPECT_NE(r.outcome, campaign::Outcome::Silent);
}

TEST(SarAdc, CurrentPulseOnDacNodeDuringConversion)
{
    const SarConfig cfg;
    campaign::CampaignRunner runner([cfg] { return std::make_unique<SarAdcTestbench>(cfg); });
    // A large pulse on the DAC settling node exactly while a decision is
    // being taken flips that comparison.
    fault::CurrentPulseFault f;
    f.saboteur = "sab/dac_out";
    f.timeSeconds = toSeconds(cfg.levelHold) + 2.4e-6; // mid-conversion of level 1
    f.shape = std::make_shared<fault::TrapezoidPulse>(20e-3, 100e-12, 300e-12, 400e-9);
    const auto r = runner.runOne(fault::FaultSpec{f});
    EXPECT_NE(r.outcome, campaign::Outcome::Silent);
}

TEST(FlashAdc, TracksInputSine)
{
    FlashAdcTestbench tb;
    tb.run();
    const auto& cfg = tb.config();
    const double lsb = cfg.vref / (1 << cfg.bits);
    // Compare the registered code against the ideal flash quantization at a
    // few sample instants (one clock after the sample edge, away from edges).
    for (double t : {2.1e-6, 4.9e-6, 7.7e-6, 11.3e-6, 15.9e-6}) {
        const double vin = tb.recorder().analogTrace("adc/vin").valueAt(t - 2.5e-7);
        const auto code = static_cast<int>(busValueAt(tb, "adc/code", cfg.bits,
                                                      fromSeconds(t)));
        const int ideal = std::min(static_cast<int>(vin / lsb), (1 << cfg.bits) - 1);
        EXPECT_NEAR(code, ideal, 1) << "t=" << t;
    }
}

TEST(FlashAdc, LadderSaboteurPerturbsCodes)
{
    const FlashConfig cfg;
    campaign::CampaignRunner runner([cfg] { return std::make_unique<FlashAdcTestbench>(cfg); },
                                    campaign::Tolerance{10e-3, 0.0});
    // A sustained pulse on a middle ladder tap shifts comparator thresholds
    // and must corrupt at least one conversion.
    fault::CurrentPulseFault f;
    f.saboteur = "sab/tap4";
    f.timeSeconds = 4e-6;
    f.shape = std::make_shared<fault::TrapezoidPulse>(5e-3, 1e-9, 1e-9, 2e-6);
    const auto r = runner.runOne(fault::FaultSpec{f});
    EXPECT_NE(r.outcome, campaign::Outcome::Silent);
}

TEST(FlashAdc, EnumeratesTapSaboteurs)
{
    FlashAdcTestbench tb;
    EXPECT_EQ(tb.tapSaboteurs().size(), 7u); // 2^3 - 1 comparators
    for (const auto& name : tb.tapSaboteurs()) {
        EXPECT_NE(tb.findCurrentSaboteur(name), nullptr);
    }
}

} // namespace
} // namespace gfi::adc
