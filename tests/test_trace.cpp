// Tests for trace capture, tolerant comparison and clock metrics.

#include "trace/compare.hpp"
#include "trace/metrics.hpp"

#include "analog/passive.hpp"
#include "analog/sources.hpp"
#include "digital/sequential.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace gfi::trace {
namespace {

using digital::Logic;

DigitalTrace makeTrace(Logic initial, std::vector<std::pair<SimTime, Logic>> events)
{
    DigitalTrace t;
    t.name = "t";
    t.initial = initial;
    t.events = std::move(events);
    return t;
}

TEST(DigitalTraceTest, ValueAtWalksEvents)
{
    const auto t = makeTrace(Logic::Zero, {{10, Logic::One}, {20, Logic::Zero}});
    EXPECT_EQ(t.valueAt(5), Logic::Zero);
    EXPECT_EQ(t.valueAt(10), Logic::One);
    EXPECT_EQ(t.valueAt(15), Logic::One);
    EXPECT_EQ(t.valueAt(25), Logic::Zero);
}

TEST(DigitalTraceTest, RisingEdges)
{
    const auto t = makeTrace(Logic::Zero, {{10, Logic::One},
                                           {20, Logic::Zero},
                                           {30, Logic::One},
                                           {40, Logic::X},
                                           {50, Logic::One}});
    const auto edges = t.risingEdges();
    ASSERT_EQ(edges.size(), 2u); // X -> 1 is not a clean rising edge
    EXPECT_EQ(edges[0], 10);
    EXPECT_EQ(edges[1], 30);
}

TEST(AnalogTraceTest, LinearInterpolation)
{
    AnalogTrace t;
    t.samples = {{0.0, 0.0}, {1.0, 2.0}, {2.0, 0.0}};
    EXPECT_DOUBLE_EQ(t.valueAt(0.5), 1.0);
    EXPECT_DOUBLE_EQ(t.valueAt(1.5), 1.0);
    EXPECT_DOUBLE_EQ(t.valueAt(-1.0), 0.0); // clamped
    EXPECT_DOUBLE_EQ(t.valueAt(5.0), 0.0);
    const auto [lo, hi] = t.minmax();
    EXPECT_DOUBLE_EQ(lo, 0.0);
    EXPECT_DOUBLE_EQ(hi, 2.0);
}

TEST(CompareDigitalTest, IdenticalTraces)
{
    const auto a = makeTrace(Logic::Zero, {{10, Logic::One}});
    const auto diff = compareDigital(a, a, 100);
    EXPECT_TRUE(diff.identical());
    EXPECT_EQ(diff.totalMismatch, 0);
    EXPECT_TRUE(diff.matchesAt(100));
}

TEST(CompareDigitalTest, TransientMismatchWindow)
{
    const auto golden = makeTrace(Logic::Zero, {{10, Logic::One}});
    const auto faulty = makeTrace(Logic::Zero, {{10, Logic::One},
                                                {30, Logic::Zero}, // glitch
                                                {40, Logic::One}});
    const auto diff = compareDigital(golden, faulty, 100);
    ASSERT_EQ(diff.mismatchWindows.size(), 1u);
    EXPECT_EQ(diff.firstMismatch, 30);
    EXPECT_EQ(diff.mismatchWindows[0].second, 40);
    EXPECT_EQ(diff.totalMismatch, 10);
    EXPECT_TRUE(diff.matchesAt(100)); // recovered
}

TEST(CompareDigitalTest, PermanentMismatch)
{
    const auto golden = makeTrace(Logic::Zero, {});
    const auto faulty = makeTrace(Logic::Zero, {{50, Logic::One}});
    const auto diff = compareDigital(golden, faulty, 100);
    ASSERT_EQ(diff.mismatchWindows.size(), 1u);
    EXPECT_FALSE(diff.matchesAt(100));
    EXPECT_EQ(diff.totalMismatch, 50);
}

TEST(CompareDigitalTest, WeakValuesNormalized)
{
    // 'H' vs '1' must not count as a mismatch (to_x01 normalization).
    const auto golden = makeTrace(Logic::One, {});
    const auto faulty = makeTrace(Logic::H, {});
    EXPECT_TRUE(compareDigital(golden, faulty, 100).identical());
}

TEST(CompareAnalogTest, WithinTolerance)
{
    AnalogTrace g;
    AnalogTrace f;
    for (int i = 0; i <= 10; ++i) {
        g.samples.emplace_back(i * 1e-6, 1.0);
        f.samples.emplace_back(i * 1e-6, 1.0 + 0.5e-3);
    }
    const auto diff = compareAnalog(g, f, 1e-3);
    EXPECT_TRUE(diff.withinTolerance());
    EXPECT_NEAR(diff.maxDeviation, 0.5e-3, 1e-9);
}

TEST(CompareAnalogTest, TransientExcursion)
{
    AnalogTrace g;
    AnalogTrace f;
    for (int i = 0; i <= 100; ++i) {
        const double t = i * 1e-6;
        g.samples.emplace_back(t, 1.0);
        // 20 mV bump between 40 and 60 us.
        const double bump = (t > 40e-6 && t < 60e-6) ? 0.02 : 0.0;
        f.samples.emplace_back(t, 1.0 + bump);
    }
    const auto diff = compareAnalog(g, f, 5e-3);
    EXPECT_FALSE(diff.withinTolerance());
    EXPECT_TRUE(diff.withinTolAtEnd);
    EXPECT_NEAR(diff.maxDeviation, 0.02, 1e-9);
    EXPECT_NEAR(diff.firstExceed, 41e-6, 1e-6);
    EXPECT_NEAR(diff.timeOutsideTol, 19e-6, 2e-6);
}

TEST(CompareAnalogTest, RelativeTolerance)
{
    AnalogTrace g;
    AnalogTrace f;
    g.samples = {{0.0, 10.0}, {1.0, 10.0}};
    f.samples = {{0.0, 10.5}, {1.0, 10.5}};
    EXPECT_TRUE(compareAnalog(g, f, 0.0, 0.10).withinTolerance());  // 5 % < 10 %
    EXPECT_FALSE(compareAnalog(g, f, 0.0, 0.01).withinTolerance()); // 5 % > 1 %
}

TEST(MetricsTest, ExtractPeriods)
{
    const auto clk = makeTrace(Logic::Zero, {{0, Logic::One},
                                             {10, Logic::Zero},
                                             {20, Logic::One},
                                             {30, Logic::Zero},
                                             {42, Logic::One}}); // late edge
    const auto periods = extractPeriods(clk);
    ASSERT_EQ(periods.size(), 2u);
    EXPECT_EQ(periods[0].period, 20);
    EXPECT_EQ(periods[1].period, 22);
}

TEST(MetricsTest, AnalyzeClockCountsPerturbedCycles)
{
    DigitalTrace clk;
    clk.initial = Logic::Zero;
    SimTime t = 0;
    for (int cycle = 0; cycle < 100; ++cycle) {
        // Cycles 40-49 are 2 % long.
        const SimTime period = (cycle >= 40 && cycle < 50) ? 2040 : 2000;
        clk.events.emplace_back(t, Logic::One);
        clk.events.emplace_back(t + period / 2, Logic::Zero);
        t += period;
    }
    const auto result = analyzeClock(clk, 2000, 0.01);
    EXPECT_EQ(result.perturbedCycles, 10);
    EXPECT_NEAR(result.maxRelDeviation, 0.02, 1e-6);
    EXPECT_GT(result.firstPerturbed, 0);
    EXPECT_EQ(result.totalCycles, 99); // n edges -> n-1 periods
}

TEST(MetricsTest, CompareClocksUsesGoldenMedianPeriod)
{
    DigitalTrace golden;
    DigitalTrace faulty;
    golden.initial = faulty.initial = Logic::Zero;
    SimTime tg = 0;
    SimTime tf = 0;
    for (int cycle = 0; cycle < 50; ++cycle) {
        golden.events.emplace_back(tg, Logic::One);
        golden.events.emplace_back(tg + 1000, Logic::Zero);
        tg += 2000;
        const SimTime period = cycle == 25 ? 2100 : 2000;
        faulty.events.emplace_back(tf, Logic::One);
        faulty.events.emplace_back(tf + period / 2, Logic::Zero);
        tf += period;
    }
    const auto result = compareClocks(golden, faulty, 0.01);
    EXPECT_EQ(result.perturbedCycles, 1);
    EXPECT_EQ(result.nominalPeriod, 2000);
}

TEST(MetricsTest, RmsPeriodJitter)
{
    DigitalTrace clk;
    clk.initial = Logic::Zero;
    // Alternating 1900/2100 fs periods around a 2000 fs mean -> RMS = 100 fs.
    SimTime t = 0;
    for (int i = 0; i < 40; ++i) {
        clk.events.emplace_back(t, Logic::One);
        clk.events.emplace_back(t + 500, Logic::Zero);
        t += (i % 2 == 0) ? 1900 : 2100;
    }
    EXPECT_NEAR(rmsPeriodJitter(clk), 100e-15, 5e-15);

    DigitalTrace flat;
    flat.initial = Logic::Zero;
    t = 0;
    for (int i = 0; i < 10; ++i) {
        flat.events.emplace_back(t, Logic::One);
        flat.events.emplace_back(t + 500, Logic::Zero);
        t += 2000;
    }
    EXPECT_NEAR(rmsPeriodJitter(flat), 0.0, 1e-18);
}

TEST(MetricsTest, DutyCycle)
{
    DigitalTrace clk;
    clk.initial = Logic::Zero;
    SimTime t = 0;
    for (int i = 0; i < 20; ++i) {
        clk.events.emplace_back(t, Logic::One);
        clk.events.emplace_back(t + 600, Logic::Zero); // 30 % high
        t += 2000;
    }
    EXPECT_NEAR(dutyCycle(clk), 0.3, 1e-9);

    DigitalTrace empty;
    empty.initial = Logic::Zero;
    EXPECT_DOUBLE_EQ(dutyCycle(empty), -1.0);
}

TEST(RecorderTest, CapturesDigitalAndAnalog)
{
    ams::MixedSimulator sim;
    auto& clk = sim.digital().logicSignal("clk", Logic::Zero);
    sim.digital().add<digital::ClockGen>(sim.digital(), "cg", clk, 100 * kNanosecond);
    const analog::NodeId n = sim.analog().node("ramp");
    auto& vs = sim.analog().add<analog::VoltageSource>(sim.analog(), "vs", n, analog::kGround,
                                                       0.0);
    analog::TimeFunction fn;
    fn.value = [](double t) { return 1e6 * t; }; // 1 V/us ramp
    vs.setFunction(std::move(fn));
    sim.analog().add<analog::Resistor>(sim.analog(), "rl", n, analog::kGround, 1e4);

    Recorder rec(sim);
    rec.recordDigital("clk");
    rec.recordAnalog("ramp");
    sim.run(kMicrosecond);

    const auto& dt = rec.digitalTrace("clk");
    EXPECT_GE(dt.risingEdges().size(), 9u);
    const auto& at = rec.analogTrace("ramp");
    EXPECT_GT(at.samples.size(), 10u);
    EXPECT_NEAR(at.valueAt(0.5e-6), 0.5, 0.01);
    EXPECT_THROW(rec.digitalTrace("nope"), std::out_of_range);
}

TEST(WritersTest, CsvAndVcdProduceFiles)
{
    AnalogTrace a;
    a.name = "v1";
    a.samples = {{0.0, 1.0}, {1e-6, 2.0}};
    DigitalTrace d = makeTrace(Logic::Zero, {{10, Logic::One}, {20, Logic::Zero}});
    d.name = "sig";

    writeAnalogCsv("/tmp/gfi_trace.csv", {&a});
    writeVcd("/tmp/gfi_trace.vcd", {&d}, {&a});

    std::FILE* f = std::fopen("/tmp/gfi_trace.vcd", "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    buf[n] = '\0';
    std::fclose(f);
    const std::string vcd(buf);
    EXPECT_NE(vcd.find("$var wire 1 ! sig $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var real 64"), std::string::npos);
    EXPECT_NE(vcd.find("#10"), std::string::npos);
}

} // namespace
} // namespace gfi::trace
