// Parameterized property tests for the analog transient solver: accuracy
// scales with tolerance, charge conservation holds across pulse shapes,
// crossing detection is slope-independent, and simulation is bit-identical
// across repeated runs (the determinism the campaign comparison relies on).

#include "analog/passive.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"
#include "core/saboteur.hpp"
#include "pll/pll.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gfi::analog {
namespace {

// --- accuracy vs LTE tolerance ------------------------------------------------

class RcAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(RcAccuracy, ErrorShrinksWithTolerance)
{
    const double lteRel = GetParam();
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    auto& vs = sys.add<VoltageSource>(sys, "V1", in, kGround, 5.0);
    sys.add<Resistor>(sys, "R1", in, out, 10e3);
    sys.add<Capacitor>(sys, "C1", out, kGround, 100e-12);
    TimeFunction fn;
    fn.value = [](double t) { return t < 1e-6 ? 5.0 : 0.0; };
    fn.breakpoints = {1e-6};
    vs.setFunction(std::move(fn));

    SolverOptions opt;
    opt.lteRelTol = lteRel;
    TransientSolver solver(sys, opt);
    solver.solveDc();
    const double tau = 1e-6;
    solver.advanceTo(1e-6 + 2.0 * tau);
    const double exact = 5.0 * std::exp(-2.0);
    const double err = std::fabs(sys.voltage(out) - exact);
    // Global error tracks the local tolerance within a small constant.
    EXPECT_LT(err, std::max(50.0 * lteRel * exact, 1e-4)) << "lteRel=" << lteRel;
}

INSTANTIATE_TEST_SUITE_P(Tolerances, RcAccuracy,
                         ::testing::Values(1e-2, 2e-3, 5e-4, 1e-4));

// --- charge conservation across pulse shapes -----------------------------------

class ChargeConservation
    : public ::testing::TestWithParam<std::shared_ptr<fault::PulseShape>> {};

TEST_P(ChargeConservation, DepositedVoltageEqualsQOverC)
{
    const auto& shape = GetParam();
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    sys.add<Capacitor>(sys, "C1", n, kGround, 1e-9);
    sys.add<Resistor>(sys, "Rleak", n, kGround, 1e12);
    auto& sab = sys.add<fault::CurrentSaboteur>(sys, "sab", n);
    sab.arm(1e-7, *shape);

    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(1e-7 + shape->duration() + 1e-7);
    const double expected = shape->charge() / 1e-9;
    EXPECT_NEAR(sys.voltage(n), expected, expected * 0.02) << shape->describe();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChargeConservation,
    ::testing::Values(
        std::make_shared<fault::TrapezoidPulse>(2e-3, 100e-12, 100e-12, 300e-12),
        std::make_shared<fault::TrapezoidPulse>(8e-3, 100e-12, 100e-12, 300e-12),
        std::make_shared<fault::TrapezoidPulse>(10e-3, 40e-12, 40e-12, 120e-12),
        std::make_shared<fault::TrapezoidPulse>(10e-3, 180e-12, 180e-12, 540e-12),
        std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12),
        std::make_shared<fault::DoubleExpPulse>(10e-3, 50e-12, 500e-12),
        std::make_shared<fault::DoubleExpPulse>(5e-3, 20e-12, 2e-9)));

// --- crossing accuracy across slopes --------------------------------------------

class CrossingAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(CrossingAccuracy, RampCrossingLocatedPrecisely)
{
    const double rampSeconds = GetParam(); // 0 -> 5 V over this time
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    auto& vs = sys.add<VoltageSource>(sys, "V1", n, kGround, 0.0);
    sys.add<Resistor>(sys, "RL", n, kGround, 1e6);
    TimeFunction fn;
    fn.value = [rampSeconds](double t) {
        return t < rampSeconds ? 5.0 * t / rampSeconds : 5.0;
    };
    fn.breakpoints = {rampSeconds};
    vs.setFunction(std::move(fn));

    TransientSolver solver(sys);
    double tCross = -1.0;
    solver.addMonitor(n, 2.5, CrossingMonitor::Edge::Rising,
                      [&](double t, bool) { tCross = t; });
    solver.advanceTo(2.0 * rampSeconds);
    // The crossing is at exactly half the ramp, independent of the slope.
    ASSERT_GT(tCross, 0.0);
    EXPECT_NEAR(tCross, rampSeconds / 2.0, std::max(1e-12, rampSeconds * 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Slopes, CrossingAccuracy,
                         ::testing::Values(1e-8, 1e-7, 1e-6, 1e-5, 1e-4));

// --- determinism ------------------------------------------------------------------

TEST(Determinism, TransientRunsAreBitIdentical)
{
    auto run = [] {
        AnalogSystem sys;
        const NodeId in = sys.node("in");
        const NodeId out = sys.node("out");
        sys.add<SineVoltage>(sys, "V1", in, kGround, 0.0, 1.0, 1e6);
        sys.add<Resistor>(sys, "R1", in, out, 1e3);
        sys.add<Capacitor>(sys, "C1", out, kGround, 1e-9);
        TransientSolver solver(sys);
        std::vector<std::pair<double, double>> samples;
        solver.onAccept([&](double t) { samples.emplace_back(t, sys.voltage(out)); });
        solver.solveDc();
        solver.advanceTo(5e-6);
        return samples;
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].first, b[i].first);   // exact, not approximate
        EXPECT_EQ(a[i].second, b[i].second);
    }
}

TEST(Determinism, MixedPllRunsAreBitIdentical)
{
    auto edges = [] {
        pll::PllConfig cfg;
        cfg.duration = 20 * kMicrosecond;
        pll::PllTestbench tb(cfg);
        tb.run();
        return tb.recorder().digitalTrace(pll::names::kFout).risingEdges();
    };
    const auto a = edges();
    const auto b = edges();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]);
    }
}

} // namespace
} // namespace gfi::analog
