// Unit tests for utilities: deterministic RNG, SI formatting, tables, time.

#include "sim/time.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

namespace gfi {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next() == b.next() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, BelowIsBounded)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        sawLo = sawLo || v == 3;
        sawHi = sawHi || v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformCoversRangeRoughly)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += rng.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Units, FormatSiPicksPrefix)
{
    EXPECT_EQ(formatSi(1e-3, "A"), "1 mA");
    EXPECT_EQ(formatSi(10e-3, "A"), "10 mA");
    EXPECT_EQ(formatSi(5e7, "Hz"), "50 MHz");
    EXPECT_EQ(formatSi(100e-12, "s"), "100 ps");
    EXPECT_EQ(formatSi(3.3e-9, "F"), "3.3 nF");
    EXPECT_EQ(formatSi(0.0, "V"), "0 V");
}

TEST(Units, NegativeValues)
{
    EXPECT_EQ(formatSi(-2e-3, "A"), "-2 mA");
}

TEST(Time, Conversions)
{
    EXPECT_EQ(fromSeconds(1e-9), kNanosecond);
    EXPECT_EQ(fromSeconds(20e-9), 20 * kNanosecond);
    EXPECT_DOUBLE_EQ(toSeconds(kMillisecond), 1e-3);
    EXPECT_EQ(fromSeconds(toSeconds(123456789)), 123456789);
}

TEST(Time, Formatting)
{
    EXPECT_EQ(formatTime(0), "0 s");
    EXPECT_EQ(formatTime(kNanosecond), "1 ns");
    EXPECT_EQ(formatTime(20 * kNanosecond), "20 ns");
    EXPECT_EQ(formatTime(170 * kMicrosecond), "170 us");
    EXPECT_EQ(formatTime(500 * kPicosecond), "500 ps");
    EXPECT_EQ(formatTime(1500 * kPicosecond), "1.500 ns");
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t;
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string s = t.str();
    EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
    EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, SeparatorAndPadding)
{
    TextTable t;
    t.setHeader({"x", "y", "z"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"a", "b", "c"});
    const std::string s = t.str();
    // Short rows are padded; separators render as dashes.
    EXPECT_NE(s.find("| 1 |   |   |"), std::string::npos);
    EXPECT_NE(s.find("+---+"), std::string::npos);
}

TEST(Csv, QuotesSpecialCharacters)
{
    const std::string path = "/tmp/gfi_test_csv.csv";
    {
        CsvWriter w(path);
        w.writeRow({"plain", "with,comma", "with\"quote"});
    }
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256];
    ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
    std::fclose(f);
    EXPECT_STREQ(buf, "plain,\"with,comma\",\"with\"\"quote\"\n");
}

} // namespace
} // namespace gfi
