// Unit tests for the dense LU solver.

#include "analog/linear.hpp"

#include <gtest/gtest.h>

namespace gfi::analog {
namespace {

TEST(LuSolve, Identity)
{
    DenseMatrix A(3);
    for (int i = 0; i < 3; ++i) {
        A.at(i, i) = 1.0;
    }
    std::vector<double> b{1.0, 2.0, 3.0};
    ASSERT_TRUE(luSolveInPlace(A, b));
    EXPECT_DOUBLE_EQ(b[0], 1.0);
    EXPECT_DOUBLE_EQ(b[1], 2.0);
    EXPECT_DOUBLE_EQ(b[2], 3.0);
}

TEST(LuSolve, RequiresPivoting)
{
    // Zero on the initial diagonal; only partial pivoting solves this.
    DenseMatrix A(2);
    A.at(0, 0) = 0.0;
    A.at(0, 1) = 1.0;
    A.at(1, 0) = 1.0;
    A.at(1, 1) = 0.0;
    std::vector<double> b{2.0, 5.0};
    ASSERT_TRUE(luSolveInPlace(A, b));
    EXPECT_NEAR(b[0], 5.0, 1e-12);
    EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuSolve, SingularDetected)
{
    DenseMatrix A(2);
    A.at(0, 0) = 1.0;
    A.at(0, 1) = 2.0;
    A.at(1, 0) = 2.0;
    A.at(1, 1) = 4.0;
    std::vector<double> b{1.0, 2.0};
    EXPECT_FALSE(luSolveInPlace(A, b));
}

TEST(LuSolve, General3x3)
{
    DenseMatrix A(3);
    const double a[3][3] = {{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            A.at(r, c) = a[r][c];
        }
    }
    std::vector<double> b{8.0, -11.0, -3.0};
    ASSERT_TRUE(luSolveInPlace(A, b));
    EXPECT_NEAR(b[0], 2.0, 1e-12);
    EXPECT_NEAR(b[1], 3.0, 1e-12);
    EXPECT_NEAR(b[2], -1.0, 1e-12);
}

TEST(LuSolve, EmptySystem)
{
    DenseMatrix A(0);
    std::vector<double> b;
    EXPECT_TRUE(luSolveInPlace(A, b));
}

// Property sweep: random diagonally-dominant systems solve to machine
// precision (residual check), across sizes.
class LuSolveSizes : public ::testing::TestWithParam<int> {};

TEST_P(LuSolveSizes, ResidualIsTiny)
{
    const int n = GetParam();
    // Deterministic pseudo-random fill.
    std::uint64_t s = 12345 + static_cast<std::uint64_t>(n);
    auto rnd = [&s] {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((s >> 16) & 0xFFFF) / 65536.0 - 0.5;
    };
    DenseMatrix A(n);
    DenseMatrix Acopy(n);
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        double rowSum = 0.0;
        for (int c = 0; c < n; ++c) {
            const double v = rnd();
            A.at(r, c) = v;
            rowSum += std::abs(v);
        }
        A.at(r, r) += rowSum + 1.0; // diagonally dominant
        b[static_cast<std::size_t>(r)] = rnd();
        for (int c = 0; c < n; ++c) {
            Acopy.at(r, c) = A.at(r, c);
        }
    }
    std::vector<double> x = b;
    ASSERT_TRUE(luSolveInPlace(A, x));
    for (int r = 0; r < n; ++r) {
        double acc = 0.0;
        for (int c = 0; c < n; ++c) {
            acc += Acopy.at(r, c) * x[static_cast<std::size_t>(c)];
        }
        EXPECT_NEAR(acc, b[static_cast<std::size_t>(r)], 1e-9) << "row " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSolveSizes, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace gfi::analog
