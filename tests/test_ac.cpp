// AC small-signal analysis validated against closed-form transfer functions.

#include "analog/ac.hpp"
#include "analog/controlled.hpp"
#include "analog/passive.hpp"
#include "analog/sources.hpp"
#include "core/saboteur.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gfi::analog {
namespace {

TEST(AcAnalysis, RcLowPassPole)
{
    // R = 1k, C = 159.155 nF -> f_3dB = 1 kHz.
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    sys.add<VoltageSource>(sys, "VIN", in, kGround, 0.0);
    sys.add<Resistor>(sys, "R1", in, out, 1e3);
    sys.add<Capacitor>(sys, "C1", out, kGround, 1.0 / (2.0 * M_PI * 1e3 * 1e3));

    const AcSweep sweep = acSweep(sys, "VIN", 1.0, 1e6, 40);
    const double f3db = sweep.crossingFrequency(out, -3.0103);
    EXPECT_NEAR(f3db, 1e3, 30.0);

    // Deep in the stopband: -20 dB/decade and -90 degrees.
    const auto& pts = sweep.points();
    const std::size_t last = pts.size() - 1; // 1 MHz
    EXPECT_NEAR(sweep.magnitudeDb(last, out), -60.0, 0.5); // 3 decades above
    EXPECT_NEAR(sweep.phaseDeg(last, out), -90.0, 1.0);
    // Passband: unity, no phase shift.
    EXPECT_NEAR(sweep.magnitudeDb(0, out), 0.0, 0.01);
    EXPECT_NEAR(sweep.phaseDeg(0, out), 0.0, 0.2);
}

TEST(AcAnalysis, RlcSeriesResonancePeak)
{
    // Series RLC: resonance at 1/(2 pi sqrt(LC)) with Q = (1/R) sqrt(L/C).
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId mid = sys.node("mid");
    const NodeId out = sys.node("out");
    sys.add<VoltageSource>(sys, "VIN", in, kGround, 0.0);
    sys.add<Resistor>(sys, "R1", in, mid, 10.0);
    sys.add<Inductor>(sys, "L1", mid, out, 10e-6);
    sys.add<Capacitor>(sys, "C1", out, kGround, 10e-9);

    const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(10e-6 * 10e-9));
    const double q = std::sqrt(10e-6 / 10e-9) / 10.0;

    const AcSweep sweep = acSweep(sys, "VIN", f0 / 100.0, f0 * 100.0, 60);
    // Find the peak of |V(out)|.
    double peakDb = -1e9;
    double peakHz = 0.0;
    for (std::size_t i = 0; i < sweep.points().size(); ++i) {
        const double db = sweep.magnitudeDb(i, out);
        if (db > peakDb) {
            peakDb = db;
            peakHz = sweep.points()[i].hz;
        }
    }
    EXPECT_NEAR(peakHz, f0, 0.05 * f0);
    EXPECT_NEAR(peakDb, 20.0 * std::log10(q), 0.5); // peak magnitude ~ Q
}

TEST(AcAnalysis, PllLoopFilterTransferImpedance)
{
    // The PLL filter (R1 + C1 series, C2 shunt) driven by a test source via
    // a large series resistor approximating a current drive: check the zero
    // at 1/(2 pi R1 C1). Simpler: drive with VCVS-free direct check of the
    // divider between Rbig and the filter impedance at low/high frequency.
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId vc = sys.node("vctrl");
    const NodeId mid = sys.node("mid");
    sys.add<VoltageSource>(sys, "VIN", in, kGround, 0.0);
    sys.add<Resistor>(sys, "Rdrive", in, vc, 1e6);
    sys.add<Resistor>(sys, "R1", vc, mid, 8.2e3);
    sys.add<Capacitor>(sys, "C1", mid, kGround, 3.3e-9);
    sys.add<Capacitor>(sys, "C2", vc, kGround, 150e-12);

    const AcSweep sweep = acSweep(sys, "VIN", 100.0, 10e6, 30);
    // Z(f) ~ 1/(j w (C1+C2)) at low f; ~ R1 at mid band (zero kicks in at
    // fz = 1/(2 pi R1 C1) ~ 5.9 kHz); ~ 1/(j w C2) at high f.
    // With the 1 MOhm drive, |V(vc)/V(in)| ~ |Z| / 1e6.
    const double fz = 1.0 / (2.0 * M_PI * 8.2e3 * 3.3e-9);
    EXPECT_NEAR(fz, 5.88e3, 50.0);
    // At 30 kHz (between zero and C2 pole) the impedance is ~ R1.
    std::size_t idx30k = 0;
    for (std::size_t i = 0; i < sweep.points().size(); ++i) {
        if (sweep.points()[i].hz >= 30e3) {
            idx30k = i;
            break;
        }
    }
    const double expectedDb = 20.0 * std::log10(8.2e3 / 1e6);
    EXPECT_NEAR(sweep.magnitudeDb(idx30k, vc), expectedDb, 1.5);
}

TEST(AcAnalysis, VccsGainStage)
{
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    sys.add<VoltageSource>(sys, "VIN", in, kGround, 0.0);
    sys.add<Vccs>(sys, "GM", kGround, out, in, kGround, 1e-3);
    sys.add<Resistor>(sys, "RL", out, kGround, 10e3);
    const AcSweep sweep = acSweep(sys, "VIN", 10.0, 1e3, 10);
    // Gain = gm * RL = 10 -> +20 dB, flat.
    EXPECT_NEAR(sweep.magnitudeDb(0, out), 20.0, 0.01);
    EXPECT_NEAR(sweep.magnitudeDb(sweep.points().size() - 1, out), 20.0, 0.01);
}

TEST(AcAnalysis, SaboteurIsTransparentAtAc)
{
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    sys.add<VoltageSource>(sys, "VIN", in, kGround, 0.0);
    sys.add<Resistor>(sys, "R1", in, out, 1e3);
    sys.add<Resistor>(sys, "R2", out, kGround, 1e3);
    sys.add<fault::CurrentSaboteur>(sys, "sab", out);
    const AcSweep sweep = acSweep(sys, "VIN", 10.0, 100.0, 5);
    EXPECT_NEAR(sweep.magnitudeDb(0, out), 20.0 * std::log10(0.5), 0.01);
}

TEST(AcAnalysis, RejectsNonlinearComponents)
{
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    sys.add<VoltageSource>(sys, "VIN", in, kGround, 0.0);
    sys.add<Resistor>(sys, "R1", in, out, 1e3);
    sys.add<Diode>(sys, "D1", out, kGround);
    EXPECT_THROW((void)acSweep(sys, "VIN", 10.0, 100.0), std::invalid_argument);
}

TEST(AcAnalysis, RejectsBadArguments)
{
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    sys.add<VoltageSource>(sys, "VIN", in, kGround, 0.0);
    sys.add<Resistor>(sys, "R1", in, kGround, 1e3);
    EXPECT_THROW((void)acSweep(sys, "NOPE", 10.0, 100.0), std::invalid_argument);
    EXPECT_THROW((void)acSweep(sys, "VIN", 100.0, 10.0), std::invalid_argument);
    EXPECT_THROW((void)acSweep(sys, "VIN", -1.0, 10.0), std::invalid_argument);
}

} // namespace
} // namespace gfi::analog
